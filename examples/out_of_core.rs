//! Out-of-core training: embedding tables bigger than their page cache.
//!
//! The storage tentpole end to end: a DLRM whose embedding tables are
//! spilled to disk pages (`lazydp_store::StoredTable`) with a page
//! cache deliberately sized to ~12% of each table, trained through the
//! full LazyDP pipeline (sharded sparse state + async prefetch input
//! queue, which also drives page prefetch for step *t+1*'s rows), then
//! released and compared against the in-memory run:
//!
//! * the released models must be **bitwise identical** — paging changes
//!   where rows live, never their values;
//! * the cache counters show the table genuinely did not fit (evictions
//!   and dirty write-backs are non-zero).
//!
//! Run with: `cargo run --release --example out_of_core`

use lazydp::data::{AccessDistribution, FixedBatchLoader, SyntheticConfig, SyntheticDataset};
use lazydp::embedding::EmbeddingStorage;
use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use lazydp::store::StorageConfig;

fn main() {
    let tables = 2usize;
    let rows = 4096u64;
    let batch = 64usize;
    let samples = 2048usize;
    let steps = 12usize;

    let mut rng = Xoshiro256PlusPlus::seed_from(13);
    let model = Dlrm::new(DlrmConfig::tiny(tables, rows, 16), &mut rng);
    let make_loader = || {
        let cfg = SyntheticConfig::small(tables, rows, samples).with_distributions(
            (0..tables)
                .map(|_| AccessDistribution::zipf(rows, 0.9))
                .collect(),
        );
        FixedBatchLoader::new(SyntheticDataset::new(cfg), batch)
    };
    let q = batch as f64 / samples as f64;

    // 16-row pages → 256 pages per table; a 32-page cache keeps at most
    // ~12% of each table resident.
    let storage = StorageConfig::new().with_page_rows(16).with_cache_pages(32);
    let cfg = LazyDpConfig::paper_default(batch)
        .with_shards(2)
        .with_storage(storage);

    // In-memory reference.
    let mut mem = PrivateTrainer::make_private_prefetch(
        model.clone(),
        cfg.clone(),
        make_loader(),
        CounterNoise::new(5),
        q,
    );
    let _ = mem.train_steps(steps);
    let mem_model = mem.finish();

    // Disk-backed run: same model, same batches, same noise seed.
    let mut stored = PrivateTrainer::make_private_stored_prefetch(
        model,
        cfg,
        make_loader(),
        CounterNoise::new(5),
        q,
    )
    .expect("spill directory must be writable");
    let _ = stored.train_steps(steps);
    let stored_model = stored.finish();

    println!("trained {steps} steps on both backends:\n");
    let mut worst = 0.0f32;
    for (t, (st, mt)) in stored_model
        .tables
        .iter()
        .zip(mem_model.tables.iter())
        .enumerate()
    {
        let footprint = st.bytes();
        let resident_cap = (st.cache_pages() * st.page_rows() * st.dim() * 4) as u64;
        assert!(
            st.cache_pages() < st.total_pages(),
            "the example must configure a cache smaller than the table \
             ({} pages cached of {})",
            st.cache_pages(),
            st.total_pages()
        );
        println!(
            "  table {t}: {:>4} KiB logical, ≤{:>3} KiB resident ({} of {} pages)",
            footprint / 1024,
            resident_cap / 1024,
            st.cache_pages(),
            st.total_pages(),
        );
        worst = worst.max(st.max_abs_diff_dense(mt));
    }
    // Cache traffic (hits, misses, evictions, spilled/loaded bytes) for
    // the whole run, straight from the lazydp_obs registry: every
    // per-table `PageCache` mirrors its counters into the shared
    // `store.*` metrics, and the exporter is the sanctioned way to
    // surface them outside the bench harness.
    println!();
    lazydp::obs::export::print_store_summary();
    println!("\nmax |Δ| between released models (stored vs memory): {worst}");
    assert_eq!(
        worst, 0.0,
        "out-of-core training must release the bitwise-identical model"
    );
    println!("out-of-core run released the bitwise-identical model ✓");
}
