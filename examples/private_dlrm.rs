//! Full private-training walkthrough on a scaled-down MLPerf DLRM.
//!
//! Trains the paper's default model architecture (26 Criteo tables,
//! bottom MLP 13-512-256-128, top MLP 479-…-1, dot interaction) at
//! 20,000× reduced table size, comparing:
//!
//! * non-private SGD,
//! * eager DP-SGD(F) (the paper's strongest baseline),
//! * LazyDP (this paper's contribution),
//!
//! on loss, privacy budget, and measured kernel work — the functional
//! miniature of the paper's Fig. 10.
//!
//! Run with: `cargo run --release --example private_dlrm`

use lazydp::data::{FixedBatchLoader, LookaheadLoader, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd, Optimizer, SgdOptimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::privacy::RdpAccountant;
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use lazydp_bench::timer::Stopwatch;

const BATCH: usize = 64;
const STEPS: usize = 30;

fn fresh_model() -> Dlrm {
    let mut rng = Xoshiro256PlusPlus::seed_from(2024);
    // 20,000× scale-down of the 96 GB model ⇒ ≈ 4.8 MB of embeddings.
    Dlrm::new(DlrmConfig::mlperf(20_000), &mut rng)
}

fn dataset() -> SyntheticDataset {
    let cfg = DlrmConfig::mlperf(20_000);
    let mut sc = SyntheticConfig::small(cfg.num_tables(), 1, BATCH * (STEPS + 2));
    sc.table_rows = cfg.table_rows.clone();
    sc.distributions = cfg
        .table_rows
        .iter()
        .map(|&r| lazydp::data::AccessDistribution::uniform(r))
        .collect();
    SyntheticDataset::new(sc)
}

fn main() {
    let ds = dataset();
    let eval = ds.batch_of(&(0..256).collect::<Vec<_>>());
    let dp = DpConfig::paper_default(BATCH);

    // --- non-private SGD ------------------------------------------------
    let mut sgd_model = fresh_model();
    let mut sgd = SgdOptimizer::new(0.05);
    let before = sgd_model.loss(&eval);
    let t0 = Stopwatch::start();
    let mut loader = LookaheadLoader::new(FixedBatchLoader::new(ds.clone(), BATCH));
    for _ in 0..STEPS {
        let (cur, _) = loader.advance();
        let cur = cur.clone();
        sgd.step(&mut sgd_model, &cur, None);
        let _ = loader.finish_iteration();
    }
    let sgd_time = t0.elapsed();
    println!(
        "SGD:        loss {before:.4} -> {:.4} | {:>10} noise samples | {:?}",
        sgd_model.loss(&eval),
        sgd.counters().gaussian_samples,
        sgd_time
    );

    // --- eager DP-SGD(F) --------------------------------------------------
    let mut f_model = fresh_model();
    let mut dpf = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(3));
    let t0 = Stopwatch::start();
    let mut loader = LookaheadLoader::new(FixedBatchLoader::new(ds.clone(), BATCH));
    for _ in 0..STEPS {
        let (cur, _) = loader.advance();
        let cur = cur.clone();
        dpf.step(&mut f_model, &cur, None);
        let _ = loader.finish_iteration();
    }
    let f_time = t0.elapsed();
    println!(
        "DP-SGD(F):  loss {before:.4} -> {:.4} | {:>10} noise samples | {:?}",
        f_model.loss(&eval),
        dpf.counters().gaussian_samples,
        f_time
    );

    // --- LazyDP -----------------------------------------------------------
    let mut l_model = fresh_model();
    let cfg = LazyDpConfig::new(dp, true);
    let mut lazy = LazyDpOptimizer::new(cfg, &l_model, CounterNoise::new(3));
    let t0 = Stopwatch::start();
    let mut loader = LookaheadLoader::new(FixedBatchLoader::new(ds, BATCH));
    for _ in 0..STEPS {
        let (cur, next) = loader.advance();
        let (cur, next) = (cur.clone(), next.clone());
        lazy.step(&mut l_model, &cur, Some(&next));
        let _ = loader.finish_iteration();
    }
    lazy.finalize_model(&mut l_model);
    let l_time = t0.elapsed();
    println!(
        "LazyDP:     loss {before:.4} -> {:.4} | {:>10} noise samples | {:?}",
        l_model.loss(&eval),
        lazy.counters().gaussian_samples,
        l_time
    );

    // --- privacy accounting (identical for DP-SGD(F) and LazyDP) ----------
    let mut acc = RdpAccountant::new();
    let q = BATCH as f64 / (BATCH * (STEPS + 2)) as f64;
    acc.compose(dp.noise_multiplier, q, STEPS as u64);
    let (eps, order) = acc.epsilon(1e-6);
    println!("\nprivacy spent: ε = {eps:.3} at δ = 1e-6 (best order α = {order})");
    println!(
        "noise-sampling reduction (LazyDP vs eager): {:.0}×",
        dpf.counters().gaussian_samples as f64 / lazy.counters().gaussian_samples as f64
    );
    println!("(at the paper's 96 GB scale the same ratio reaches ~1000× — run `figures e13`)");
}
