//! Quickstart: privately train a small DLRM with LazyDP in ~30 lines.
//!
//! Mirrors the paper's Fig. 9(a) user interface: build a model, wrap it
//! with `make_private`, train, read off the (ε, δ) guarantee, and
//! `finish()` to flush pending noise before releasing the model.
//!
//! Run with: `cargo run --release --example quickstart`

use lazydp::data::{PoissonLoader, SyntheticConfig, SyntheticDataset};
use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

fn main() {
    // A small DLRM: 4 embedding tables × 1k rows, 16-dim embeddings.
    let mut rng = Xoshiro256PlusPlus::seed_from(7);
    let model = Dlrm::new(DlrmConfig::tiny(4, 1000, 16), &mut rng);

    // Synthetic Criteo-style dataset with a planted ground truth.
    let dataset = SyntheticDataset::new(SyntheticConfig::small(4, 1000, 4096));
    let eval = dataset.batch_of(&(0..512).collect::<Vec<_>>());
    let loader = PoissonLoader::new(dataset, 128, 42);
    let q = loader.sampling_rate();

    // LazyDP with the paper's hyper-parameters (σ=1.1, C=1.0, η=0.05).
    let cfg = LazyDpConfig::paper_default(128);
    let mut trainer = PrivateTrainer::make_private(model, cfg, loader, CounterNoise::new(1), q);

    let before = trainer.model().loss(&eval);
    for epoch in 0..4 {
        trainer.train_steps(32);
        let (eps, _) = trainer.epsilon(1e-6);
        println!(
            "epoch {epoch}: loss {:.4} | ε = {eps:.3} (δ = 1e-6)",
            trainer.model().loss(&eval)
        );
    }
    let after = trainer.model().loss(&eval);
    let counters = trainer.counters();

    // Flush all deferred noise before the model leaves the trainer
    // (threat model §3: the adversary sees the *final* model).
    let released = trainer.finish();

    println!("\nloss: {before:.4} -> {after:.4}");
    println!(
        "noise samples drawn: {} (an eager DP-SGD would have drawn {} — {}x more)",
        counters.gaussian_samples,
        // every table element + MLP params, every iteration:
        128 * (released.params()),
        128 * released.params() / counters.gaussian_samples.max(1),
    );

    // Under `LAZYDP_OBS=trace` the step-phase spans recorded above are
    // dumped in chrome://tracing format; in the default counters mode
    // (or off) this writes nothing and reports `false`.
    let trace_path = std::path::Path::new("quickstart_trace.json");
    match lazydp::obs::export::write_chrome_trace_if_tracing(trace_path) {
        Ok(true) => println!("phase trace written to quickstart_trace.json"),
        Ok(false) => {}
        Err(e) => eprintln!("trace export failed: {e}"),
    }
}
