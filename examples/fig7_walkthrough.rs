//! Figure 7, executed: the gradient/noise timeline of a single
//! embedding row under SGD, eager DP-SGD, and LazyDP.
//!
//! The paper's running example (Fig. 7) follows one embedding vector
//! through 8 iterations where it is gathered only at iterations 4 and 7:
//!
//! * SGD touches it exactly twice (G4, G7);
//! * DP-SGD adds noise every iteration (N1…N8) plus the gradients;
//! * LazyDP defers: N1+N2+N3 land at iteration 3 (just before the
//!   access), N4+N5+N6 at iteration 6, the rest at finalize — and the
//!   value *observed at each access* matches eager DP-SGD exactly.
//!
//! This example runs all three optimizers with a counter-based noise
//! source (same noise values regardless of when they are drawn) and
//! prints the row's value trace, asserting the equalities the paper
//! claims.
//!
//! Run with: `cargo run --release --example fig7_walkthrough`

use lazydp::data::{MiniBatch, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{ClipStyle, DpConfig, EagerDpSgd, Optimizer, SgdOptimizer};
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

/// The row under observation ("E" in Fig. 7).
const ROW: u64 = 0;
/// Iterations (1-based) at which the row is gathered, per Fig. 7.
const ACCESS_ITERS: [u64; 2] = [4, 7];
const TOTAL_ITERS: u64 = 8;

fn model() -> Dlrm {
    let mut rng = Xoshiro256PlusPlus::seed_from(99);
    Dlrm::new(DlrmConfig::tiny(1, 16, 4), &mut rng)
}

/// Builds the batch for iteration `it`: sample 0 gathers our row on
/// access iterations, a decoy row otherwise.
fn batch_for(ds: &SyntheticDataset, it: u64) -> MiniBatch {
    let mut b = ds.batch_of(&[(it as usize - 1) % ds.len()]);
    let row = if ACCESS_ITERS.contains(&it) {
        ROW
    } else {
        8 + (it % 8)
    };
    b.sparse[0] = lazydp::embedding::bag::BagIndices::from_samples(&[vec![row]]);
    b
}

fn row_of(m: &Dlrm) -> Vec<f32> {
    m.tables[0].row(ROW as usize).to_vec()
}

fn fmt(v: &[f32]) -> String {
    format!("[{:+.5}, {:+.5}, …]", v[0], v[1])
}

fn main() {
    let ds = SyntheticDataset::new(SyntheticConfig::small(1, 16, 64));
    let dp = DpConfig::new(1.0, 1.0, 0.1, 1);

    let mut sgd_m = model();
    let mut sgd = SgdOptimizer::new(0.1);
    let mut eager_m = model();
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(7));
    let mut lazy_m = model();
    let mut lazy = LazyDpOptimizer::new(
        LazyDpConfig::new(dp, false), // w/o ANS: exact per-iteration noise
        &lazy_m,
        CounterNoise::new(7), // same noise stream as eager
    );

    println!("iter | access | SGD row            | DP-SGD row          | LazyDP row          | observed equal?");
    println!("-----|--------|--------------------|---------------------|---------------------|----------------");
    for it in 1..=TOTAL_ITERS {
        let batch = batch_for(&ds, it);
        let next = batch_for(&ds, it + 1);
        let accessed = ACCESS_ITERS.contains(&it);

        // What each algorithm *observes* at this iteration's forward
        // pass (before its model update):
        let (e_obs, l_obs) = (row_of(&eager_m), row_of(&lazy_m));
        let equal_at_access = e_obs
            .iter()
            .zip(l_obs.iter())
            .all(|(a, b)| (a - b).abs() < 1e-4);

        sgd.step(&mut sgd_m, &batch, None);
        eager.step(&mut eager_m, &batch, None);
        lazy.step(&mut lazy_m, &batch, Some(&next));

        println!(
            "{it:>4} | {:^6} | {} | {} | {} | {}",
            if accessed { "yes" } else { "-" },
            fmt(&row_of(&sgd_m)),
            fmt(&row_of(&eager_m)),
            fmt(&row_of(&lazy_m)),
            if accessed {
                assert!(
                    equal_at_access,
                    "Fig. 7 equality violated at iteration {it}"
                );
                "YES (Fig. 7 claim)"
            } else {
                "(not read)"
            },
        );
    }

    // Final release: LazyDP flushes pending noise and must match eager.
    lazy.finalize_model(&mut lazy_m);
    let (e, l) = (row_of(&eager_m), row_of(&lazy_m));
    let max_diff = lazydp::tensor::vecops::max_abs_diff(&e, &l);
    println!(
        "\nafter finalize: DP-SGD row {} vs LazyDP row {}",
        fmt(&e),
        fmt(&l)
    );
    println!("max |diff| = {max_diff:.2e}  (threat-model §3 equality)");
    assert!(max_diff < 1e-4, "final models must coincide");
    println!("\n✔ LazyDP observed-value and final-model equivalence verified, as in Fig. 7.");
}
