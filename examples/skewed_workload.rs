//! Skewed-trace study at functional scale — the mechanics behind
//! Fig. 13(d) and the EANA privacy argument of §7.4.
//!
//! Builds the paper's four trace-skew presets (90% of accesses on
//! 100% / 36% / 10% / 0.6% of rows), verifies the generators hit their
//! calibration targets, and measures how skew changes LazyDP's actual
//! noise-sampling work — plus how many rows EANA would *never* noise
//! (its information leak).
//!
//! Run with: `cargo run --release --example skewed_workload`

use lazydp::data::{AccessDistribution, SkewLevel, SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::embedding::AccessTracker;
use lazydp::lazy::{LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const ROWS: u64 = 20_000;
const BATCH: usize = 256;
const STEPS: usize = 20;

fn main() {
    println!(
        "{:<8} {:>14} {:>16} {:>18} {:>20}",
        "skew", "rows w/ 90%", "unique/batch", "noise samples", "rows EANA never noises"
    );
    for skew in SkewLevel::all() {
        let dist = AccessDistribution::for_skew(ROWS, skew);

        // --- calibration check: where do 90% of accesses land? ----------
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut tracker = AccessTracker::new(ROWS as usize);
        tracker.record_all(&dist.sample_many(&mut rng, 200_000));
        let frac90 = tracker.fraction_for_mass(0.9);

        // --- functional LazyDP run on this trace -------------------------
        let cfg = SyntheticConfig::small(1, ROWS, BATCH * (STEPS + 1))
            .with_distributions(vec![dist.clone()]);
        let ds = SyntheticDataset::new(cfg);
        let mut model = {
            let mut rng = Xoshiro256PlusPlus::seed_from(17);
            Dlrm::new(DlrmConfig::tiny(1, ROWS, 8), &mut rng)
        };
        let mut opt = LazyDpOptimizer::new(
            LazyDpConfig::new(DpConfig::paper_default(BATCH), true),
            &model,
            CounterNoise::new(3),
        );
        let batches: Vec<_> = (0..=STEPS)
            .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
            .collect();
        let mut touched = AccessTracker::new(ROWS as usize);
        for i in 0..STEPS {
            touched.record_all(batches[i].table_indices(0));
            opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
        }
        let unique_per_batch = touched.total() as f64 / STEPS as f64
            * (touched.touched_rows() as f64 / touched.total() as f64);
        let eana_dark_rows = ROWS as usize - touched.touched_rows();

        println!(
            "{:<8} {:>13.1}% {:>16.0} {:>18} {:>20}",
            skew.label(),
            100.0 * frac90,
            unique_per_batch,
            opt.counters().gaussian_samples,
            eana_dark_rows,
        );
    }
    println!(
        "\nHigher skew ⇒ fewer unique rows per batch ⇒ less LazyDP noise work \
         (Fig. 13(d): 2.2 → 1.9×SGD)."
    );
    println!(
        "The last column is EANA's leak: rows that would NEVER receive noise, revealing \
         that no user datum contains those features (§2.5). LazyDP noises every row by \
         finalize time."
    );
}
