//! Functional LazyDP at the paper's **true 96 GB scale** — on a laptop.
//!
//! Eager DP-SGD's dense noisy update is the reason the paper needed a
//! 256 GB server: every iteration touches all 187,727,727 embedding
//! rows (24 billion Gaussian draws + a 96 GB stream). LazyDP touches
//! `O(batch)` rows — so with lazily-materialized virtual tables the
//! *real algorithm* (real Box–Muller draws, real ANS, the real 751 MB
//! HistoryTable) runs here at full logical scale.
//!
//! This example trains the embedding side of the full-size MLPerf DLRM
//! (26 Criteo tables, 187.7 M rows, dim 128) for 20 LazyDP iterations at
//! batch 2048, then reports what eager DP-SGD would have had to do.
//!
//! Run with: `cargo run --release --example terabyte_scale`

use lazydp::data::AccessDistribution;
use lazydp::dpsgd::DpConfig;
use lazydp::embedding::{SparseGrad, VirtualTable};
use lazydp::lazy::TerabyteLazyEmbedding;
use lazydp::model::config::CRITEO_TB_CAPPED_ROWS;
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;
use lazydp_bench::timer::Stopwatch;

const DIM: usize = 128;
const BATCH: usize = 2048;
const STEPS: usize = 20;

fn main() {
    let dp = DpConfig::paper_default(BATCH);
    let mut rng = Xoshiro256PlusPlus::seed_from(1);

    println!("building 26 virtual Criteo tables (logical 96 GB) + HistoryTables…");
    let t0 = Stopwatch::start();
    let mut tables: Vec<TerabyteLazyEmbedding<CounterNoise>> = CRITEO_TB_CAPPED_ROWS
        .iter()
        .enumerate()
        .map(|(t, &rows)| {
            TerabyteLazyEmbedding::new(
                VirtualTable::new(rows, DIM, 0xC0FFEE + t as u64),
                dp,
                true, // ANS on
                CounterNoise::new(7),
                t as u32,
            )
        })
        .collect();
    let dists: Vec<AccessDistribution> = CRITEO_TB_CAPPED_ROWS
        .iter()
        .map(|&r| AccessDistribution::uniform(r))
        .collect();
    let history_gb: u64 = tables.iter().map(|t| t.history_bytes()).sum();
    println!(
        "  ready in {:?} — HistoryTables: {:.0} MB (paper §7.2: 751 MB)\n",
        t0.elapsed(),
        history_gb as f64 / 1e6
    );

    // Pre-draw the access trace (batch 2048, pooling 1 per table).
    let draw_batch = |rng: &mut Xoshiro256PlusPlus| -> Vec<Vec<u64>> {
        dists.iter().map(|d| d.sample_many(rng, BATCH)).collect()
    };
    let mut cur = draw_batch(&mut rng);
    let t0 = Stopwatch::start();
    for _ in 0..STEPS {
        let next = draw_batch(&mut rng);
        for (t, table) in tables.iter_mut().enumerate() {
            // Synthetic clipped+scaled gradient for the current rows
            // (the MLP side of the model is not the bottleneck and is
            // omitted here; `private_dlrm` covers full training).
            let mut grad = SparseGrad::new(DIM);
            for &r in &cur[t] {
                let e = grad.push_zeros(r);
                e.fill(1e-4);
            }
            let _ = grad.coalesce();
            table.step(&grad, &next[t]);
        }
        cur = next;
    }
    let train_time = t0.elapsed();

    let drawn: u64 = tables.iter().map(|t| t.counters().gaussian_samples).sum();
    let eager: u128 = tables.iter().map(|t| t.eager_equivalent_samples()).sum();
    let resident: u64 = tables.iter().map(|t| t.table().physical_bytes()).sum();
    let touched: usize = tables.iter().map(|t| t.table().materialized_rows()).sum();
    let logical: u64 = tables.iter().map(|t| t.table().logical_bytes()).sum();

    println!("{STEPS} LazyDP iterations @ batch {BATCH} in {train_time:?}");
    println!("  per-iteration: {:?}", train_time / STEPS as u32);
    println!("\nwork done (real, counted):");
    println!("  Gaussian draws:      {drawn:>16}");
    println!(
        "  rows materialized:   {touched:>16}  ({:.1} MB of {:.1} GB logical)",
        resident as f64 / 1e6,
        logical as f64 / 1e9
    );
    println!("\nwhat eager DP-SGD would have needed for the same {STEPS} iterations:");
    println!(
        "  Gaussian draws:      {eager:>16}  ({}× more)",
        eager / u128::from(drawn.max(1))
    );
    // Price the eager draws with this machine's own measured Box–Muller
    // rate (~15 ns/sample, see EXPERIMENTS.md §3).
    let eager_secs = eager as f64 * 15e-9;
    println!(
        "  sampling time alone: {:>13.0} s  (at this host's measured 15 ns/draw)",
        eager_secs
    );
    println!("  plus a 96 GB dense noisy-gradient stream per iteration — unrunnable here.");

    // Row-level release: settle pending noise for a served row.
    let before = tables[0].table().read_row(12345);
    let after = tables[0].flush_row(12345);
    println!("\nrow-level release (flush_row): row 12345 of table 0");
    println!(
        "  pending-noise settled: value moved by {:.2e}",
        lazydp::tensor::vecops::max_abs_diff(&before, &after)
    );
    println!("\n✔ the paper's thesis, executed: private training cost tracks the batch,");
    println!("  not the table — 96 GB of logical model, megabytes of physical state.");
}
