//! Privacy-budget exploration with the RDP accountant.
//!
//! LazyDP's promise is *performance without weakening the guarantee*:
//! the (ε, δ) of a training run depends only on (σ, q, T) — quantities
//! LazyDP leaves untouched. This example sweeps them the way a
//! practitioner would when planning a private DLRM training run at the
//! paper's scale (Criteo-sized dataset, batch 2048, σ = 1.1).
//!
//! Run with: `cargo run --release --example privacy_budget`

use lazydp::privacy::{find_noise_multiplier, RdpAccountant};

fn main() {
    let dataset_size = 4_000_000_000f64 / 1000.0; // 4M-sample synthetic stand-in
    let batch = 2048.0;
    let q = batch / dataset_size;
    let delta = 1.0 / dataset_size / 10.0;

    println!(
        "dataset = {dataset_size:.0} samples, batch = {batch:.0}, q = {q:.2e}, δ = {delta:.1e}\n"
    );

    println!("ε as training progresses (σ = 1.1, the paper's Fig. 9 default):");
    let mut acc = RdpAccountant::new();
    for &steps in &[1_000u64, 5_000, 20_000, 100_000] {
        let done = acc.steps();
        acc.compose(1.1, q, steps - done);
        let (eps, order) = acc.epsilon(delta);
        println!("  T = {steps:>7}: ε = {eps:7.3}  (best Rényi order α = {order})");
    }

    println!("\nε vs noise multiplier (T = 20,000):");
    for &sigma in &[0.6, 0.8, 1.0, 1.1, 1.5, 2.0, 4.0] {
        let mut acc = RdpAccountant::new();
        acc.compose(sigma, q, 20_000);
        let (eps, _) = acc.epsilon(delta);
        println!("  σ = {sigma:<4}: ε = {eps:8.3}");
    }

    println!("\ninverse planning: smallest σ meeting a target ε (T = 20,000):");
    for &target in &[0.5, 1.0, 2.0, 8.0] {
        match find_noise_multiplier(target, delta, q, 20_000, 1e-4) {
            Some(sigma) => println!("  ε ≤ {target:<4}: σ = {sigma:.4}"),
            None => println!("  ε ≤ {target:<4}: unreachable"),
        }
    }

    println!(
        "\nLazyDP note: lazy noise timing and aggregated sampling leave every number \
         above unchanged — the accountant sees the same (σ, q, T)."
    );
}
