//! DP-AdaFEST walkthrough — sparsity-preserving private training as
//! the repo's fourth algorithm.
//!
//! Three things are demonstrated on one skewed workload:
//!
//! 1. **Sparse noise traffic.** DP-AdaFEST privately selects the
//!    embedding partitions a step actually touched (noisy partition
//!    counts vs a threshold) and adds gradient noise *only there* —
//!    unselected partitions are dropped entirely, so noise work tracks
//!    touched partitions instead of table rows.
//! 2. **Honest accounting.** The selection itself is a release: the
//!    [`PrivateTrainer`] charges the composed `SelectThenNoise`
//!    mechanism each step, so ε reflects both queries.
//! 3. **The differential anchor.** With the threshold at −∞ every
//!    partition is always selected and DP-AdaFEST degenerates —
//!    bit-for-bit — into eager DP-SGD(F). That equivalence is what the
//!    differential-testing harness pins; here it is shown live.
//!
//! Run with: `cargo run --release --example adafest`

use lazydp::data::{
    AccessDistribution, FixedBatchLoader, SkewLevel, SyntheticConfig, SyntheticDataset,
};
use lazydp::dpsgd::{AdaFestConfig, ClipStyle, DpConfig, EagerDpSgd, Optimizer};
use lazydp::lazy::PrivateTrainer;
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const TABLES: usize = 3;
const ROWS: u64 = 4096;
const DIM: usize = 16;
const BATCH: usize = 64;
const STEPS: usize = 20;
const DELTA: f64 = 1e-6;

fn fresh_model() -> Dlrm {
    let mut rng = Xoshiro256PlusPlus::seed_from(404);
    Dlrm::new(DlrmConfig::tiny(TABLES, ROWS, DIM), &mut rng)
}

fn dataset() -> SyntheticDataset {
    let dists = (0..TABLES)
        .map(|_| AccessDistribution::for_skew(ROWS, SkewLevel::High))
        .collect();
    let cfg = SyntheticConfig::small(TABLES, ROWS, BATCH * (STEPS + 2)).with_distributions(dists);
    SyntheticDataset::new(cfg)
}

fn main() {
    let ds = dataset();
    let dp = DpConfig::paper_default(BATCH);
    let q = BATCH as f64 / ds.len() as f64;
    let total_rows: u64 = ROWS * TABLES as u64;

    // --- 1+2: sparse noise traffic under honest accounting --------------
    // Partition counts on this mod-S sharding are small, so the
    // selection needs a sharp σ_select; the trainer charges for it.
    // σ_select is relative to the count query's sensitivity — Δ = √3
    // for three one-hot tables — so the realized per-count noise std is
    // 0.15·√3 ≈ 0.26.
    let cfg = AdaFestConfig::new(dp, 0.15, 0.5, 16);
    let mut trainer = PrivateTrainer::make_private_adafest(
        fresh_model(),
        cfg,
        FixedBatchLoader::new(ds.clone(), BATCH),
        CounterNoise::new(7),
        q,
    );
    trainer.train_steps(STEPS);
    let c = trainer.counters();
    let (eps, order) = trainer.epsilon(DELTA);
    println!("DP-AdaFEST, {STEPS} steps on a Zipf-High trace:");
    println!(
        "  rows noised {:>8} of {} table-rows × {STEPS} steps ({:.1}% of dense)",
        c.table_rows_written,
        total_rows,
        100.0 * c.table_rows_written as f64 / (total_rows * STEPS as u64) as f64,
    );
    println!("  ε = {eps:.2} at δ = {DELTA:.0e} (RDP order {order}, SelectThenNoise)");

    // --- 3: the select-all differential anchor --------------------------
    let mut eager_model = fresh_model();
    let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(7));
    let mut ada_model = fresh_model();
    let all_cfg = AdaFestConfig::paper_default(BATCH).select_all();
    let mut ada = lazydp::dpsgd::AdaFestOptimizer::new(all_cfg, CounterNoise::new(7));
    for i in 0..STEPS {
        let b = ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>());
        eager.step(&mut eager_model, &b, None);
        ada.step(&mut ada_model, &b, None);
    }
    let mut worst = 0.0f32;
    for t in 0..TABLES {
        worst = worst.max(eager_model.tables[t].max_abs_diff(&ada_model.tables[t]));
    }
    println!("select-all AdaFEST vs eager DP-SGD(F): max |Δ| = {worst:e} (must be 0)");
    assert_eq!(worst, 0.0, "select-all differential must be bitwise");
}
