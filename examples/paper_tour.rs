//! Guided tour of the paper's headline results via the calibrated
//! performance model — prints the three numbers the abstract leads
//! with, then points at the full harness.
//!
//! Run with: `cargo run --release --example paper_tour`

use lazydp::sysmodel::{estimate, Algorithm, SystemSpec, Workload};

fn main() {
    let spec = SystemSpec::paper_default();
    let wl = Workload::mlperf_default(2048);

    let sgd = estimate(Algorithm::Sgd, &wl, &spec).expect("SGD fits");
    let dpf = estimate(Algorithm::DpSgdF, &wl, &spec).expect("DP-SGD(F) fits");
    let lazy = estimate(Algorithm::LazyDp { ans: true }, &wl, &spec).expect("LazyDP fits");
    let lazy_wo = estimate(Algorithm::LazyDp { ans: false }, &wl, &spec).expect("fits");

    println!("== LazyDP (ASPLOS 2024) — headline numbers, re-derived ==\n");
    println!("Workload: MLPerf DLRM, 96 GB embeddings, batch 2048, uniform trace");
    println!("System:   Xeon E5-2698v4 (68 GB/s DDR4) + V100, paper-calibrated roofline\n");

    let t = |e: &lazydp::sysmodel::IterationEstimate| e.breakdown.total();
    println!("per-iteration time:");
    println!("  SGD              {:>10.1} ms", t(&sgd) * 1e3);
    println!(
        "  LazyDP           {:>10.1} ms   ({:.2}× SGD — paper: 1.96–2.42×)",
        t(&lazy) * 1e3,
        t(&lazy) / t(&sgd)
    );
    println!(
        "  LazyDP w/o ANS   {:>10.1} s    ({:.0}× SGD — paper: ≈151×)",
        t(&lazy_wo),
        t(&lazy_wo) / t(&sgd)
    );
    println!(
        "  DP-SGD(F)        {:>10.1} s    ({:.0}× SGD — paper: ≈259×)",
        t(&dpf),
        t(&dpf) / t(&sgd)
    );

    println!(
        "\nLazyDP speedup over DP-SGD(F): {:.0}×   (paper: 85–155×, avg 119×)",
        t(&dpf) / t(&lazy)
    );
    println!(
        "energy saving vs DP-SGD(F):    {:.0}×   (paper: avg 155×)",
        dpf.energy_j / lazy.energy_j
    );

    println!("\nwhere DP-SGD(F)'s time goes (the §4 bottlenecks):");
    println!(
        "  noise sampling      {:>8.2} s  (compute-bound Box–Muller, N=101 AVX ops)",
        dpf.breakdown.noise_sampling
    );
    println!(
        "  noisy grad update   {:>8.2} s  (memory-bound full-table stream)",
        dpf.breakdown.noisy_grad_update
    );
    println!(
        "  noisy grad gen      {:>8.2} s",
        dpf.breakdown.noisy_grad_gen
    );
    println!(
        "  everything else     {:>8.3} s",
        t(&dpf) - dpf.breakdown.model_update()
    );

    println!("\nand where LazyDP's goes:");
    for (label, v) in lazy.breakdown.labeled() {
        if v > 0.0 {
            println!("  {label:<18} {:>8.2} ms", v * 1e3);
        }
    }

    println!("\nFull figure-by-figure reproduction:");
    println!("  cargo run --release -p lazydp-bench --bin figures -- all");
}
