//! Checkpoint/resume + privacy-budget enforcement — the ops story of a
//! long-running private training job.
//!
//! Two LazyDP-specific correctness points are demonstrated:
//!
//! 1. A LazyDP checkpoint must carry the **HistoryTable**: mid-training,
//!    the in-memory embedding tables are missing their *pending* noise,
//!    so weights alone do not describe the training state. The resumed
//!    run below reproduces the uninterrupted run bit-for-bit.
//! 2. The privacy budget is a property of (σ, q, steps) — the
//!    [`PrivacyEngine`] refuses the composition that would overshoot,
//!    *before* it happens, and tells you how many steps you can still
//!    afford.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use lazydp::data::{SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::lazy::{Checkpoint, LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::privacy::{PrivacyBudget, PrivacyEngine};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const BATCH: usize = 32;
const TOTAL_STEPS: usize = 12;
const INTERRUPT_AT: usize = 5;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from(88);
    let model0 = Dlrm::new(DlrmConfig::tiny(3, 128, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 128, BATCH * (TOTAL_STEPS + 1)));
    let batches: Vec<_> = (0..=TOTAL_STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    let cfg = LazyDpConfig::new(DpConfig::new(1.1, 1.0, 0.05, BATCH), false);
    let q = BATCH as f64 / ds.len() as f64;

    // --- reference: uninterrupted run -----------------------------------
    let mut m_ref = model0.clone();
    let mut o_ref = LazyDpOptimizer::new(cfg.clone(), &m_ref, CounterNoise::new(31));
    for i in 0..TOTAL_STEPS {
        o_ref.step(&mut m_ref, &batches[i], Some(&batches[i + 1]));
    }
    o_ref.finalize_model(&mut m_ref);

    // --- interrupted run: train, checkpoint to bytes, resume ------------
    let mut engine = PrivacyEngine::new(PrivacyBudget::new(4.0, 1e-6));
    let mut m = model0;
    let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(31));
    for i in 0..INTERRUPT_AT {
        engine
            .try_compose(cfg.dp.noise_multiplier, q, 1)
            .expect("within budget");
        o.step(&mut m, &batches[i], Some(&batches[i + 1]));
    }
    let mut bytes = Vec::new();
    Checkpoint::capture(&m, &o)
        .save(&mut bytes)
        .expect("serialize");
    println!(
        "checkpoint at step {INTERRUPT_AT}: {} KB (weights + HistoryTables + iteration)",
        bytes.len() / 1000
    );
    println!(
        "privacy so far: ε = {:.3} of budget {:.1}  (headroom {:.3})",
        engine.spent(),
        engine.budget().epsilon,
        engine.remaining()
    );

    // …process restarts…
    let loaded = Checkpoint::load(&mut bytes.as_slice()).expect("deserialize");
    let (mut m2, mut o2) = loaded.restore(cfg.clone(), CounterNoise::new(31));
    println!("resumed at iteration {}", o2.iteration());
    for i in INTERRUPT_AT..TOTAL_STEPS {
        engine
            .try_compose(cfg.dp.noise_multiplier, q, 1)
            .expect("within budget");
        o2.step(&mut m2, &batches[i], Some(&batches[i + 1]));
    }
    o2.finalize_model(&mut m2);

    // --- equality + budget report ----------------------------------------
    let mut max_diff = 0.0f32;
    for (a, b) in m_ref.tables.iter().zip(m2.tables.iter()) {
        max_diff = max_diff.max(a.max_abs_diff(b));
    }
    println!("\nresumed-vs-uninterrupted max |Δweight| = {max_diff:.2e}");
    assert!(max_diff < 1e-6, "resume must be exact");

    let afford = engine.affordable_steps(cfg.dp.noise_multiplier, q);
    println!(
        "budget after {TOTAL_STEPS} steps: ε = {:.3}; can still afford {afford} more steps \
         at this (σ, q) before ε = {:.1}",
        engine.spent(),
        engine.budget().epsilon
    );
    println!("\n✔ exact resume through a byte-serialized checkpoint, budget enforced.");
}
