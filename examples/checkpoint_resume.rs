//! Checkpoint/resume + privacy-budget enforcement — the ops story of a
//! long-running private training job.
//!
//! Two LazyDP-specific correctness points are demonstrated:
//!
//! 1. A LazyDP checkpoint must carry the **HistoryTable**: mid-training,
//!    the in-memory embedding tables are missing their *pending* noise,
//!    so weights alone do not describe the training state. The resumed
//!    run below reproduces the uninterrupted run bit-for-bit.
//! 2. The privacy budget is a property of (σ, q, steps) — the
//!    [`PrivacyEngine`] refuses the composition that would overshoot,
//!    *before* it happens, and tells you how many steps you can still
//!    afford.
//!
//! The restart below goes through the crash-consistent
//! [`CheckpointStore`] (temp file + `sync_all` + atomic rename + a
//! versioned last-good manifest): `resume_latest` verifies length and
//! checksum against the manifest and falls back to the previous entry
//! if the newest checkpoint is torn — see ARCHITECTURE.md "Fault model
//! & recovery contract" and `tests/crash_recovery.rs` for the
//! kill-and-resume proof.
//!
//! Run with: `cargo run --release --example checkpoint_resume`

use lazydp::data::{SyntheticConfig, SyntheticDataset};
use lazydp::dpsgd::{DpConfig, Optimizer};
use lazydp::lazy::{Checkpoint, CheckpointStore, LazyDpConfig, LazyDpOptimizer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::privacy::{PrivacyBudget, PrivacyEngine};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

const BATCH: usize = 32;
const TOTAL_STEPS: usize = 12;
const INTERRUPT_AT: usize = 5;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from(88);
    let model0 = Dlrm::new(DlrmConfig::tiny(3, 128, 8), &mut rng);
    let ds = SyntheticDataset::new(SyntheticConfig::small(3, 128, BATCH * (TOTAL_STEPS + 1)));
    let batches: Vec<_> = (0..=TOTAL_STEPS)
        .map(|i| ds.batch_of(&(i * BATCH..(i + 1) * BATCH).collect::<Vec<_>>()))
        .collect();
    let cfg = LazyDpConfig::new(DpConfig::new(1.1, 1.0, 0.05, BATCH), false);
    let q = BATCH as f64 / ds.len() as f64;

    // --- reference: uninterrupted run -----------------------------------
    let mut m_ref = model0.clone();
    let mut o_ref = LazyDpOptimizer::new(cfg.clone(), &m_ref, CounterNoise::new(31));
    for i in 0..TOTAL_STEPS {
        o_ref.step(&mut m_ref, &batches[i], Some(&batches[i + 1]));
    }
    o_ref.finalize_model(&mut m_ref);

    // --- interrupted run: train, checkpoint every step, resume ----------
    let ckpt_dir = std::env::temp_dir().join(format!("lazydp-example-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut store = CheckpointStore::open(&ckpt_dir).expect("open checkpoint dir");
    let mut engine = PrivacyEngine::new(PrivacyBudget::new(4.0, 1e-6));
    let mut m = model0;
    let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(31));
    let mut last_len = 0u64;
    for i in 0..INTERRUPT_AT {
        engine
            .try_compose(cfg.dp.noise_multiplier, q, 1)
            .expect("within budget");
        o.step(&mut m, &batches[i], Some(&batches[i + 1]));
        // Crash-consistent publish: tmp file -> sync_all -> atomic
        // rename -> manifest append. A crash at any instant leaves the
        // previous checkpoint intact and resumable.
        let path = store.save(&Checkpoint::capture(&m, &o)).expect("publish");
        last_len = std::fs::metadata(&path).map(|md| md.len()).unwrap_or(0);
    }
    println!(
        "published {} checkpoints ({} KB each: weights + HistoryTables + iteration)",
        store.iterations().len(),
        last_len / 1000
    );
    println!(
        "privacy so far: ε = {:.3} of budget {:.1}  (headroom {:.3})",
        engine.spent(),
        engine.budget().epsilon,
        engine.remaining()
    );

    // …process dies and restarts…
    let store = CheckpointStore::open(&ckpt_dir).expect("reopen checkpoint dir");
    store.sweep_stale().expect("collect crash orphans");
    let loaded = store
        .resume_latest() // checksum-verified; falls back past torn files
        .expect("manifest walk")
        .expect("a last-good checkpoint exists");
    let (mut m2, mut o2) = loaded.restore(cfg.clone(), CounterNoise::new(31));
    println!("resumed at iteration {}", o2.iteration());
    for i in INTERRUPT_AT..TOTAL_STEPS {
        engine
            .try_compose(cfg.dp.noise_multiplier, q, 1)
            .expect("within budget");
        o2.step(&mut m2, &batches[i], Some(&batches[i + 1]));
    }
    o2.finalize_model(&mut m2);

    // --- equality + budget report ----------------------------------------
    let mut max_diff = 0.0f32;
    for (a, b) in m_ref.tables.iter().zip(m2.tables.iter()) {
        max_diff = max_diff.max(a.max_abs_diff(b));
    }
    println!("\nresumed-vs-uninterrupted max |Δweight| = {max_diff:.2e}");
    assert!(max_diff < 1e-6, "resume must be exact");

    let afford = engine.affordable_steps(cfg.dp.noise_multiplier, q);
    println!(
        "budget after {TOTAL_STEPS} steps: ε = {:.3}; can still afford {afford} more steps \
         at this (σ, q) before ε = {:.1}",
        engine.spent(),
        engine.budget().epsilon
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    println!("\n✔ exact resume through the crash-consistent checkpoint store, budget enforced.");
}
