//! Sharded sparse state + async input pipeline, end to end.
//!
//! Demonstrates the two scaling levers on top of the plain quickstart:
//!
//! * `LazyDpConfig::with_shards(S)` hash-partitions each table's
//!   pending-noise bookkeeping into `S` shards whose flush runs
//!   shard-parallel, overlapped with the dense compute;
//! * `PrivateTrainer::make_private_prefetch` generates batches on a
//!   background thread (double buffering), so input generation is off
//!   the critical path and the next batch's indices are in view before
//!   each step.
//!
//! Both levers are *bitwise invisible* in the trained model — this
//! example trains every (shards, pipeline) combination and verifies all
//! of them produce the identical model.
//!
//! Run with: `cargo run --release --example sharded_pipeline`

use lazydp::data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
use lazydp::model::{Dlrm, DlrmConfig};
use lazydp::rng::counter::CounterNoise;
use lazydp::rng::Xoshiro256PlusPlus;

fn main() {
    let mut rng = Xoshiro256PlusPlus::seed_from(11);
    let model = Dlrm::new(DlrmConfig::tiny(4, 2000, 16), &mut rng);
    let make_loader = || {
        let ds = SyntheticDataset::new(SyntheticConfig::small(4, 2000, 2048));
        FixedBatchLoader::new(ds, 128)
    };
    let q = 128.0 / 2048.0;
    let steps = 24;

    let mut released: Vec<(String, Dlrm)> = Vec::new();
    for shards in [1usize, 4] {
        let cfg = LazyDpConfig::paper_default(128).with_shards(shards);
        // Synchronous pipeline.
        let mut sync = PrivateTrainer::make_private(
            model.clone(),
            cfg.clone(),
            make_loader(),
            CounterNoise::new(5),
            q,
        );
        let _ = sync.train_steps(steps);
        released.push((format!("sync,     S={shards}"), sync.finish()));
        // Async double-buffered pipeline.
        let mut pre = PrivateTrainer::make_private_prefetch(
            model.clone(),
            cfg,
            make_loader(),
            CounterNoise::new(5),
            q,
        );
        let _ = pre.train_steps(steps);
        released.push((format!("prefetch, S={shards}"), pre.finish()));
    }

    let (base_label, base) = &released[0];
    println!(
        "trained {steps} steps under {} configurations:",
        released.len()
    );
    for (label, m) in &released {
        let mut diff = 0.0f32;
        for (a, b) in base.tables.iter().zip(m.tables.iter()) {
            diff = diff.max(a.max_abs_diff(b));
        }
        println!("  {label}: max |Δ| vs {base_label} = {diff}");
        assert_eq!(diff, 0.0, "configurations must be bitwise identical");
    }
    println!("\nall configurations released the bitwise-identical model ✓");
}
