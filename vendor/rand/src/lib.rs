//! Offline stub of the tiny slice of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network route to crates.io, so instead of a
//! registry dependency the workspace vendors the exact trait surface it
//! needs: [`RngCore`] (implemented by `lazydp_rng::Xoshiro256PlusPlus` for
//! ecosystem compatibility) and the [`Error`] type referenced by
//! `try_fill_bytes`. The definitions are API-compatible with rand 0.8, so
//! replacing this stub with the real crate is a one-line manifest change.

use std::fmt;

/// Error type for fallible RNG operations (API-compatible subset of
/// `rand::Error`).
#[derive(Debug)]
pub struct Error {
    inner: Box<dyn std::error::Error + Send + Sync>,
}

impl Error {
    /// Wraps an arbitrary error, mirroring `rand::Error::new`.
    pub fn new<E>(err: E) -> Self
    where
        E: Into<Box<dyn std::error::Error + Send + Sync>>,
    {
        Error { inner: err.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.inner)
    }
}

impl std::error::Error for Error {}

/// The core RNG trait, API-compatible with `rand_core::RngCore` 0.6.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}
