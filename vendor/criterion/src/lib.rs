//! Offline stub of the `criterion` benchmarking API.
//!
//! The build environment has no network route to crates.io, so the workspace
//! vendors the subset of the criterion 0.5 API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Instead of criterion's statistical machinery it runs a short
//! warm-up followed by a fixed number of timed samples and reports the
//! median wall-clock time per iteration. The API is call-compatible, so
//! swapping in the real crate is a one-line manifest change.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` callers work; benches here use
/// `std::hint::black_box` directly but the real crate exposes this too.
pub use std::hint::black_box;

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: fmt::Display, P: fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver handed to the closure by `bench_function`.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the warm-up budget elapses (at least once).
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if start.elapsed() >= self.warm_up {
                break;
            }
        }
        let per_iter = start.elapsed().as_secs_f64() / warm_iters as f64;
        // Size each sample so the whole measurement fits the time budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).max(1);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let ns = t.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }
}

fn median(samples: &mut [f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Top-level benchmark driver (stub of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Mirrors `Criterion::configure_from_args`; the stub has no CLI.
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let group_name = String::new();
        run_one(self, &group_name, name, None, f);
        self
    }

    /// Mirrors `Criterion::final_summary`; the stub prints per-bench lines
    /// as it goes, so this is a no-op.
    pub fn final_summary(&mut self) {}
}

fn run_one<F>(c: &Criterion, group: &str, id: &str, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        warm_up: c.warm_up,
        measurement: c.measurement,
        sample_size: c.sample_size,
        samples_ns: Vec::new(),
    };
    f(&mut b);
    let med = median(&mut b.samples_ns);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    let rate = match throughput {
        Some(Throughput::Elements(n)) if med > 0.0 => {
            format!("  ({:.1} Melem/s)", n as f64 / med * 1e3)
        }
        Some(Throughput::Bytes(n)) if med > 0.0 => {
            format!("  ({:.1} MiB/s)", n as f64 / med * 1e9 / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench: {label:<50} {:>12}/iter{rate}", format_ns(med));
}

/// Group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.criterion, &self.name, id, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.to_string();
        run_one(self.criterion, &self.name, &id, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group: both the `name/config/targets` form and the
/// positional form of the real macro are supported.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `fn main` running each declared group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // CLI args (e.g. the `--bench` flag `cargo bench` passes to
            // harness=false targets) are deliberately ignored: the stub
            // always runs every group.
            $( $group(); )+
        }
    };
}
