//! Offline stub of the slice of `proptest` this workspace uses.
//!
//! The build environment has no network route to crates.io, so the
//! workspace vendors a minimal, API-compatible property-testing harness:
//! the [`proptest!`] macro, `prop_assert*` macros,
//! [`ProptestConfig`](prelude::ProptestConfig),
//! a [`Strategy`](strategy::Strategy) trait with implementations for
//! numeric ranges, tuples, `collection::vec`, `collection::btree_set`,
//! and `bool::ANY`. Sampling is deterministic (seeded per test name and
//! case index) so failures reproduce across runs. Unlike real proptest
//! there is no shrinking: a failing case panics with the case number so
//! it can be replayed. Swapping in the real crate is a one-line manifest
//! change.

pub mod test_runner {
    /// Deterministic splitmix64-based RNG driving strategy sampling.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test-name hash and the case index, so every case
        /// of every test draws an independent, reproducible stream.
        pub fn deterministic(name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in [0, n) without modulo bias worth worrying about here.
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of random values of one type (no shrinking in the stub).
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let span = (self.end as i128 - self.start as i128).max(1) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.next_f64() as f32) * (self.end - self.start)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.sample(rng),
                self.1.sample(rng),
                self.2.sample(rng),
                self.3.sample(rng),
            )
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Accepted by `vec`/`btree_set` as either an exact size or a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.lo + rng.below((self.hi - self.lo).max(1) as u64) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end.max(r.start + 1),
            }
        }
    }

    impl From<Range<i32>> for SizeRange {
        fn from(r: Range<i32>) -> Self {
            SizeRange {
                lo: r.start.max(0) as usize,
                hi: (r.end.max(r.start + 1)) as usize,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicates collapse; the resulting set may be smaller than
            // the drawn size, which real proptest also permits for sets
            // whose element domain is narrow.
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniform boolean strategy (`proptest::bool::ANY`).
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::bool::ANY as any_bool;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// Namespace alias so `prop::collection::vec(..)` works as in the
    /// real prelude.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Declares property tests. Supports the same surface syntax as real
/// proptest for the forms this workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///     #[test]
///     fn my_prop(x in 0u64..10, v in proptest::collection::vec(0f32..1.0, 3)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(<$crate::test_runner::Config as ::std::default::Default>::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            for case in 0..cfg.cases {
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    Ok(())
                };
                if let Err(e) = run() {
                    panic!("proptest case {case} of {} failed: {e}", stringify!($name));
                }
            }
        }
    )*};
}

/// `prop_assert!`: like `assert!` but surfaces through the proptest
/// harness (the stub returns an `Err` that the generated runner panics
/// on, matching real proptest's `TestCaseError` flow closely enough).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err(format!($($fmt)*));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err(format!(
                "assertion failed: {} == {} ({va:?} vs {vb:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (va, vb) = (&$a, &$b);
        if !(va == vb) {
            return Err(format!($($fmt)*));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (va, vb) = (&$a, &$b);
        if va == vb {
            return Err(format!(
                "assertion failed: {} != {} (both {va:?})",
                stringify!($a),
                stringify!($b)
            ));
        }
    }};
}
