//! # LazyDP — facade crate
//!
//! This crate re-exports the whole LazyDP reproduction workspace behind a
//! single dependency. See `ARCHITECTURE.md` for the system tour,
//! `README.md` for build/run commands, and `DESIGN.md` for the
//! paper-to-crate mapping.
//!
//! Reproduction of: *LazyDP: Co-Designing Algorithm-Software for Scalable
//! Training of Differentially Private Recommendation Models* (ASPLOS 2024).
//!
//! # Example
//!
//! ```
//! use lazydp::data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
//! use lazydp::lazy::{LazyDpConfig, PrivateTrainer};
//! use lazydp::model::{Dlrm, DlrmConfig};
//! use lazydp::rng::counter::CounterNoise;
//! use lazydp::rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(1);
//! let model = Dlrm::new(DlrmConfig::tiny(2, 64, 8), &mut rng);
//! let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 128));
//! let loader = FixedBatchLoader::new(ds, 16);
//! // 2-way sharded sparse state, async double-buffered input pipeline.
//! let cfg = LazyDpConfig::paper_default(16).with_shards(2);
//! let mut trainer = PrivateTrainer::make_private_prefetch(
//!     model, cfg, loader, CounterNoise::new(7), 16.0 / 128.0);
//! trainer.train_steps(3);
//! let _released = trainer.finish();
//! ```

#![forbid(unsafe_code)]

pub use lazydp_core as lazy;
pub use lazydp_data as data;
pub use lazydp_dpsgd as dpsgd;
pub use lazydp_embedding as embedding;
pub use lazydp_exec as exec;
pub use lazydp_fault as fault;
pub use lazydp_model as model;
pub use lazydp_obs as obs;
pub use lazydp_privacy as privacy;
pub use lazydp_rng as rng;
pub use lazydp_store as store;
pub use lazydp_sysmodel as sysmodel;
pub use lazydp_tensor as tensor;
