//! # LazyDP — facade crate
//!
//! This crate re-exports the whole LazyDP reproduction workspace behind a
//! single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the paper-to-crate mapping.
//!
//! Reproduction of: *LazyDP: Co-Designing Algorithm-Software for Scalable
//! Training of Differentially Private Recommendation Models* (ASPLOS 2024).

#![forbid(unsafe_code)]

pub use lazydp_core as lazy;
pub use lazydp_data as data;
pub use lazydp_dpsgd as dpsgd;
pub use lazydp_embedding as embedding;
pub use lazydp_exec as exec;
pub use lazydp_model as model;
pub use lazydp_privacy as privacy;
pub use lazydp_rng as rng;
pub use lazydp_sysmodel as sysmodel;
pub use lazydp_tensor as tensor;
