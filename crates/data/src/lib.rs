//! Workload substrate: synthetic datasets, access traces, batch loaders,
//! and the LazyDP `InputQueue`.
//!
//! The paper trains MLPerf DLRM on embedding traces "drawn from a uniform
//! distribution" (§6) and studies skewed traces built from the Kaggle DAC
//! dataset where 90% of accesses concentrate on 36% / 10% / 0.6% of
//! entries (Fig. 13(d)). Real Criteo data is not redistributable, so this
//! crate generates synthetic equivalents (see DESIGN.md, substitution 3):
//!
//! * [`trace`] — per-table row distributions (uniform / calibrated Zipf),
//!   including the skew-calibration solver and the expected-unique-rows
//!   analysis used by the performance model;
//! * [`dataset`] — a deterministic synthetic Criteo-style dataset with a
//!   planted logistic ground truth (so training measurably learns);
//! * [`batch`] — the [`MiniBatch`] container;
//! * [`loader`] — fixed-size and Poisson-sampling batch sources
//!   (Opacus-style `DPDataLoader`);
//! * [`queue`] — the two-entry [`InputQueue`] of
//!   Algorithm 1 (lines 3–5) that gives LazyDP one-batch lookahead.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod batch;
pub mod dataset;
pub mod loader;
pub mod queue;
pub mod trace;

pub use alias::AliasTable;
pub use batch::MiniBatch;
pub use dataset::{SyntheticConfig, SyntheticDataset};
pub use loader::{BatchSource, FixedBatchLoader, PoissonLoader};
pub use queue::{InputQueue, LookaheadLoader};
pub use trace::{AccessDistribution, SkewLevel};
