//! Workload substrate: synthetic datasets, access traces, batch loaders,
//! and the LazyDP `InputQueue`.
//!
//! The paper trains MLPerf DLRM on embedding traces "drawn from a uniform
//! distribution" (§6) and studies skewed traces built from the Kaggle DAC
//! dataset where 90% of accesses concentrate on 36% / 10% / 0.6% of
//! entries (Fig. 13(d)). Real Criteo data is not redistributable, so this
//! crate generates synthetic equivalents (see DESIGN.md, substitution 3):
//!
//! * [`trace`] — per-table row distributions (uniform / calibrated Zipf),
//!   including the skew-calibration solver and the expected-unique-rows
//!   analysis used by the performance model;
//! * [`dataset`] — a deterministic synthetic Criteo-style dataset with a
//!   planted logistic ground truth (so training measurably learns);
//! * [`batch`] — the [`MiniBatch`] container;
//! * [`loader`] — fixed-size and Poisson-sampling batch sources
//!   (Opacus-style `DPDataLoader`);
//! * [`queue`] — the two-entry [`InputQueue`] of Algorithm 1
//!   (lines 3–5) that gives LazyDP one-batch lookahead, the
//!   [`LookaheadSource`] abstraction over lookahead pipelines, and the
//!   [`BoundedQueue`] producer/consumer channel;
//! * [`prefetch`] — the asynchronous [`PrefetchLoader`]: a background
//!   worker generates batches through the bounded queue (double
//!   buffering), delivering a stream *identical* to the synchronous
//!   loader's while overlapping input generation with training compute.
//!
//! # Example: async prefetching with one-batch lookahead
//!
//! ```
//! use lazydp_data::{
//!     FixedBatchLoader, LookaheadLoader, PrefetchLoader, SyntheticConfig, SyntheticDataset,
//! };
//!
//! let make = || {
//!     let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 256));
//!     FixedBatchLoader::new(ds, 32)
//! };
//! // The async pipeline delivers exactly the synchronous stream …
//! let mut sync = LookaheadLoader::new(make());
//! let mut pre = PrefetchLoader::new(make());
//! let (cur, next) = pre.advance();
//! let (cur, next) = (cur.clone(), next.clone());
//! let (scur, snext) = sync.advance();
//! assert_eq!((&cur, &next), (scur, snext));
//! // … and the next batch's rows are visible before the step runs,
//! // which is what LazyDP's lazy noise flush keys off.
//! assert_eq!(pre.peek_next_indices(0), next.table_indices(0));
//! # let _ = pre.finish_iteration();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alias;
pub mod batch;
pub mod dataset;
pub mod loader;
pub mod prefetch;
pub mod queue;
pub mod trace;

pub use alias::AliasTable;
pub use batch::MiniBatch;
pub use dataset::{SyntheticConfig, SyntheticDataset};
pub use loader::{BatchSource, FixedBatchLoader, PoissonLoader};
pub use prefetch::PrefetchLoader;
pub use queue::{BoundedQueue, InputQueue, LookaheadLoader, LookaheadSource};
pub use trace::{AccessDistribution, SkewLevel};
