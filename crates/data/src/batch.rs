//! The mini-batch container shared by every optimizer.

use lazydp_embedding::bag::BagIndices;

/// One training mini-batch of a DLRM-style workload: dense features,
/// per-table sparse lookup indices, and click labels.
///
/// The sparse indices are stored per table in CSR form
/// ([`BagIndices`]), matching the layout the embedding bags consume. The
/// realized batch size may differ from the loader's nominal size under
/// Poisson sampling (paper Fig. 9(b): the DP data loader uses Poisson
/// sampling).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MiniBatch {
    /// Row-major `batch × num_dense` dense features.
    pub dense: Vec<f32>,
    /// Number of dense features per sample.
    pub num_dense: usize,
    /// Per-table lookup indices (`tables.len()` entries).
    pub sparse: Vec<BagIndices>,
    /// Click labels in `[0, 1]`, one per sample.
    pub labels: Vec<f32>,
}

impl MiniBatch {
    /// Number of samples in the batch.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.labels.len()
    }

    /// Number of embedding tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.sparse.len()
    }

    /// Whether the batch has no samples (possible under Poisson
    /// sampling with small rates; optimizers skip such batches).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Total embedding lookups across all tables.
    #[must_use]
    pub fn total_lookups(&self) -> usize {
        self.sparse.iter().map(BagIndices::total_lookups).sum()
    }

    /// The flat lookup indices of table `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn table_indices(&self, t: usize) -> &[u64] {
        self.sparse[t].flat_indices()
    }

    /// Checks internal consistency (all tables agree on batch size, the
    /// dense buffer has the right length) — used by debug assertions in
    /// the training loops.
    #[must_use]
    pub fn is_consistent(&self) -> bool {
        let b = self.batch_size();
        self.dense.len() == b * self.num_dense && self.sparse.iter().all(|s| s.batch_size() == b)
    }

    /// Approximate in-memory size of the *sparse index* portion in bytes
    /// — what the paper's §7.2 `InputQueue` overhead counts
    /// (mini-batch size × tables × avg lookups × 4 bytes).
    #[must_use]
    pub fn sparse_index_bytes(&self) -> u64 {
        (self.total_lookups() * std::mem::size_of::<u32>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_batch() -> MiniBatch {
        MiniBatch {
            dense: vec![0.0; 2 * 3],
            num_dense: 3,
            sparse: vec![
                BagIndices::from_samples(&[vec![1], vec![2]]),
                BagIndices::from_samples(&[vec![3, 4], vec![5]]),
            ],
            labels: vec![0.0, 1.0],
        }
    }

    #[test]
    fn accessors() {
        let b = sample_batch();
        assert_eq!(b.batch_size(), 2);
        assert_eq!(b.num_tables(), 2);
        assert_eq!(b.total_lookups(), 5);
        assert_eq!(b.table_indices(1), &[3, 4, 5]);
        assert!(b.is_consistent());
        assert!(!b.is_empty());
        assert_eq!(b.sparse_index_bytes(), 20);
    }

    #[test]
    fn inconsistency_detected() {
        let mut b = sample_batch();
        b.labels.push(0.5);
        assert!(!b.is_consistent());
    }

    #[test]
    fn default_is_empty_and_consistent() {
        let b = MiniBatch::default();
        assert!(b.is_empty());
        assert!(b.is_consistent());
    }
}
