//! Embedding access-trace distributions and skew calibration.
//!
//! Fig. 13(d) of the paper defines dataset skew by the fraction of table
//! entries that receives 90% of the accesses: 36% (low), 10% (medium),
//! 0.6% (high). We reproduce those workloads with Zipf-distributed row
//! draws whose exponent is numerically calibrated to hit exactly those
//! targets for a given table size.

use lazydp_rng::Prng;

/// The paper's three skew presets plus the uniform default (§6 uses a
/// uniform trace for the main results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SkewLevel {
    /// Uniform accesses ("Random" in Fig. 13(d)).
    Random,
    /// 90% of accesses on 36% of entries.
    Low,
    /// 90% of accesses on 10% of entries.
    Medium,
    /// 90% of accesses on 0.6% of entries.
    High,
}

impl SkewLevel {
    /// `(top_fraction, mass)` target: the top `top_fraction` of rows
    /// receives `mass` of all accesses.
    #[must_use]
    pub fn target(&self) -> Option<(f64, f64)> {
        match self {
            Self::Random => None,
            Self::Low => Some((0.36, 0.9)),
            Self::Medium => Some((0.10, 0.9)),
            Self::High => Some((0.006, 0.9)),
        }
    }

    /// All four presets, in the order Fig. 13(d) plots them.
    #[must_use]
    pub fn all() -> [Self; 4] {
        [Self::Random, Self::Low, Self::Medium, Self::High]
    }

    /// Display label matching the figure.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Random => "Random",
            Self::Low => "Low",
            Self::Medium => "Medium",
            Self::High => "High",
        }
    }
}

/// A sampling distribution over the rows `0..rows` of one table.
#[derive(Debug, Clone, PartialEq)]
pub enum AccessDistribution {
    /// Every row equally likely.
    Uniform {
        /// Number of rows.
        rows: u64,
    },
    /// Zipf: row of *rank* `r` (0-based) has weight `(r+1)^-s`. Ranks are
    /// identity-mapped to row ids (row 0 is the hottest), which is
    /// equivalent to any fixed permutation for every statistic the paper
    /// measures.
    Zipf {
        /// Number of rows.
        rows: u64,
        /// Zipf exponent `s > 0`.
        exponent: f64,
        /// Cumulative weights for inverse-CDF sampling.
        cdf: Vec<f64>,
    },
}

impl AccessDistribution {
    /// Uniform over `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`.
    #[must_use]
    pub fn uniform(rows: u64) -> Self {
        assert!(rows > 0, "distribution needs at least one row");
        Self::Uniform { rows }
    }

    /// Zipf with the given exponent over `rows` rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`, `exponent <= 0`, or `rows` exceeds
    /// 100 million (the CDF table would not fit; use the analytic
    /// helpers for paper-scale tables).
    #[must_use]
    pub fn zipf(rows: u64, exponent: f64) -> Self {
        assert!(rows > 0, "distribution needs at least one row");
        assert!(exponent > 0.0, "zipf exponent must be positive");
        assert!(
            rows <= 100_000_000,
            "zipf CDF too large; use analytic helpers"
        );
        let mut cdf = Vec::with_capacity(rows as usize);
        let mut acc = 0.0f64;
        for r in 0..rows {
            acc += ((r + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self::Zipf {
            rows,
            exponent,
            cdf,
        }
    }

    /// Builds a Zipf distribution backed by a Walker
    /// [`AliasTable`](crate::alias::AliasTable) for O(1) draws instead
    /// of the inverse-CDF binary search — same distribution, faster
    /// sampling for the trace-generation-heavy experiments.
    ///
    /// # Panics
    ///
    /// Same conditions as [`zipf`](Self::zipf).
    #[must_use]
    pub fn zipf_alias(rows: u64, exponent: f64) -> crate::alias::AliasTable {
        assert!(rows > 0, "distribution needs at least one row");
        assert!(exponent > 0.0, "zipf exponent must be positive");
        assert!(rows <= 100_000_000, "alias table too large");
        let weights: Vec<f64> = (0..rows)
            .map(|r| ((r + 1) as f64).powf(-exponent))
            .collect();
        crate::alias::AliasTable::new(&weights)
    }

    /// Builds the distribution for a [`SkewLevel`], calibrating the Zipf
    /// exponent so the skew target holds for this table size.
    #[must_use]
    pub fn for_skew(rows: u64, skew: SkewLevel) -> Self {
        match skew.target() {
            None => Self::uniform(rows),
            Some((fraction, mass)) => {
                let s = zipf_exponent_for_skew(rows, fraction, mass);
                Self::zipf(rows, s)
            }
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> u64 {
        match self {
            Self::Uniform { rows } | Self::Zipf { rows, .. } => *rows,
        }
    }

    /// Draws one row id.
    pub fn sample<R: Prng>(&self, rng: &mut R) -> u64 {
        match self {
            Self::Uniform { rows } => rng.next_below(*rows),
            Self::Zipf { cdf, .. } => {
                let u = rng.next_f64();
                // partition_point: first index with cdf[i] >= u.
                cdf.partition_point(|&c| c < u) as u64
            }
        }
    }

    /// Draws `n` row ids.
    pub fn sample_many<R: Prng>(&self, rng: &mut R, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Probability of drawing row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn probability(&self, r: u64) -> f64 {
        assert!(r < self.rows(), "row out of range");
        match self {
            Self::Uniform { rows } => 1.0 / *rows as f64,
            Self::Zipf { cdf, .. } => {
                let i = r as usize;
                if i == 0 {
                    cdf[0]
                } else {
                    cdf[i] - cdf[i - 1]
                }
            }
        }
    }

    /// Expected number of *distinct* rows hit by `draws` independent
    /// draws: `Σ_r (1 − (1 − p_r)^draws)`.
    ///
    /// This quantity drives LazyDP's cost (paper §5.1: the number of lazy
    /// noise updates is set by the unique rows of the *next* batch, not
    /// the table size) and feeds `lazydp-sysmodel`.
    #[must_use]
    pub fn expected_unique(&self, draws: u64) -> f64 {
        match self {
            Self::Uniform { rows } => expected_unique_uniform(*rows, draws),
            Self::Zipf { rows, exponent, .. } => expected_unique_zipf(*rows, *exponent, draws),
        }
    }
}

/// Expected distinct rows for `draws` uniform draws over `rows` rows.
#[must_use]
pub fn expected_unique_uniform(rows: u64, draws: u64) -> f64 {
    let e = rows as f64;
    let k = draws as f64;
    // E · (1 − (1 − 1/E)^k), computed stably via ln1p.
    e * (1.0 - (k * (-1.0 / e).ln_1p()).exp())
}

/// Analytic (log-bucketed) expected distinct rows for Zipf draws —
/// accurate to a few percent even for paper-scale tables (40M rows) where
/// materializing per-row probabilities is impractical.
#[must_use]
pub fn expected_unique_zipf(rows: u64, exponent: f64, draws: u64) -> f64 {
    let k = draws as f64;
    // Normalization: H(rows, s) via exact head + integral tail.
    let h = generalized_harmonic(rows, exponent);
    let mut total = 0.0f64;
    // Exact head ranks (hot rows dominate the statistic).
    let head = rows.min(4096);
    for r in 0..head {
        let p = ((r + 1) as f64).powf(-exponent) / h;
        total += 1.0 - (k * (-p).ln_1p()).exp();
    }
    // Geometric buckets for the tail.
    let mut lo = head;
    while lo < rows {
        let hi = (lo * 2).min(rows);
        let mid = (lo + hi) as f64 / 2.0;
        let p = mid.powf(-exponent) / h;
        let count = (hi - lo) as f64;
        total += count * (1.0 - (k * (-p).ln_1p()).exp());
        lo = hi;
    }
    total
}

/// Generalized harmonic number `H(n, s) = Σ_{r=1..n} r^-s`, computed with
/// an exact head and Euler–Maclaurin integral tail for large `n`.
#[must_use]
pub fn generalized_harmonic(n: u64, s: f64) -> f64 {
    let head = n.min(100_000);
    let mut h = 0.0f64;
    for r in 1..=head {
        h += (r as f64).powf(-s);
    }
    if n > head {
        let a = head as f64;
        let b = n as f64;
        if (s - 1.0).abs() < 1e-12 {
            h += (b / a).ln();
        } else {
            h += (b.powf(1.0 - s) - a.powf(1.0 - s)) / (1.0 - s);
        }
    }
    h
}

/// Mass of the top `fraction` of ranks under Zipf(`exponent`) over
/// `rows` rows.
#[must_use]
pub fn zipf_top_fraction_mass(rows: u64, exponent: f64, fraction: f64) -> f64 {
    let k = ((rows as f64) * fraction).round().max(1.0) as u64;
    generalized_harmonic(k, exponent) / generalized_harmonic(rows, exponent)
}

/// Finds the Zipf exponent such that the top `fraction` of rows carries
/// `mass` of the access probability (binary search; the mass is
/// monotonically increasing in the exponent).
///
/// # Panics
///
/// Panics if `fraction` or `mass` is outside `(0, 1)`.
#[must_use]
pub fn zipf_exponent_for_skew(rows: u64, fraction: f64, mass: f64) -> f64 {
    assert!(
        fraction > 0.0 && fraction < 1.0,
        "fraction must be in (0,1)"
    );
    assert!(mass > 0.0 && mass < 1.0, "mass must be in (0,1)");
    let mut lo = 1e-3f64;
    let mut hi = 8.0f64;
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if zipf_top_fraction_mass(rows, mid, fraction) < mass {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_embedding::AccessTracker;
    use lazydp_rng::Xoshiro256PlusPlus;

    #[test]
    fn uniform_sampling_is_uniform() {
        let d = AccessDistribution::uniform(50);
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let mut tracker = AccessTracker::new(50);
        tracker.record_all(&d.sample_many(&mut rng, 100_000));
        for &c in tracker.counts() {
            assert!((1_500..2_500).contains(&(c as usize)), "count {c}");
        }
    }

    #[test]
    fn zipf_probabilities_sum_to_one_and_decrease() {
        let d = AccessDistribution::zipf(100, 1.2);
        let mut sum = 0.0;
        let mut prev = f64::INFINITY;
        for r in 0..100 {
            let p = d.probability(r);
            assert!(p <= prev + 1e-15, "monotone non-increasing");
            prev = p;
            sum += p;
        }
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_matches_probabilities() {
        let d = AccessDistribution::zipf(20, 1.0);
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        let n = 200_000;
        let mut counts = [0u64; 20];
        for _ in 0..n {
            counts[d.sample(&mut rng) as usize] += 1;
        }
        for r in 0..20 {
            let expect = d.probability(r) * n as f64;
            let got = counts[r as usize] as f64;
            assert!(
                (got - expect).abs() < 5.0 * expect.sqrt() + 5.0,
                "row {r}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn skew_calibration_hits_paper_targets() {
        // The paper's definition: 90% of accesses on 36%/10%/0.6% of rows.
        let rows = 100_000u64;
        for skew in [SkewLevel::Low, SkewLevel::Medium, SkewLevel::High] {
            let (fraction, mass) = skew.target().expect("non-random");
            let s = zipf_exponent_for_skew(rows, fraction, mass);
            let achieved = zipf_top_fraction_mass(rows, s, fraction);
            assert!(
                (achieved - mass).abs() < 0.01,
                "{skew:?}: exponent {s} gives mass {achieved}"
            );
        }
    }

    #[test]
    fn empirical_skew_matches_calibration() {
        let rows = 5_000u64;
        let d = AccessDistribution::for_skew(rows, SkewLevel::Medium);
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let mut tracker = AccessTracker::new(rows as usize);
        tracker.record_all(&d.sample_many(&mut rng, 300_000));
        let mass = tracker.mass_of_top_fraction(0.10);
        assert!((mass - 0.9).abs() < 0.02, "empirical mass {mass}");
    }

    #[test]
    fn expected_unique_uniform_limits() {
        // k << E: virtually no collisions → E[unique] ≈ k.
        let e = expected_unique_uniform(1_000_000, 100);
        assert!((e - 100.0).abs() < 0.01, "{e}");
        // k >> E: all rows touched → E[unique] ≈ E.
        let e = expected_unique_uniform(100, 100_000);
        assert!((e - 100.0).abs() < 1e-6, "{e}");
    }

    #[test]
    fn expected_unique_uniform_matches_simulation() {
        let rows = 1_000u64;
        let draws = 800u64;
        let analytic = expected_unique_uniform(rows, draws);
        let d = AccessDistribution::uniform(rows);
        let mut rng = Xoshiro256PlusPlus::seed_from(4);
        let mut total = 0usize;
        let trials = 200;
        for _ in 0..trials {
            let s = d.sample_many(&mut rng, draws as usize);
            let set: std::collections::HashSet<u64> = s.into_iter().collect();
            total += set.len();
        }
        let sim = total as f64 / trials as f64;
        assert!(
            (sim - analytic).abs() < 5.0,
            "sim {sim} analytic {analytic}"
        );
    }

    #[test]
    fn expected_unique_zipf_matches_simulation() {
        let rows = 10_000u64;
        let s = 1.1;
        let draws = 2_000u64;
        let analytic = expected_unique_zipf(rows, s, draws);
        let d = AccessDistribution::zipf(rows, s);
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let mut total = 0usize;
        let trials = 50;
        for _ in 0..trials {
            let sample = d.sample_many(&mut rng, draws as usize);
            let set: std::collections::HashSet<u64> = sample.into_iter().collect();
            total += set.len();
        }
        let sim = total as f64 / trials as f64;
        let rel = (sim - analytic).abs() / sim;
        assert!(rel < 0.05, "sim {sim} analytic {analytic} rel {rel}");
    }

    #[test]
    fn higher_skew_means_fewer_unique_rows() {
        let rows = 100_000u64;
        let draws = 4_096u64;
        let mut prev = f64::INFINITY;
        for skew in SkewLevel::all() {
            let d = AccessDistribution::for_skew(rows, skew);
            let u = d.expected_unique(draws);
            assert!(u < prev, "{skew:?}: {u} !< {prev}");
            prev = u;
        }
    }

    #[test]
    fn generalized_harmonic_known_values() {
        assert!((generalized_harmonic(1, 1.0) - 1.0).abs() < 1e-12);
        assert!((generalized_harmonic(4, 1.0) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
        // H(n,2) → π²/6 as n → ∞.
        let h = generalized_harmonic(10_000_000, 2.0);
        assert!((h - std::f64::consts::PI.powi(2) / 6.0).abs() < 1e-4, "{h}");
    }

    #[test]
    fn analytic_tail_matches_exact_sum() {
        // Cross 100k boundary: exact head + integral tail vs brute force.
        let n = 300_000u64;
        let s = 1.3;
        let exact: f64 = (1..=n).map(|r| (r as f64).powf(-s)).sum();
        let fast = generalized_harmonic(n, s);
        assert!(
            (exact - fast).abs() / exact < 1e-4,
            "exact {exact} fast {fast}"
        );
    }
}
