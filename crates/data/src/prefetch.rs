//! Asynchronous double-buffered input pipeline.
//!
//! The synchronous [`LookaheadLoader`](crate::LookaheadLoader)
//! materializes each batch on the training thread, so batch generation
//! sits on the critical path. [`PrefetchLoader`] moves it off: a
//! background worker thread drives the [`BatchSource`] and hands batches
//! through a [`BoundedQueue`] (default capacity 2 — classic double
//! buffering), while the training thread keeps the same two-slot
//! [`InputQueue`] lookahead window as the synchronous loader. Two
//! consequences:
//!
//! 1. **Overlap** — while the optimizer executes step *i*, the worker is
//!    already generating batches *i+2, i+3, …* (up to the queue depth),
//!    so input generation overlaps the dense compute.
//! 2. **Early lookahead** — the `(current, next)` pair is in view the
//!    moment [`advance`](PrefetchLoader::advance) returns, *before* the
//!    step runs. `LazyDpOptimizer` receives `next` through that window
//!    and uses it to sample the pending noise of exactly the rows the
//!    next batch touches concurrently with the current step's
//!    forward/backward; custom training loops can read the same rows
//!    directly via
//!    [`peek_next_indices`](PrefetchLoader::peek_next_indices) without
//!    cloning the batch.
//!
//! Determinism is untouched: the worker consumes the source in the same
//! order the synchronous loader would, the queue is FIFO, and no batch
//! is dropped — the delivered `(current, next)` stream is **identical**
//! (asserted by this module's tests and the workspace proptests). The
//! only behavioral difference is *when* batches are materialized.

use crate::batch::MiniBatch;
use crate::loader::BatchSource;
use crate::queue::{BoundedQueue, InputQueue, LookaheadSource};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Default queue depth: the producer runs at most two batches ahead
/// (one being consumed, one in flight — double buffering).
pub const DEFAULT_PREFETCH_DEPTH: usize = 2;

/// A [`LookaheadSource`] whose batches are produced by a background
/// worker thread through a bounded queue.
///
/// Dropping the loader closes the queue and joins the worker.
#[derive(Debug)]
pub struct PrefetchLoader {
    window: InputQueue<MiniBatch>,
    buffer: Arc<BoundedQueue<MiniBatch>>,
    worker: Option<JoinHandle<()>>,
    nominal: usize,
}

impl PrefetchLoader {
    /// Spawns the prefetch worker with the default (double-buffer)
    /// depth and pulls the bootstrap batch (Algorithm 1 line 5).
    #[must_use]
    pub fn new<S: BatchSource + Send + 'static>(source: S) -> Self {
        Self::with_depth(source, DEFAULT_PREFETCH_DEPTH)
    }

    /// Spawns the prefetch worker with an explicit queue depth (how many
    /// batches the producer may run ahead).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or the worker thread cannot be spawned.
    #[must_use]
    pub fn with_depth<S: BatchSource + Send + 'static>(mut source: S, depth: usize) -> Self {
        let nominal = source.nominal_batch_size();
        let buffer = Arc::new(BoundedQueue::new(depth));
        let worker = {
            let buffer = Arc::clone(&buffer);
            std::thread::Builder::new()
                .name("lazydp-prefetch".into())
                .spawn(move || {
                    // Close the queue on ANY exit — including a panic in
                    // the source — so the consumer's blocking pop wakes
                    // up and reports the dead worker instead of hanging.
                    struct CloseOnDrop(Arc<BoundedQueue<MiniBatch>>);
                    impl Drop for CloseOnDrop {
                        fn drop(&mut self) {
                            self.0.close();
                        }
                    }
                    let _guard = CloseOnDrop(Arc::clone(&buffer));
                    // Sources are infinite streams; the loop ends when
                    // the consumer closes the queue (loader drop).
                    loop {
                        let batch = source.next_batch();
                        if buffer.push(batch).is_err() {
                            break;
                        }
                        lazydp_obs::metrics().data.batches_produced.incr();
                    }
                })
                .expect("spawn prefetch worker")
        };
        let mut loader = Self {
            window: InputQueue::new(),
            buffer,
            worker: Some(worker),
            nominal,
        };
        let bootstrap = loader.pull();
        loader.window.push(bootstrap);
        loader
    }

    /// Blocking pull of the next produced batch.
    ///
    /// # Panics
    ///
    /// Panics if the worker died (its batch source panicked): the
    /// worker's drop guard closes the queue, so the pop drains and
    /// returns `None` instead of blocking forever. The panic carries the
    /// *worker's own* payload — the source's panic message, not a
    /// generic "worker terminated" — so the root cause survives into
    /// the training thread's report.
    fn pull(&mut self) -> MiniBatch {
        if let Some(batch) = self.buffer.pop() {
            return batch;
        }
        // Queue closed without a batch: the worker is gone. Join it and
        // re-raise its actual panic payload.
        let joined = self.worker.take().map(JoinHandle::join);
        match joined {
            Some(Err(payload)) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned());
                match msg {
                    Some(msg) => panic!("prefetch worker panicked: {msg}"),
                    // Non-string payload (e.g. an injected-kill marker):
                    // preserve it verbatim for downcasting upstream.
                    None => std::panic::resume_unwind(payload),
                }
            }
            _ => panic!("prefetch worker terminated: queue closed while the loader is live"),
        }
    }

    /// Advances one iteration: takes one prefetched batch off the queue
    /// and returns `(current, next)` views. Call
    /// [`finish_iteration`](Self::finish_iteration) after the step.
    pub fn advance(&mut self) -> (&MiniBatch, &MiniBatch) {
        let batch = self.pull();
        self.window.push(batch);
        let cur = self.window.head().expect("window holds current batch");
        let next = self.window.tail().expect("window holds next batch");
        (cur, next)
    }

    /// Pops the consumed current batch.
    ///
    /// # Panics
    ///
    /// Panics if called before [`advance`](Self::advance).
    pub fn finish_iteration(&mut self) -> MiniBatch {
        assert_eq!(self.window.len(), 2, "finish_iteration before advance");
        self.window.pop().expect("non-empty window")
    }

    /// The batch the *next* iteration will consume, if already advanced
    /// into view.
    #[must_use]
    pub fn peek_next(&self) -> Option<&MiniBatch> {
        self.window.tail()
    }

    /// The embedding rows table `table` will gather in the *next*
    /// iteration — the exact row set whose pending noise LazyDP flushes
    /// this iteration. Empty when there is no lookahead batch in view or
    /// the batch carries no indices for `table`.
    #[must_use]
    pub fn peek_next_indices(&self, table: usize) -> &[u64] {
        self.peek_next()
            .and_then(|b| b.sparse.get(table))
            .map_or(&[], |s| s.flat_indices())
    }

    /// Batches currently buffered ahead of the lookahead window.
    #[must_use]
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }
}

impl LookaheadSource for PrefetchLoader {
    fn advance(&mut self) -> (&MiniBatch, &MiniBatch) {
        PrefetchLoader::advance(self)
    }

    fn finish_iteration(&mut self) -> MiniBatch {
        PrefetchLoader::finish_iteration(self)
    }

    fn nominal_batch_size(&self) -> usize {
        self.nominal
    }

    fn lookahead_overhead_bytes(&self) -> u64 {
        // The lookahead window (one prefetched batch, §7.2) plus the
        // queue's *capacity* (not its instantaneous length, which races
        // with the producer and would make this nondeterministic),
        // approximating each buffered batch by the visible one's index
        // footprint — a deterministic upper bound.
        let per_batch = self
            .peek_next()
            .or_else(|| self.window.head())
            .map_or(0, MiniBatch::sparse_index_bytes);
        per_batch * (1 + self.buffer.capacity() as u64)
    }
}

impl Drop for PrefetchLoader {
    fn drop(&mut self) {
        self.buffer.close();
        if let Some(worker) = self.worker.take() {
            // The worker exits at its next push; a panic inside the
            // source has already been reported on its own thread.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SyntheticConfig, SyntheticDataset};
    use crate::loader::FixedBatchLoader;
    use crate::queue::LookaheadLoader;

    fn loader(batch: usize) -> FixedBatchLoader {
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 32, 64));
        FixedBatchLoader::new(ds, batch)
    }

    #[test]
    fn delivers_the_same_stream_as_the_synchronous_loader() {
        let mut sync = LookaheadLoader::new(loader(4));
        let mut pre = PrefetchLoader::new(loader(4));
        for i in 0..12 {
            let (sc, sn) = sync.advance();
            let (sc, sn) = (sc.clone(), sn.clone());
            let (pc, pn) = pre.advance();
            assert_eq!(&sc, pc, "current at iter {i}");
            assert_eq!(&sn, pn, "next at iter {i}");
            assert_eq!(sync.finish_iteration(), pre.finish_iteration());
        }
    }

    #[test]
    fn peek_next_indices_match_the_next_batch() {
        let mut pre = PrefetchLoader::new(loader(3));
        let (_cur, next) = pre.advance();
        let expect: Vec<Vec<u64>> = (0..next.num_tables())
            .map(|t| next.table_indices(t).to_vec())
            .collect();
        for (t, idx) in expect.iter().enumerate() {
            assert_eq!(pre.peek_next_indices(t), idx.as_slice());
        }
        assert!(pre.peek_next_indices(99).is_empty(), "missing table");
        let _ = pre.finish_iteration();
    }

    #[test]
    fn worker_respects_queue_depth() {
        let mut pre = PrefetchLoader::with_depth(loader(2), 3);
        // Give the worker a moment to fill the buffer, then check the
        // bound (the exact count is timing-dependent; the cap is not).
        let (_c, _n) = pre.advance();
        for _ in 0..50 {
            if pre.buffered() == 3 {
                break;
            }
            std::thread::yield_now();
        }
        assert!(pre.buffered() <= 3);
        let _ = pre.finish_iteration();
    }

    #[test]
    fn drop_shuts_the_worker_down() {
        // Dropping mid-stream must not hang (the worker is blocked on a
        // full queue at this point, and close() must wake it).
        let pre = PrefetchLoader::new(loader(2));
        drop(pre);
    }

    #[test]
    #[should_panic(expected = "finish_iteration before advance")]
    fn finish_before_advance_panics() {
        let mut pre = PrefetchLoader::new(loader(2));
        let _ = pre.finish_iteration();
    }

    #[test]
    #[should_panic(expected = "prefetch worker panicked: source exploded")]
    fn worker_panic_carries_the_source_message() {
        // A panicking source kills the worker; its drop guard closes
        // the queue, so the consumer panics promptly rather than
        // blocking on the empty queue forever — and the panic names
        // the source's own message, not a generic "terminated".
        struct PanickySource;
        impl BatchSource for PanickySource {
            fn next_batch(&mut self) -> MiniBatch {
                panic!("source exploded");
            }
            fn nominal_batch_size(&self) -> usize {
                1
            }
        }
        let _ = PrefetchLoader::new(PanickySource);
    }
}
