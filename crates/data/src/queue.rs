//! The two-entry `InputQueue` of LazyDP (Algorithm 1, lines 3–5, 26),
//! and the queueing primitives the async input pipeline builds on.
//!
//! LazyDP must know which embedding rows the *next* iteration will gather
//! so it can flush their pending noise first (paper §5.1: "prefetching a
//! single mini-batch in advance is sufficient"). [`InputQueue`] is the
//! faithful two-slot queue; [`LookaheadLoader`] drives it from any
//! [`BatchSource`] *synchronously*, presenting `(current, next)` batch
//! views per iteration exactly as the pseudo-code does.
//! [`BoundedQueue`] is the blocking producer/consumer channel underneath
//! the asynchronous [`PrefetchLoader`](crate::prefetch::PrefetchLoader);
//! both loaders implement [`LookaheadSource`], so training code is
//! agnostic to which pipeline feeds it.

use crate::batch::MiniBatch;
use crate::loader::BatchSource;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A queue holding at most two consecutive mini-batches
/// (`Queue(size = 2)` in Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct InputQueue<T> {
    slots: VecDeque<T>,
}

impl<T> InputQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: VecDeque::with_capacity(2),
        }
    }

    /// Pushes the next mini-batch (Algorithm 1 line 5/7).
    ///
    /// # Panics
    ///
    /// Panics if the queue already holds two batches — LazyDP only ever
    /// needs one batch of lookahead, so a deeper queue indicates a
    /// driver bug.
    pub fn push(&mut self, item: T) {
        assert!(self.slots.len() < 2, "InputQueue holds at most 2 batches");
        self.slots.push_back(item);
    }

    /// The current iteration's batch (Algorithm 1 `head()`).
    #[must_use]
    pub fn head(&self) -> Option<&T> {
        self.slots.front()
    }

    /// The next iteration's batch (Algorithm 1 `tail()`).
    ///
    /// Returns `None` when fewer than two batches are queued.
    #[must_use]
    pub fn tail(&self) -> Option<&T> {
        if self.slots.len() == 2 {
            self.slots.back()
        } else {
            None
        }
    }

    /// Pops the consumed head batch (Algorithm 1 line 26).
    pub fn pop(&mut self) -> Option<T> {
        self.slots.pop_front()
    }

    /// Number of queued batches (0, 1, or 2).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// A blocking bounded FIFO for handing batches from a producer thread to
/// the training thread — the back-pressure primitive of the async input
/// pipeline.
///
/// `push` blocks while the queue is full (the producer may run at most
/// `capacity` batches ahead — "double buffering" at the default capacity
/// of 2), `pop` blocks while it is empty. [`close`](Self::close) wakes
/// everyone: subsequent pushes fail, pops drain the remaining items and
/// then return `None`. Share between threads via `Arc`.
#[derive(Debug)]
pub struct BoundedQueue<T> {
    state: Mutex<BoundedState<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

#[derive(Debug)]
struct BoundedState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            state: Mutex::new(BoundedState {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The maximum number of buffered items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently buffered items.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue poisoned").items.len()
    }

    /// Whether nothing is buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks until there is room, then enqueues `item`. Returns the
    /// item back as `Err` if the queue was closed.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.state.lock().expect("queue poisoned");
        if state.items.len() >= self.capacity && !state.closed {
            // The producer is about to block on a full queue: the
            // consumer is the bottleneck (or the pipeline is healthily
            // saturated). Counted once per blocking push.
            lazydp_obs::metrics().data.producer_stalls.incr();
        }
        while state.items.len() >= self.capacity && !state.closed {
            state = self.not_full.wait(state).expect("queue poisoned");
        }
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until an item is available and dequeues it. Returns
    /// `None` once the queue is closed **and** drained.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue poisoned");
        while state.items.is_empty() && !state.closed {
            state = self.not_empty.wait(state).expect("queue poisoned");
        }
        let item = state.items.pop_front();
        // Depth as the consumer sees it after taking its item — the
        // producer's headroom.
        lazydp_obs::metrics()
            .data
            .queue_depth
            .set(state.items.len() as u64);
        drop(state);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Closes the queue, waking all blocked producers and consumers.
    ///
    /// # Panics
    ///
    /// Panics if the queue mutex is poisoned.
    pub fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// A source of `(current, next)` lookahead batch pairs — what
/// `lazydp_core`'s `PrivateTrainer` consumes, independent of whether
/// batches are produced synchronously ([`LookaheadLoader`]) or on a
/// background thread
/// ([`PrefetchLoader`](crate::prefetch::PrefetchLoader)).
pub trait LookaheadSource {
    /// Advances one iteration, returning `(current, next)` batch views
    /// (Algorithm 1 lines 7, 9, 12).
    fn advance(&mut self) -> (&MiniBatch, &MiniBatch);

    /// Releases the consumed current batch (Algorithm 1 line 26).
    fn finish_iteration(&mut self) -> MiniBatch;

    /// Nominal (expected) batch size of the underlying source.
    fn nominal_batch_size(&self) -> usize;

    /// Extra memory the lookahead costs versus a plain loader (§7.2).
    fn lookahead_overhead_bytes(&self) -> u64;
}

/// Drives a [`BatchSource`] through an [`InputQueue`], handing the
/// optimizer `(current, next)` batch pairs.
///
/// Per iteration it fetches exactly **one** new batch — "identical to
/// baseline SGD and DP-SGD" (paper §5.2.1) — and reuses the previous
/// iteration's prefetched batch as the current one.
#[derive(Debug, Clone)]
pub struct LookaheadLoader<S> {
    source: S,
    queue: InputQueue<MiniBatch>,
}

impl<S: BatchSource> LookaheadLoader<S> {
    /// Wraps a batch source, fetching the bootstrap batch
    /// (Algorithm 1 line 5).
    pub fn new(mut source: S) -> Self {
        let mut queue = InputQueue::new();
        queue.push(source.next_batch());
        Self { source, queue }
    }

    /// Advances one iteration: fetches one new batch and returns
    /// `(current, next)` views (Algorithm 1 lines 7, 9, 12).
    ///
    /// Call [`finish_iteration`](Self::finish_iteration) after the
    /// optimizer step to release the consumed batch (line 26).
    pub fn advance(&mut self) -> (&MiniBatch, &MiniBatch) {
        self.queue.push(self.source.next_batch());
        let cur = self.queue.head().expect("queue holds current batch");
        let next = self.queue.tail().expect("queue holds next batch");
        (cur, next)
    }

    /// Pops the consumed current batch.
    ///
    /// # Panics
    ///
    /// Panics if called before [`advance`](Self::advance).
    pub fn finish_iteration(&mut self) -> MiniBatch {
        assert_eq!(self.queue.len(), 2, "finish_iteration before advance");
        self.queue.pop().expect("non-empty queue")
    }

    /// The underlying source.
    #[must_use]
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Extra memory the lookahead costs versus a plain loader: the
    /// sparse-index bytes of the one prefetched batch (paper §7.2:
    /// 213 KB for the default configuration).
    #[must_use]
    pub fn lookahead_overhead_bytes(&self) -> u64 {
        self.queue
            .tail()
            .or_else(|| self.queue.head())
            .map_or(0, MiniBatch::sparse_index_bytes)
    }
}

impl<S: BatchSource> LookaheadSource for LookaheadLoader<S> {
    fn advance(&mut self) -> (&MiniBatch, &MiniBatch) {
        LookaheadLoader::advance(self)
    }

    fn finish_iteration(&mut self) -> MiniBatch {
        LookaheadLoader::finish_iteration(self)
    }

    fn nominal_batch_size(&self) -> usize {
        self.source.nominal_batch_size()
    }

    fn lookahead_overhead_bytes(&self) -> u64 {
        LookaheadLoader::lookahead_overhead_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SyntheticConfig, SyntheticDataset};
    use crate::loader::FixedBatchLoader;

    fn loader(batch: usize) -> FixedBatchLoader {
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 32, 64));
        FixedBatchLoader::new(ds, batch)
    }

    #[test]
    fn queue_head_tail_pop_protocol() {
        let mut q = InputQueue::new();
        assert!(q.is_empty());
        q.push(1);
        assert_eq!(q.head(), Some(&1));
        assert_eq!(q.tail(), None, "tail needs two entries");
        q.push(2);
        assert_eq!(q.head(), Some(&1));
        assert_eq!(q.tail(), Some(&2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.head(), Some(&2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at most 2")]
    fn queue_rejects_third_batch() {
        let mut q = InputQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
    }

    #[test]
    fn lookahead_sees_batches_in_order_with_one_batch_lag() {
        // Against a deterministic fixed loader, iteration i's "current"
        // must equal a fresh loader's batch i, and "next" batch i+1.
        let mut reference = loader(4);
        let expected: Vec<MiniBatch> = (0..5).map(|_| reference.next_batch()).collect();
        let mut look = LookaheadLoader::new(loader(4));
        for i in 0..4 {
            let (cur, next) = look.advance();
            assert_eq!(cur, &expected[i], "current at iter {i}");
            assert_eq!(next, &expected[i + 1], "next at iter {i}");
            let popped = look.finish_iteration();
            assert_eq!(popped, expected[i]);
        }
    }

    #[test]
    fn lookahead_overhead_counts_one_batch() {
        let mut look = LookaheadLoader::new(loader(8));
        let (_cur, next) = look.advance();
        let expect = next.sparse_index_bytes();
        assert_eq!(look.lookahead_overhead_bytes(), expect);
        // 8 samples × 2 tables × pooling 1 × 4 bytes = 64.
        assert_eq!(expect, 64);
    }

    #[test]
    #[should_panic(expected = "finish_iteration before advance")]
    fn finish_before_advance_panics() {
        let mut look = LookaheadLoader::new(loader(2));
        let _ = look.finish_iteration();
    }

    #[test]
    fn bounded_queue_is_fifo_and_drains_after_close() {
        let q = BoundedQueue::new(4);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.len(), 2);
        q.close();
        assert_eq!(q.push(3), Err(3), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None, "drained + closed");
        assert!(q.is_empty());
    }

    #[test]
    fn bounded_queue_applies_backpressure_across_threads() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(2));
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                // 100 items through a 2-slot queue: the producer must
                // block repeatedly, but every item arrives in order.
                for i in 0..100u32 {
                    q.push(i).expect("consumer outlives producer");
                }
            })
        };
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(q.pop().expect("producer sends 100"));
        }
        producer.join().expect("producer");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert!(q.len() <= 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn bounded_queue_rejects_zero_capacity() {
        let _ = BoundedQueue::<u8>::new(0);
    }

    #[test]
    fn lookahead_source_trait_matches_inherent_methods() {
        let mut a = LookaheadLoader::new(loader(4));
        let mut b = LookaheadLoader::new(loader(4));
        let (c1, n1) = LookaheadLoader::advance(&mut a);
        let (c1, n1) = (c1.clone(), n1.clone());
        let (c2, n2) = LookaheadSource::advance(&mut b);
        assert_eq!((&c1, &n1), (c2, n2));
        assert_eq!(LookaheadSource::nominal_batch_size(&b), 4);
    }
}
