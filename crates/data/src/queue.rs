//! The two-entry `InputQueue` of LazyDP (Algorithm 1, lines 3–5, 26).
//!
//! LazyDP must know which embedding rows the *next* iteration will gather
//! so it can flush their pending noise first (paper §5.1: "prefetching a
//! single mini-batch in advance is sufficient"). [`InputQueue`] is the
//! faithful two-slot queue; [`LookaheadLoader`] drives it from any
//! [`BatchSource`], presenting `(current, next)` batch views per
//! iteration exactly as the pseudo-code does.

use crate::batch::MiniBatch;
use crate::loader::BatchSource;
use std::collections::VecDeque;

/// A queue holding at most two consecutive mini-batches
/// (`Queue(size = 2)` in Algorithm 1).
#[derive(Debug, Clone, Default)]
pub struct InputQueue<T> {
    slots: VecDeque<T>,
}

impl<T> InputQueue<T> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self {
            slots: VecDeque::with_capacity(2),
        }
    }

    /// Pushes the next mini-batch (Algorithm 1 line 5/7).
    ///
    /// # Panics
    ///
    /// Panics if the queue already holds two batches — LazyDP only ever
    /// needs one batch of lookahead, so a deeper queue indicates a
    /// driver bug.
    pub fn push(&mut self, item: T) {
        assert!(self.slots.len() < 2, "InputQueue holds at most 2 batches");
        self.slots.push_back(item);
    }

    /// The current iteration's batch (Algorithm 1 `head()`).
    #[must_use]
    pub fn head(&self) -> Option<&T> {
        self.slots.front()
    }

    /// The next iteration's batch (Algorithm 1 `tail()`).
    ///
    /// Returns `None` when fewer than two batches are queued.
    #[must_use]
    pub fn tail(&self) -> Option<&T> {
        if self.slots.len() == 2 {
            self.slots.back()
        } else {
            None
        }
    }

    /// Pops the consumed head batch (Algorithm 1 line 26).
    pub fn pop(&mut self) -> Option<T> {
        self.slots.pop_front()
    }

    /// Number of queued batches (0, 1, or 2).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the queue is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// Drives a [`BatchSource`] through an [`InputQueue`], handing the
/// optimizer `(current, next)` batch pairs.
///
/// Per iteration it fetches exactly **one** new batch — "identical to
/// baseline SGD and DP-SGD" (paper §5.2.1) — and reuses the previous
/// iteration's prefetched batch as the current one.
#[derive(Debug, Clone)]
pub struct LookaheadLoader<S> {
    source: S,
    queue: InputQueue<MiniBatch>,
}

impl<S: BatchSource> LookaheadLoader<S> {
    /// Wraps a batch source, fetching the bootstrap batch
    /// (Algorithm 1 line 5).
    pub fn new(mut source: S) -> Self {
        let mut queue = InputQueue::new();
        queue.push(source.next_batch());
        Self { source, queue }
    }

    /// Advances one iteration: fetches one new batch and returns
    /// `(current, next)` views (Algorithm 1 lines 7, 9, 12).
    ///
    /// Call [`finish_iteration`](Self::finish_iteration) after the
    /// optimizer step to release the consumed batch (line 26).
    pub fn advance(&mut self) -> (&MiniBatch, &MiniBatch) {
        self.queue.push(self.source.next_batch());
        let cur = self.queue.head().expect("queue holds current batch");
        let next = self.queue.tail().expect("queue holds next batch");
        (cur, next)
    }

    /// Pops the consumed current batch.
    ///
    /// # Panics
    ///
    /// Panics if called before [`advance`](Self::advance).
    pub fn finish_iteration(&mut self) -> MiniBatch {
        assert_eq!(self.queue.len(), 2, "finish_iteration before advance");
        self.queue.pop().expect("non-empty queue")
    }

    /// The underlying source.
    #[must_use]
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Extra memory the lookahead costs versus a plain loader: the
    /// sparse-index bytes of the one prefetched batch (paper §7.2:
    /// 213 KB for the default configuration).
    #[must_use]
    pub fn lookahead_overhead_bytes(&self) -> u64 {
        self.queue
            .tail()
            .or_else(|| self.queue.head())
            .map_or(0, MiniBatch::sparse_index_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{SyntheticConfig, SyntheticDataset};
    use crate::loader::FixedBatchLoader;

    fn loader(batch: usize) -> FixedBatchLoader {
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 32, 64));
        FixedBatchLoader::new(ds, batch)
    }

    #[test]
    fn queue_head_tail_pop_protocol() {
        let mut q = InputQueue::new();
        assert!(q.is_empty());
        q.push(1);
        assert_eq!(q.head(), Some(&1));
        assert_eq!(q.tail(), None, "tail needs two entries");
        q.push(2);
        assert_eq!(q.head(), Some(&1));
        assert_eq!(q.tail(), Some(&2));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.head(), Some(&2));
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at most 2")]
    fn queue_rejects_third_batch() {
        let mut q = InputQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
    }

    #[test]
    fn lookahead_sees_batches_in_order_with_one_batch_lag() {
        // Against a deterministic fixed loader, iteration i's "current"
        // must equal a fresh loader's batch i, and "next" batch i+1.
        let mut reference = loader(4);
        let expected: Vec<MiniBatch> = (0..5).map(|_| reference.next_batch()).collect();
        let mut look = LookaheadLoader::new(loader(4));
        for i in 0..4 {
            let (cur, next) = look.advance();
            assert_eq!(cur, &expected[i], "current at iter {i}");
            assert_eq!(next, &expected[i + 1], "next at iter {i}");
            let popped = look.finish_iteration();
            assert_eq!(popped, expected[i]);
        }
    }

    #[test]
    fn lookahead_overhead_counts_one_batch() {
        let mut look = LookaheadLoader::new(loader(8));
        let (_cur, next) = look.advance();
        let expect = next.sparse_index_bytes();
        assert_eq!(look.lookahead_overhead_bytes(), expect);
        // 8 samples × 2 tables × pooling 1 × 4 bytes = 64.
        assert_eq!(expect, 64);
    }

    #[test]
    #[should_panic(expected = "finish_iteration before advance")]
    fn finish_before_advance_panics() {
        let mut look = LookaheadLoader::new(loader(2));
        let _ = look.finish_iteration();
    }
}
