//! Batch sources: fixed-size (non-private) and Poisson-sampling (DP).

use crate::batch::MiniBatch;
use crate::dataset::SyntheticDataset;
use lazydp_rng::{poisson_sample, Xoshiro256PlusPlus};

/// A source of training mini-batches.
///
/// Both loader styles are infinite streams (training is measured in
/// iterations, not epochs, throughout the paper's evaluation).
pub trait BatchSource {
    /// Produces the next mini-batch.
    fn next_batch(&mut self) -> MiniBatch;

    /// Nominal (expected) batch size.
    fn nominal_batch_size(&self) -> usize;
}

/// Sequential fixed-size loader used by the non-private SGD baseline:
/// deals deterministic, contiguous batches, wrapping around the dataset.
#[derive(Debug, Clone)]
pub struct FixedBatchLoader {
    dataset: SyntheticDataset,
    batch_size: usize,
    cursor: usize,
}

impl FixedBatchLoader {
    /// Creates a loader dealing `batch_size` samples per call.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0` or the dataset is empty.
    #[must_use]
    pub fn new(dataset: SyntheticDataset, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!dataset.is_empty(), "dataset must be non-empty");
        Self {
            dataset,
            batch_size,
            cursor: 0,
        }
    }
}

impl BatchSource for FixedBatchLoader {
    fn next_batch(&mut self) -> MiniBatch {
        let n = self.dataset.len();
        let ids: Vec<usize> = (0..self.batch_size)
            .map(|k| (self.cursor + k) % n)
            .collect();
        self.cursor = (self.cursor + self.batch_size) % n;
        self.dataset.batch_of(&ids)
    }

    fn nominal_batch_size(&self) -> usize {
        self.batch_size
    }
}

/// Poisson-sampling loader: each example enters the batch independently
/// with rate `q = batch_size / dataset_len` — the sampling scheme the
/// RDP accountant of `lazydp-privacy` assumes and the one Opacus'
/// `DPDataLoader` implements (paper Fig. 9(b)).
#[derive(Debug, Clone)]
pub struct PoissonLoader {
    dataset: SyntheticDataset,
    batch_size: usize,
    rate: f64,
    rng: Xoshiro256PlusPlus,
}

impl PoissonLoader {
    /// Creates a loader with sampling rate `batch_size / dataset.len()`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`, the dataset is empty, or the rate
    /// exceeds 1.
    #[must_use]
    pub fn new(dataset: SyntheticDataset, batch_size: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        assert!(!dataset.is_empty(), "dataset must be non-empty");
        let rate = batch_size as f64 / dataset.len() as f64;
        assert!(rate <= 1.0, "batch size exceeds dataset size");
        Self {
            dataset,
            batch_size,
            rate,
            rng: Xoshiro256PlusPlus::seed_from(seed),
        }
    }

    /// The per-example inclusion probability `q`.
    #[must_use]
    pub fn sampling_rate(&self) -> f64 {
        self.rate
    }
}

impl BatchSource for PoissonLoader {
    fn next_batch(&mut self) -> MiniBatch {
        let ids = poisson_sample(&mut self.rng, self.dataset.len(), self.rate);
        self.dataset.batch_of(&ids)
    }

    fn nominal_batch_size(&self) -> usize {
        self.batch_size
    }
}

/// Adapter dealing batches from a pre-recorded trace of index lists —
/// used by tests that need full control over which rows are accessed at
/// which iteration (e.g. the Fig. 7 walkthrough).
#[derive(Debug, Clone)]
pub struct ScriptedLoader {
    dataset: SyntheticDataset,
    script: Vec<Vec<usize>>,
    cursor: usize,
}

impl ScriptedLoader {
    /// Creates a loader that deals `script[i]` at call `i`, wrapping.
    ///
    /// # Panics
    ///
    /// Panics if the script is empty.
    #[must_use]
    pub fn new(dataset: SyntheticDataset, script: Vec<Vec<usize>>) -> Self {
        assert!(!script.is_empty(), "script must be non-empty");
        Self {
            dataset,
            script,
            cursor: 0,
        }
    }
}

impl BatchSource for ScriptedLoader {
    fn next_batch(&mut self) -> MiniBatch {
        let ids = &self.script[self.cursor % self.script.len()];
        self.cursor += 1;
        self.dataset.batch_of(ids)
    }

    fn nominal_batch_size(&self) -> usize {
        self.script.iter().map(Vec::len).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticConfig;

    fn dataset(n: usize) -> SyntheticDataset {
        SyntheticDataset::new(SyntheticConfig::small(2, 64, n))
    }

    #[test]
    fn fixed_loader_wraps_deterministically() {
        let mut l = FixedBatchLoader::new(dataset(10), 4);
        let b1 = l.next_batch();
        let b2 = l.next_batch();
        let b3 = l.next_batch(); // wraps: samples 8,9,0,1
        assert_eq!(b1.batch_size(), 4);
        assert_eq!(b2.batch_size(), 4);
        assert_eq!(b3.batch_size(), 4);
        let mut l2 = FixedBatchLoader::new(dataset(10), 4);
        assert_eq!(l2.next_batch(), b1, "deterministic restart");
    }

    #[test]
    fn poisson_loader_realized_sizes_vary_around_nominal() {
        let mut l = PoissonLoader::new(dataset(1000), 100, 7);
        assert!((l.sampling_rate() - 0.1).abs() < 1e-12);
        let sizes: Vec<usize> = (0..100).map(|_| l.next_batch().batch_size()).collect();
        let mean = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        assert!((mean - 100.0).abs() < 10.0, "mean realized size {mean}");
        assert!(sizes.iter().any(|&s| s != 100), "sizes must vary");
    }

    #[test]
    fn poisson_batches_are_consistent() {
        let mut l = PoissonLoader::new(dataset(200), 20, 3);
        for _ in 0..20 {
            let b = l.next_batch();
            assert!(b.is_consistent());
        }
    }

    #[test]
    fn scripted_loader_follows_script() {
        let mut l = ScriptedLoader::new(dataset(10), vec![vec![0, 1], vec![5]]);
        assert_eq!(l.next_batch().batch_size(), 2);
        assert_eq!(l.next_batch().batch_size(), 1);
        assert_eq!(l.next_batch().batch_size(), 2, "wraps around");
        assert_eq!(l.nominal_batch_size(), 2);
    }

    #[test]
    #[should_panic(expected = "batch size exceeds dataset")]
    fn poisson_rejects_oversized_batch() {
        let _ = PoissonLoader::new(dataset(10), 11, 0);
    }
}
