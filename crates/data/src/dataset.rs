//! Deterministic synthetic Criteo-style dataset with a planted ground
//! truth.
//!
//! The paper trains on MLPerf DLRM inputs (Criteo-style: 13 dense
//! features + 26 categorical features) with embedding accesses drawn
//! from a configurable distribution (§6: uniform; Fig. 13(d): skewed).
//! Real Criteo data is not redistributable, so we *plant* a logistic
//! model: each sample's label is Bernoulli of a logit built from its
//! dense features and the hidden "preference" of its categorical rows.
//! Training on this data measurably reduces loss, which the end-to-end
//! tests use to show every optimizer actually learns.
//!
//! Samples are generated **statelessly**: sample `i` is a pure function
//! of `(seed, i)` via counter-based streams, so datasets of any length
//! cost O(1) memory and loaders can revisit samples in any order.

use crate::batch::MiniBatch;
use crate::trace::AccessDistribution;
use lazydp_embedding::bag::BagIndices;
use lazydp_rng::counter::CounterRng;
use lazydp_rng::{gaussian, Prng};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticConfig {
    /// Dense features per sample (13 for Criteo).
    pub num_dense: usize,
    /// Row-count of each embedding table (26 entries for Criteo).
    pub table_rows: Vec<u64>,
    /// Lookups per table per sample (MLPerf DLRM default: 1).
    pub pooling: usize,
    /// Number of samples in the dataset.
    pub num_samples: usize,
    /// Access distribution per table (must match `table_rows` length).
    pub distributions: Vec<AccessDistribution>,
    /// RNG seed; two datasets with the same config and seed are equal.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A small Criteo-like config with uniform accesses — the workhorse
    /// for functional tests.
    #[must_use]
    pub fn small(num_tables: usize, rows_per_table: u64, num_samples: usize) -> Self {
        let table_rows = vec![rows_per_table; num_tables];
        let distributions = table_rows
            .iter()
            .map(|&r| AccessDistribution::uniform(r))
            .collect();
        Self {
            num_dense: 13,
            table_rows,
            pooling: 1,
            num_samples,
            distributions,
            seed: 0x1a2b_3c4d,
        }
    }

    /// Replaces every table's distribution.
    #[must_use]
    pub fn with_distributions(mut self, distributions: Vec<AccessDistribution>) -> Self {
        assert_eq!(
            distributions.len(),
            self.table_rows.len(),
            "one distribution per table"
        );
        self.distributions = distributions;
        self
    }

    /// Sets the pooling factor (lookups per table per sample).
    #[must_use]
    pub fn with_pooling(mut self, pooling: usize) -> Self {
        assert!(pooling > 0, "pooling must be positive");
        self.pooling = pooling;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The generated dataset. See the module docs for the planted-model
/// construction.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    config: SyntheticConfig,
    /// Planted dense-feature weights (length `num_dense`).
    dense_weights: Vec<f32>,
    /// Planted per-table, per-row preference magnitude scale. Row
    /// effects are generated statelessly from the row id.
    effect_rng: CounterRng,
    sample_rng: CounterRng,
}

impl SyntheticDataset {
    /// Builds the dataset (O(`num_dense`) work; samples are lazy).
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (table/distribution counts
    /// differ or a distribution's row count disagrees).
    #[must_use]
    pub fn new(config: SyntheticConfig) -> Self {
        assert_eq!(
            config.table_rows.len(),
            config.distributions.len(),
            "one distribution per table"
        );
        for (t, d) in config.distributions.iter().enumerate() {
            assert_eq!(
                d.rows(),
                config.table_rows[t],
                "distribution rows mismatch for table {t}"
            );
        }
        let root = CounterRng::new(config.seed);
        let mut wrng = root.derive(1).stream(0);
        let mut dense_weights = vec![0.0f32; config.num_dense];
        gaussian::fill_standard_normal(&mut wrng, &mut dense_weights);
        for w in &mut dense_weights {
            *w *= 0.3;
        }
        Self {
            dense_weights,
            effect_rng: root.derive(2),
            sample_rng: root.derive(3),
            config,
        }
    }

    /// The dataset configuration.
    #[must_use]
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.config.num_samples
    }

    /// Whether the dataset is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.config.num_samples == 0
    }

    /// The planted effect of `(table, row)` on the logit.
    #[must_use]
    pub fn row_effect(&self, table: usize, row: u64) -> f32 {
        let bits = self.effect_rng.derive(table as u64).at(row);
        // Map to roughly N(0, 0.5²) via two uniforms (cheap CLT-free
        // approach: one Box-Muller draw).
        let mut stream = CounterRng::new(bits).stream(0);
        let (z, _) = gaussian::box_muller(stream.next_f64_open(), stream.next_f64());
        0.5 * z as f32
    }

    /// Generates sample `i`: `(dense, per-table indices, label)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> (Vec<f32>, Vec<Vec<u64>>, f32) {
        assert!(i < self.len(), "sample {i} out of {}", self.len());
        let mut rng = self.sample_rng.derive(i as u64).stream(0);
        let mut dense = vec![0.0f32; self.config.num_dense];
        gaussian::fill_standard_normal(&mut rng, &mut dense);
        let mut logit: f64 = lazydp_tensor::vecops::dot(&dense, &self.dense_weights);
        let mut indices = Vec::with_capacity(self.config.table_rows.len());
        for (t, dist) in self.config.distributions.iter().enumerate() {
            let rows: Vec<u64> = (0..self.config.pooling)
                .map(|_| dist.sample(&mut rng))
                .collect();
            for &r in &rows {
                logit += f64::from(self.row_effect(t, r)) / self.config.pooling as f64;
            }
            indices.push(rows);
        }
        let p = 1.0 / (1.0 + (-logit).exp());
        let label = if rng.next_f64() < p { 1.0 } else { 0.0 };
        (dense, indices, label)
    }

    /// Materializes the samples `ids` into a [`MiniBatch`].
    #[must_use]
    pub fn batch_of(&self, ids: &[usize]) -> MiniBatch {
        let num_tables = self.config.table_rows.len();
        let mut dense = Vec::with_capacity(ids.len() * self.config.num_dense);
        let mut labels = Vec::with_capacity(ids.len());
        let mut per_table: Vec<Vec<Vec<u64>>> = vec![Vec::with_capacity(ids.len()); num_tables];
        for &i in ids {
            let (d, idxs, y) = self.sample(i);
            dense.extend_from_slice(&d);
            labels.push(y);
            for (t, rows) in idxs.into_iter().enumerate() {
                per_table[t].push(rows);
            }
        }
        MiniBatch {
            dense,
            num_dense: self.config.num_dense,
            sparse: per_table
                .iter()
                .map(|s| BagIndices::from_samples(s))
                .collect(),
            labels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SkewLevel;

    #[test]
    fn samples_are_deterministic_and_distinct() {
        let ds = SyntheticDataset::new(SyntheticConfig::small(4, 100, 50));
        let a = ds.sample(7);
        let b = ds.sample(7);
        assert_eq!(a, b);
        let c = ds.sample(8);
        assert_ne!(a.0, c.0, "dense features differ across samples");
    }

    #[test]
    fn sample_shapes_respect_config() {
        let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 10).with_pooling(5));
        let (dense, idxs, label) = ds.sample(0);
        assert_eq!(dense.len(), 13);
        assert_eq!(idxs.len(), 3);
        assert!(idxs.iter().all(|t| t.len() == 5));
        assert!(idxs.iter().flatten().all(|&r| r < 64));
        assert!(label == 0.0 || label == 1.0);
    }

    #[test]
    fn batch_of_is_consistent() {
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 32, 100));
        let b = ds.batch_of(&[0, 5, 99]);
        assert_eq!(b.batch_size(), 3);
        assert!(b.is_consistent());
        assert_eq!(b.num_tables(), 2);
        assert_eq!(b.total_lookups(), 6);
    }

    #[test]
    fn labels_correlate_with_planted_logit() {
        // The planted model must produce learnable labels: the empirical
        // click-rate conditioned on positive logit should exceed the
        // rate conditioned on negative logit by a wide margin.
        let ds = SyntheticDataset::new(SyntheticConfig::small(4, 50, 4000));
        let mut pos = (0u32, 0u32);
        let mut neg = (0u32, 0u32);
        for i in 0..ds.len() {
            let (dense, idxs, y) = ds.sample(i);
            let mut logit: f64 = dense
                .iter()
                .zip(ds.dense_weights.iter())
                .map(|(&x, &w)| f64::from(x) * f64::from(w))
                .sum();
            for (t, rows) in idxs.iter().enumerate() {
                for &r in rows {
                    logit += f64::from(ds.row_effect(t, r));
                }
            }
            let bucket = if logit > 0.0 { &mut pos } else { &mut neg };
            bucket.0 += 1;
            bucket.1 += y as u32;
        }
        let p_pos = f64::from(pos.1) / f64::from(pos.0);
        let p_neg = f64::from(neg.1) / f64::from(neg.0);
        assert!(
            p_pos > p_neg + 0.15,
            "labels not separable: p|+ = {p_pos:.3}, p|- = {p_neg:.3}"
        );
    }

    #[test]
    fn skewed_dataset_draws_skewed_indices() {
        let rows = 2_000u64;
        let cfg = SyntheticConfig::small(1, rows, 3000)
            .with_distributions(vec![AccessDistribution::for_skew(rows, SkewLevel::High)]);
        let ds = SyntheticDataset::new(cfg);
        let mut tracker = lazydp_embedding::AccessTracker::new(rows as usize);
        for i in 0..ds.len() {
            let (_, idxs, _) = ds.sample(i);
            tracker.record_all(&idxs[0]);
        }
        // High skew: 90% of accesses on ~0.6% of rows.
        let f = tracker.fraction_for_mass(0.9);
        assert!(f < 0.03, "fraction for 90% mass = {f}");
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn sample_out_of_range_panics() {
        let ds = SyntheticDataset::new(SyntheticConfig::small(1, 10, 5));
        let _ = ds.sample(5);
    }
}
