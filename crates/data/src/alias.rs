//! Walker alias method: O(1) sampling from arbitrary discrete
//! distributions.
//!
//! The skewed-trace generators draw millions of Zipf-distributed row ids
//! (Fig. 13(d) workloads). Inverse-CDF sampling costs `O(log n)` per
//! draw; the alias method (Walker 1977, Vose 1991) preprocesses the
//! probability vector into two tables and then draws with one uniform
//! and one comparison — a constant-time kernel that also vectorizes
//! well. [`AliasTable`] is used by
//! [`AccessDistribution::zipf_fast`](crate::trace::AccessDistribution)
//! and validated against the exact probabilities.

use lazydp_rng::Prng;

/// Preprocessed alias table over `n` outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct AliasTable {
    /// Acceptance probability of each bucket (scaled to u64 for a
    /// branch-cheap integer comparison).
    accept: Vec<u64>,
    /// Alias outcome taken when the acceptance test fails.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds the table from (unnormalized, non-negative) weights with
    /// Vose's O(n) stack construction.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, longer than `u32::MAX`, contains a
    /// negative/non-finite value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs outcomes");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table outcome count exceeds u32"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weight must be finite and >= 0, got {w}"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "weights must not all be zero");
        let n = weights.len();
        // Scaled probabilities p_i * n, partitioned into small/large.
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w / total * n as f64).collect();
        let mut small: Vec<u32> = Vec::new();
        let mut large: Vec<u32> = Vec::new();
        for (i, &p) in scaled.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        let mut accept = vec![u64::MAX; n];
        let mut alias = vec![0u32; n];
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            accept[s as usize] = (scaled[s as usize].min(1.0) * (u64::MAX as f64)) as u64;
            alias[s as usize] = l;
            scaled[l as usize] = (scaled[l as usize] + scaled[s as usize]) - 1.0;
            if scaled[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Leftovers (numerical dust) accept unconditionally.
        for i in small.into_iter().chain(large) {
            accept[i as usize] = u64::MAX;
            alias[i as usize] = i;
        }
        Self { accept, alias }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.accept.len()
    }

    /// Whether the table is empty (never true post-construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.accept.is_empty()
    }

    /// Draws one outcome in O(1).
    pub fn sample<R: Prng>(&self, rng: &mut R) -> u64 {
        let n = self.accept.len() as u64;
        let bucket = rng.next_below(n) as usize;
        if rng.next_u64() <= self.accept[bucket] {
            bucket as u64
        } else {
            u64::from(self.alias[bucket])
        }
    }

    /// Draws `count` outcomes.
    pub fn sample_many<R: Prng>(&self, rng: &mut R, count: usize) -> Vec<u64> {
        (0..count).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn empirical(weights: &[f64], draws: usize, seed: u64) -> Vec<f64> {
        let t = AliasTable::new(weights);
        let mut rng = Xoshiro256PlusPlus::seed_from(seed);
        let mut counts = vec![0u64; weights.len()];
        for _ in 0..draws {
            counts[t.sample(&mut rng) as usize] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn matches_target_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let total = 10.0;
        let freq = empirical(&weights, 400_000, 1);
        for (i, (&w, &f)) in weights.iter().zip(freq.iter()).enumerate() {
            let expect = w / total;
            assert!((f - expect).abs() < 0.004, "outcome {i}: {f} vs {expect}");
        }
    }

    #[test]
    fn handles_extreme_skew_and_zero_weights() {
        let weights = [0.0, 1e-6, 0.999_999, 0.0];
        let freq = empirical(&weights, 200_000, 2);
        assert_eq!(freq[0], 0.0, "zero-weight outcome never drawn");
        assert_eq!(freq[3], 0.0);
        assert!(freq[2] > 0.999);
    }

    #[test]
    fn single_outcome_degenerate() {
        let t = AliasTable::new(&[42.0]);
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        for _ in 0..10 {
            assert_eq!(t.sample(&mut rng), 0);
        }
    }

    #[test]
    fn uniform_weights_stay_uniform() {
        let freq = empirical(&[1.0; 16], 320_000, 4);
        for (i, &f) in freq.iter().enumerate() {
            assert!((f - 1.0 / 16.0).abs() < 0.003, "outcome {i}: {f}");
        }
    }

    #[test]
    fn zipf_alias_matches_zipf_cdf_sampler() {
        use crate::trace::AccessDistribution;
        let rows = 500u64;
        let exponent = 1.1;
        let cdf = AccessDistribution::zipf(rows, exponent);
        let weights: Vec<f64> = (0..rows)
            .map(|r| ((r + 1) as f64).powf(-exponent))
            .collect();
        let alias = AliasTable::new(&weights);
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let draws = 200_000;
        let mut cdf_counts = vec![0u64; rows as usize];
        let mut alias_counts = vec![0u64; rows as usize];
        for _ in 0..draws {
            cdf_counts[cdf.sample(&mut rng) as usize] += 1;
            alias_counts[alias.sample(&mut rng) as usize] += 1;
        }
        // The two samplers must agree on the head of the distribution.
        for r in 0..20 {
            let a = cdf_counts[r] as f64 / draws as f64;
            let b = alias_counts[r] as f64 / draws as f64;
            assert!(
                (a - b).abs() < 5.0 * (a / draws as f64).sqrt() + 0.004,
                "rank {r}: cdf {a} alias {b}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "weights must not all be zero")]
    fn rejects_all_zero() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        let _ = AliasTable::new(&[1.0, f64::NAN]);
    }
}
