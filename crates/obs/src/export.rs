//! Exporters: the sanctioned exits for recorded values.
//!
//! Everything here moves observability data *out* of the process — to
//! a file or to stdout — and returns nothing derived from it to the
//! caller, so these functions are callable from anywhere (examples,
//! binaries) without violating the write-only contract of rule **O1**.
//! The banned read APIs ([`crate::snapshot::capture_metrics`],
//! [`crate::trace::take_trace_events`]) are wrapped *inside* this
//! module, which lint rule O1 sanctions along with `crates/bench`.

use crate::snapshot::capture_metrics;
use crate::trace::take_trace_events;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Writes the current registry snapshot as schema-versioned JSON.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_snapshot_json(path: &Path) -> io::Result<()> {
    std::fs::write(path, capture_metrics().to_json())
}

/// Drains all completed spans and writes them in chrome://tracing
/// "trace event" format (open the file at `chrome://tracing` or
/// <https://ui.perfetto.dev>). Timestamps are µs since the process
/// epoch; every event is a complete (`"ph": "X"`) duration event.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_chrome_trace(path: &Path) -> io::Result<()> {
    let events = take_trace_events();
    let mut s = String::with_capacity(64 + events.len() * 96);
    s.push_str("{\"traceEvents\": [");
    for (i, e) in events.iter().enumerate() {
        let sep = if i == 0 { "" } else { "," };
        let _ = write!(
            s,
            "{sep}\n  {{\"name\": \"{}\", \"cat\": \"lazydp\", \"ph\": \"X\", \
             \"pid\": 1, \"tid\": {}, \"ts\": {}, \"dur\": {}}}",
            e.name,
            e.tid,
            e.start_ns / 1_000,
            (e.dur_ns / 1_000).max(1),
        );
    }
    s.push_str("\n]}\n");
    std::fs::write(path, s)
}

/// [`write_chrome_trace`] when tracing is on; a no-op otherwise, so
/// examples can call it unconditionally and only produce a file under
/// `LAZYDP_OBS=trace`.
///
/// # Errors
///
/// Propagates the underlying file-system error.
pub fn write_chrome_trace_if_tracing(path: &Path) -> io::Result<bool> {
    if crate::trace_enabled() {
        write_chrome_trace(path)?;
        return Ok(true);
    }
    Ok(false)
}

/// Prints the out-of-core store's counters to stdout, one per line.
/// Values go to the terminal, not to the caller — exporter, not read
/// API.
pub fn print_store_summary() {
    let snap = capture_metrics();
    let hits = snap.counter("store.hits");
    let misses = snap.counter("store.misses");
    let faults = hits + misses;
    let hit_rate = if faults == 0 {
        0.0
    } else {
        hits as f64 / faults as f64
    };
    println!("store.hits         = {hits}");
    println!("store.misses       = {misses}");
    println!("store.evictions    = {}", snap.counter("store.evictions"));
    println!("store.write_backs  = {}", snap.counter("store.write_backs"));
    println!(
        "store.bytes_spilled = {}",
        snap.counter("store.bytes_spilled")
    );
    println!(
        "store.bytes_loaded  = {}",
        snap.counter("store.bytes_loaded")
    );
    println!("store.hit_rate     = {hit_rate:.3}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{snapshot::MetricsSnapshot, ObsMode};

    #[test]
    fn snapshot_file_round_trips() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lazydp-obs-snap-{}.json", std::process::id()));
        write_snapshot_json(&path).expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        let snap = MetricsSnapshot::from_json(&text).expect("parse");
        assert_eq!(snap.schema_version, crate::snapshot::SCHEMA_VERSION);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chrome_trace_is_wellformed_and_gated() {
        let _g = crate::test_mode_lock();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lazydp-obs-trace-{}.json", std::process::id()));

        crate::set_mode(ObsMode::Counters);
        assert!(!write_chrome_trace_if_tracing(&path).expect("gated write"));

        crate::set_mode(ObsMode::Trace);
        let _ = crate::trace::take_trace_events();
        {
            crate::span!("test.export");
        }
        assert!(write_chrome_trace_if_tracing(&path).expect("write"));
        crate::set_mode(ObsMode::Counters);
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"name\": \"test.export\""));
        assert!(text.contains("\"ph\": \"X\""));
        std::fs::remove_file(&path).ok();
    }
}
