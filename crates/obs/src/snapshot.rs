//! Point-in-time snapshots of the registry, with a schema-versioned
//! JSON form.
//!
//! [`capture_metrics`] is **the** read API of the metrics registry —
//! the atomics themselves expose no public getters. Lint rule **O1**
//! bans calling it outside `crates/bench`, `crates/obs`, and test
//! code, which is what makes the registry write-only from hot paths:
//! a recorded value can reach a report, never a training decision.
//!
//! The JSON form mirrors the lint report's convention: a top-level
//! `schema_version` so downstream tooling can detect drift, and
//! [`MetricsSnapshot::from_json`] so CI can assert the round-trip.

use crate::metrics::{metrics, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// Version of the JSON schema emitted by [`MetricsSnapshot::to_json`].
/// Bump on any incompatible shape change.
pub const SCHEMA_VERSION: u32 = 1;

/// One histogram's captured state: log2 buckets with trailing zero
/// buckets trimmed, plus the running sum of samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Registry name, e.g. `trainer.pending_depth`.
    pub name: String,
    /// Sum of all recorded samples.
    pub sum: u64,
    /// `buckets[i]` counts samples with bit length `i` (so bucket 0 is
    /// the zero samples). Trailing empty buckets are trimmed.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }
}

/// A captured copy of every counter, gauge, and histogram in the
/// registry, decoupled from the live atomics.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// The schema version this snapshot serializes as.
    pub schema_version: u32,
    /// `(name, value)` for every counter, in registry order.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` for every gauge (integer gauges widened).
    pub gauges: Vec<(String, f64)>,
    /// Every histogram.
    pub histograms: Vec<HistogramSnapshot>,
}

/// Captures the registry right now. **Read API** — callable only from
/// `crates/bench`, `crates/obs`, and tests (lint rule **O1**).
#[must_use]
pub fn capture_metrics() -> MetricsSnapshot {
    let m = metrics();
    let counters = vec![
        ("trainer.steps", m.trainer.steps.get()),
        ("trainer.flush_overlaps", m.trainer.flush_overlaps.get()),
        ("trainer.noise_plan_rows", m.trainer.noise_plan_rows.get()),
        ("trainer.finalize_rows", m.trainer.finalize_rows.get()),
        (
            "adafest.partitions_selected",
            m.adafest.partitions_selected.get(),
        ),
        (
            "adafest.partitions_dropped",
            m.adafest.partitions_dropped.get(),
        ),
        ("store.hits", m.store.hits.get()),
        ("store.misses", m.store.misses.get()),
        ("store.evictions", m.store.evictions.get()),
        ("store.write_backs", m.store.write_backs.get()),
        ("store.bytes_spilled", m.store.bytes_spilled.get()),
        ("store.bytes_loaded", m.store.bytes_loaded.get()),
        ("data.batches_produced", m.data.batches_produced.get()),
        ("data.producer_stalls", m.data.producer_stalls.get()),
        ("exec.par_regions", m.exec.par_regions.get()),
        ("exec.par_chunks", m.exec.par_chunks.get()),
        ("privacy.compositions", m.privacy.compositions.get()),
        ("fault.injected", m.fault.injected.get()),
        ("fault.retries", m.fault.retries.get()),
        ("fault.giveups", m.fault.giveups.get()),
        ("fault.checksum_failures", m.fault.checksum_failures.get()),
        ("fault.degradations", m.fault.degradations.get()),
    ]
    .into_iter()
    .map(|(n, v)| (n.to_string(), v))
    .collect();
    let gauges = vec![
        (
            "data.queue_depth".to_string(),
            m.data.queue_depth.get() as f64,
        ),
        (
            "privacy.spent_epsilon".to_string(),
            m.privacy.spent_epsilon.get(),
        ),
    ];
    let histograms = vec![
        capture_histogram("trainer.pending_depth", &m.trainer.pending_depth),
        capture_histogram("exec.chunks_per_region", &m.exec.chunks_per_region),
    ];
    MetricsSnapshot {
        schema_version: SCHEMA_VERSION,
        counters,
        gauges,
        histograms,
    }
}

fn capture_histogram(name: &str, h: &crate::metrics::Histogram) -> HistogramSnapshot {
    let mut buckets: Vec<u64> = (0..HISTOGRAM_BUCKETS).map(|i| h.bucket(i)).collect();
    while buckets.last() == Some(&0) {
        buckets.pop();
    }
    HistogramSnapshot {
        name: name.to_string(),
        sum: h.sum(),
        buckets,
    }
}

impl MetricsSnapshot {
    /// Value of the named counter (0 when unknown — absent and zero
    /// are indistinguishable by design).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Value of the named gauge (0.0 when unknown).
    #[must_use]
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |(_, v)| *v)
    }

    /// The named histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Per-counter difference `self − earlier` (saturating at 0), for
    /// measuring one run inside a long-lived process. Gauges and
    /// histograms keep `self`'s values.
    #[must_use]
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = self.clone();
        for (name, v) in &mut out.counters {
            *v = v.saturating_sub(earlier.counter(name));
        }
        out
    }

    /// Serializes to the schema-versioned JSON form.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(s, "{{\n  \"schema_version\": {},", self.schema_version);
        s.push_str("\n  \"counters\": {");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{name}\": {v}");
        }
        s.push_str("\n  },\n  \"gauges\": {");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(s, "{sep}\n    \"{name}\": {v}");
        }
        s.push_str("\n  },\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                s,
                "{sep}\n    \"{}\": {{\"sum\": {}, \"buckets\": [",
                h.name, h.sum
            );
            for (j, b) in h.buckets.iter().enumerate() {
                let sep = if j == 0 { "" } else { ", " };
                let _ = write!(s, "{sep}{b}");
            }
            s.push_str("]}");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Parses the JSON form back. Rejects unknown schema versions so
    /// CI catches producer/consumer drift.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or schema problem.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let snap = p.parse_snapshot()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        if snap.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unsupported schema_version {} (expected {})",
                snap.schema_version, SCHEMA_VERSION
            ));
        }
        Ok(snap)
    }
}

/// Minimal recursive-descent parser for exactly the JSON subset
/// [`MetricsSnapshot::to_json`] emits (objects, arrays, plain strings,
/// and decimal numbers — metric names never need escapes).
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\n' || b == b'\t' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}",
                char::from(byte),
                self.pos
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b'"' {
                let s = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid utf-8 in string".to_string())?
                    .to_string();
                self.pos += 1;
                return Ok(s);
            }
            if b == b'\\' {
                return Err(format!("escapes unsupported at byte {}", self.pos));
            }
            self.pos += 1;
        }
        Err("unterminated string".to_string())
    }

    fn number_slice(&mut self) -> Result<&'a str, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(format!("expected number at byte {start}"));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid utf-8 in number".to_string())
    }

    fn parse_u64(&mut self) -> Result<u64, String> {
        let s = self.number_slice()?;
        s.parse::<u64>()
            .map_err(|e| format!("bad integer {s:?}: {e}"))
    }

    fn parse_f64(&mut self) -> Result<f64, String> {
        let s = self.number_slice()?;
        s.parse::<f64>()
            .map_err(|e| format!("bad number {s:?}: {e}"))
    }

    /// Parses `{ "k": v, ... }`, calling `each(self, key)` per entry.
    fn parse_object(
        &mut self,
        mut each: impl FnMut(&mut Self, String) -> Result<(), String>,
    ) -> Result<(), String> {
        self.expect(b'{')?;
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            let key = self.parse_string()?;
            self.expect(b':')?;
            each(self, key)?;
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn parse_u64_array(&mut self) -> Result<Vec<u64>, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(out);
        }
        loop {
            out.push(self.parse_u64()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(out);
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_snapshot(&mut self) -> Result<MetricsSnapshot, String> {
        let mut snap = MetricsSnapshot {
            schema_version: 0,
            counters: Vec::new(),
            gauges: Vec::new(),
            histograms: Vec::new(),
        };
        self.parse_object(|p, key| match key.as_str() {
            "schema_version" => {
                snap.schema_version = u32::try_from(p.parse_u64()?)
                    .map_err(|_| "schema_version out of range".to_string())?;
                Ok(())
            }
            "counters" => p.parse_object(|p, name| {
                let v = p.parse_u64()?;
                snap.counters.push((name, v));
                Ok(())
            }),
            "gauges" => p.parse_object(|p, name| {
                let v = p.parse_f64()?;
                snap.gauges.push((name, v));
                Ok(())
            }),
            "histograms" => p.parse_object(|p, name| {
                let mut sum = 0u64;
                let mut buckets = Vec::new();
                p.parse_object(|p, field| match field.as_str() {
                    "sum" => {
                        sum = p.parse_u64()?;
                        Ok(())
                    }
                    "buckets" => {
                        buckets = p.parse_u64_array()?;
                        Ok(())
                    }
                    other => Err(format!("unknown histogram field {other:?}")),
                })?;
                snap.histograms
                    .push(HistogramSnapshot { name, sum, buckets });
                Ok(())
            }),
            other => Err(format!("unknown top-level key {other:?}")),
        })?;
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn snapshot_round_trips_through_json() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        // Touch a spread of metric kinds so the snapshot is non-trivial.
        metrics().trainer.steps.incr();
        metrics().store.bytes_loaded.add(4096);
        metrics().privacy.spent_epsilon.set_f64(1.2345678901234567);
        metrics().trainer.pending_depth.record(3);
        metrics().trainer.pending_depth.record(1000);
        let snap = capture_metrics();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).expect("round trip");
        assert_eq!(snap, back, "snapshot must survive to_json/from_json");
        assert_eq!(back.schema_version, SCHEMA_VERSION);
        assert!(back.counter("trainer.steps") >= 1);
        let h = back.histogram("trainer.pending_depth").expect("histogram");
        assert!(h.count() >= 2 && h.sum >= 1003);
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let json =
            "{\"schema_version\": 999, \"counters\": {}, \"gauges\": {}, \"histograms\": {}}";
        let err = MetricsSnapshot::from_json(json).expect_err("must reject");
        assert!(err.contains("schema_version"), "{err}");
    }

    #[test]
    fn malformed_json_is_rejected_with_a_position() {
        assert!(MetricsSnapshot::from_json("{\"counters\": [}").is_err());
        assert!(MetricsSnapshot::from_json("").is_err());
        assert!(MetricsSnapshot::from_json("{} trailing").is_err());
    }

    #[test]
    fn delta_since_subtracts_counters() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let before = capture_metrics();
        metrics().store.hits.add(7);
        let after = capture_metrics();
        let delta = after.delta_since(&before);
        assert_eq!(delta.counter("store.hits"), 7);
    }
}
