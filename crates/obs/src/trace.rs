//! Phase spans: scoped wall-clock intervals feeding a preallocated
//! per-thread ring buffer.
//!
//! A span is opened with the [`crate::span!`] macro and closed when the guard
//! drops at the end of the enclosing scope:
//!
//! ```
//! fn flush_phase() {
//!     lazydp_obs::span!("flush.noise_sample");
//!     // ... work ...
//! } // span recorded here (only when LAZYDP_OBS=trace)
//! ```
//!
//! Unless the mode is [`crate::ObsMode::Trace`], opening a span does
//! not even read the clock. When tracing, each completed span is
//! appended to a fixed-capacity thread-local ring ([`RING_CAPACITY`]
//! events, const-initialized — no lazy allocation on first use); full
//! rings drain into a global sink, as does each thread's ring when the
//! thread exits. [`take_trace_events`] is the **read API** — lint rule
//! **O1** restricts it to `crates/bench`, `crates/obs`, and tests; hot
//! paths only ever append.
//!
//! Span names are `&'static str` literals in dotted `phase.subphase`
//! form (`step.forward`, `flush.noise_sample`). Names are part of the
//! privacy surface: lint rule **P1** scans them like format-macro
//! arguments, so a name can never smuggle a gradient-bearing value.

use crate::clock::now_ns;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One completed span on one thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dotted span name, e.g. `step.forward`.
    pub name: &'static str,
    /// Start, in ns since the process epoch ([`crate::clock::now_ns`]).
    pub start_ns: u64,
    /// Duration in ns.
    pub dur_ns: u64,
    /// Small dense thread id (assigned per thread on first span).
    pub tid: u64,
}

const EMPTY_EVENT: TraceEvent = TraceEvent {
    name: "",
    start_ns: 0,
    dur_ns: 0,
    tid: 0,
};

/// Capacity of each thread's ring; a full ring drains to the global
/// sink in one batch.
pub const RING_CAPACITY: usize = 1024;

struct Ring {
    events: [TraceEvent; RING_CAPACITY],
    len: usize,
    /// Dense thread id, assigned lazily (0 = unassigned).
    tid: u64,
}

impl Ring {
    const fn new() -> Self {
        Self {
            events: [EMPTY_EVENT; RING_CAPACITY],
            len: 0,
            tid: 0,
        }
    }

    fn push(&mut self, name: &'static str, start_ns: u64, dur_ns: u64) {
        if self.tid == 0 {
            self.tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        }
        if self.len == RING_CAPACITY {
            drain_into_sink(&mut self.events[..], &mut self.len);
        }
        self.events[self.len] = TraceEvent {
            name,
            start_ns,
            dur_ns,
            tid: self.tid,
        };
        self.len += 1;
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        drain_into_sink(&mut self.events[..], &mut self.len);
    }
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Completed spans drained from per-thread rings. Appending here may
/// allocate — acceptable, because it only happens in `Trace` mode.
static SINK: Mutex<Vec<TraceEvent>> = Mutex::new(Vec::new());

fn drain_into_sink(events: &mut [TraceEvent], len: &mut usize) {
    if *len == 0 {
        return;
    }
    let mut sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sink.extend_from_slice(&events[..*len]);
    *len = 0;
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
}

/// An open span; records a [`TraceEvent`] when dropped. Construct via
/// [`crate::span!`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    start_ns: u64,
    active: bool,
}

impl SpanGuard {
    /// Opens a span. Inert (no clock read) unless tracing is on.
    #[inline]
    #[must_use]
    pub fn begin(name: &'static str) -> Self {
        if crate::trace_enabled() {
            Self {
                name,
                start_ns: now_ns(),
                active: true,
            }
        } else {
            Self {
                name,
                start_ns: 0,
                active: false,
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            let end = now_ns();
            let dur = end.saturating_sub(self.start_ns);
            RING.with(|r| r.borrow_mut().push(self.name, self.start_ns, dur));
        }
    }
}

/// Opens a phase span for the rest of the enclosing scope.
///
/// The name must be a `&'static str` literal in dotted
/// `phase.subphase` form. Lint rule **P1** checks it.
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        let _lazydp_obs_span = $crate::trace::SpanGuard::begin($name);
    };
}

/// Flushes the calling thread's ring and drains every completed span
/// collected so far, in sink order. **Read API** — callable only from
/// `crates/bench`, `crates/obs`, and tests (lint rule **O1**);
/// exporters in [`crate::export`] wrap it.
#[must_use]
pub fn take_trace_events() -> Vec<TraceEvent> {
    RING.with(|r| {
        let mut ring = r.borrow_mut();
        let Ring {
            ref mut events,
            ref mut len,
            ..
        } = *ring;
        drain_into_sink(&mut events[..], len);
    });
    let mut sink = SINK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    std::mem::take(&mut *sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn spans_record_only_in_trace_mode() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let _ = take_trace_events();
        {
            crate::span!("test.counters_mode");
        }
        assert!(take_trace_events().is_empty());

        crate::set_mode(ObsMode::Trace);
        {
            crate::span!("test.trace_mode");
        }
        let events = take_trace_events();
        crate::set_mode(ObsMode::Counters);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].name, "test.trace_mode");
        assert!(events[0].tid >= 1);
    }

    #[test]
    fn nested_spans_close_inner_first() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Trace);
        let _ = take_trace_events();
        {
            crate::span!("test.outer");
            {
                crate::span!("test.inner");
            }
        }
        let events = take_trace_events();
        crate::set_mode(ObsMode::Counters);
        let names: Vec<&str> = events.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["test.inner", "test.outer"]);
        let outer = events[1];
        let inner = events[0];
        assert!(outer.start_ns <= inner.start_ns);
        assert!(outer.dur_ns >= inner.dur_ns);
    }

    #[test]
    fn ring_overflow_drains_to_the_sink() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Trace);
        let _ = take_trace_events();
        for _ in 0..(RING_CAPACITY + 10) {
            crate::span!("test.flood");
        }
        let events = take_trace_events();
        crate::set_mode(ObsMode::Counters);
        assert_eq!(events.len(), RING_CAPACITY + 10);
    }
}
