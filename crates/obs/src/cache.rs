//! Per-instance cache counters that mirror into the global registry.
//!
//! The paged store wants two views of the same events: exact
//! *per-cache* counts (its unit tests pin eviction sequences down to
//! the individual fault) and fleet-wide totals in the
//! [`crate::metrics()`] registry (what `figures -- storage` and the
//! exporters read). [`CacheCounters`] provides both from one record
//! call: the owned fields always increment — they are plain `u64`s
//! behind the cache's own `&mut`, free and deterministic — while the
//! registry mirror goes through the mode-gated atomics.
//!
//! Reading the per-instance values back ([`CacheCounters::obs_read`])
//! is a **read API** under lint rule **O1**: callable only from
//! `crates/bench`, `crates/obs`, and tests. The store itself only ever
//! records.

use crate::metrics::metrics;

/// Hit/miss/eviction counters of one page cache. Write-mostly: hot
/// paths call the `record_*` methods; only tests and bench read back.
#[derive(Debug, Default)]
pub struct CacheCounters {
    hits: u64,
    misses: u64,
    evictions: u64,
    write_backs: u64,
    bytes_spilled: u64,
    bytes_loaded: u64,
}

impl CacheCounters {
    /// Zeroed counters.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            hits: 0,
            misses: 0,
            evictions: 0,
            write_backs: 0,
            bytes_spilled: 0,
            bytes_loaded: 0,
        }
    }

    /// A fault served from a resident frame.
    #[inline]
    pub fn record_hit(&mut self) {
        self.hits += 1;
        metrics().store.hits.incr();
    }

    /// A fault that loaded `bytes_loaded` bytes from the spill file.
    #[inline]
    pub fn record_miss(&mut self, bytes_loaded: u64) {
        self.misses += 1;
        self.bytes_loaded += bytes_loaded;
        metrics().store.misses.incr();
        metrics().store.bytes_loaded.add(bytes_loaded);
    }

    /// A frame evicted to make room.
    #[inline]
    pub fn record_eviction(&mut self) {
        self.evictions += 1;
        metrics().store.evictions.incr();
    }

    /// A dirty frame written back (`bytes_spilled` bytes of spill
    /// traffic) — on eviction or flush.
    #[inline]
    pub fn record_write_back(&mut self, bytes_spilled: u64) {
        self.write_backs += 1;
        self.bytes_spilled += bytes_spilled;
        metrics().store.write_backs.incr();
        metrics().store.bytes_spilled.add(bytes_spilled);
    }

    /// The per-instance values. **Read API** — callable only from
    /// `crates/bench`, `crates/obs`, and tests (lint rule **O1**).
    #[must_use]
    pub fn obs_read(&self) -> CacheView {
        CacheView {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            write_backs: self.write_backs,
            bytes_spilled: self.bytes_spilled,
            bytes_loaded: self.bytes_loaded,
        }
    }
}

/// A captured copy of one cache's counters (see
/// [`CacheCounters::obs_read`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheView {
    /// Faults served from a resident frame.
    pub hits: u64,
    /// Faults that had to load the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Evicted frames that were dirty and had to be written back.
    pub write_backs: u64,
    /// Bytes written back to the spill file (the "spill traffic").
    pub bytes_spilled: u64,
    /// Bytes loaded from the spill file.
    pub bytes_loaded: u64,
}

impl CacheView {
    /// Fraction of faults served from memory (0 accesses counts as
    /// 0.0).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn per_instance_counts_are_exact_even_when_obs_is_off() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Off);
        let mut c = CacheCounters::new();
        c.record_hit();
        c.record_miss(64);
        c.record_miss(64);
        c.record_eviction();
        c.record_write_back(64);
        let v = c.obs_read();
        crate::set_mode(ObsMode::Counters);
        assert_eq!((v.hits, v.misses, v.evictions, v.write_backs), (1, 2, 1, 1));
        assert_eq!((v.bytes_loaded, v.bytes_spilled), (128, 64));
        assert!((v.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn registry_mirror_moves_with_the_instance() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let before = crate::snapshot::capture_metrics();
        let mut c = CacheCounters::new();
        c.record_hit();
        c.record_miss(32);
        let after = crate::snapshot::capture_metrics();
        let d = after.delta_since(&before);
        assert_eq!(d.counter("store.hits"), 1);
        assert_eq!(d.counter("store.misses"), 1);
        assert_eq!(d.counter("store.bytes_loaded"), 32);
    }

    #[test]
    fn empty_view_hit_rate_is_zero() {
        assert_eq!(CacheView::default().hit_rate(), 0.0);
    }
}
