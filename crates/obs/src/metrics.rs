//! The static metrics registry: relaxed-atomic counters, gauges, and
//! fixed-bucket log2 histograms.
//!
//! Everything here is `const`-constructible and lives in one `static`
//! [`Metrics`] value, so recording never locks and never allocates.
//! Recording is gated on [`crate::counters_enabled`] — with
//! `LAZYDP_OBS=off` each call is one relaxed load plus a predictable
//! branch. The write APIs are public; the read side is deliberately
//! `pub(crate)` so recorded values can only leave through
//! [`crate::snapshot::capture_metrics`] (lint rule **O1**).
//!
//! Call sites spell the registry access fully qualified —
//! `lazydp_obs::metrics().store.hits.incr()` — which is also what
//! anchors lint rule **P1**'s scan of metric-recording statements.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event count.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (const — usable in `static` registries).
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n` (relaxed; no-op unless counters are enabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::counters_enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value-wins integer gauge (e.g. a queue depth).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores `v` (relaxed; no-op unless counters are enabled).
    #[inline]
    pub fn set(&self, v: u64) {
        if crate::counters_enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    pub(crate) fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A last-value-wins float gauge (e.g. spent ε), stored as `f64` bits
/// in an atomic word.
#[derive(Debug)]
pub struct GaugeF64(AtomicU64);

impl GaugeF64 {
    /// A gauge holding `0.0`.
    #[must_use]
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Stores `v` (relaxed; no-op unless counters are enabled).
    #[inline]
    pub fn set_f64(&self, v: f64) {
        if crate::counters_enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

impl Default for GaugeF64 {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of log2 buckets: bucket `i` counts values `v` with
/// `bit_length(v) == i`, i.e. bucket 0 holds `v == 0`, bucket 1 holds
/// `v == 1`, bucket 2 holds 2–3, …, bucket 64 holds the top half of
/// the `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A fixed-bucket log2 histogram of `u64` samples. Storage is a flat
/// array of relaxed atomics — preallocated, lock-free, alloc-free.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram (const — usable in `static` registries).
    #[must_use]
    pub const fn new() -> Self {
        // `AtomicU64` is not `Copy`, so the array comes from an inline
        // const expression rather than `[AtomicU64::new(0); N]`.
        Self {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample (relaxed; no-op unless counters are enabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::counters_enabled() {
            let idx = (u64::BITS - v.leading_zeros()) as usize;
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    pub(crate) fn bucket(&self, i: usize) -> u64 {
        self.buckets[i].load(Ordering::Relaxed)
    }

    pub(crate) fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Trainer-step phases and noise-plan shape (`crates/core`).
#[derive(Debug)]
pub struct TrainerMetrics {
    /// Optimizer steps completed.
    pub steps: Counter,
    /// Steps whose noise flush ran overlapped with dense compute.
    pub flush_overlaps: Counter,
    /// Rows planned for lazy noise flushes (across all tables).
    pub noise_plan_rows: Counter,
    /// Pending-history depth (delayed iterations) per flushed row.
    pub pending_depth: Histogram,
    /// Rows flushed by `finalize_model`'s segmented sweep.
    pub finalize_rows: Counter,
}

/// DP-AdaFEST private partition selection (`crates/dpsgd`).
#[derive(Debug)]
pub struct AdafestMetrics {
    /// Partitions whose noisy count cleared the threshold.
    pub partitions_selected: Counter,
    /// Partitions dropped (gradient contribution discarded).
    pub partitions_dropped: Counter,
}

/// Paged out-of-core store (`crates/store`).
#[derive(Debug)]
pub struct StoreMetrics {
    /// Page faults satisfied by a resident frame.
    pub hits: Counter,
    /// Page faults that had to load from the spill file.
    pub misses: Counter,
    /// Frames evicted by the clock hand.
    pub evictions: Counter,
    /// Dirty frames written back to the spill file.
    pub write_backs: Counter,
    /// Bytes written to the spill file.
    pub bytes_spilled: Counter,
    /// Bytes read from the spill file.
    pub bytes_loaded: Counter,
}

/// Input pipeline (`crates/data`).
#[derive(Debug)]
pub struct DataMetrics {
    /// Batches produced by prefetch/lookahead producers.
    pub batches_produced: Counter,
    /// Producer blocks on a full bounded queue.
    pub producer_stalls: Counter,
    /// Most recent bounded-queue depth observed by the consumer.
    pub queue_depth: Gauge,
}

/// Deterministic executor (`crates/exec`).
#[derive(Debug)]
pub struct ExecMetrics {
    /// Parallel regions entered (`par_for` / `par_map_chunks`).
    pub par_regions: Counter,
    /// Chunks dispatched across all regions.
    pub par_chunks: Counter,
    /// Chunks per region — occupancy of the worker pool.
    pub chunks_per_region: Histogram,
}

/// Privacy accounting (`crates/privacy`).
#[derive(Debug)]
pub struct PrivacyMetrics {
    /// Successful budget compositions.
    pub compositions: Counter,
    /// ε spent so far at the engine's δ (updated on each composition).
    pub spent_epsilon: GaugeF64,
}

/// Fault injection and recovery (`crates/fault`, `crates/store`,
/// `crates/core`).
#[derive(Debug)]
pub struct FaultMetrics {
    /// Faults fired by the active `FaultPlan` (all kinds).
    pub injected: Counter,
    /// Retries of an operation after a transient failure.
    pub retries: Counter,
    /// Operations abandoned after exhausting their retry budget.
    pub giveups: Counter,
    /// Pages whose checksum did not match at fault-in (torn/corrupt).
    pub checksum_failures: Counter,
    /// Tables promoted from the paged to the resident backend after a
    /// persistently failing spill device.
    pub degradations: Counter,
}

/// The whole registry. One static instance exists; get it with
/// [`metrics()`].
#[derive(Debug)]
pub struct Metrics {
    /// Trainer-step phases and noise-plan shape.
    pub trainer: TrainerMetrics,
    /// DP-AdaFEST partition selection.
    pub adafest: AdafestMetrics,
    /// Paged out-of-core store.
    pub store: StoreMetrics,
    /// Input pipeline.
    pub data: DataMetrics,
    /// Deterministic executor.
    pub exec: ExecMetrics,
    /// Privacy accounting.
    pub privacy: PrivacyMetrics,
    /// Fault injection and recovery.
    pub fault: FaultMetrics,
}

impl Metrics {
    const fn new() -> Self {
        Self {
            trainer: TrainerMetrics {
                steps: Counter::new(),
                flush_overlaps: Counter::new(),
                noise_plan_rows: Counter::new(),
                pending_depth: Histogram::new(),
                finalize_rows: Counter::new(),
            },
            adafest: AdafestMetrics {
                partitions_selected: Counter::new(),
                partitions_dropped: Counter::new(),
            },
            store: StoreMetrics {
                hits: Counter::new(),
                misses: Counter::new(),
                evictions: Counter::new(),
                write_backs: Counter::new(),
                bytes_spilled: Counter::new(),
                bytes_loaded: Counter::new(),
            },
            data: DataMetrics {
                batches_produced: Counter::new(),
                producer_stalls: Counter::new(),
                queue_depth: Gauge::new(),
            },
            exec: ExecMetrics {
                par_regions: Counter::new(),
                par_chunks: Counter::new(),
                chunks_per_region: Histogram::new(),
            },
            privacy: PrivacyMetrics {
                compositions: Counter::new(),
                spent_epsilon: GaugeF64::new(),
            },
            fault: FaultMetrics {
                injected: Counter::new(),
                retries: Counter::new(),
                giveups: Counter::new(),
                checksum_failures: Counter::new(),
                degradations: Counter::new(),
            },
        }
    }
}

static METRICS: Metrics = Metrics::new();

/// The process-wide registry. Write-only from hot paths (rule **O1**);
/// read it through [`crate::snapshot::capture_metrics`].
#[inline]
#[must_use]
pub fn metrics() -> &'static Metrics {
    &METRICS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObsMode;

    #[test]
    fn counters_gauges_histograms_record_when_enabled() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.set(17);
        assert_eq!(g.get(), 17);

        let f = GaugeF64::new();
        f.set_f64(1.25);
        assert!((f.get() - 1.25).abs() < 1e-12);

        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(3); // bucket 2
        h.record(6); // bucket 3
        assert_eq!(
            (h.bucket(0), h.bucket(1), h.bucket(2), h.bucket(3)),
            (1, 1, 1, 1)
        );
        assert_eq!(h.sum(), 10);
    }

    #[test]
    fn off_mode_drops_everything() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Off);
        let c = Counter::new();
        let g = Gauge::new();
        let f = GaugeF64::new();
        let h = Histogram::new();
        c.incr();
        g.set(9);
        f.set_f64(9.0);
        h.record(9);
        assert_eq!((c.get(), g.get(), h.sum()), (0, 0, 0));
        assert_eq!(f.get(), 0.0);
        crate::set_mode(ObsMode::Counters);
    }

    #[test]
    fn histogram_extremes_land_in_end_buckets() {
        let _g = crate::test_mode_lock();
        crate::set_mode(ObsMode::Counters);
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(HISTOGRAM_BUCKETS - 1), 1);
    }
}
