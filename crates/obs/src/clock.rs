//! Wall-clock measurement, quarantined.
//!
//! The workspace lint pass (rule **D2**) bans `std::time::Instant` and
//! `SystemTime` everywhere outside `crates/bench` and `crates/obs`:
//! wall-clock reads are inherently non-deterministic, so a timing call
//! sitting next to training logic is a standing invitation to let "how
//! long did it take" leak into "what did it compute". This module is
//! the single sanctioned home of the clock — `lazydp_bench::timer`
//! re-exports [`Stopwatch`] from here, and the span machinery in
//! [`crate::trace`] reads [`now_ns`] only when tracing is on.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// A started wall clock. Measurement only — a `Stopwatch` reading must
/// never feed back into training state (DESIGN.md invariant #1).
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the clock.
    #[must_use]
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Time since [`Stopwatch::start`].
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as a float, convenient for rate arithmetic.
    #[must_use]
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

/// Process-wide epoch for span timestamps: fixed on first use so every
/// thread's events share one timeline.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide epoch (first call). Monotone,
/// allocation-free, shared across threads — the timestamp base for
/// every [`crate::trace::TraceEvent`].
#[must_use]
pub fn now_ns() -> u64 {
    let nanos = EPOCH.get_or_init(Instant::now).elapsed().as_nanos();
    u64::try_from(nanos).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_is_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
        assert!(sw.elapsed_secs() >= 0.0);
    }

    #[test]
    fn now_ns_is_monotone_across_calls() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
