//! Privacy-safe, determinism-safe observability for the LazyDP stack.
//!
//! Every other part of the workspace is built around two hard contracts
//! — released models are bitwise-deterministic, and nothing
//! gradient-bearing ever leaves the training loop (ARCHITECTURE.md,
//! "Determinism contract"). Observability is where both contracts are
//! usually broken by accident: a timing read feeding a heuristic, a
//! debug log printing a per-example norm. This crate is the sanctioned
//! way to see inside the system without either failure mode:
//!
//! * **Write-only from hot paths.** Training code may *record*
//!   ([`metrics()`], [`crate::span!`]) but never *read back*: the read APIs
//!   ([`snapshot::capture_metrics`], [`trace::take_trace_events`]) are
//!   callable only from `crates/bench`, tests, and the exporters in
//!   [`export`] — machine-checked by lint rule **O1**.
//! * **No gradient or per-example values.** Metrics carry counts,
//!   bytes, durations, and ε — nothing else. Lint rule **P1** scans
//!   metric-recording call sites and span names for gradient-bearing
//!   identifiers, exactly as it does for `println!`.
//! * **Deterministic when it matters.** The wall clock lives in
//!   [`clock`], the single sanctioned home alongside `crates/bench`
//!   (rule **D2**); nothing recorded here may flow back into training,
//!   so the released model is bitwise-identical for every
//!   [`ObsMode`] — pinned by `tests/obs_invariance.rs`.
//! * **Near-zero cost when off, zero-alloc when counting.** Counters
//!   and gauges are relaxed atomics in a `static` registry; histograms
//!   have fixed log2 buckets; spans write into a preallocated
//!   per-thread ring. In [`ObsMode::Off`] every record is one relaxed
//!   load and a predictable branch; in [`ObsMode::Counters`] the
//!   steady-state training step still allocates zero heap bytes
//!   (enforced by `tests/alloc_*`).
//!
//! # Runtime gate
//!
//! The mode comes from the `LAZYDP_OBS` environment variable:
//! `off`, `counters` (the default), or `trace`. Tests override it
//! process-wide with [`set_mode`].
//!
//! # Example
//!
//! ```
//! lazydp_obs::set_mode(lazydp_obs::ObsMode::Counters);
//! lazydp_obs::metrics().store.hits.incr();
//! lazydp_obs::metrics().store.bytes_loaded.add(4096);
//! // Reading back happens only in bench/tests/exporters (rule O1):
//! let snap = lazydp_obs::snapshot::capture_metrics();
//! assert!(snap.counter("store.hits") >= 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod snapshot;
pub mod trace;

pub use cache::{CacheCounters, CacheView};
pub use metrics::{metrics, Metrics};
pub use snapshot::MetricsSnapshot;

use std::sync::atomic::{AtomicU8, Ordering};

/// How much the observability layer records.
///
/// Ordered: `Off < Counters < Trace`. Each level includes everything
/// the previous one records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ObsMode {
    /// Record nothing. Every instrumentation site costs one relaxed
    /// atomic load plus a predictable branch.
    Off = 0,
    /// Record counters, gauges, and histograms (relaxed atomics, no
    /// locks, no allocation). Spans are skipped without reading the
    /// clock. This is the default.
    Counters = 1,
    /// Additionally record phase spans into per-thread ring buffers
    /// for the chrome://tracing exporter. Draining a full ring may
    /// allocate; the zero-alloc contract applies to `Counters` only.
    Trace = 2,
}

/// Sentinel meaning "LAZYDP_OBS not consulted yet".
const MODE_UNRESOLVED: u8 = u8::MAX;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNRESOLVED);

/// The active [`ObsMode`], resolved from `LAZYDP_OBS` on first use and
/// cached process-wide. `off` / `counters` / `trace` select the mode;
/// anything else (including unset) means `counters`.
#[inline]
pub fn mode() -> ObsMode {
    match MODE.load(Ordering::Relaxed) {
        0 => ObsMode::Off,
        1 => ObsMode::Counters,
        2 => ObsMode::Trace,
        _ => resolve_mode(),
    }
}

#[cold]
fn resolve_mode() -> ObsMode {
    let m = match std::env::var("LAZYDP_OBS").as_deref() {
        Ok("off") => ObsMode::Off,
        Ok("trace") => ObsMode::Trace,
        _ => ObsMode::Counters,
    };
    MODE.store(m as u8, Ordering::Relaxed);
    m
}

/// Overrides the mode process-wide (tests and experiment drivers).
pub fn set_mode(m: ObsMode) {
    MODE.store(m as u8, Ordering::Relaxed);
}

/// True when counters/gauges/histograms should record.
#[inline]
#[must_use]
pub fn counters_enabled() -> bool {
    mode() >= ObsMode::Counters
}

/// True when phase spans should record.
#[inline]
#[must_use]
pub fn trace_enabled() -> bool {
    mode() == ObsMode::Trace
}

/// The mode is process-global, so unit tests that flip it (or assert
/// on values other tests also record) serialize on this lock.
#[cfg(test)]
pub(crate) fn test_mode_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_levels_are_ordered() {
        assert!(ObsMode::Off < ObsMode::Counters);
        assert!(ObsMode::Counters < ObsMode::Trace);
    }

    #[test]
    fn set_mode_controls_the_gates() {
        let _g = test_mode_lock();
        set_mode(ObsMode::Off);
        assert!(!counters_enabled() && !trace_enabled());
        set_mode(ObsMode::Trace);
        assert!(counters_enabled() && trace_enabled());
        set_mode(ObsMode::Counters);
        assert!(counters_enabled() && !trace_enabled());
    }
}
