//! Property tests of the GEMM kernel layer's determinism contract:
//!
//! * the register-blocked kernels are **bitwise identical** to the
//!   naive reference kernels (the pre-blocking loop structure over the
//!   shared accumulation primitives) for arbitrary shapes and contents;
//! * the zero-skip fast path of the reference kernels is bitwise
//!   neutral (`a.mul_add(b, acc) == acc` exactly when `a == 0.0` and
//!   `b` is finite) — the blocked kernels have no skip, so agreement on
//!   zero-heavy operands *is* the neutrality proof;
//! * results are invariant across tile sizes (`kc`, executor chunk
//!   rows) and across `LAZYDP_THREADS`-style executor widths.

use lazydp_tensor::gemm::{
    matmul_macro_tiled, matmul_t_with_tiles, matmul_with_tiles, reference_matmul,
    reference_matmul_t, reference_t_matmul, reference_t_matmul_scaled, t_matmul_scaled_macro_tiled,
    t_matmul_scaled_with_tiles, t_matmul_with_tiles,
};
use lazydp_tensor::Matrix;
use proptest::prelude::*;

/// Deterministic matrix with a tunable fraction of exact zeros (the
/// ReLU-sparse pattern the zero-skip fast path exists for).
fn matrix_with_zeros(rows: usize, cols: usize, seed: u64, zero_mod: u64) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        let x = (i as u64)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(seed);
        let x = x ^ (x >> 29);
        if zero_mod > 0 && x.is_multiple_of(zero_mod) {
            0.0
        } else {
            ((x % 2000) as f32 - 1000.0) / 333.0
        }
    })
}

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Blocked == reference, bitwise, for every GEMM variant — across
    /// random shapes, zero densities (zero-skip neutrality), and tile
    /// sizes.
    #[test]
    fn blocked_gemms_match_reference_bitwise_across_tiles(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..1_000,
        zero_mod in 0u64..5, // 0 = dense, 2 = half zeros, …
        kc in 1usize..80,
        chunk in 1usize..40,
    ) {
        let a = matrix_with_zeros(m, k, seed, zero_mod);
        let b = matrix_with_zeros(k, n, seed ^ 1, zero_mod);
        let at = matrix_with_zeros(k, m, seed ^ 2, zero_mod);
        let bt = matrix_with_zeros(n, k, seed ^ 3, zero_mod);
        prop_assert_eq!(
            bits(&matmul_with_tiles(&a, &b, kc, chunk)),
            bits(&reference_matmul(&a, &b)),
            "matmul {}x{}x{} kc={} chunk={}", m, k, n, kc, chunk
        );
        prop_assert_eq!(
            bits(&t_matmul_with_tiles(&at, &b, kc, chunk)),
            bits(&reference_t_matmul(&at, &b)),
            "t_matmul {}x{}x{} kc={} chunk={}", m, k, n, kc, chunk
        );
        prop_assert_eq!(
            bits(&matmul_t_with_tiles(&a, &bt, chunk)),
            bits(&reference_matmul_t(&a, &bt)),
            "matmul_t {}x{}x{} chunk={}", m, k, n, chunk
        );
    }

    /// The dispatched kernels (`Matrix::matmul` & co.) are bitwise
    /// invariant across executor widths — the `LAZYDP_THREADS` leg of
    /// the determinism contract, including zero-heavy operands.
    #[test]
    fn dispatched_gemms_are_thread_count_invariant(
        m in 1usize..48,
        k in 1usize..64,
        n in 1usize..48,
        seed in 0u64..1_000,
        zero_mod in 0u64..4,
    ) {
        let a = matrix_with_zeros(m, k, seed, zero_mod);
        let b = matrix_with_zeros(k, n, seed ^ 5, zero_mod);
        let at = matrix_with_zeros(k, m, seed ^ 6, zero_mod);
        let bt = matrix_with_zeros(n, k, seed ^ 7, zero_mod);
        let initial = lazydp_exec::global_threads();
        lazydp_exec::set_global_threads(1);
        let (mm, tm, mt) = (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt));
        for threads in [2usize, 3, 8] {
            lazydp_exec::set_global_threads(threads);
            prop_assert_eq!(bits(&mm), bits(&a.matmul(&b)), "matmul, {} threads", threads);
            prop_assert_eq!(bits(&tm), bits(&at.t_matmul(&b)), "t_matmul, {} threads", threads);
            prop_assert_eq!(bits(&mt), bits(&a.matmul_t(&bt)), "matmul_t, {} threads", threads);
        }
        lazydp_exec::set_global_threads(initial);
    }

    /// The fused scale-in-the-epilogue weight-gradient kernel: blocked
    /// == reference, bitwise, across shapes, clip-factor contents
    /// (including all-zero and all-one weights), zero densities, and
    /// tile sizes.
    #[test]
    fn scaled_t_matmul_matches_reference_bitwise_across_tiles(
        k in 1usize..70,
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000,
        zero_mod in 0u64..5,
        kc in 1usize..80,
        chunk in 1usize..40,
        wkind in 0u8..4, // 0 = mixed, 1 = all ones, 2 = all zeros, 3 = tiny
    ) {
        let at = matrix_with_zeros(k, m, seed ^ 11, zero_mod);
        let b = matrix_with_zeros(k, n, seed ^ 12, zero_mod);
        let w: Vec<f32> = (0..k).map(|i| match wkind {
            1 => 1.0,
            2 => 0.0,
            3 => 1e-4,
            _ => ((i as u64).wrapping_mul(seed | 1) % 17) as f32 / 16.0,
        }).collect();
        prop_assert_eq!(
            bits(&t_matmul_scaled_with_tiles(&at, &b, &w, kc, chunk)),
            bits(&reference_t_matmul_scaled(&at, &b, &w)),
            "t_matmul_scaled {}x{}x{} kc={} chunk={} wkind={}", k, m, n, kc, chunk, wkind
        );
    }

    /// The 2-D macro-tile driver is bitwise identical to the row-split
    /// driver (and therefore to the reference kernels) for arbitrary
    /// row/column blockings of both the plain and the scaled GEMM.
    #[test]
    fn macro_tiled_drivers_match_row_driver_bitwise(
        m in 1usize..40,
        k in 1usize..64,
        n in 1usize..48,
        seed in 0u64..1_000,
        zero_mod in 0u64..4,
        kc in 1usize..70,
        row_block in 1usize..40,
        col_block in 1usize..48,
    ) {
        let a = matrix_with_zeros(m, k, seed ^ 21, zero_mod);
        let b = matrix_with_zeros(k, n, seed ^ 22, zero_mod);
        prop_assert_eq!(
            bits(&matmul_macro_tiled(&a, &b, kc, row_block, col_block)),
            bits(&reference_matmul(&a, &b)),
            "macro matmul {}x{}x{} kc={} rb={} cb={}", m, k, n, kc, row_block, col_block
        );
        let at = matrix_with_zeros(k, m, seed ^ 23, zero_mod);
        let w: Vec<f32> = (0..k).map(|i| ((i as u64).wrapping_mul(3) % 13) as f32 / 12.0).collect();
        prop_assert_eq!(
            bits(&t_matmul_scaled_macro_tiled(&at, &b, &w, kc, row_block, col_block)),
            bits(&reference_t_matmul_scaled(&at, &b, &w)),
            "macro scaled {}x{}x{} kc={} rb={} cb={}", m, k, n, kc, row_block, col_block
        );
    }

    /// The scaled dispatched kernel is bitwise invariant across
    /// executor widths, like the plain kernels.
    #[test]
    fn scaled_dispatch_is_thread_count_invariant(
        k in 1usize..64,
        m in 1usize..40,
        n in 1usize..40,
        seed in 0u64..1_000,
        zero_mod in 0u64..4,
    ) {
        let at = matrix_with_zeros(k, m, seed ^ 31, zero_mod);
        let b = matrix_with_zeros(k, n, seed ^ 32, zero_mod);
        let w: Vec<f32> = (0..k).map(|i| ((i * 5) % 9) as f32 / 8.0).collect();
        let initial = lazydp_exec::global_threads();
        lazydp_exec::set_global_threads(1);
        let base = at.t_matmul_scaled(&b, &w);
        for threads in [2usize, 3, 8] {
            lazydp_exec::set_global_threads(threads);
            prop_assert_eq!(
                bits(&base),
                bits(&at.t_matmul_scaled(&b, &w)),
                "t_matmul_scaled, {} threads", threads
            );
        }
        lazydp_exec::set_global_threads(initial);
    }

    /// Explicit zero-skip neutrality: a fully dense operand versus the
    /// same operand with values *replaced* by zero must differ only
    /// through the zeroed contributions — i.e. the reference kernel
    /// (which skips zeros) and the blocked kernel (which multiplies
    /// through them) agree bit-for-bit on all-zero rows and columns too.
    #[test]
    fn zero_rows_and_columns_are_bitwise_neutral(
        m in 1usize..24,
        k in 2usize..40,
        n in 1usize..24,
        seed in 0u64..1_000,
        zero_row in 0usize..40,
    ) {
        let mut a = matrix_with_zeros(m, k, seed, 0);
        let zr = zero_row % k;
        // Zero one whole contraction slice: column `zr` of A.
        for i in 0..m {
            a.row_mut(i)[zr] = 0.0;
        }
        let b = matrix_with_zeros(k, n, seed ^ 9, 3);
        prop_assert_eq!(
            bits(&matmul_with_tiles(&a, &b, 16, 8)),
            bits(&reference_matmul(&a, &b)),
            "zeroed contraction column {} of {}", zr, k
        );
    }
}
