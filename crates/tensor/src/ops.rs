//! Activations and layer-level element-wise operations.

use crate::matrix::Matrix;

/// Activation function applied element-wise after a linear layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Activation {
    /// Identity (no activation) — used for output/logit layers.
    #[default]
    Linear,
    /// Rectified linear unit, the DLRM default for hidden layers.
    Relu,
    /// Logistic sigmoid — DLRM's final click-probability output.
    Sigmoid,
}

impl Activation {
    /// Applies the activation element-wise, returning a new matrix.
    #[must_use]
    pub fn forward(&self, z: &Matrix) -> Matrix {
        match self {
            Self::Linear => z.clone(),
            Self::Relu => z.map(|x| x.max(0.0)),
            Self::Sigmoid => z.map(sigmoid),
        }
    }

    /// Applies the activation in place.
    pub fn forward_inplace(&self, z: &mut Matrix) {
        match self {
            Self::Linear => {}
            Self::Relu => {
                for x in z.as_mut_slice() {
                    *x = x.max(0.0);
                }
            }
            Self::Sigmoid => {
                for x in z.as_mut_slice() {
                    *x = sigmoid(*x);
                }
            }
        }
    }

    /// Given the *post-activation* output `a` and upstream gradient
    /// `grad_a`, returns the gradient with respect to the
    /// pre-activation `z`.
    ///
    /// Both ReLU and sigmoid derivatives are expressible from the output
    /// alone (`1[a>0]` and `a(1-a)`), so the forward cache only needs
    /// activations, matching the memory-lean layout the paper's
    /// DP-SGD(R/F) variants assume.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn backward(&self, a: &Matrix, grad_a: &Matrix) -> Matrix {
        let mut out = grad_a.clone();
        self.backward_inplace(a, &mut out);
        out
    }

    /// [`backward`](Self::backward) in place: transforms the upstream
    /// gradient `grad` into the pre-activation gradient using the
    /// cached post-activation output `a`, allocating nothing.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn backward_inplace(&self, a: &Matrix, grad: &mut Matrix) {
        assert_eq!(
            a.shape(),
            grad.shape(),
            "activation backward shape mismatch"
        );
        match self {
            Self::Linear => {}
            Self::Relu => {
                for (g, &av) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *g = if av > 0.0 { *g } else { 0.0 };
                }
            }
            Self::Sigmoid => {
                for (g, &av) in grad.as_mut_slice().iter_mut().zip(a.as_slice()) {
                    *g = *g * av * (1.0 - av);
                }
            }
        }
    }
}

/// Numerically stable logistic sigmoid.
#[inline]
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Adds a bias row-vector to every row of `z` in place.
///
/// # Panics
///
/// Panics if `bias.len() != z.cols()`.
pub fn add_bias(z: &mut Matrix, bias: &[f32]) {
    assert_eq!(bias.len(), z.cols(), "bias length mismatch");
    let cols = z.cols();
    for i in 0..z.rows() {
        for (v, &b) in z.row_mut(i).iter_mut().zip(bias.iter()) {
            *v += b;
        }
        let _ = cols;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_properties() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-7);
        assert!(sigmoid(40.0) > 0.999_999);
        assert!(sigmoid(-40.0) < 1e-6);
        // Symmetry: σ(-x) = 1 - σ(x).
        for x in [-3.0f32, -0.5, 0.7, 2.2] {
            assert!((sigmoid(-x) - (1.0 - sigmoid(x))).abs() < 1e-6);
        }
        // No NaN at extreme inputs.
        assert!(sigmoid(f32::MAX).is_finite());
        assert!(sigmoid(f32::MIN).is_finite());
    }

    #[test]
    fn relu_forward_backward() {
        let z = Matrix::from_rows(&[&[-1.0, 0.0, 2.0]]);
        let a = Activation::Relu.forward(&z);
        assert_eq!(a, Matrix::from_rows(&[&[0.0, 0.0, 2.0]]));
        let g = Matrix::from_rows(&[&[5.0, 5.0, 5.0]]);
        let gz = Activation::Relu.backward(&a, &g);
        assert_eq!(gz, Matrix::from_rows(&[&[0.0, 0.0, 5.0]]));
    }

    #[test]
    fn sigmoid_backward_matches_finite_difference() {
        let z = Matrix::from_rows(&[&[0.3, -1.2, 2.0]]);
        let a = Activation::Sigmoid.forward(&z);
        let g = Matrix::filled(1, 3, 1.0);
        let gz = Activation::Sigmoid.backward(&a, &g);
        let eps = 1e-3f32;
        for j in 0..3 {
            let mut zp = z.clone();
            zp[(0, j)] += eps;
            let mut zm = z.clone();
            zm[(0, j)] -= eps;
            let fd = (Activation::Sigmoid.forward(&zp)[(0, j)]
                - Activation::Sigmoid.forward(&zm)[(0, j)])
                / (2.0 * eps);
            assert!(
                (gz[(0, j)] - fd).abs() < 1e-3,
                "col {j}: {} vs {}",
                gz[(0, j)],
                fd
            );
        }
    }

    #[test]
    fn linear_passthrough() {
        let z = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(Activation::Linear.forward(&z), z);
        let g = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(Activation::Linear.backward(&z, &g), g);
    }

    #[test]
    fn forward_inplace_matches_forward() {
        let z = Matrix::from_rows(&[&[-0.5, 0.0, 1.5, 3.0]]);
        for act in [Activation::Linear, Activation::Relu, Activation::Sigmoid] {
            let expect = act.forward(&z);
            let mut got = z.clone();
            act.forward_inplace(&mut got);
            assert_eq!(got, expect, "{act:?}");
        }
    }

    #[test]
    fn add_bias_broadcasts_per_row() {
        let mut z = Matrix::zeros(2, 3);
        add_bias(&mut z, &[1.0, 2.0, 3.0]);
        assert_eq!(z.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(z.row(1), &[1.0, 2.0, 3.0]);
    }
}
