//! Register-blocked GEMM micro-kernels — the dense-compute layer.
//!
//! The three GEMM variants backprop needs ([`Matrix::matmul`],
//! [`Matrix::t_matmul`], [`Matrix::matmul_t`]) share one packed,
//! register-blocked implementation here. The structure follows the
//! classic BLIS decomposition, scaled down to the MLP sizes of this
//! workload:
//!
//! * the **B operand** is packed, one k-panel at a time, into a
//!   cache-aligned thread-local scratch buffer laid out as [`NR`]-wide
//!   micro-panels (k-major), so the micro-kernel streams it linearly;
//! * the **A operand** block ([`MR`] rows × panel depth) is packed
//!   k-major so the inner loop is two `chunks_exact` streams with no
//!   bounds checks;
//! * the **micro-kernel** keeps an `MR × NR` accumulator block in
//!   registers and issues one [`f32::mul_add`] per element per k step.
//!
//! # Determinism contract (extends DESIGN.md invariant #4)
//!
//! Every output element is accumulated by a **single accumulator in
//! ascending k order** (`matmul`/`t_matmul`), or by the fixed
//! eight-lane accumulation tree of [`dot_tree`] (`matmul_t`). Blocking
//! only changes *which* elements are computed together, never the
//! per-element operation sequence, so results are **bitwise identical
//! for any tile size (`kc`), any executor chunking, and any thread
//! count** — and bitwise identical to the naive reference kernels
//! ([`reference_matmul`], [`reference_t_matmul`], [`reference_matmul_t`]),
//! which keep the pre-blocking loop structure (including the zero-skip
//! fast path) over the same shared accumulation primitives. The
//! zero-skip is bitwise-neutral for finite inputs because
//! `a.mul_add(b, acc) == acc` exactly when `a == 0.0` and `b` is finite
//! (a property the GEMM proptests pin down).
//!
//! The blocked and reference kernels therefore agree bit-for-bit; the
//! [`GemmMode`] switch exists so benchmarks can measure the before/after
//! throughput on the same build, not because the results differ.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// SIMD lanes the accumulation tree of [`dot_tree`] is built from
/// (eight `f32`s — one AVX2 vector).
pub const LANES: usize = 8;

/// Columns per micro-panel / micro-kernel width (two AVX2 vectors).
pub const NR: usize = 16;

/// Rows per micro-kernel block.
pub const MR: usize = 6;

/// Default k-panel depth: how many rows of B are packed per panel.
/// MLP layers in this workload have `k ≤ 1024`, so most GEMMs pack B in
/// at most four panels.
pub const DEFAULT_KC: usize = 256;

/// `matmul_t` computes this many output columns (rows of B) per sweep of
/// the shared `a` row, reusing each loaded `a` vector eight times.
pub(crate) const NRT: usize = 8;

/// Rounds an executor chunk-row count up for the blocked drivers: a
/// multiple of [`MR`] (so only the final block runs a narrow
/// micro-kernel) and at least `4 × MR` rows (so per-chunk A-packing and
/// scratch checkout amortize). Purely a performance choice — chunking
/// never affects the computed bits.
#[must_use]
pub fn blocked_chunk_rows(chunk_rows: usize, total_rows: usize) -> usize {
    chunk_rows
        .next_multiple_of(MR)
        .max(4 * MR)
        .clamp(1, total_rows.max(1))
}

/// Which kernel implementation [`Matrix::matmul`] and friends dispatch
/// to. Both produce bitwise-identical results (see the module docs);
/// the switch exists so the `kernels` experiment can measure the
/// before/after throughput within one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmMode {
    /// The packed, register-blocked micro-kernels (the default).
    #[default]
    Blocked,
    /// The pre-blocking naive loops (zero-skip i-k-j / dot loops) over
    /// the same accumulation primitives.
    Reference,
}

/// `GEMM_MODE` encoding: 0 = not yet resolved (first [`gemm_mode`] call
/// reads `LAZYDP_GEMM`), 1 = [`GemmMode::Blocked`],
/// 2 = [`GemmMode::Reference`].
static GEMM_MODE: AtomicU8 = AtomicU8::new(0);

fn encode_gemm_mode(mode: GemmMode) -> u8 {
    match mode {
        GemmMode::Blocked => 1,
        GemmMode::Reference => 2,
    }
}

/// Parses a `LAZYDP_GEMM` value (`"blocked"` or `"reference"`,
/// case-insensitive, surrounding whitespace ignored). Anything else is
/// `None` — unknown values fall back to the default rather than
/// panicking, mirroring `LAZYDP_THREADS`.
#[must_use]
pub fn parse_gemm_mode(value: &str) -> Option<GemmMode> {
    let v = value.trim();
    if v.eq_ignore_ascii_case("blocked") {
        Some(GemmMode::Blocked)
    } else if v.eq_ignore_ascii_case("reference") {
        Some(GemmMode::Reference)
    } else {
        None
    }
}

/// Kernel implementation from the `LAZYDP_GEMM` environment variable
/// (if set to a value [`parse_gemm_mode`] accepts) or the default.
#[must_use]
pub fn detect_gemm_mode() -> GemmMode {
    std::env::var("LAZYDP_GEMM")
        .ok()
        .and_then(|v| parse_gemm_mode(&v))
        .unwrap_or_default()
}

/// Selects the kernel implementation process-wide, overriding any
/// `LAZYDP_GEMM` setting. Safe to flip at any time: both modes are
/// bitwise identical.
pub fn set_gemm_mode(mode: GemmMode) {
    GEMM_MODE.store(encode_gemm_mode(mode), Ordering::Relaxed);
}

/// The currently selected kernel implementation. The first call
/// resolves it from `LAZYDP_GEMM` (mirroring how `LAZYDP_THREADS`
/// resolves the executor width); later calls return the cached (or
/// [`set_gemm_mode`]-overridden) value.
#[must_use]
pub fn gemm_mode() -> GemmMode {
    match GEMM_MODE.load(Ordering::Relaxed) {
        1 => GemmMode::Blocked,
        2 => GemmMode::Reference,
        _ => {
            let detected = detect_gemm_mode();
            // compare_exchange so a concurrent set_gemm_mode is never
            // clobbered by this lazy init.
            match GEMM_MODE.compare_exchange(
                0,
                encode_gemm_mode(detected),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => detected,
                Err(2) => GemmMode::Reference,
                Err(_) => GemmMode::Blocked,
            }
        }
    }
}

thread_local! {
    /// Per-thread packed-B panel (reused across calls; on the inline
    /// single-thread path this makes steady-state GEMMs allocation-free).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed-A block.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread macro-tile accumulator (the 2-D driver computes each
    /// output tile contiguously here, then copies it into the strided
    /// output rows).
    static TILE_C: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Hands `f` a 64-byte-aligned `len`-element scratch slice from `cell`,
/// growing the backing buffer only when a larger panel than ever before
/// is requested.
fn with_pack_buf<R>(cell: &RefCell<Vec<f32>>, len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut v = cell.borrow_mut();
    if v.len() < len + NR {
        v.resize(len + NR, 0.0);
    }
    // Offset into the buffer so the slice starts on a cache line.
    let addr = v.as_ptr() as usize;
    let off = ((64 - (addr & 63)) & 63) / std::mem::size_of::<f32>();
    f(&mut v[off..off + len])
}

/// Packs rows `k0..k0+kx` of `b`, columns `j_start..j_start+jw`, into
/// k-major [`NR`]-wide micro-panels:
/// `out[jp*kx*NR + k*NR + jj] = b[k0+k][j_start + jp*NR + jj]`
/// (zero-padded past the last column). `j_start = 0, jw = b.cols()`
/// packs the whole row range; the macro-tile driver packs narrower
/// column slabs per tile.
fn pack_b_panel_range(
    b: &Matrix,
    k0: usize,
    kx: usize,
    j_start: usize,
    jw: usize,
    out: &mut [f32],
) {
    for jp in 0..jw.div_ceil(NR) {
        let j0 = j_start + jp * NR;
        let nrw = NR.min(j_start + jw - j0);
        let dst_panel = &mut out[jp * kx * NR..(jp + 1) * kx * NR];
        for (k, dst) in dst_panel.chunks_exact_mut(NR).enumerate() {
            dst[..nrw].copy_from_slice(&b.row(k0 + k)[j0..j0 + nrw]);
            for d in &mut dst[nrw..] {
                *d = 0.0;
            }
        }
    }
}

/// [`pack_b_panel_range`] with the fused clip epilogue folded into the
/// packing: every packed element is pre-scaled by its contraction row's
/// clip factor, `out[..] = w[k0+k] * b[k0+k][j]`. One extra `f32`
/// multiply per packed element — applied exactly once per GEMM because
/// the packed panel is reused by every row block — realizes
/// `aᵀ · diag(w) · b` with the micro-kernel untouched. (The clip factor
/// indexes the *contraction* dimension, so it cannot be applied to the
/// accumulator block after the k loop; pre-scaling the packed operand is
/// the in-tile placement that preserves the per-element operation
/// sequence `acc = a.mul_add(w*b, acc)`, ascending k.)
fn pack_b_panel_range_scaled(
    b: &Matrix,
    w: &[f32],
    k0: usize,
    kx: usize,
    j_start: usize,
    jw: usize,
    out: &mut [f32],
) {
    for jp in 0..jw.div_ceil(NR) {
        let j0 = j_start + jp * NR;
        let nrw = NR.min(j_start + jw - j0);
        let dst_panel = &mut out[jp * kx * NR..(jp + 1) * kx * NR];
        for (k, dst) in dst_panel.chunks_exact_mut(NR).enumerate() {
            let wk = w[k0 + k];
            for (d, &s) in dst[..nrw].iter_mut().zip(&b.row(k0 + k)[j0..j0 + nrw]) {
                *d = wk * s;
            }
            for d in &mut dst[nrw..] {
                *d = 0.0;
            }
        }
    }
}

/// Packs an `m × kx` block of A k-major for `matmul`: the block's rows
/// are `m` *rows* of `a` (`out[k*m + mm] = a[i0+mm][k0+k]`).
fn pack_a_rows(a: &Matrix, i0: usize, m: usize, k0: usize, kx: usize, out: &mut [f32]) {
    for mm in 0..m {
        for (k, &v) in a.row(i0 + mm)[k0..k0 + kx].iter().enumerate() {
            out[k * m + mm] = v;
        }
    }
}

/// Packs an `m × kx` block of A k-major for `t_matmul`: the block's rows
/// are `m` *columns* of `a` (`out[k*m + mm] = a[k0+k][i0+mm]`), read as
/// contiguous `m`-wide slices of `a`'s rows.
fn pack_a_cols(a: &Matrix, i0: usize, m: usize, k0: usize, kx: usize, out: &mut [f32]) {
    for k in 0..kx {
        out[k * m..(k + 1) * m].copy_from_slice(&a.row(k0 + k)[i0..i0 + m]);
    }
}

/// The scalar micro-kernel body: accumulates an `M × NR` output block
/// over one packed k-panel. `apan` is k-major `M`-wide, `bpan` k-major
/// `NR`-wide; each output element receives one `mul_add` per k step,
/// ascending — the canonical accumulation order of the determinism
/// contract. The AVX2 body in [`crate::simd`] reproduces exactly this
/// operation sequence (one fused multiply-add per element per k,
/// identical rounding), so the runtime SIMD gate never changes a bit.
///
/// `inline(never)` is deliberate: compiled standalone, LLVM keeps the
/// `M × NR` accumulator block in vector registers for the whole k loop;
/// inlined into the packing drivers it has been observed to spill.
#[inline(never)]
#[allow(clippy::needless_range_loop)]
pub(crate) fn micro_kernel_scalar<const M: usize>(
    apan: &[f32],
    bpan: &[f32],
    out_rows: &mut [f32],
    ldc: usize,
    j0: usize,
    nrw: usize,
) {
    let mut acc = [[0.0f32; NR]; M];
    for m in 0..M {
        let base = m * ldc + j0;
        acc[m][..nrw].copy_from_slice(&out_rows[base..base + nrw]);
    }
    for (ak, bk) in apan.chunks_exact(M).zip(bpan.chunks_exact(NR)) {
        let bk: &[f32; NR] = bk.try_into().expect("NR-wide b micro-panel");
        for (m, am) in acc.iter_mut().enumerate() {
            let a = ak[m];
            for (j, accv) in am.iter_mut().enumerate() {
                *accv = a.mul_add(bk[j], *accv);
            }
        }
    }
    for m in 0..M {
        let base = m * ldc + j0;
        out_rows[base..base + nrw].copy_from_slice(&acc[m][..nrw]);
    }
}

/// Sweeps every column micro-panel of one packed B slab against a packed
/// `M`-row A block. Monomorphized per `M`, so the `match` on the row
/// count runs **once per row block** — narrow final blocks (`m < MR`) no
/// longer re-dispatch through the generic kernel inside the jp loop.
fn panel_sweep<const M: usize>(
    apan: &[f32],
    bpan: &[f32],
    out_rows: &mut [f32],
    n: usize,
    kx: usize,
) {
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let nrw = NR.min(n - j0);
        let bp = &bpan[jp * kx * NR..(jp + 1) * kx * NR];
        crate::simd::micro_kernel::<M>(apan, bp, out_rows, n, j0, nrw);
    }
}

/// Sweeps the row blocks of one output chunk against a packed B panel.
#[allow(clippy::too_many_arguments)]
fn row_block_sweep(
    a: &Matrix,
    bpan: &[f32],
    out_chunk: &mut [f32],
    i0: usize,
    n: usize,
    k0: usize,
    kx: usize,
    pack_a: impl Fn(&Matrix, usize, usize, usize, usize, &mut [f32]),
) {
    let rows_here = out_chunk.len() / n;
    let mut rb = 0;
    while rb < rows_here {
        let m = (rows_here - rb).min(MR);
        PACK_A.with(|cell| {
            with_pack_buf(cell, kx * m, |apan| {
                pack_a(a, i0 + rb, m, k0, kx, apan);
                let out_rows = &mut out_chunk[rb * n..(rb + m) * n];
                match m {
                    6 => panel_sweep::<6>(apan, bpan, out_rows, n, kx),
                    5 => panel_sweep::<5>(apan, bpan, out_rows, n, kx),
                    4 => panel_sweep::<4>(apan, bpan, out_rows, n, kx),
                    3 => panel_sweep::<3>(apan, bpan, out_rows, n, kx),
                    2 => panel_sweep::<2>(apan, bpan, out_rows, n, kx),
                    _ => panel_sweep::<1>(apan, bpan, out_rows, n, kx),
                }
            });
        });
        rb += m;
    }
}

/// Minimum multiply-add count a macro-tile must carry before the 2-D
/// tiled driver engages (matches the per-chunk floor of the row split:
/// below this a tile's pack/spawn overhead outweighs the arithmetic).
const TILE_MIN_FLOPS: usize = 1 << 19;

/// Column-slab width for the 2-D macro-tile driver, or `None` when the
/// row-only split already feeds every worker (or the executor is
/// sequential, or the product is too small to amortize per-tile
/// packing). The decision reads only shape and the process-wide thread
/// count — never scheduling state — and tiling never changes the
/// per-element accumulation order, so both paths produce identical
/// bits; the choice is purely a performance one.
fn macro_tile_cols(rows: usize, n: usize, k: usize, chunk_rows: usize) -> Option<usize> {
    let threads = lazydp_exec::global_threads();
    if threads <= 1 || n < 2 * NR {
        return None;
    }
    let row_chunks = rows.div_ceil(chunk_rows.max(1));
    if row_chunks >= threads {
        return None;
    }
    // Enough column slabs to feed the idle workers, but never so many
    // that a tile drops below the flop floor.
    let want = threads.div_ceil(row_chunks);
    let by_work = (rows * n * k) / (row_chunks * TILE_MIN_FLOPS);
    let ncb = want.min(by_work).min(n.div_ceil(2 * NR));
    if ncb <= 1 {
        return None;
    }
    Some(n.div_ceil(ncb).next_multiple_of(NR))
}

/// One output macro-tile of the 2-D driver: the row segments
/// (`rows[r] = out[i0 + r][j0 .. j0 + width]`) it owns exclusively.
struct MacroTile<'a> {
    rows: Vec<&'a mut [f32]>,
    i0: usize,
    j0: usize,
}

/// Splits a row-major `rows_total × n` output into disjoint
/// `row_block × col_block` macro-tiles (edge tiles are smaller), in
/// row-block-major order. Pure shape arithmetic: the tile grid depends
/// only on `(rows_total, n, row_block, col_block)`.
fn split_macro_tiles(
    out: &mut [f32],
    n: usize,
    row_block: usize,
    col_block: usize,
) -> Vec<MacroTile<'_>> {
    let rows_total = out.len() / n;
    let ncb = n.div_ceil(col_block);
    let nrb = rows_total.div_ceil(row_block);
    let mut tiles: Vec<MacroTile<'_>> = Vec::with_capacity(nrb * ncb);
    for rb in 0..nrb {
        for cb in 0..ncb {
            tiles.push(MacroTile {
                rows: Vec::with_capacity(row_block),
                i0: rb * row_block,
                j0: cb * col_block,
            });
        }
    }
    for (r, row) in out.chunks_mut(n).enumerate() {
        let rb = r / row_block;
        let mut rest = row;
        for cb in 0..ncb {
            let w = col_block.min(n - cb * col_block);
            let (seg, tail) = rest.split_at_mut(w);
            tiles[rb * ncb + cb].rows.push(seg);
            rest = tail;
        }
    }
    tiles
}

/// The 2-D macro-tile driver: partitions the output over both the ic
/// (row) and jc (column) macro-loops and hands one tile per `par_for`
/// chunk to the executor. Each worker packs the B column slab its tile
/// needs into its **own** thread-local scratch (per-thread packed-B
/// panels — the row driver packs B once on the calling thread instead),
/// accumulates the tile in a thread-local buffer over ascending k, and
/// copies the finished tile into the strided output rows.
///
/// Determinism: the tile grid is pure shape arithmetic and `par_for`
/// assigns work by stable chunk index, so *what* each tile computes is
/// thread-count independent; within a tile every output element keeps
/// the single-accumulator ascending-k order. Results are therefore
/// bitwise identical to the row driver and the reference kernels.
///
/// This path allocates its tile descriptors per call — acceptable
/// because it only runs on a parallel executor, whose scoped workers
/// allocate per region by construction (the steady-state zero-alloc
/// contract is scoped to the sequential path, which never gets here).
#[allow(clippy::too_many_arguments)]
fn tiled_driver(
    a: &Matrix,
    n: usize,
    out: &mut Matrix,
    k: usize,
    kc: usize,
    chunk_rows: usize,
    col_block: usize,
    pack_a: impl Fn(&Matrix, usize, usize, usize, usize, &mut [f32]) + Sync,
    pack_b: impl Fn(usize, usize, usize, usize, &mut [f32]) + Sync,
) {
    let mut tiles = split_macro_tiles(out.as_mut_slice(), n, chunk_rows, col_block);
    lazydp_exec::global().par_for(&mut tiles, 1, |_, tile_chunk| {
        let tile = &mut tile_chunk[0];
        let h = tile.rows.len();
        let w = tile.rows[0].len();
        let panel_stride = w.div_ceil(NR) * NR;
        PACK_B.with(|bcell| {
            with_pack_buf(bcell, k * panel_stride, |bpack| {
                let mut k0 = 0;
                while k0 < k {
                    let kx = kc.min(k - k0);
                    pack_b(
                        k0,
                        kx,
                        tile.j0,
                        w,
                        &mut bpack[k0 * panel_stride..(k0 + kx) * panel_stride],
                    );
                    k0 += kx;
                }
                TILE_C.with(|ccell| {
                    with_pack_buf(ccell, h * w, |local| {
                        local.fill(0.0);
                        let mut k0 = 0;
                        while k0 < k {
                            let kx = kc.min(k - k0);
                            let bpan = &bpack[k0 * panel_stride..(k0 + kx) * panel_stride];
                            row_block_sweep(a, bpan, local, tile.i0, w, k0, kx, &pack_a);
                            k0 += kx;
                        }
                        for (src, dst) in local.chunks_exact(w).zip(tile.rows.iter_mut()) {
                            dst.copy_from_slice(src);
                        }
                    });
                });
            });
        });
    });
}

/// Shared driver for the accumulating GEMMs (`matmul`, `t_matmul`, and
/// the scaled weight-gradient variant). When the row split alone cannot
/// feed the executor it defers to the 2-D [`tiled_driver`]; otherwise it
/// packs **all** of B's k-panels into the thread-local scratch once,
/// then runs a single chunk-parallel region in which each row chunk
/// sweeps the panels in ascending k — one executor spawn/join per GEMM
/// instead of one per panel, with the per-element accumulation order
/// (and therefore every output bit) unchanged. `k` is the contraction
/// length; `pack_a` decides whether A blocks come from rows (`matmul`)
/// or columns (`t_matmul`); `pack_b(k0, kx, j0, jw, dst)` fills one
/// packed B slab (plain or clip-scaled).
#[allow(clippy::too_many_arguments)]
fn blocked_driver(
    a: &Matrix,
    n: usize,
    out: &mut Matrix,
    k: usize,
    kc: usize,
    chunk_rows: usize,
    pack_a: impl Fn(&Matrix, usize, usize, usize, usize, &mut [f32]) + Sync,
    pack_b: impl Fn(usize, usize, usize, usize, &mut [f32]) + Sync,
) {
    let kc = kc.max(1);
    if let Some(col_block) = macro_tile_cols(out.rows(), n, k, chunk_rows) {
        tiled_driver(a, n, out, k, kc, chunk_rows, col_block, pack_a, pack_b);
        return;
    }
    let panel_stride = n.div_ceil(NR) * NR;
    PACK_B.with(|cell| {
        with_pack_buf(cell, k * panel_stride, |bpack| {
            let mut k0 = 0;
            while k0 < k {
                let kx = kc.min(k - k0);
                pack_b(
                    k0,
                    kx,
                    0,
                    n,
                    &mut bpack[k0 * panel_stride..(k0 + kx) * panel_stride],
                );
                k0 += kx;
            }
            let bpack: &[f32] = bpack;
            let pack_a = &pack_a;
            lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, move |c, chunk| {
                let mut k0 = 0;
                while k0 < k {
                    let kx = kc.min(k - k0);
                    let bpan = &bpack[k0 * panel_stride..(k0 + kx) * panel_stride];
                    row_block_sweep(a, bpan, chunk, c * chunk_rows, n, k0, kx, pack_a);
                    k0 += kx;
                }
            });
        });
    });
}

/// Blocked `out += a · b` over a zeroed `out` (the [`Matrix::matmul`]
/// kernel).
pub(crate) fn matmul_blocked(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    kc: usize,
    chunk_rows: usize,
) {
    blocked_driver(
        a,
        b.cols(),
        out,
        a.cols(),
        kc,
        chunk_rows,
        pack_a_rows,
        |k0, kx, j0, jw, dst| pack_b_panel_range(b, k0, kx, j0, jw, dst),
    );
}

/// Blocked `out += aᵀ · b` over a zeroed `out` (the
/// [`Matrix::t_matmul`] kernel). The contraction runs over `a`'s rows
/// (the batch dimension of the weight-gradient GEMM), ascending.
pub(crate) fn t_matmul_blocked(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    kc: usize,
    chunk_rows: usize,
) {
    blocked_driver(
        a,
        b.cols(),
        out,
        a.rows(),
        kc,
        chunk_rows,
        pack_a_cols,
        |k0, kx, j0, jw, dst| pack_b_panel_range(b, k0, kx, j0, jw, dst),
    );
}

/// Blocked `out += aᵀ · diag(w) · b` over a zeroed `out` — the fused
/// clipped weight-gradient GEMM (`∂L/∂W = aᵀ · diag(clip) · δ`). The
/// per-example clip factors `w` are folded into the B packing
/// ([`pack_b_panel_range_scaled`]), so per output element the operation
/// sequence is `acc = a_ki.mul_add(w_k * b_kj, acc)` over ascending k —
/// exactly what [`reference_t_matmul_scaled_into`] computes, and exactly
/// what the two-pass path computes once its weighted backward routes
/// through this kernel.
pub(crate) fn t_matmul_scaled_blocked(
    a: &Matrix,
    b: &Matrix,
    w: &[f32],
    out: &mut Matrix,
    kc: usize,
    chunk_rows: usize,
) {
    blocked_driver(
        a,
        b.cols(),
        out,
        a.rows(),
        kc,
        chunk_rows,
        pack_a_cols,
        |k0, kx, j0, jw, dst| pack_b_panel_range_scaled(b, w, k0, kx, j0, jw, dst),
    );
}

/// Reduces the eight accumulation lanes of a [`dot_tree`] in the fixed
/// pairwise order — the one tree every `matmul_t` implementation shares.
#[inline(always)]
fn reduce_lanes(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Scalar body of the eight-lane dot accumulation over the
/// `LANES`-aligned prefix: lane `t` gathers elements `t, t+8, t+16, …`
/// ascending via one `mul_add` each. The AVX2 body in [`crate::simd`]
/// performs the identical per-lane operation sequence with one
/// `vfmaddps` per eight elements, so both produce the same bits.
pub(crate) fn dot_lanes_scalar(a: &[f32], b: &[f32], lanes: &mut [f32; LANES]) {
    for (av, bv) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
        for t in 0..LANES {
            lanes[t] = av[t].mul_add(bv[t], lanes[t]);
        }
    }
}

/// Dot product with the fixed eight-lane `mul_add` accumulation tree:
/// lane `t` accumulates elements `t, t+8, t+16, …` ascending, the lanes
/// are reduced pairwise (`reduce_lanes`), and the `len % 8` tail is
/// folded in last through a single sequential accumulator. This is the
/// canonical inner product of [`Matrix::matmul_t`]; any blocking of that
/// kernel must reproduce it bit-for-bit.
#[must_use]
pub fn dot_tree(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_tree length mismatch");
    let k8 = a.len() - a.len() % LANES;
    let mut lanes = [0.0f32; LANES];
    crate::simd::dot_lanes(&a[..k8], &b[..k8], &mut lanes);
    let mut rem = 0.0f32;
    for (&x, &y) in a[k8..].iter().zip(&b[k8..]) {
        rem = x.mul_add(y, rem);
    }
    reduce_lanes(&lanes) + rem
}

/// Scalar body of the [`NRT`]-row lane accumulation of `matmul_t`: for
/// each of the eight B rows, lane `t` gathers elements `t, t+8, …` of
/// the `k8`-aligned prefix ascending, one `mul_add` per element — the
/// same per-lane sequence as [`dot_lanes_scalar`], eight rows at a time.
pub(crate) fn mt_lanes_scalar(
    a_row: &[f32],
    brows: &[&[f32]; NRT],
    k8: usize,
    lanes: &mut [[f32; LANES]; NRT],
) {
    let mut pos = 0;
    while pos < k8 {
        let av: &[f32; LANES] = a_row[pos..pos + LANES].try_into().expect("lane chunk");
        for (jj, lane) in lanes.iter_mut().enumerate() {
            let bv: &[f32; LANES] = brows[jj][pos..pos + LANES].try_into().expect("lane chunk");
            for t in 0..LANES {
                lane[t] = av[t].mul_add(bv[t], lane[t]);
            }
        }
        pos += LANES;
    }
}

/// One output row of `matmul_t`: `out_row[j] = dot_tree(a_row, b.row(j))`,
/// computed [`NRT`] columns at a time so each loaded `a` vector is
/// reused across [`NRT`] (= 8) rows of B.
fn matmul_t_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    let n = b.rows();
    let k = a_row.len();
    let k8 = k - k % LANES;
    let mut j = 0;
    while j + NRT <= n {
        let brows: [&[f32]; NRT] = std::array::from_fn(|jj| b.row(j + jj));
        let mut lanes = [[0.0f32; LANES]; NRT];
        crate::simd::mt_lanes(a_row, &brows, k8, &mut lanes);
        let mut rems = [0.0f32; NRT];
        for p in k8..k {
            let x = a_row[p];
            for (jj, r) in rems.iter_mut().enumerate() {
                *r = x.mul_add(brows[jj][p], *r);
            }
        }
        for (jj, (lane, rem)) in lanes.iter().zip(rems.iter()).enumerate() {
            out_row[j + jj] = reduce_lanes(lane) + rem;
        }
        j += NRT;
    }
    while j < n {
        out_row[j] = dot_tree(a_row, b.row(j));
        j += 1;
    }
}

/// Blocked `out = a · bᵀ` (the [`Matrix::matmul_t`] kernel).
pub(crate) fn matmul_t_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.rows();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            matmul_t_row(a.row(c * chunk_rows + r), b, out_row);
        }
    });
}

/// Reference `matmul` kernel: the pre-blocking i-k-j loop with its
/// zero-skip fast path, over the shared single-accumulator `mul_add`
/// accumulation. Bitwise identical to [`matmul_blocked`] for finite
/// inputs.
pub(crate) fn reference_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.cols();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(c * chunk_rows + k_row);
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    });
}

/// Reference `t_matmul` kernel (pre-blocking structure, shared
/// accumulation; see [`reference_matmul_into`]).
pub(crate) fn reference_t_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.cols();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let i = c * chunk_rows + k_row;
            for r in 0..a.rows() {
                let av = a.row(r)[i];
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(r);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    });
}

/// Reference fused clipped weight-gradient kernel
/// (`out += aᵀ · diag(w) · b`): the `t_matmul` reference loop with the
/// clip factor applied to the B element before the shared `mul_add` —
/// `acc = a_ki.mul_add(w_k * b_kj, acc)`, ascending k, exactly the
/// per-element operation sequence of [`t_matmul_scaled_blocked`] (which
/// computes `w_k * b_kj` once at packing time). The zero-skip stays
/// bitwise-neutral: `w_k * b_kj` is finite whenever `w` and `b` are.
pub(crate) fn reference_t_matmul_scaled_into(
    a: &Matrix,
    b: &Matrix,
    w: &[f32],
    out: &mut Matrix,
    chunk_rows: usize,
) {
    let n = b.cols();
    assert_eq!(w.len(), a.rows(), "one scale per contraction row");
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let i = c * chunk_rows + k_row;
            for (r, &wr) in w.iter().enumerate() {
                let av = a.row(r)[i];
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(r);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(wr * bv, *o);
                }
            }
        }
    });
}

/// Reference `matmul_t` kernel: one [`dot_tree`] per output element in
/// the plain double loop.
pub(crate) fn reference_matmul_t_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.rows();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(c * chunk_rows + k_row);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot_tree(a_row, b.row(j));
            }
        }
    });
}

/// `a · b` through the blocked kernel with explicit tile parameters
/// (`kc` k-panel depth, `chunk_rows` executor chunking) — exposed so the
/// invariance proptests can sweep tilings.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn matmul_with_tiles(a: &Matrix, b: &Matrix, kc: usize, chunk_rows: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    matmul_blocked(a, b, &mut out, kc, chunk_rows.clamp(1, a.rows().max(1)));
    out
}

/// `aᵀ · b` through the blocked kernel with explicit tile parameters
/// (see [`matmul_with_tiles`]).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn t_matmul_with_tiles(a: &Matrix, b: &Matrix, kc: usize, chunk_rows: usize) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    t_matmul_blocked(a, b, &mut out, kc, chunk_rows.clamp(1, a.cols().max(1)));
    out
}

/// `aᵀ · diag(w) · b` through the blocked fused-clip kernel with
/// explicit tile parameters (see [`matmul_with_tiles`]).
///
/// # Panics
///
/// Panics on dimension mismatch or if `w.len() != a.rows()`.
#[must_use]
pub fn t_matmul_scaled_with_tiles(
    a: &Matrix,
    b: &Matrix,
    w: &[f32],
    kc: usize,
    chunk_rows: usize,
) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul_scaled dimension mismatch");
    assert_eq!(w.len(), a.rows(), "one clip factor per contraction row");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    t_matmul_scaled_blocked(a, b, w, &mut out, kc, chunk_rows.clamp(1, a.cols().max(1)));
    out
}

/// `a · bᵀ` through the blocked kernel with explicit executor chunking
/// (see [`matmul_with_tiles`]; `matmul_t` has no k-panel).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn matmul_t_with_tiles(a: &Matrix, b: &Matrix, chunk_rows: usize) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_t_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    matmul_t_blocked(a, b, &mut out, chunk_rows.clamp(1, a.rows().max(1)));
    out
}

/// `a · b` forced through the 2-D macro-tile driver with explicit row
/// and column blocks — exposed so the invariance tests and benches can
/// pin the tiled path bitwise against the row driver and the reference
/// kernels regardless of the automatic engagement heuristics.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn matmul_macro_tiled(
    a: &Matrix,
    b: &Matrix,
    kc: usize,
    row_block: usize,
    col_block: usize,
) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_macro_tiled dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    let n = b.cols();
    tiled_driver(
        a,
        n,
        &mut out,
        a.cols(),
        kc.max(1),
        row_block.clamp(1, a.rows().max(1)),
        col_block.clamp(1, n),
        pack_a_rows,
        |k0, kx, j0, jw, dst| pack_b_panel_range(b, k0, kx, j0, jw, dst),
    );
    out
}

/// `aᵀ · diag(w) · b` forced through the 2-D macro-tile driver (see
/// [`matmul_macro_tiled`]).
///
/// # Panics
///
/// Panics on dimension mismatch or if `w.len() != a.rows()`.
#[must_use]
pub fn t_matmul_scaled_macro_tiled(
    a: &Matrix,
    b: &Matrix,
    w: &[f32],
    kc: usize,
    row_block: usize,
    col_block: usize,
) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul_scaled dimension mismatch");
    assert_eq!(w.len(), a.rows(), "one clip factor per contraction row");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    let n = b.cols();
    tiled_driver(
        a,
        n,
        &mut out,
        a.rows(),
        kc.max(1),
        row_block.clamp(1, a.cols().max(1)),
        col_block.clamp(1, n),
        pack_a_cols,
        |k0, kx, j0, jw, dst| pack_b_panel_range_scaled(b, w, k0, kx, j0, jw, dst),
    );
    out
}

/// `a · b` through the reference kernel (pre-blocking loop structure).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference_matmul dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    reference_matmul_into(a, b, &mut out, a.rows().max(1));
    out
}

/// `aᵀ · b` through the reference kernel.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference_t_matmul dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    reference_t_matmul_into(a, b, &mut out, a.cols().max(1));
    out
}

/// `aᵀ · diag(w) · b` through the reference fused-clip kernel.
///
/// # Panics
///
/// Panics on dimension mismatch or if `w.len() != a.rows()`.
#[must_use]
pub fn reference_t_matmul_scaled(a: &Matrix, b: &Matrix, w: &[f32]) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul_scaled dimension mismatch");
    assert_eq!(w.len(), a.rows(), "one clip factor per contraction row");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    reference_t_matmul_scaled_into(a, b, w, &mut out, a.cols().max(1));
    out
}

/// `a · bᵀ` through the reference kernel.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference_matmul_t dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    reference_matmul_t_into(a, b, &mut out, a.rows().max(1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u32, zeros: bool) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add((j as u32).wrapping_mul(40_503))
                .wrapping_add(seed);
            let v = ((x % 1000) as f32 - 500.0) / 250.0;
            if zeros && x.is_multiple_of(5) {
                0.0
            } else {
                v
            }
        })
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_awkward_shapes() {
        // Shapes chosen to exercise every tail: rows % MR, cols % NR,
        // k % kc, k % LANES all nonzero.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 130, 47),
            (64, 64, 64),
        ] {
            let a = pseudo_random(m, k, 1, true);
            let b = pseudo_random(k, n, 2, true);
            let at = pseudo_random(k, m, 4, true); // t_matmul: shared leading dim k
            let bt = pseudo_random(n, k, 3, true); // matmul_t: shared trailing dim k
            assert_eq!(
                matmul_with_tiles(&a, &b, 32, 4),
                reference_matmul(&a, &b),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                t_matmul_with_tiles(&at, &b, 16, 3),
                reference_t_matmul(&at, &b),
                "t_matmul {m}x{k}x{n}"
            );
            assert_eq!(
                matmul_t_with_tiles(&a, &bt, 5),
                reference_matmul_t(&a, &bt),
                "matmul_t {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn tile_sizes_do_not_change_bits() {
        let a = pseudo_random(23, 61, 7, true);
        let b = pseudo_random(61, 29, 8, false);
        let base = matmul_with_tiles(&a, &b, DEFAULT_KC, 23);
        for kc in [1usize, 3, 8, 61, 100] {
            for chunk in [1usize, 5, 23] {
                assert_eq!(
                    base,
                    matmul_with_tiles(&a, &b, kc, chunk),
                    "kc={kc} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn scaled_blocked_matches_scaled_reference_bitwise() {
        for &(k, m, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 130, 47),
            (64, 64, 64),
        ] {
            let a = pseudo_random(k, m, 11, true);
            let b = pseudo_random(k, n, 12, true);
            let w: Vec<f32> = (0..k).map(|i| ((i * 29) % 17) as f32 / 16.0).collect();
            assert_eq!(
                t_matmul_scaled_with_tiles(&a, &b, &w, 16, 3),
                reference_t_matmul_scaled(&a, &b, &w),
                "t_matmul_scaled {k}x{m}x{n}"
            );
        }
    }

    #[test]
    fn scaled_with_unit_weights_matches_unscaled_bitwise() {
        let a = pseudo_random(33, 19, 13, true);
        let b = pseudo_random(33, 21, 14, false);
        let ones = vec![1.0f32; 33];
        assert_eq!(
            t_matmul_scaled_with_tiles(&a, &b, &ones, 16, 3),
            t_matmul_with_tiles(&a, &b, 16, 3),
        );
    }

    #[test]
    fn macro_tiled_driver_matches_row_driver_bitwise() {
        let a = pseudo_random(37, 53, 21, true);
        let b = pseudo_random(53, 71, 22, true);
        let base = matmul_with_tiles(&a, &b, DEFAULT_KC, 37);
        for col_block in [1usize, 7, NR, 2 * NR, 71] {
            for row_block in [1usize, 6, 17, 37] {
                assert_eq!(
                    base,
                    matmul_macro_tiled(&a, &b, 16, row_block, col_block),
                    "row_block={row_block} col_block={col_block}"
                );
            }
        }
        let at = pseudo_random(53, 37, 23, true);
        let w: Vec<f32> = (0..53).map(|i| ((i * 13) % 11) as f32 / 10.0).collect();
        let sbase = t_matmul_scaled_with_tiles(&at, &b, &w, DEFAULT_KC, 37);
        for col_block in [5usize, NR, 71] {
            assert_eq!(
                sbase,
                t_matmul_scaled_macro_tiled(&at, &b, &w, 16, 11, col_block),
                "scaled col_block={col_block}"
            );
        }
    }

    #[test]
    fn macro_tile_engagement_is_shape_driven() {
        // Sequential executor: never tiles regardless of shape.
        let threads = lazydp_exec::global_threads();
        if threads <= 1 {
            assert_eq!(macro_tile_cols(6, 4096, 512, 6), None);
            return;
        }
        // Enough row chunks for every worker: stays on the row split.
        assert_eq!(macro_tile_cols(6 * threads * 4, 4096, 512, 6), None);
        // Tall-thin output: too narrow to split columns.
        assert_eq!(macro_tile_cols(6, NR, 512, 6), None);
        // Few fat rows, wide output, deep k: tiles engage, NR-aligned.
        let cols = macro_tile_cols(MR, 4096, 2048, MR);
        if let Some(cb) = cols {
            assert!(cb.is_multiple_of(NR), "col block {cb} not NR-aligned");
            assert!(cb >= 2 * NR);
        } else {
            panic!("expected macro tiling to engage for 6x4096x2048");
        }
    }

    #[test]
    fn gemm_mode_env_parsing() {
        assert_eq!(parse_gemm_mode("blocked"), Some(GemmMode::Blocked));
        assert_eq!(parse_gemm_mode(" Reference "), Some(GemmMode::Reference));
        assert_eq!(parse_gemm_mode("BLOCKED"), Some(GemmMode::Blocked));
        assert_eq!(parse_gemm_mode(""), None);
        assert_eq!(parse_gemm_mode("fast"), None);
    }

    #[test]
    fn simd_gate_does_not_change_bits() {
        let a = pseudo_random(19, 67, 31, true);
        let b = pseudo_random(67, 23, 32, true);
        let bt = pseudo_random(23, 67, 33, true);
        let w: Vec<f32> = (0..67).map(|i| ((i * 7) % 5) as f32 / 4.0).collect();
        let at = pseudo_random(67, 19, 34, true);
        let was = crate::simd::simd_enabled();
        crate::simd::set_simd_enabled(true);
        let mm_on = matmul_with_tiles(&a, &b, 16, 5);
        let mt_on = matmul_t_with_tiles(&a, &bt, 5);
        let sc_on = t_matmul_scaled_with_tiles(&at, &b, &w, 16, 5);
        crate::simd::set_simd_enabled(false);
        assert_eq!(mm_on, matmul_with_tiles(&a, &b, 16, 5));
        assert_eq!(mt_on, matmul_t_with_tiles(&a, &bt, 5));
        assert_eq!(sc_on, t_matmul_scaled_with_tiles(&at, &b, &w, 16, 5));
        crate::simd::set_simd_enabled(was);
    }

    #[test]
    fn dot_tree_matches_f64_dot_closely() {
        let a: Vec<f32> = (0..103)
            .map(|i| ((i * 37) % 19) as f32 / 7.0 - 1.0)
            .collect();
        let b: Vec<f32> = (0..103)
            .map(|i| ((i * 53) % 23) as f32 / 9.0 - 1.0)
            .collect();
        let exact = crate::vecops::dot(&a, &b);
        let got = f64::from(dot_tree(&a, &b));
        assert!((got - exact).abs() < 1e-3, "{got} vs {exact}");
    }

    #[test]
    fn gemm_mode_roundtrip() {
        assert_eq!(gemm_mode(), GemmMode::Blocked);
        set_gemm_mode(GemmMode::Reference);
        assert_eq!(gemm_mode(), GemmMode::Reference);
        set_gemm_mode(GemmMode::Blocked);
        assert_eq!(gemm_mode(), GemmMode::Blocked);
    }
}
