//! Register-blocked GEMM micro-kernels — the dense-compute layer.
//!
//! The three GEMM variants backprop needs ([`Matrix::matmul`],
//! [`Matrix::t_matmul`], [`Matrix::matmul_t`]) share one packed,
//! register-blocked implementation here. The structure follows the
//! classic BLIS decomposition, scaled down to the MLP sizes of this
//! workload:
//!
//! * the **B operand** is packed, one k-panel at a time, into a
//!   cache-aligned thread-local scratch buffer laid out as [`NR`]-wide
//!   micro-panels (k-major), so the micro-kernel streams it linearly;
//! * the **A operand** block ([`MR`] rows × panel depth) is packed
//!   k-major so the inner loop is two `chunks_exact` streams with no
//!   bounds checks;
//! * the **micro-kernel** keeps an `MR × NR` accumulator block in
//!   registers and issues one [`f32::mul_add`] per element per k step.
//!
//! # Determinism contract (extends DESIGN.md invariant #4)
//!
//! Every output element is accumulated by a **single accumulator in
//! ascending k order** (`matmul`/`t_matmul`), or by the fixed
//! eight-lane accumulation tree of [`dot_tree`] (`matmul_t`). Blocking
//! only changes *which* elements are computed together, never the
//! per-element operation sequence, so results are **bitwise identical
//! for any tile size (`kc`), any executor chunking, and any thread
//! count** — and bitwise identical to the naive reference kernels
//! ([`reference_matmul`], [`reference_t_matmul`], [`reference_matmul_t`]),
//! which keep the pre-blocking loop structure (including the zero-skip
//! fast path) over the same shared accumulation primitives. The
//! zero-skip is bitwise-neutral for finite inputs because
//! `a.mul_add(b, acc) == acc` exactly when `a == 0.0` and `b` is finite
//! (a property the GEMM proptests pin down).
//!
//! The blocked and reference kernels therefore agree bit-for-bit; the
//! [`GemmMode`] switch exists so benchmarks can measure the before/after
//! throughput on the same build, not because the results differ.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// SIMD lanes the accumulation tree of [`dot_tree`] is built from
/// (eight `f32`s — one AVX2 vector).
pub const LANES: usize = 8;

/// Columns per micro-panel / micro-kernel width (two AVX2 vectors).
pub const NR: usize = 16;

/// Rows per micro-kernel block.
pub const MR: usize = 6;

/// Default k-panel depth: how many rows of B are packed per panel.
/// MLP layers in this workload have `k ≤ 1024`, so most GEMMs pack B in
/// at most four panels.
pub const DEFAULT_KC: usize = 256;

/// `matmul_t` computes this many output columns (rows of B) per sweep of
/// the shared `a` row, reusing each loaded `a` vector eight times.
const NRT: usize = 8;

/// Rounds an executor chunk-row count up for the blocked drivers: a
/// multiple of [`MR`] (so only the final block runs a narrow
/// micro-kernel) and at least `4 × MR` rows (so per-chunk A-packing and
/// scratch checkout amortize). Purely a performance choice — chunking
/// never affects the computed bits.
#[must_use]
pub fn blocked_chunk_rows(chunk_rows: usize, total_rows: usize) -> usize {
    chunk_rows
        .next_multiple_of(MR)
        .max(4 * MR)
        .clamp(1, total_rows.max(1))
}

/// Which kernel implementation [`Matrix::matmul`] and friends dispatch
/// to. Both produce bitwise-identical results (see the module docs);
/// the switch exists so the `kernels` experiment can measure the
/// before/after throughput within one binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GemmMode {
    /// The packed, register-blocked micro-kernels (the default).
    #[default]
    Blocked,
    /// The pre-blocking naive loops (zero-skip i-k-j / dot loops) over
    /// the same accumulation primitives.
    Reference,
}

static GEMM_MODE: AtomicU8 = AtomicU8::new(0);

/// Selects the kernel implementation process-wide. Safe to flip at any
/// time: both modes are bitwise identical.
pub fn set_gemm_mode(mode: GemmMode) {
    GEMM_MODE.store(mode as u8, Ordering::Relaxed);
}

/// The currently selected kernel implementation.
#[must_use]
pub fn gemm_mode() -> GemmMode {
    if GEMM_MODE.load(Ordering::Relaxed) == GemmMode::Reference as u8 {
        GemmMode::Reference
    } else {
        GemmMode::Blocked
    }
}

thread_local! {
    /// Per-thread packed-B panel (reused across calls; on the inline
    /// single-thread path this makes steady-state GEMMs allocation-free).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Per-thread packed-A block.
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Hands `f` a 64-byte-aligned `len`-element scratch slice from `cell`,
/// growing the backing buffer only when a larger panel than ever before
/// is requested.
fn with_pack_buf<R>(cell: &RefCell<Vec<f32>>, len: usize, f: impl FnOnce(&mut [f32]) -> R) -> R {
    let mut v = cell.borrow_mut();
    if v.len() < len + NR {
        v.resize(len + NR, 0.0);
    }
    // Offset into the buffer so the slice starts on a cache line.
    let addr = v.as_ptr() as usize;
    let off = ((64 - (addr & 63)) & 63) / std::mem::size_of::<f32>();
    f(&mut v[off..off + len])
}

/// Packs rows `k0..k0+kx` of `b` into k-major [`NR`]-wide micro-panels:
/// `out[jp*kx*NR + k*NR + jj] = b[k0+k][jp*NR+jj]` (zero-padded past the
/// last column).
fn pack_b_panel(b: &Matrix, k0: usize, kx: usize, out: &mut [f32]) {
    let n = b.cols();
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let nrw = NR.min(n - j0);
        let dst_panel = &mut out[jp * kx * NR..(jp + 1) * kx * NR];
        for (k, dst) in dst_panel.chunks_exact_mut(NR).enumerate() {
            dst[..nrw].copy_from_slice(&b.row(k0 + k)[j0..j0 + nrw]);
            for d in &mut dst[nrw..] {
                *d = 0.0;
            }
        }
    }
}

/// Packs an `m × kx` block of A k-major for `matmul`: the block's rows
/// are `m` *rows* of `a` (`out[k*m + mm] = a[i0+mm][k0+k]`).
fn pack_a_rows(a: &Matrix, i0: usize, m: usize, k0: usize, kx: usize, out: &mut [f32]) {
    for mm in 0..m {
        for (k, &v) in a.row(i0 + mm)[k0..k0 + kx].iter().enumerate() {
            out[k * m + mm] = v;
        }
    }
}

/// Packs an `m × kx` block of A k-major for `t_matmul`: the block's rows
/// are `m` *columns* of `a` (`out[k*m + mm] = a[k0+k][i0+mm]`), read as
/// contiguous `m`-wide slices of `a`'s rows.
fn pack_a_cols(a: &Matrix, i0: usize, m: usize, k0: usize, kx: usize, out: &mut [f32]) {
    for k in 0..kx {
        out[k * m..(k + 1) * m].copy_from_slice(&a.row(k0 + k)[i0..i0 + m]);
    }
}

/// The micro-kernel: accumulates an `M × NR` output block over one
/// packed k-panel. `apan` is k-major `M`-wide, `bpan` k-major `NR`-wide;
/// each output element receives one `mul_add` per k step, ascending —
/// the canonical accumulation order of the determinism contract.
///
/// `inline(never)` is deliberate: compiled standalone, LLVM keeps the
/// `M × NR` accumulator block in vector registers for the whole k loop;
/// inlined into the packing drivers it has been observed to spill.
#[inline(never)]
#[allow(clippy::needless_range_loop)]
fn micro_kernel<const M: usize>(
    apan: &[f32],
    bpan: &[f32],
    out_rows: &mut [f32],
    ldc: usize,
    j0: usize,
    nrw: usize,
) {
    let mut acc = [[0.0f32; NR]; M];
    for m in 0..M {
        let base = m * ldc + j0;
        acc[m][..nrw].copy_from_slice(&out_rows[base..base + nrw]);
    }
    for (ak, bk) in apan.chunks_exact(M).zip(bpan.chunks_exact(NR)) {
        let bk: &[f32; NR] = bk.try_into().expect("NR-wide b micro-panel");
        for (m, am) in acc.iter_mut().enumerate() {
            let a = ak[m];
            for (j, accv) in am.iter_mut().enumerate() {
                *accv = a.mul_add(bk[j], *accv);
            }
        }
    }
    for m in 0..M {
        let base = m * ldc + j0;
        out_rows[base..base + nrw].copy_from_slice(&acc[m][..nrw]);
    }
}

/// Sweeps the row blocks of one output chunk against a packed B panel.
#[allow(clippy::too_many_arguments)]
fn row_block_sweep(
    a: &Matrix,
    bpan: &[f32],
    out_chunk: &mut [f32],
    i0: usize,
    n: usize,
    k0: usize,
    kx: usize,
    pack_a: impl Fn(&Matrix, usize, usize, usize, usize, &mut [f32]),
) {
    let rows_here = out_chunk.len() / n;
    let jpanels = n.div_ceil(NR);
    let mut rb = 0;
    while rb < rows_here {
        let m = (rows_here - rb).min(MR);
        PACK_A.with(|cell| {
            with_pack_buf(cell, kx * m, |apan| {
                pack_a(a, i0 + rb, m, k0, kx, apan);
                let out_rows = &mut out_chunk[rb * n..(rb + m) * n];
                for jp in 0..jpanels {
                    let j0 = jp * NR;
                    let nrw = NR.min(n - j0);
                    let bp = &bpan[jp * kx * NR..(jp + 1) * kx * NR];
                    match m {
                        6 => micro_kernel::<6>(apan, bp, out_rows, n, j0, nrw),
                        5 => micro_kernel::<5>(apan, bp, out_rows, n, j0, nrw),
                        4 => micro_kernel::<4>(apan, bp, out_rows, n, j0, nrw),
                        3 => micro_kernel::<3>(apan, bp, out_rows, n, j0, nrw),
                        2 => micro_kernel::<2>(apan, bp, out_rows, n, j0, nrw),
                        _ => micro_kernel::<1>(apan, bp, out_rows, n, j0, nrw),
                    }
                }
            });
        });
        rb += m;
    }
}

/// Shared driver for the two accumulating GEMMs (`matmul` and
/// `t_matmul`): packs **all** of B's k-panels into the thread-local
/// scratch once, then runs a single chunk-parallel region in which each
/// row chunk sweeps the panels in ascending k — one executor
/// spawn/join per GEMM instead of one per panel, with the per-element
/// accumulation order (and therefore every output bit) unchanged. `k`
/// is the contraction length; `pack_a` decides whether A blocks come
/// from rows (`matmul`) or columns (`t_matmul`).
#[allow(clippy::too_many_arguments)]
fn blocked_driver(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    k: usize,
    kc: usize,
    chunk_rows: usize,
    pack_a: impl Fn(&Matrix, usize, usize, usize, usize, &mut [f32]) + Sync,
) {
    let n = b.cols();
    let kc = kc.max(1);
    let panel_stride = n.div_ceil(NR) * NR;
    PACK_B.with(|cell| {
        with_pack_buf(cell, k * panel_stride, |bpack| {
            let mut k0 = 0;
            while k0 < k {
                let kx = kc.min(k - k0);
                pack_b_panel(
                    b,
                    k0,
                    kx,
                    &mut bpack[k0 * panel_stride..(k0 + kx) * panel_stride],
                );
                k0 += kx;
            }
            let bpack: &[f32] = bpack;
            let pack_a = &pack_a;
            lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, move |c, chunk| {
                let mut k0 = 0;
                while k0 < k {
                    let kx = kc.min(k - k0);
                    let bpan = &bpack[k0 * panel_stride..(k0 + kx) * panel_stride];
                    row_block_sweep(a, bpan, chunk, c * chunk_rows, n, k0, kx, pack_a);
                    k0 += kx;
                }
            });
        });
    });
}

/// Blocked `out += a · b` over a zeroed `out` (the [`Matrix::matmul`]
/// kernel).
pub(crate) fn matmul_blocked(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    kc: usize,
    chunk_rows: usize,
) {
    blocked_driver(a, b, out, a.cols(), kc, chunk_rows, pack_a_rows);
}

/// Blocked `out += aᵀ · b` over a zeroed `out` (the
/// [`Matrix::t_matmul`] kernel). The contraction runs over `a`'s rows
/// (the batch dimension of the weight-gradient GEMM), ascending.
pub(crate) fn t_matmul_blocked(
    a: &Matrix,
    b: &Matrix,
    out: &mut Matrix,
    kc: usize,
    chunk_rows: usize,
) {
    blocked_driver(a, b, out, a.rows(), kc, chunk_rows, pack_a_cols);
}

/// Reduces the eight accumulation lanes of a [`dot_tree`] in the fixed
/// pairwise order — the one tree every `matmul_t` implementation shares.
#[inline(always)]
fn reduce_lanes(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// Dot product with the fixed eight-lane `mul_add` accumulation tree:
/// lane `t` accumulates elements `t, t+8, t+16, …` ascending, the lanes
/// are reduced pairwise (`reduce_lanes`), and the `len % 8` tail is
/// folded in last through a single sequential accumulator. This is the
/// canonical inner product of [`Matrix::matmul_t`]; any blocking of that
/// kernel must reproduce it bit-for-bit.
#[must_use]
pub fn dot_tree(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot_tree length mismatch");
    let mut lanes = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (av, bv) in (&mut ac).zip(&mut bc) {
        for t in 0..LANES {
            lanes[t] = av[t].mul_add(bv[t], lanes[t]);
        }
    }
    let mut rem = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        rem = x.mul_add(y, rem);
    }
    reduce_lanes(&lanes) + rem
}

/// One output row of `matmul_t`: `out_row[j] = dot_tree(a_row, b.row(j))`,
/// computed [`NRT`] columns at a time so each loaded `a` vector is
/// reused across [`NRT`] (= 8) rows of B.
fn matmul_t_row(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    let n = b.rows();
    let k = a_row.len();
    let k8 = k - k % LANES;
    let mut j = 0;
    while j + NRT <= n {
        let brows: [&[f32]; NRT] = std::array::from_fn(|jj| b.row(j + jj));
        let mut lanes = [[0.0f32; LANES]; NRT];
        let mut pos = 0;
        while pos < k8 {
            let av: &[f32; LANES] = a_row[pos..pos + LANES].try_into().expect("lane chunk");
            for (jj, lane) in lanes.iter_mut().enumerate() {
                let bv: &[f32; LANES] = brows[jj][pos..pos + LANES].try_into().expect("lane chunk");
                for t in 0..LANES {
                    lane[t] = av[t].mul_add(bv[t], lane[t]);
                }
            }
            pos += LANES;
        }
        let mut rems = [0.0f32; NRT];
        for p in k8..k {
            let x = a_row[p];
            for (jj, r) in rems.iter_mut().enumerate() {
                *r = x.mul_add(brows[jj][p], *r);
            }
        }
        for (jj, (lane, rem)) in lanes.iter().zip(rems.iter()).enumerate() {
            out_row[j + jj] = reduce_lanes(lane) + rem;
        }
        j += NRT;
    }
    while j < n {
        out_row[j] = dot_tree(a_row, b.row(j));
        j += 1;
    }
}

/// Blocked `out = a · bᵀ` (the [`Matrix::matmul_t`] kernel).
pub(crate) fn matmul_t_blocked(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.rows();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, chunk| {
        for (r, out_row) in chunk.chunks_mut(n).enumerate() {
            matmul_t_row(a.row(c * chunk_rows + r), b, out_row);
        }
    });
}

/// Reference `matmul` kernel: the pre-blocking i-k-j loop with its
/// zero-skip fast path, over the shared single-accumulator `mul_add`
/// accumulation. Bitwise identical to [`matmul_blocked`] for finite
/// inputs.
pub(crate) fn reference_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.cols();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(c * chunk_rows + k_row);
            for (k, &av) in a_row.iter().enumerate() {
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    });
}

/// Reference `t_matmul` kernel (pre-blocking structure, shared
/// accumulation; see [`reference_matmul_into`]).
pub(crate) fn reference_t_matmul_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.cols();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let i = c * chunk_rows + k_row;
            for r in 0..a.rows() {
                let av = a.row(r)[i];
                if av == 0.0 {
                    continue;
                }
                let b_row = b.row(r);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o = av.mul_add(bv, *o);
                }
            }
        }
    });
}

/// Reference `matmul_t` kernel: one [`dot_tree`] per output element in
/// the plain double loop.
pub(crate) fn reference_matmul_t_into(a: &Matrix, b: &Matrix, out: &mut Matrix, chunk_rows: usize) {
    let n = b.rows();
    lazydp_exec::global().par_for(out.as_mut_slice(), chunk_rows * n, |c, out_chunk| {
        for (k_row, out_row) in out_chunk.chunks_mut(n).enumerate() {
            let a_row = a.row(c * chunk_rows + k_row);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot_tree(a_row, b.row(j));
            }
        }
    });
}

/// `a · b` through the blocked kernel with explicit tile parameters
/// (`kc` k-panel depth, `chunk_rows` executor chunking) — exposed so the
/// invariance proptests can sweep tilings.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn matmul_with_tiles(a: &Matrix, b: &Matrix, kc: usize, chunk_rows: usize) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "matmul_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    matmul_blocked(a, b, &mut out, kc, chunk_rows.clamp(1, a.rows().max(1)));
    out
}

/// `aᵀ · b` through the blocked kernel with explicit tile parameters
/// (see [`matmul_with_tiles`]).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn t_matmul_with_tiles(a: &Matrix, b: &Matrix, kc: usize, chunk_rows: usize) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "t_matmul_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    t_matmul_blocked(a, b, &mut out, kc, chunk_rows.clamp(1, a.cols().max(1)));
    out
}

/// `a · bᵀ` through the blocked kernel with explicit executor chunking
/// (see [`matmul_with_tiles`]; `matmul_t` has no k-panel).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn matmul_t_with_tiles(a: &Matrix, b: &Matrix, chunk_rows: usize) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "matmul_t_with_tiles dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    matmul_t_blocked(a, b, &mut out, chunk_rows.clamp(1, a.rows().max(1)));
    out
}

/// `a · b` through the reference kernel (pre-blocking loop structure).
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.rows(), "reference_matmul dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.cols());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    reference_matmul_into(a, b, &mut out, a.rows().max(1));
    out
}

/// `aᵀ · b` through the reference kernel.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_t_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.rows(), b.rows(), "reference_t_matmul dimension mismatch");
    let mut out = Matrix::zeros(a.cols(), b.cols());
    if out.is_empty() || a.rows() == 0 {
        return out;
    }
    reference_t_matmul_into(a, b, &mut out, a.cols().max(1));
    out
}

/// `a · bᵀ` through the reference kernel.
///
/// # Panics
///
/// Panics on dimension mismatch.
#[must_use]
pub fn reference_matmul_t(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(a.cols(), b.cols(), "reference_matmul_t dimension mismatch");
    let mut out = Matrix::zeros(a.rows(), b.rows());
    if out.is_empty() || a.cols() == 0 {
        return out;
    }
    reference_matmul_t_into(a, b, &mut out, a.rows().max(1));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo_random(rows: usize, cols: usize, seed: u32, zeros: bool) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u32)
                .wrapping_mul(2_654_435_761)
                .wrapping_add((j as u32).wrapping_mul(40_503))
                .wrapping_add(seed);
            let v = ((x % 1000) as f32 - 500.0) / 250.0;
            if zeros && x.is_multiple_of(5) {
                0.0
            } else {
                v
            }
        })
    }

    #[test]
    fn blocked_matches_reference_bitwise_on_awkward_shapes() {
        // Shapes chosen to exercise every tail: rows % MR, cols % NR,
        // k % kc, k % LANES all nonzero.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (33, 130, 47),
            (64, 64, 64),
        ] {
            let a = pseudo_random(m, k, 1, true);
            let b = pseudo_random(k, n, 2, true);
            let at = pseudo_random(k, m, 4, true); // t_matmul: shared leading dim k
            let bt = pseudo_random(n, k, 3, true); // matmul_t: shared trailing dim k
            assert_eq!(
                matmul_with_tiles(&a, &b, 32, 4),
                reference_matmul(&a, &b),
                "matmul {m}x{k}x{n}"
            );
            assert_eq!(
                t_matmul_with_tiles(&at, &b, 16, 3),
                reference_t_matmul(&at, &b),
                "t_matmul {m}x{k}x{n}"
            );
            assert_eq!(
                matmul_t_with_tiles(&a, &bt, 5),
                reference_matmul_t(&a, &bt),
                "matmul_t {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn tile_sizes_do_not_change_bits() {
        let a = pseudo_random(23, 61, 7, true);
        let b = pseudo_random(61, 29, 8, false);
        let base = matmul_with_tiles(&a, &b, DEFAULT_KC, 23);
        for kc in [1usize, 3, 8, 61, 100] {
            for chunk in [1usize, 5, 23] {
                assert_eq!(
                    base,
                    matmul_with_tiles(&a, &b, kc, chunk),
                    "kc={kc} chunk={chunk}"
                );
            }
        }
    }

    #[test]
    fn dot_tree_matches_f64_dot_closely() {
        let a: Vec<f32> = (0..103)
            .map(|i| ((i * 37) % 19) as f32 / 7.0 - 1.0)
            .collect();
        let b: Vec<f32> = (0..103)
            .map(|i| ((i * 53) % 23) as f32 / 9.0 - 1.0)
            .collect();
        let exact = crate::vecops::dot(&a, &b);
        let got = f64::from(dot_tree(&a, &b));
        assert!((got - exact).abs() < 1e-3, "{got} vs {exact}");
    }

    #[test]
    fn gemm_mode_roundtrip() {
        assert_eq!(gemm_mode(), GemmMode::Blocked);
        set_gemm_mode(GemmMode::Reference);
        assert_eq!(gemm_mode(), GemmMode::Reference);
        set_gemm_mode(GemmMode::Blocked);
        assert_eq!(gemm_mode(), GemmMode::Blocked);
    }
}
