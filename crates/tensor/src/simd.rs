//! Runtime-gated SIMD bodies for the GEMM kernel layer.
//!
//! This is the **only** module in the workspace allowed to contain
//! `unsafe` code (the tensor crate root carries `#![deny(unsafe_code)]`
//! and this file opts back in; every other crate root keeps
//! `#![forbid(unsafe_code)]`). The unsafe surface is exactly three
//! `core::arch::x86_64` kernel bodies plus the `unsafe {}` calls that
//! dispatch to them behind a runtime CPU-feature gate.
//!
//! # The bitwise contract
//!
//! Each AVX2 body reproduces the *exact* operation sequence of its
//! scalar twin in [`crate::gemm`]: one fused multiply-add per output
//! element per ascending k step, in the same lane/element order.
//! `vfmadd231ps` performs the IEEE-754 fusedMultiplyAdd per lane with a
//! single rounding — the same operation `f32::mul_add` specifies — so
//! enabling or disabling the gate never changes a single output bit.
//! The `simd_on_off_is_bitwise_identical` test and the gemm proptests
//! pin this.
//!
//! # The gate
//!
//! Resolution is lazy and process-wide, mirroring `LAZYDP_THREADS` and
//! `LAZYDP_GEMM`: the first kernel call reads the `LAZYDP_SIMD` env
//! override (`on`/`1`/`true` or `off`/`0`/`false`) and then requires
//! runtime detection of `avx2` **and** `fma`. [`set_simd_enabled`] can
//! flip the gate later (tests and benches use this), but an enable
//! request is ANDed with CPU support — the gate can never route to an
//! AVX2 body on hardware that lacks it, which would be undefined
//! behavior, not just a wrong answer.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicU8, Ordering};

use crate::gemm::{LANES, NR, NRT};

/// Lazily resolved gate: 0 = not yet resolved, 1 = SIMD on, 2 = SIMD off.
static SIMD_MODE: AtomicU8 = AtomicU8::new(0);

/// Parses a `LAZYDP_SIMD` override: `on`/`1`/`true` force-requests the
/// SIMD bodies (still subject to CPU support), `off`/`0`/`false` forces
/// the scalar fallbacks, anything else is ignored.
#[must_use]
pub fn parse_simd_override(value: &str) -> Option<bool> {
    let v = value.trim();
    if ["on", "1", "true"]
        .iter()
        .any(|s| v.eq_ignore_ascii_case(s))
    {
        Some(true)
    } else if ["off", "0", "false"]
        .iter()
        .any(|s| v.eq_ignore_ascii_case(s))
    {
        Some(false)
    } else {
        None
    }
}

/// Whether this CPU can run the AVX2+FMA bodies at all.
#[must_use]
pub fn cpu_supports_simd() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::is_x86_feature_detected!("avx2") && std::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Resolves the gate from the environment: the `LAZYDP_SIMD` override
/// (default: on) ANDed with runtime CPU-feature detection.
#[must_use]
pub fn detect_simd() -> bool {
    let want = std::env::var("LAZYDP_SIMD")
        .ok()
        .and_then(|v| parse_simd_override(&v))
        .unwrap_or(true);
    want && cpu_supports_simd()
}

/// Overrides the process-wide SIMD gate. An enable request is ANDed
/// with CPU support: forcing SIMD on hardware without AVX2+FMA would be
/// undefined behavior, so it silently resolves to the scalar fallback
/// there (check [`simd_enabled`] afterwards if you must know).
pub fn set_simd_enabled(on: bool) {
    let enc = if on && cpu_supports_simd() { 1 } else { 2 };
    SIMD_MODE.store(enc, Ordering::Relaxed);
}

/// Whether kernel calls currently route to the AVX2 bodies. Resolves
/// the gate from [`detect_simd`] on first use.
#[must_use]
pub fn simd_enabled() -> bool {
    match SIMD_MODE.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => {
            let detected = detect_simd();
            let enc = if detected { 1 } else { 2 };
            match SIMD_MODE.compare_exchange(0, enc, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => detected,
                Err(1) => true,
                Err(_) => false,
            }
        }
    }
}

/// Gate-dispatched micro-kernel: AVX2 body when the gate is open,
/// [`crate::gemm::micro_kernel_scalar`] otherwise. Both produce
/// identical bits (module docs).
#[inline]
pub(crate) fn micro_kernel<const M: usize>(
    apan: &[f32],
    bpan: &[f32],
    out_rows: &mut [f32],
    ldc: usize,
    j0: usize,
    nrw: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: the gate only reports true after runtime detection of
        // avx2 and fma on this CPU (`set_simd_enabled` re-checks too).
        unsafe { x86::micro_kernel_avx::<M>(apan, bpan, out_rows, ldc, j0, nrw) };
        return;
    }
    crate::gemm::micro_kernel_scalar::<M>(apan, bpan, out_rows, ldc, j0, nrw);
}

/// Gate-dispatched eight-lane dot accumulation over the aligned prefix
/// (`a.len()` must be a multiple of [`LANES`]); scalar twin:
/// [`crate::gemm::dot_lanes_scalar`].
#[inline]
pub(crate) fn dot_lanes(a: &[f32], b: &[f32], lanes: &mut [f32; LANES]) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: gate implies runtime avx2+fma detection succeeded.
        unsafe { x86::dot_lanes_avx(a, b, lanes) };
        return;
    }
    crate::gemm::dot_lanes_scalar(a, b, lanes);
}

/// Gate-dispatched [`NRT`]-row lane accumulation of `matmul_t`; scalar
/// twin: [`crate::gemm::mt_lanes_scalar`].
#[inline]
pub(crate) fn mt_lanes(
    a_row: &[f32],
    brows: &[&[f32]; NRT],
    k8: usize,
    lanes: &mut [[f32; LANES]; NRT],
) {
    #[cfg(target_arch = "x86_64")]
    if simd_enabled() {
        // SAFETY: gate implies runtime avx2+fma detection succeeded.
        unsafe { x86::mt_lanes_avx(a_row, brows, k8, lanes) };
        return;
    }
    crate::gemm::mt_lanes_scalar(a_row, brows, k8, lanes);
}

/// The AVX2+FMA kernel bodies. Every function here carries
/// `#[target_feature(enable = "avx2", enable = "fma")]` and is `unsafe`
/// to call precisely because of that requirement; the dispatchers above
/// are the only callers and they hold the runtime-detection proof.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::{
        __m256, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps, _mm256_storeu_ps,
    };

    use super::{LANES, NR, NRT};

    /// AVX2 body of the `M × NR` micro-kernel. `NR` (= 16) spans two
    /// `__m256` registers per row; each ascending k step broadcasts one
    /// packed A element and issues one `vfmadd231ps` per half-row —
    /// per lane the identical single-rounding fused multiply-add, in
    /// the identical order, as the scalar body's `mul_add` loop.
    ///
    /// Partial column panels (`nrw < NR`) stage through an `NR`-wide
    /// scratch row exactly like the scalar kernel: padding lanes start
    /// at zero, accumulate only `a · 0.0`, and are never stored back.
    #[target_feature(enable = "avx2", enable = "fma")]
    #[allow(clippy::needless_range_loop)]
    pub(super) unsafe fn micro_kernel_avx<const M: usize>(
        apan: &[f32],
        bpan: &[f32],
        out_rows: &mut [f32],
        ldc: usize,
        j0: usize,
        nrw: usize,
    ) {
        let mut stage = [[0.0f32; NR]; M];
        for m in 0..M {
            let base = m * ldc + j0;
            stage[m][..nrw].copy_from_slice(&out_rows[base..base + nrw]);
        }
        let mut acc: [[__m256; 2]; M] = std::array::from_fn(|m| {
            [
                _mm256_loadu_ps(stage[m].as_ptr()),
                _mm256_loadu_ps(stage[m].as_ptr().add(LANES)),
            ]
        });
        for (ak, bk) in apan.chunks_exact(M).zip(bpan.chunks_exact(NR)) {
            let b0 = _mm256_loadu_ps(bk.as_ptr());
            let b1 = _mm256_loadu_ps(bk.as_ptr().add(LANES));
            for (m, am) in acc.iter_mut().enumerate() {
                let a = _mm256_set1_ps(ak[m]);
                am[0] = _mm256_fmadd_ps(a, b0, am[0]);
                am[1] = _mm256_fmadd_ps(a, b1, am[1]);
            }
        }
        for m in 0..M {
            _mm256_storeu_ps(stage[m].as_mut_ptr(), acc[m][0]);
            _mm256_storeu_ps(stage[m].as_mut_ptr().add(LANES), acc[m][1]);
            let base = m * ldc + j0;
            out_rows[base..base + nrw].copy_from_slice(&stage[m][..nrw]);
        }
    }

    /// AVX2 body of the eight-lane dot accumulation: the whole lane
    /// array is one `__m256` accumulator, one `vfmadd231ps` per eight
    /// elements — lane `t` sees the same ascending `mul_add` chain as
    /// the scalar body.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn dot_lanes_avx(a: &[f32], b: &[f32], lanes: &mut [f32; LANES]) {
        let mut acc = _mm256_loadu_ps(lanes.as_ptr());
        for (av, bv) in a.chunks_exact(LANES).zip(b.chunks_exact(LANES)) {
            acc = _mm256_fmadd_ps(
                _mm256_loadu_ps(av.as_ptr()),
                _mm256_loadu_ps(bv.as_ptr()),
                acc,
            );
        }
        _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    }

    /// AVX2 body of the [`NRT`]-row lane accumulation: one `__m256`
    /// accumulator per B row, each loaded `a` vector reused across all
    /// eight rows, one `vfmadd231ps` per row per eight elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn mt_lanes_avx(
        a_row: &[f32],
        brows: &[&[f32]; NRT],
        k8: usize,
        lanes: &mut [[f32; LANES]; NRT],
    ) {
        let mut acc: [__m256; NRT] = std::array::from_fn(|jj| _mm256_loadu_ps(lanes[jj].as_ptr()));
        let mut pos = 0;
        while pos < k8 {
            let av = _mm256_loadu_ps(a_row.as_ptr().add(pos));
            for (jj, accv) in acc.iter_mut().enumerate() {
                *accv = _mm256_fmadd_ps(av, _mm256_loadu_ps(brows[jj].as_ptr().add(pos)), *accv);
            }
            pos += LANES;
        }
        for (jj, accv) in acc.iter().enumerate() {
            _mm256_storeu_ps(lanes[jj].as_mut_ptr(), *accv);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_parsing_is_case_insensitive_and_strict() {
        for v in ["on", "ON", " 1 ", "true", "True"] {
            assert_eq!(parse_simd_override(v), Some(true), "{v:?}");
        }
        for v in ["off", "OFF", "0", "false", " False "] {
            assert_eq!(parse_simd_override(v), Some(false), "{v:?}");
        }
        for v in ["", "yes", "no", "2", "avx2"] {
            assert_eq!(parse_simd_override(v), None, "{v:?}");
        }
    }

    #[test]
    fn gate_never_enables_without_cpu_support() {
        let before = simd_enabled();
        set_simd_enabled(true);
        assert_eq!(simd_enabled(), cpu_supports_simd());
        set_simd_enabled(false);
        assert!(!simd_enabled());
        set_simd_enabled(before);
        assert_eq!(simd_enabled(), before && cpu_supports_simd());
    }
}
