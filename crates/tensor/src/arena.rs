//! Step-scoped scratch arena: reusable buffers for the training hot
//! loop.
//!
//! A LazyDP training step needs a zoo of short-lived buffers — MLP
//! activation/gradient matrices, per-example norm vectors, deduped
//! index lists, noise accumulation buffers. Allocating them per step
//! puts the allocator on the critical path of every iteration. The
//! [`ScratchArena`] is a typed pool with a checkout/checkin discipline:
//!
//! * [`take_f32`](ScratchArena::take_f32) (and the `f64`/`u64`/
//!   [`Matrix`] variants) pops a recycled buffer, clears it, and resizes
//!   it to the requested length;
//! * the caller uses it as an ordinary owned `Vec`/[`Matrix`] and
//!   [`put_f32`](ScratchArena::put_f32)s it back when done.
//!
//! Because a training step performs the *same* take/put sequence every
//! iteration (LIFO pool order), each slot is re-issued the same backing
//! buffer each step; once every buffer's capacity has grown to its
//! steady-state size (the first step or two), **no take or put touches
//! the heap again**. The arena is owned by the trainer/optimizer and
//! lazily sized on first use — there is nothing to configure.
//!
//! # Example
//!
//! ```
//! use lazydp_tensor::ScratchArena;
//!
//! let mut arena = ScratchArena::new();
//! let mut buf = arena.take_f32(128);
//! buf[0] = 1.0;
//! arena.put_f32(buf);
//! // The next take of any length reuses the same allocation.
//! let again = arena.take_f32(64);
//! assert_eq!(again.len(), 64);
//! ```

use crate::matrix::Matrix;

/// A typed pool of reusable scratch buffers (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct ScratchArena {
    f32s: Vec<Vec<f32>>,
    f64s: Vec<Vec<f64>>,
    u64s: Vec<Vec<u64>>,
    mats: Vec<Matrix>,
}

impl ScratchArena {
    /// Creates an empty arena. Buffers are created (and sized) lazily on
    /// first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Checks out an `f32` buffer of length `len`, zero-filled.
    #[must_use]
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let mut v = self.f32s.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Returns an `f32` buffer to the pool.
    pub fn put_f32(&mut self, v: Vec<f32>) {
        self.f32s.push(v);
    }

    /// Checks out an `f64` buffer of length `len`, zero-filled.
    #[must_use]
    pub fn take_f64(&mut self, len: usize) -> Vec<f64> {
        let mut v = self.f64s.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0.0);
        v
    }

    /// Returns an `f64` buffer to the pool.
    pub fn put_f64(&mut self, v: Vec<f64>) {
        self.f64s.push(v);
    }

    /// Checks out a `u64` buffer of length `len`, zero-filled.
    #[must_use]
    pub fn take_u64(&mut self, len: usize) -> Vec<u64> {
        let mut v = self.u64s.pop().unwrap_or_default();
        v.clear();
        v.resize(len, 0);
        v
    }

    /// Returns a `u64` buffer to the pool.
    pub fn put_u64(&mut self, v: Vec<u64>) {
        self.u64s.push(v);
    }

    /// Checks out a `rows × cols` zero matrix.
    #[must_use]
    pub fn take_matrix(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut m = self.mats.pop().unwrap_or_else(|| Matrix::zeros(0, 0));
        m.reset_zeroed(rows, cols);
        m
    }

    /// Returns a matrix to the pool.
    pub fn put_matrix(&mut self, m: Matrix) {
        self.mats.push(m);
    }

    /// Number of buffers currently parked in the pools (diagnostics).
    #[must_use]
    pub fn pooled(&self) -> usize {
        self.f32s.len() + self.f64s.len() + self.u64s.len() + self.mats.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_is_cleared_and_sized() {
        let mut a = ScratchArena::new();
        let mut v = a.take_f32(4);
        v.fill(7.0);
        a.put_f32(v);
        let v2 = a.take_f32(6);
        assert_eq!(v2, vec![0.0; 6], "stale contents must not leak");
        a.put_f32(v2);
        assert_eq!(a.pooled(), 1);
    }

    #[test]
    fn buffers_are_recycled_not_reallocated() {
        let mut a = ScratchArena::new();
        let v = a.take_f32(1000);
        let cap = v.capacity();
        let ptr = v.as_ptr();
        a.put_f32(v);
        let v2 = a.take_f32(500);
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr, "same backing allocation");
        a.put_f32(v2);
    }

    #[test]
    fn matrices_reshape_in_place() {
        let mut a = ScratchArena::new();
        let m = a.take_matrix(8, 8);
        a.put_matrix(m);
        let m2 = a.take_matrix(4, 3);
        assert_eq!(m2.shape(), (4, 3));
        assert!(m2.as_slice().iter().all(|&x| x == 0.0));
        a.put_matrix(m2);
        let mut b = a.take_u64(3);
        b[0] = 9;
        a.put_u64(b);
        let c = a.take_f64(2);
        assert_eq!(c, vec![0.0, 0.0]);
        a.put_f64(c);
    }
}
