//! Deterministic weight initialization.

use crate::matrix::Matrix;
use lazydp_rng::{fill_standard_normal, Prng};

/// Weight initialization scheme.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitKind {
    /// Xavier/Glorot uniform: `U(−√(6/(fan_in+fan_out)), +…)` — the DLRM
    /// reference initialization for MLP weights.
    XavierUniform,
    /// Zero-mean Gaussian with the given standard deviation — the DLRM
    /// reference initialization for embedding tables uses a uniform, but
    /// Gaussian is provided for ablations.
    Normal(f32),
    /// Uniform `U(−a, a)`.
    Uniform(f32),
    /// All zeros (bias vectors).
    Zeros,
}

/// Xavier-uniform bound for a `fan_in × fan_out` weight.
#[must_use]
pub fn xavier_uniform(fan_in: usize, fan_out: usize) -> f32 {
    (6.0 / (fan_in + fan_out) as f32).sqrt()
}

impl InitKind {
    /// Fills `out` according to the scheme.
    pub fn fill<R: Prng>(&self, rng: &mut R, out: &mut [f32], fan_in: usize, fan_out: usize) {
        match *self {
            Self::XavierUniform => {
                let a = xavier_uniform(fan_in, fan_out);
                for x in out {
                    *x = (rng.next_f32() * 2.0 - 1.0) * a;
                }
            }
            Self::Normal(std) => {
                fill_standard_normal(rng, out);
                for x in out {
                    *x *= std;
                }
            }
            Self::Uniform(a) => {
                for x in out {
                    *x = (rng.next_f32() * 2.0 - 1.0) * a;
                }
            }
            Self::Zeros => out.fill(0.0),
        }
    }

    /// Creates an initialized `rows × cols` matrix (fan_in = rows,
    /// fan_out = cols, the convention for a `x·W` layout).
    #[must_use]
    pub fn matrix<R: Prng>(&self, rng: &mut R, rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zeros(rows, cols);
        self.fill(rng, m.as_mut_slice(), rows, cols);
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    #[test]
    fn xavier_bound_formula() {
        assert!((xavier_uniform(100, 200) - (6.0f32 / 300.0).sqrt()).abs() < 1e-7);
    }

    #[test]
    fn xavier_fill_respects_bound_and_is_centered() {
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let m = InitKind::XavierUniform.matrix(&mut rng, 64, 32);
        let a = xavier_uniform(64, 32);
        let mut sum = 0.0f64;
        for &x in m.as_slice() {
            assert!(x.abs() <= a);
            sum += f64::from(x);
        }
        let mean = sum / m.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_fill_has_requested_std() {
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        let m = InitKind::Normal(0.1).matrix(&mut rng, 100, 100);
        let var: f64 = m
            .as_slice()
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            / m.len() as f64;
        assert!((var.sqrt() - 0.1).abs() < 0.005, "std {}", var.sqrt());
    }

    #[test]
    fn zeros_and_determinism() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let z = InitKind::Zeros.matrix(&mut rng, 3, 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let mut r1 = Xoshiro256PlusPlus::seed_from(7);
        let mut r2 = Xoshiro256PlusPlus::seed_from(7);
        let a = InitKind::XavierUniform.matrix(&mut r1, 8, 8);
        let b = InitKind::XavierUniform.matrix(&mut r2, 8, 8);
        assert_eq!(a, b);
    }
}
