//! Loss functions for click-through-rate training.
//!
//! DLRM is trained with binary cross-entropy on the click/no-click label.
//! The implementations here operate on *logits* and use the standard
//! stable formulation, and — importantly for DP-SGD — expose per-example
//! loss gradients (the paper's per-example gradient derivation starts
//! from per-example ∂L/∂logit).

/// Stable binary cross-entropy with logits, averaged over the batch.
///
/// `loss_i = max(z,0) − z·y + ln(1 + exp(−|z|))`.
///
/// # Panics
///
/// Panics if lengths differ or a label is outside `[0, 1]`.
#[must_use]
pub fn bce_with_logits(logits: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(logits.len(), labels.len(), "logit/label length mismatch");
    assert!(!logits.is_empty(), "empty batch");
    let mut total = 0.0f64;
    for (&z, &y) in logits.iter().zip(labels.iter()) {
        assert!((0.0..=1.0).contains(&y), "label {y} outside [0,1]");
        let z = f64::from(z);
        let y = f64::from(y);
        total += z.max(0.0) - z * y + (1.0 + (-z.abs()).exp()).ln();
    }
    total / logits.len() as f64
}

/// Per-example gradient of the *mean* BCE loss with respect to each
/// logit: `(σ(z_i) − y_i) / B`.
///
/// For DP-SGD the per-example gradient of the *sum* (not mean) is often
/// wanted; pass `mean = false` for that convention. DP-SGD clips
/// per-example gradients before averaging, so it uses the sum form.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn bce_with_logits_grad(logits: &[f32], labels: &[f32], mean: bool) -> Vec<f32> {
    let mut out = Vec::new();
    bce_with_logits_grad_into(logits, labels, mean, &mut out);
    out
}

/// [`bce_with_logits_grad`] into a caller-owned vector (cleared and
/// refilled; no allocation at steady state).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn bce_with_logits_grad_into(logits: &[f32], labels: &[f32], mean: bool, out: &mut Vec<f32>) {
    assert_eq!(logits.len(), labels.len(), "logit/label length mismatch");
    let scale = if mean { 1.0 / logits.len() as f32 } else { 1.0 };
    out.clear();
    out.extend(
        logits
            .iter()
            .zip(labels.iter())
            .map(|(&z, &y)| (crate::ops::sigmoid(z) - y) * scale),
    );
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if lengths differ or the slices are empty.
#[must_use]
pub fn mse(pred: &[f32], target: &[f32]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    assert!(!pred.is_empty(), "empty batch");
    pred.iter()
        .zip(target.iter())
        .map(|(&p, &t)| {
            let d = f64::from(p) - f64::from(t);
            d * d
        })
        .sum::<f64>()
        / pred.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_known_values() {
        // z = 0 ⇒ loss = ln 2 regardless of label.
        let l = bce_with_logits(&[0.0], &[1.0]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-6);
        // Perfect confident prediction ⇒ loss → 0.
        assert!(bce_with_logits(&[30.0], &[1.0]) < 1e-9);
        assert!(bce_with_logits(&[-30.0], &[0.0]) < 1e-9);
        // Confident wrong prediction ⇒ loss ≈ |z|.
        assert!((bce_with_logits(&[-10.0], &[1.0]) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn bce_is_stable_at_extreme_logits() {
        let l = bce_with_logits(&[1e4, -1e4], &[0.0, 1.0]);
        assert!(l.is_finite());
    }

    #[test]
    fn bce_grad_matches_finite_difference() {
        let logits = [0.5f32, -1.0, 2.0];
        let labels = [1.0f32, 0.0, 1.0];
        let grad = bce_with_logits_grad(&logits, &labels, true);
        let eps = 1e-3f32;
        for j in 0..logits.len() {
            let mut lp = logits;
            lp[j] += eps;
            let mut lm = logits;
            lm[j] -= eps;
            let fd = (bce_with_logits(&lp, &labels) - bce_with_logits(&lm, &labels))
                / (2.0 * f64::from(eps));
            assert!(
                (f64::from(grad[j]) - fd).abs() < 1e-4,
                "logit {j}: grad {} fd {fd}",
                grad[j]
            );
        }
    }

    #[test]
    fn sum_grad_is_batch_times_mean_grad() {
        let logits = [0.1f32, 0.2, -0.7, 1.5];
        let labels = [0.0f32, 1.0, 0.0, 1.0];
        let mean = bce_with_logits_grad(&logits, &labels, true);
        let sum = bce_with_logits_grad(&logits, &labels, false);
        for (m, s) in mean.iter().zip(sum.iter()) {
            assert!((m * 4.0 - s).abs() < 1e-7);
        }
    }

    #[test]
    fn mse_basics() {
        assert!((mse(&[1.0, 2.0], &[1.0, 4.0]) - 2.0).abs() < 1e-9);
        assert_eq!(mse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "label")]
    fn bce_rejects_bad_labels() {
        let _ = bce_with_logits(&[0.0], &[1.5]);
    }
}
