//! Free functions on `&[f32]` vectors (dot products, norms, AXPY).
//!
//! These are the scalar analogues of the AVX streaming kernels the paper
//! characterizes in §4.3; `lazydp-sysmodel` models their vectorized cost.

/// Dot product with `f64` accumulation.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| f64::from(x) * f64::from(y))
        .sum()
}

/// Squared L2 norm with `f64` accumulation.
#[must_use]
pub fn norm_sq(a: &[f32]) -> f64 {
    a.iter().map(|&x| f64::from(x) * f64::from(x)).sum()
}

/// L2 norm.
#[must_use]
pub fn norm(a: &[f32]) -> f64 {
    norm_sq(a).sqrt()
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// In-place `y *= alpha`.
pub fn scale(alpha: f32, y: &mut [f32]) {
    for yi in y {
        *yi *= alpha;
    }
}

/// Element-wise sum of two slices into a new vector.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
}

/// Maximum absolute difference between two slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm_sq(&[3.0, 4.0]), 25.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert_eq!(norm_sq(&[]), 0.0);
    }

    #[test]
    fn axpy_scale_add() {
        let mut y = vec![1.0f32, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
        scale(0.5, &mut y);
        assert_eq!(y, vec![3.5, 4.5]);
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
    }

    #[test]
    fn max_abs_diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 5.0], &[1.5, 4.0]), 1.0);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "dot length")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
