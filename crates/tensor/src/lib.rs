//! Dense tensor substrate for the LazyDP reproduction.
//!
//! The paper's RecSys workload (DLRM) combines sparse embedding layers with
//! dense MLP stacks (paper §2.1, Fig. 1). This crate provides the dense
//! half: a row-major `f32` [`Matrix`] with the GEMM variants backprop
//! needs, activations, stable binary-cross-entropy loss, and
//! Xavier/normal initializers — all deterministic given a seed, with no
//! external BLAS so results are bit-reproducible across machines.
//!
//! # Example
//!
//! ```
//! use lazydp_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//! ```

// `deny` rather than `forbid`: the `simd` module (and only that module)
// opts back in with a file-level `#![allow(unsafe_code)]` for its
// runtime-gated `core::arch::x86_64` kernel bodies. Every other crate
// root in the workspace keeps `#![forbid(unsafe_code)]`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod gemm;
pub mod init;
pub mod loss;
pub mod matrix;
pub mod ops;
pub mod simd;
pub mod vecops;

pub use arena::ScratchArena;
pub use gemm::{detect_gemm_mode, gemm_mode, parse_gemm_mode, set_gemm_mode, GemmMode};
pub use init::{xavier_uniform, InitKind};
pub use loss::{bce_with_logits, bce_with_logits_grad, bce_with_logits_grad_into, mse};
pub use matrix::Matrix;
pub use ops::Activation;
pub use simd::{detect_simd, parse_simd_override, set_simd_enabled, simd_enabled};
