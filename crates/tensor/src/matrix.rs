//! Row-major `f32` matrix with the GEMM variants needed by backprop.
//!
//! The three GEMM variants dispatch to the register-blocked micro-kernels
//! of [`crate::gemm`] and run on the [`lazydp_exec`] executor,
//! parallelized over *output rows*: every output element is accumulated
//! in the same fixed order regardless of tiling or how rows are chunked,
//! so results are bitwise identical for any tile size and thread count
//! (the determinism the equivalence tests rely on). Small products run
//! inline — the executor is only engaged once a chunk holds enough FLOPs
//! to pay for a worker. Each GEMM also has an `_into` variant that
//! reuses a caller-owned output matrix, so steady-state training steps
//! allocate nothing (see [`crate::arena::ScratchArena`]).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Minimum multiply-add count per parallel chunk. The executor spawns
/// scoped workers per region (~tens of µs each), so a chunk must carry
/// well over that much arithmetic — at a few GFLOP/s, 2^19 multiply-adds
/// is a few hundred µs — or spawning costs more than it saves.
const MIN_CHUNK_FLOPS: usize = 1 << 19;

/// Rows per GEMM chunk so each chunk carries at least
/// [`MIN_CHUNK_FLOPS`] work (tiny products become a single chunk, which
/// `par_for` runs inline).
fn rows_per_chunk(total_rows: usize, flops_per_row: usize) -> usize {
    MIN_CHUNK_FLOPS
        .div_ceil(flops_per_row.max(1))
        .clamp(1, total_rows.max(1))
}

/// A dense row-major `f32` matrix.
///
/// This is deliberately a small, dependency-free implementation: the
/// reproduction's correctness claims (LazyDP ≡ DP-SGD) rely on bit-level
/// determinism, which an external BLAS would not guarantee across
/// machines. The GEMMs run on the register-blocked micro-kernels of
/// [`crate::gemm`], whose fixed per-element accumulation order keeps
/// results bitwise identical across tile sizes, thread counts, and the
/// naive reference kernels.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — the natural starting state for
    /// scratch-arena slots that are reshaped in place on first use.
    fn default() -> Self {
        Self::zeros(0, 0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    #[must_use]
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths or `rows` is empty.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix by evaluating `f(row, col)`.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat data.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshapes the matrix to `rows × cols` with every element zero,
    /// reusing the existing allocation (no heap traffic once the
    /// capacity has grown to fit — the scratch-arena contract).
    pub fn reset_zeroed(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `other` (shape and contents), reusing the
    /// existing allocation.
    pub fn copy_from(&mut self, other: &Self) {
        self.rows = other.rows;
        self.cols = other.cols;
        self.data.clear();
        self.data.extend_from_slice(&other.data);
    }

    /// Makes `self` a `rows × cols` matrix holding a copy of the
    /// row-major `data` slice, reusing the existing allocation.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn assign_from_slice(&mut self, rows: usize, cols: usize, data: &[f32]) {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.extend_from_slice(data);
    }

    /// Row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        assert!(i < self.rows, "row {i} out of {}", self.rows);
        let c = self.cols;
        &mut self.data[i * c..(i + 1) * c]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols)
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    #[must_use]
    pub fn matmul(&self, other: &Self) -> Self {
        let mut out = Self::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`matmul`](Self::matmul) into a caller-owned output matrix
    /// (reshaped and overwritten; no allocation once `out`'s capacity
    /// has grown to fit).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.rows, other.cols);
        if out.is_empty() || self.cols == 0 {
            return;
        }
        let chunk_rows = rows_per_chunk(self.rows, self.cols * other.cols);
        match crate::gemm::gemm_mode() {
            crate::gemm::GemmMode::Blocked => {
                let chunk_rows = crate::gemm::blocked_chunk_rows(chunk_rows, self.rows);
                crate::gemm::matmul_blocked(self, other, out, crate::gemm::DEFAULT_KC, chunk_rows);
            }
            crate::gemm::GemmMode::Reference => {
                crate::gemm::reference_matmul_into(self, other, out, chunk_rows);
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose.
    ///
    /// This is the weight-gradient GEMM of backprop
    /// (`∂L/∂W = aᵀ · δ`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`).
    #[must_use]
    pub fn t_matmul(&self, other: &Self) -> Self {
        let mut out = Self::zeros(0, 0);
        self.t_matmul_into(other, &mut out);
        out
    }

    /// [`t_matmul`](Self::t_matmul) into a caller-owned output matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`).
    pub fn t_matmul_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.cols, other.cols);
        if out.is_empty() || self.rows == 0 {
            return;
        }
        let chunk_rows = rows_per_chunk(self.cols, self.rows * other.cols);
        match crate::gemm::gemm_mode() {
            crate::gemm::GemmMode::Blocked => {
                let chunk_rows = crate::gemm::blocked_chunk_rows(chunk_rows, self.cols);
                crate::gemm::t_matmul_blocked(
                    self,
                    other,
                    out,
                    crate::gemm::DEFAULT_KC,
                    chunk_rows,
                );
            }
            crate::gemm::GemmMode::Reference => {
                crate::gemm::reference_t_matmul_into(self, other, out, chunk_rows);
            }
        }
    }

    /// `selfᵀ · diag(w) · other` without materializing either the
    /// transpose or the row-scaled copy of `other`.
    ///
    /// This is the *clipped* weight-gradient GEMM of DP backprop
    /// (`∂L/∂W = aᵀ · diag(w) · δ` with one clip factor per example):
    /// the factor indexes the contraction dimension, so the blocked
    /// kernel folds it into the packed-B panel (one multiply per packed
    /// element) and the reference kernel multiplies it into each
    /// `mul_add` operand — identical operation sequences, hence
    /// bitwise-identical to each other and to scaling `other`'s rows
    /// up front in exact arithmetic (not bitwise vs. pre-scaling,
    /// which rounds at a different point).
    #[must_use]
    pub fn t_matmul_scaled(&self, other: &Self, w: &[f32]) -> Self {
        let mut out = Self::zeros(0, 0);
        self.t_matmul_scaled_into(other, w, &mut out);
        out
    }

    /// [`t_matmul_scaled`](Self::t_matmul_scaled) into a caller-owned
    /// output matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.rows != other.rows`) or if
    /// `w.len() != self.rows`.
    pub fn t_matmul_scaled_into(&self, other: &Self, w: &[f32], out: &mut Self) {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul_scaled {}x{} ᵀ· {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        assert_eq!(w.len(), self.rows, "one scale factor per example row");
        out.reset_zeroed(self.cols, other.cols);
        if out.is_empty() || self.rows == 0 {
            return;
        }
        let chunk_rows = rows_per_chunk(self.cols, self.rows * other.cols);
        match crate::gemm::gemm_mode() {
            crate::gemm::GemmMode::Blocked => {
                let chunk_rows = crate::gemm::blocked_chunk_rows(chunk_rows, self.cols);
                crate::gemm::t_matmul_scaled_blocked(
                    self,
                    other,
                    w,
                    out,
                    crate::gemm::DEFAULT_KC,
                    chunk_rows,
                );
            }
            crate::gemm::GemmMode::Reference => {
                crate::gemm::reference_t_matmul_scaled_into(self, other, w, out, chunk_rows);
            }
        }
    }

    /// `self · otherᵀ` without materializing the transpose.
    ///
    /// This is the input-gradient GEMM of backprop
    /// (`∂L/∂a = δ · Wᵀ`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.cols != other.cols`).
    #[must_use]
    pub fn matmul_t(&self, other: &Self) -> Self {
        let mut out = Self::zeros(0, 0);
        self.matmul_t_into(other, &mut out);
        out
    }

    /// [`matmul_t`](Self::matmul_t) into a caller-owned output matrix.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch (`self.cols != other.cols`).
    pub fn matmul_t_into(&self, other: &Self, out: &mut Self) {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t {}x{} · {}x{}ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        out.reset_zeroed(self.rows, other.rows);
        if out.is_empty() || self.cols == 0 {
            return;
        }
        let chunk_rows = rows_per_chunk(self.rows, self.cols * other.rows);
        match crate::gemm::gemm_mode() {
            crate::gemm::GemmMode::Blocked => {
                crate::gemm::matmul_t_blocked(self, other, out, chunk_rows);
            }
            crate::gemm::GemmMode::Reference => {
                crate::gemm::reference_matmul_t_into(self, other, out, chunk_rows);
            }
        }
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * other` (AXPY).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling `self *= alpha`.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn hadamard(&self, other: &Self) -> Self {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Returns a new matrix with `f` applied element-wise.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm (in `f64` accumulation for stability).
    #[must_use]
    pub fn frob_norm(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
            .sqrt()
    }

    /// Squared Frobenius norm in `f64`.
    #[must_use]
    pub fn frob_norm_sq(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| f64::from(x) * f64::from(x))
            .sum::<f64>()
    }

    /// Per-row squared L2 norms (length = `rows`).
    #[must_use]
    pub fn row_norms_sq(&self) -> Vec<f64> {
        let mut out = Vec::new();
        self.row_norms_sq_into(&mut out);
        out
    }

    /// [`row_norms_sq`](Self::row_norms_sq) into a caller-owned vector
    /// (cleared and refilled; no allocation at steady state).
    pub fn row_norms_sq_into(&self, out: &mut Vec<f64>) {
        out.clear();
        out.extend(
            self.rows_iter()
                .map(|r| r.iter().map(|&x| f64::from(x) * f64::from(x)).sum::<f64>()),
        );
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    ///
    /// Panics if row counts differ.
    #[must_use]
    pub fn hcat(&self, other: &Self) -> Self {
        assert_eq!(self.rows, other.rows, "hcat row mismatch");
        let mut out = Self::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.data[i * out.cols..i * out.cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * out.cols + self.cols..(i + 1) * out.cols].copy_from_slice(other.row(i));
        }
        out
    }

    /// Extracts the sub-matrix of columns `[start, start+width)`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `cols`.
    #[must_use]
    pub fn col_slice(&self, start: usize, width: usize) -> Self {
        let mut out = Self::zeros(0, 0);
        self.col_slice_into(start, width, &mut out);
        out
    }

    /// [`col_slice`](Self::col_slice) into a caller-owned matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds `cols`.
    pub fn col_slice_into(&self, start: usize, width: usize, out: &mut Self) {
        assert!(start + width <= self.cols, "col_slice out of range");
        out.reset_zeroed(self.rows, width);
        for i in 0..self.rows {
            out.row_mut(i)
                .copy_from_slice(&self.row(i)[start..start + width]);
        }
    }

    /// Extracts a single row as a new `1 × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_matrix(&self, i: usize) -> Self {
        Self::from_vec(1, self.cols, self.row(i).to_vec())
    }

    /// Column-wise sum, returning a vector of length `cols` (the bias
    /// gradient of a linear layer).
    #[must_use]
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = Vec::new();
        self.col_sums_into(&mut out);
        out
    }

    /// [`col_sums`](Self::col_sums) into a caller-owned vector (cleared
    /// and refilled; no allocation at steady state).
    pub fn col_sums_into(&self, out: &mut Vec<f32>) {
        out.clear();
        out.resize(self.cols, 0.0);
        for r in self.rows_iter() {
            for (o, &x) in out.iter_mut().zip(r.iter()) {
                *o += x;
            }
        }
    }

    /// Weighted column-wise sum `Σᵢ w[i] · row(i)` into a caller-owned
    /// vector (cleared and refilled; no allocation at steady state) —
    /// the clipped bias gradient of a linear layer. Rows accumulate
    /// ascending through one `mul_add` per element, so the result is
    /// deterministic and matches scaling each row first in exact
    /// arithmetic.
    ///
    /// # Panics
    ///
    /// Panics if `w.len() != self.rows`.
    pub fn weighted_col_sums_into(&self, w: &[f32], out: &mut Vec<f32>) {
        assert_eq!(w.len(), self.rows, "one weight per row");
        out.clear();
        out.resize(self.cols, 0.0);
        for (r, &wi) in self.rows_iter().zip(w.iter()) {
            for (o, &x) in out.iter_mut().zip(r.iter()) {
                *o = wi.mul_add(x, *o);
            }
        }
    }

    /// Maximum absolute element-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (i, j): (usize, usize)) -> &f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f32 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of {:?}",
            self.shape()
        );
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    fn pseudo_random(rows: usize, cols: usize, seed: u32) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add((j as u32).wrapping_mul(40503))
                .wrapping_add(seed);
            ((x % 1000) as f32 - 500.0) / 250.0
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = pseudo_random(7, 5, 1);
        let b = pseudo_random(5, 9, 2);
        let fast = a.matmul(&b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = pseudo_random(4, 4, 3);
        assert_eq!(a.matmul(&Matrix::identity(4)), a);
        assert_eq!(Matrix::identity(4).matmul(&a), a);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = pseudo_random(6, 4, 4);
        let b = pseudo_random(6, 3, 5);
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = pseudo_random(6, 4, 6);
        let b = pseudo_random(3, 4, 7);
        let fused = a.matmul_t(&b);
        let explicit = a.matmul(&b.transpose());
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn transpose_is_involution() {
        let a = pseudo_random(5, 8, 8);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 3.0);
        a.axpy(2.0, &b);
        assert_eq!(a, Matrix::filled(2, 2, 7.0));
        a.scale(0.5);
        assert_eq!(a, Matrix::filled(2, 2, 3.5));
    }

    #[test]
    fn norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((a.frob_norm() - 5.0).abs() < 1e-9);
        assert_eq!(a.row_norms_sq(), vec![9.0, 16.0]);
        assert!((a.frob_norm_sq() - 25.0).abs() < 1e-9);
    }

    #[test]
    fn hcat_and_col_slice_roundtrip() {
        let a = pseudo_random(3, 2, 9);
        let b = pseudo_random(3, 5, 10);
        let c = a.hcat(&b);
        assert_eq!(c.shape(), (3, 7));
        assert_eq!(c.col_slice(0, 2), a);
        assert_eq!(c.col_slice(2, 5), b);
    }

    #[test]
    fn col_sums_matches_manual() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0], &[100.0, 200.0]]);
        assert_eq!(a.col_sums(), vec![111.0, 222.0]);
    }

    #[test]
    fn rows_iter_and_row_access_agree() {
        let a = pseudo_random(4, 3, 11);
        for (i, r) in a.rows_iter().enumerate() {
            assert_eq!(r, a.row(i));
        }
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_rejects_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn hadamard_and_map() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, -8.0]]));
        assert_eq!(a.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn gemm_variants_are_bitwise_identical_across_thread_counts() {
        // Big enough that the executor actually engages (> MIN_CHUNK_FLOPS
        // per GEMM), with ReLU-like zeros to exercise the skip path.
        let a = pseudo_random(96, 80, 20).map(|x| if x < -1.0 { 0.0 } else { x });
        let b = pseudo_random(80, 96, 21);
        let bt = pseudo_random(96, 96, 22);
        let initial = lazydp_exec::global_threads();
        lazydp_exec::set_global_threads(1);
        let (m1, t1, mt1) = (a.matmul(&b), a.t_matmul(&bt), a.matmul_t(&a));
        for threads in [2usize, 3, 8] {
            lazydp_exec::set_global_threads(threads);
            assert_eq!(m1, a.matmul(&b), "matmul, {threads} threads");
            assert_eq!(t1, a.t_matmul(&bt), "t_matmul, {threads} threads");
            assert_eq!(mt1, a.matmul_t(&a), "matmul_t, {threads} threads");
        }
        lazydp_exec::set_global_threads(initial);
    }

    #[test]
    fn matmul_associativity_within_tolerance() {
        let a = pseudo_random(4, 5, 12);
        let b = pseudo_random(5, 6, 13);
        let c = pseudo_random(6, 3, 14);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-2);
    }
}
