//! Shared DP-SGD hyper-parameters.

/// Hyper-parameters common to every DP optimizer (the arguments of the
/// paper's `LazyDP.make_private` wrapper, Fig. 9(a)).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpConfig {
    /// Noise multiplier σ (Fig. 9(a) example: 1.1).
    pub noise_multiplier: f64,
    /// Per-example gradient clipping threshold C (Fig. 9(a): 1.0).
    pub max_grad_norm: f64,
    /// Learning rate η (Fig. 9(a): 0.05).
    pub lr: f32,
    /// Nominal batch size B used for the 1/B scaling of gradients and
    /// noise (Algorithm 1). Under Poisson sampling the realized batch
    /// varies; Opacus scales by the nominal size, and so do we.
    pub nominal_batch: usize,
    /// Worker threads for the DP noise kernels (dense noisy update,
    /// LazyDP's pending-noise flush). The GEMMs inside forward/backward
    /// are governed separately by the process-global width
    /// (`lazydp_exec::global_threads` / `LAZYDP_THREADS`), not by this
    /// field. Every kernel is chunk-addressed on the `lazydp_exec`
    /// executor, so with an addressable noise source the trained model
    /// is bitwise identical for any value here. [`new`](Self::new)
    /// defaults it to [`lazydp_exec::global_threads`].
    pub threads: usize,
    /// Hash-partition shard count `S` for the sparse embedding state
    /// (LazyDP's `ShardedHistory` bookkeeping and pending-noise flush;
    /// rows are assigned shard `row mod S`). Shards flush concurrently,
    /// each using the executor width left over by the fan-out
    /// (`threads / S`, so `S = 1` keeps full thread-parallel sampling);
    /// like `threads`, the trained model is bitwise identical for any
    /// value when the noise source is addressable (non-addressable
    /// sources fall back to the 1-shard sequential path). Defaults
    /// to 1.
    pub shards: usize,
}

impl DpConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-positive or non-finite.
    #[must_use]
    pub fn new(noise_multiplier: f64, max_grad_norm: f64, lr: f32, nominal_batch: usize) -> Self {
        assert!(
            noise_multiplier.is_finite() && noise_multiplier >= 0.0,
            "noise multiplier must be finite and >= 0"
        );
        assert!(
            max_grad_norm.is_finite() && max_grad_norm > 0.0,
            "clipping threshold must be positive"
        );
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        assert!(nominal_batch > 0, "batch size must be positive");
        Self {
            noise_multiplier,
            max_grad_norm,
            lr,
            nominal_batch,
            threads: lazydp_exec::global_threads(),
            shards: 1,
        }
    }

    /// Sets the worker-thread count for the parallel kernels.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Sets the sparse-state shard count.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        self.shards = shards;
        self
    }

    /// The paper's default hyper-parameters (Fig. 9(a)) at the given
    /// batch size.
    #[must_use]
    pub fn paper_default(nominal_batch: usize) -> Self {
        Self::new(1.1, 1.0, 0.05, nominal_batch)
    }

    /// Per-coordinate standard deviation of the noise added to the
    /// *averaged* gradient: `σ·C/B` (Algorithm 1 lines 34/38 divide the
    /// `N(0, σ²C²)` draw by B).
    #[must_use]
    pub fn noise_std_per_coord(&self) -> f32 {
        (self.noise_multiplier * self.max_grad_norm / self.nominal_batch as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_std_formula() {
        let cfg = DpConfig::new(1.1, 2.0, 0.05, 100);
        assert!((f64::from(cfg.noise_std_per_coord()) - 1.1 * 2.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn paper_default_values() {
        let cfg = DpConfig::paper_default(2048);
        assert_eq!(cfg.noise_multiplier, 1.1);
        assert_eq!(cfg.max_grad_norm, 1.0);
        assert_eq!(cfg.lr, 0.05);
        assert_eq!(cfg.nominal_batch, 2048);
    }

    #[test]
    fn threads_default_and_override() {
        let cfg = DpConfig::paper_default(8);
        assert_eq!(cfg.threads, lazydp_exec::global_threads());
        assert_eq!(cfg.with_threads(3).threads, 3);
    }

    #[test]
    fn shards_default_and_override() {
        let cfg = DpConfig::paper_default(8);
        assert_eq!(cfg.shards, 1);
        assert_eq!(cfg.with_shards(4).shards, 4);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_zero_threads() {
        let _ = DpConfig::paper_default(8).with_threads(0);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = DpConfig::paper_default(8).with_shards(0);
    }

    #[test]
    fn zero_noise_is_allowed_for_ablation() {
        let cfg = DpConfig::new(0.0, 1.0, 0.1, 8);
        assert_eq!(cfg.noise_std_per_coord(), 0.0);
    }

    #[test]
    #[should_panic(expected = "clipping threshold")]
    fn rejects_zero_clip() {
        let _ = DpConfig::new(1.0, 0.0, 0.1, 8);
    }
}
