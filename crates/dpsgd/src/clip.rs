//! Per-example L2-norm clipping (paper §2.4, step 2 of DP-SGD).

/// Clipping coefficients `min(1, C / ‖g_i‖)` from per-example *squared*
/// norms.
///
/// # Panics
///
/// Panics if `c <= 0` or a squared norm is negative/NaN.
#[must_use]
pub fn clip_weights(norms_sq: &[f64], c: f64) -> Vec<f32> {
    let mut out = Vec::new();
    clip_weights_into(norms_sq, c, &mut out);
    out
}

/// [`clip_weights`] into a caller-owned vector (cleared and refilled;
/// no allocation at steady state).
///
/// # Panics
///
/// Panics if `c <= 0` or a squared norm is negative/NaN.
pub fn clip_weights_into(norms_sq: &[f64], c: f64, out: &mut Vec<f32>) {
    assert!(c > 0.0, "clipping threshold must be positive");
    out.clear();
    out.extend(norms_sq.iter().map(|&n| {
        assert!(n >= 0.0, "squared norm must be non-negative, got {n}");
        let norm = n.sqrt();
        if norm <= c {
            1.0
        } else {
            (c / norm) as f32
        }
    }));
}

/// Fraction of examples whose gradient was actually clipped (norm > C) —
/// a standard DP-SGD diagnostic.
#[must_use]
pub fn clipped_fraction(norms_sq: &[f64], c: f64) -> f64 {
    if norms_sq.is_empty() {
        return 0.0;
    }
    let clipped = norms_sq.iter().filter(|&&n| n.sqrt() > c).count();
    clipped as f64 / norms_sq.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_gradients_pass_through() {
        let w = clip_weights(&[0.25, 1.0], 1.0); // norms 0.5, 1.0
        assert_eq!(w, vec![1.0, 1.0]);
    }

    #[test]
    fn large_gradients_scaled_to_threshold() {
        let w = clip_weights(&[4.0], 1.0); // norm 2 → weight 0.5
        assert!((w[0] - 0.5).abs() < 1e-7);
        // After scaling, the norm equals exactly C.
        assert!((f64::from(w[0]) * 2.0 - 1.0).abs() < 1e-7);
    }

    #[test]
    fn clipped_fraction_counts() {
        let norms_sq = [0.25, 4.0, 9.0, 1.0];
        assert!((clipped_fraction(&norms_sq, 1.0) - 0.5).abs() < 1e-12);
        assert_eq!(clipped_fraction(&[], 1.0), 0.0);
    }

    #[test]
    fn zero_gradient_is_fine() {
        assert_eq!(clip_weights(&[0.0], 1.0), vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "clipping threshold")]
    fn rejects_bad_threshold() {
        let _ = clip_weights(&[1.0], 0.0);
    }
}
