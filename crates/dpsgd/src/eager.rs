//! Eager DP-SGD: the three baseline variants DP-SGD(B), DP-SGD(R),
//! DP-SGD(F) (paper §2.4–2.5).
//!
//! All three produce the *same* noisy gradient — they differ only in how
//! the per-example gradient norms (and the clipped aggregate) are
//! derived, which is exactly how the paper frames them:
//!
//! * **(B)** — materialize per-example gradients, clip, sum (Abadi et
//!   al.; memory-hungry).
//! * **(R)** — derive per-example norms first (recomputation), then one
//!   *reweighted* per-batch pass (Lee & Kifer).
//! * **(F)** — derive the norms with the ghost-norm trick (no
//!   per-example weight grads at all), then the reweighted pass
//!   (Denison et al.). The paper uses (F) as the strongest baseline.
//!
//! All three then perform the identical **dense noisy update** on every
//! embedding table — the §4 bottleneck.

use crate::clip::{clip_weights, clip_weights_into, clipped_fraction};
use crate::config::DpConfig;
use crate::counters::KernelCounters;
use crate::noise_update::dense_noisy_update_with;
use crate::optimizer::{Optimizer, StepStats};
use crate::parallel_update::par_dense_noisy_update;
use lazydp_data::MiniBatch;
use lazydp_embedding::{CoalesceScratch, SparseGrad};
use lazydp_model::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch, MlpGrads};
use lazydp_rng::RowNoise;

/// How per-example clipping is computed (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClipStyle {
    /// DP-SGD(B): materialized per-example gradients.
    PerExample,
    /// DP-SGD(R): norms via materialization, aggregate via reweighting.
    Reweighted,
    /// DP-SGD(F): ghost norms + reweighting.
    Fast,
}

impl ClipStyle {
    /// The paper's name for the variant.
    #[must_use]
    pub fn paper_name(&self) -> &'static str {
        match self {
            Self::PerExample => "DP-SGD(B)",
            Self::Reweighted => "DP-SGD(R)",
            Self::Fast => "DP-SGD(F)",
        }
    }
}

/// Reusable per-step buffers. With [`ClipStyle::Fast`] and a single
/// noise thread the whole step runs allocation-free once these reach
/// steady-state size (pinned by `tests/alloc_steady_state_eager.rs`);
/// the (B) and (R) styles still materialize per-example state.
#[derive(Debug, Clone, Default)]
struct EagerScratch {
    cache: DlrmCache,
    model_scratch: DlrmScratch,
    grads: DlrmGrads,
    logit_g: Vec<f32>,
    norms: Vec<f64>,
    dense_buf: Vec<f32>,
    noise_buf: Vec<f32>,
    coalesce: CoalesceScratch,
}

/// Eager (non-lazy) DP-SGD optimizer.
#[derive(Debug, Clone)]
pub struct EagerDpSgd<N> {
    cfg: DpConfig,
    style: ClipStyle,
    noise: N,
    counters: KernelCounters,
    iter: u64,
    scratch: EagerScratch,
}

impl<N: RowNoise + Clone + Send + Sync> EagerDpSgd<N> {
    /// Creates an eager DP-SGD optimizer.
    #[must_use]
    pub fn new(cfg: DpConfig, style: ClipStyle, noise: N) -> Self {
        Self {
            cfg,
            style,
            noise,
            counters: KernelCounters::new(),
            iter: 0,
            scratch: EagerScratch::default(),
        }
    }

    /// The configured clipping style.
    #[must_use]
    pub fn style(&self) -> ClipStyle {
        self.style
    }

    /// The hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &DpConfig {
        &self.cfg
    }

    /// Derives the clipped, summed gradient `Σ_i min(1, C/‖g_i‖)·g_i`
    /// (not yet divided by B) into the scratch grads and returns the
    /// clipped fraction.
    fn clipped_aggregate(&mut self, model: &Dlrm, batch: &MiniBatch) -> f64 {
        self.counters.rows_gathered += batch.total_lookups() as u64;
        let c = self.cfg.max_grad_norm;
        match self.style {
            ClipStyle::Fast => {
                // Fused ghost-clipping backward: one gradient chain
                // yields the ghost norms and the clipped aggregate
                // (bitwise-identical to norms-then-reweighted-backward),
                // entirely in reusable scratch buffers.
                model.forward_with(
                    batch,
                    &mut self.scratch.cache,
                    &mut self.scratch.model_scratch,
                );
                Dlrm::logit_grads_into(
                    &self.scratch.cache,
                    &batch.labels,
                    false,
                    &mut self.scratch.logit_g,
                );
                let EagerScratch {
                    cache,
                    model_scratch,
                    grads,
                    logit_g,
                    norms,
                    ..
                } = &mut self.scratch;
                model.backward_clipped_with(
                    cache,
                    batch,
                    logit_g,
                    |n, w| {
                        norms.clear();
                        norms.extend_from_slice(n);
                        clip_weights_into(n, c, w);
                    },
                    grads,
                    model_scratch,
                );
                clipped_fraction(&self.scratch.norms, c)
            }
            ClipStyle::Reweighted => {
                // Norm pass via materialization (the recomputation cost
                // DP-SGD(R) pays), aggregate via the reweighted pass.
                let cache = model.forward(batch);
                let gl = Dlrm::logit_grads(&cache, &batch.labels, false);
                let norms = materialized_norms(model, &cache, batch, &gl);
                let w = clip_weights(&norms, c);
                self.scratch.grads = model.backward(&cache, batch, &gl, Some(&w));
                clipped_fraction(&norms, c)
            }
            ClipStyle::PerExample => {
                let cache = model.forward(batch);
                let gl = Dlrm::logit_grads(&cache, &batch.labels, false);
                let mut per_ex = model.per_example_grads(&cache, batch, &gl);
                for g in &mut per_ex {
                    g.coalesce();
                }
                let norms: Vec<f64> = per_ex.iter().map(DlrmGrads::norm_sq).collect();
                let w = clip_weights(&norms, c);
                let mut sum = DlrmGrads {
                    bottom: MlpGrads::zeros_like(&model.bottom),
                    top: MlpGrads::zeros_like(&model.top),
                    tables: model
                        .tables
                        .iter()
                        .map(|t| SparseGrad::new(t.dim()))
                        .collect(),
                };
                for (g, &wi) in per_ex.iter().zip(w.iter()) {
                    sum.bottom.axpy(wi, &g.bottom);
                    sum.top.axpy(wi, &g.top);
                    for (acc, gt) in sum.tables.iter_mut().zip(g.tables.iter()) {
                        for (idx, vals) in gt.iter() {
                            let entry = acc.push_zeros(idx);
                            for (e, &v) in entry.iter_mut().zip(vals.iter()) {
                                *e = wi * v;
                            }
                        }
                    }
                }
                self.scratch.grads = sum;
                clipped_fraction(&norms, c)
            }
        }
    }

    /// Applies the noisy update from the scratch grads: MLP grads +
    /// dense MLP noise, then the dense noisy update on every table.
    fn noisy_update(&mut self, model: &mut Dlrm) {
        let b = self.cfg.nominal_batch as f32;
        let std = self.cfg.noise_std_per_coord();
        let lr = self.cfg.lr;
        let EagerScratch {
            grads,
            dense_buf,
            noise_buf,
            coalesce,
            ..
        } = &mut self.scratch;
        grads.scale(1.0 / b);
        self.counters.duplicates_removed += grads.coalesce_with(coalesce) as u64;
        model.bottom.apply(&grads.bottom, lr);
        model.top.apply(&grads.top, lr);
        model
            .bottom
            .apply_dense_noise_with(&mut self.noise, self.iter, 0, std, lr, dense_buf);
        model
            .top
            .apply_dense_noise_with(&mut self.noise, self.iter, 64, std, lr, dense_buf);
        self.counters.gaussian_samples += (model.bottom.params() + model.top.params()) as u64;
        let threads = self.cfg.threads;
        let parallel = threads > 1 && self.noise.addressable();
        for (t, (table, g)) in model.tables.iter_mut().zip(grads.tables.iter()).enumerate() {
            if parallel {
                // The paper's tuned multi-threaded baseline (§6): the
                // chunk-addressed parallel sweep, identical to the
                // sequential kernel for addressable noise sources.
                par_dense_noisy_update(
                    t as u32,
                    table,
                    g,
                    &self.noise,
                    self.iter,
                    std,
                    lr,
                    threads,
                    &mut self.counters,
                );
            } else {
                dense_noisy_update_with(
                    t as u32,
                    table,
                    g,
                    &mut self.noise,
                    self.iter,
                    std,
                    lr,
                    &mut self.counters,
                    noise_buf,
                );
            }
        }
    }
}

/// Per-example squared norms via full materialization (the DP-SGD(R)
/// norm pass). Public so tests can cross-check ghost norms against it.
#[must_use]
pub fn materialized_norms(
    model: &Dlrm,
    cache: &lazydp_model::DlrmCache,
    batch: &MiniBatch,
    grad_logits: &[f32],
) -> Vec<f64> {
    let mut per_ex = model.per_example_grads(cache, batch, grad_logits);
    per_ex
        .iter_mut()
        .map(|g| {
            g.coalesce();
            g.norm_sq()
        })
        .collect()
}

impl<N: RowNoise + Clone + Send + Sync> Optimizer for EagerDpSgd<N> {
    fn name(&self) -> &'static str {
        self.style.paper_name()
    }

    fn step(
        &mut self,
        model: &mut Dlrm,
        batch: &MiniBatch,
        _next: Option<&MiniBatch>,
    ) -> StepStats {
        self.iter += 1;
        let clipped = if batch.is_empty() {
            // Poisson sampling may deal an empty batch; DP still adds
            // noise (the mechanism releases a noisy zero gradient).
            self.scratch.grads.reset_for(model);
            0.0
        } else {
            self.clipped_aggregate(model, batch)
        };
        self.noisy_update(model);
        self.counters.steps += 1;
        StepStats {
            realized_batch: batch.batch_size(),
            clipped_fraction: clipped,
        }
    }

    fn counters(&self) -> KernelCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn setup() -> (Dlrm, SyntheticDataset) {
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        let model = Dlrm::new(DlrmConfig::tiny(3, 40, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(3, 40, 96));
        (model, ds)
    }

    fn max_table_diff(a: &Dlrm, b: &Dlrm) -> f32 {
        a.tables
            .iter()
            .zip(b.tables.iter())
            .map(|(x, y)| x.max_abs_diff(y))
            .fold(0.0, f32::max)
    }

    #[test]
    fn b_r_f_produce_mathematically_identical_models() {
        // Paper §2.5: "the output model trained with DP-SGD(R) is
        // mathematically identical to the original … DP-SGD" and
        // DP-SGD(F) likewise. With a counter-based noise source the
        // three variants must match to float tolerance.
        let (model0, ds) = setup();
        let cfg = DpConfig::new(0.9, 0.7, 0.05, 16);
        let mut finals = Vec::new();
        for style in [
            ClipStyle::PerExample,
            ClipStyle::Reweighted,
            ClipStyle::Fast,
        ] {
            let mut model = model0.clone();
            let mut opt = EagerDpSgd::new(cfg, style, CounterNoise::new(77));
            for it in 0..4 {
                let batch = ds.batch_of(&(it * 16..(it + 1) * 16).collect::<Vec<_>>());
                opt.step(&mut model, &batch, None);
            }
            finals.push(model);
        }
        let d_br = max_table_diff(&finals[0], &finals[1]);
        let d_bf = max_table_diff(&finals[0], &finals[2]);
        assert!(d_br < 1e-4, "B vs R diverged: {d_br}");
        assert!(d_bf < 1e-4, "B vs F diverged: {d_bf}");
        // MLP weights too.
        for l in 0..finals[0].top.layers().len() {
            let d = finals[0].top.layers()[l]
                .weight
                .max_abs_diff(&finals[2].top.layers()[l].weight);
            assert!(d < 1e-4, "top layer {l} diverged: {d}");
        }
    }

    #[test]
    fn eager_step_is_thread_count_independent() {
        // The parallel dense noisy update is wired into the real step
        // path: any `threads` value trains the bitwise-same model.
        let (model0, ds) = setup();
        let run = |threads: usize| -> Dlrm {
            let mut model = model0.clone();
            let cfg = DpConfig::new(0.9, 0.8, 0.05, 16).with_threads(threads);
            let mut opt = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(21));
            for it in 0..3 {
                let batch = ds.batch_of(&(it * 16..(it + 1) * 16).collect::<Vec<_>>());
                opt.step(&mut model, &batch, None);
            }
            model
        };
        let base = run(1);
        for threads in [2usize, 3, 8] {
            let m = run(threads);
            assert_eq!(
                max_table_diff(&base, &m),
                0.0,
                "threads {threads} changed the tables"
            );
            for (a, b) in base.top.layers().iter().zip(m.top.layers().iter()) {
                assert_eq!(a.weight.max_abs_diff(&b.weight), 0.0);
            }
        }
    }

    #[test]
    fn stateful_noise_with_many_threads_falls_back_to_sequential() {
        // A non-addressable (stateful) source must never hit the
        // parallel kernel — each row still gets a fresh draw.
        use lazydp_rng::SequentialNoise;
        let (mut model, _) = setup();
        let snapshot = model.tables[0].clone();
        let noise = SequentialNoise::new(Xoshiro256PlusPlus::seed_from(3));
        let cfg = DpConfig::paper_default(8).with_threads(4);
        let mut opt = EagerDpSgd::new(cfg, ClipStyle::Fast, noise);
        opt.step(&mut model, &MiniBatch::default(), None);
        let t = &model.tables[0];
        assert!(t.max_abs_diff(&snapshot) > 0.0, "noise must land");
        // Rows must not repeat each other (the correlated-clone bug).
        assert_ne!(t.row(0), t.row(1));
    }

    #[test]
    fn zero_noise_huge_clip_equals_plain_sgd() {
        let (model0, ds) = setup();
        let batch = ds.batch_of(&(0..16).collect::<Vec<_>>());
        let mut dp_model = model0.clone();
        let mut sgd_model = model0.clone();
        let cfg = DpConfig::new(0.0, 1e9, 0.05, 16);
        let mut dp = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(1));
        let mut sgd = crate::sgd::SgdOptimizer::new(0.05);
        for _ in 0..3 {
            dp.step(&mut dp_model, &batch, None);
            sgd.step(&mut sgd_model, &batch, None);
        }
        assert!(
            max_table_diff(&dp_model, &sgd_model) < 1e-5,
            "σ=0, C=∞ DP-SGD must equal SGD"
        );
    }

    #[test]
    fn dense_update_work_scales_with_table_size_not_batch() {
        let (mut model, ds) = setup();
        let total_rows: u64 = model.tables.iter().map(|t| t.rows() as u64).sum();
        let dim = model.config().embedding_dim as u64;
        let mlp_params = (model.bottom.params() + model.top.params()) as u64;
        let mut opt = EagerDpSgd::new(
            DpConfig::paper_default(8),
            ClipStyle::Fast,
            CounterNoise::new(5),
        );
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        opt.step(&mut model, &batch, None);
        let c = opt.counters();
        assert_eq!(c.gaussian_samples, total_rows * dim + mlp_params);
        assert_eq!(c.table_rows_written, total_rows);
        assert_eq!(c.steps, 1);
    }

    #[test]
    fn clipping_activates_for_tiny_threshold() {
        let (mut model, ds) = setup();
        let mut opt = EagerDpSgd::new(
            DpConfig::new(0.0, 1e-4, 0.05, 16),
            ClipStyle::Fast,
            CounterNoise::new(5),
        );
        let batch = ds.batch_of(&(0..16).collect::<Vec<_>>());
        let stats = opt.step(&mut model, &batch, None);
        assert!(stats.clipped_fraction > 0.9, "tiny C must clip almost all");
    }

    #[test]
    fn empty_batch_still_adds_noise() {
        let (mut model, _) = setup();
        let snapshot = model.tables[0].clone();
        let mut opt = EagerDpSgd::new(
            DpConfig::paper_default(8),
            ClipStyle::Fast,
            CounterNoise::new(5),
        );
        let stats = opt.step(&mut model, &MiniBatch::default(), None);
        assert_eq!(stats.realized_batch, 0);
        assert!(
            model.tables[0].max_abs_diff(&snapshot) > 0.0,
            "DP mechanism must add noise even on empty batches"
        );
    }

    #[test]
    fn private_training_with_mild_noise_still_learns() {
        let (mut model, ds) = setup();
        let eval = ds.batch_of(&(0..96).collect::<Vec<_>>());
        let before = model.loss(&eval);
        // Large batch, mild noise: utility should survive (the paper's
        // premise that DP RecSys training is viable, §2.5 / Denison).
        let mut opt = EagerDpSgd::new(
            DpConfig::new(0.3, 5.0, 0.1, 48),
            ClipStyle::Fast,
            CounterNoise::new(13),
        );
        for it in 0..30 {
            let ids: Vec<usize> = (0..48).map(|k| (it * 48 + k) % 96).collect();
            let batch = ds.batch_of(&ids);
            opt.step(&mut model, &batch, None);
        }
        let after = model.loss(&eval);
        assert!(
            after < before,
            "DP training should still learn: {before:.4} -> {after:.4}"
        );
    }
}
