//! Model-update kernels for embedding tables.
//!
//! These implement the paper's Fig. 4 update styles with work counters:
//!
//! * [`sparse_grad_update`] — SGD's sparse update (Fig. 4(a)): touches
//!   only gathered rows.
//! * [`dense_noisy_update`] — DP-SGD's dense noisy update (Fig. 4(b)):
//!   *every* row receives fresh Gaussian noise; gathered rows also
//!   receive their gradient. This is the memory-bound bottleneck the
//!   paper root-causes in §4.3.
//! * [`sparse_noisy_update`] — EANA's variant (§7.4): noise lands only
//!   on the rows that were accessed, which is cheap but leaks which
//!   rows were never touched.

use crate::counters::KernelCounters;
use lazydp_embedding::{EmbeddingTable, SparseGrad};
use lazydp_rng::RowNoise;

/// SGD sparse update: `θ[r] -= lr · g[r]` for gathered rows only.
pub fn sparse_grad_update(
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    lr: f32,
    counters: &mut KernelCounters,
) {
    table.sparse_update(grad, lr);
    counters.table_rows_read += grad.len() as u64;
    counters.table_rows_written += grad.len() as u64;
}

/// DP-SGD dense noisy update: for **every** row `r` of the table,
/// `θ[r] -= lr · (noise_std·n_r + g[r])`, where `n_r` is a fresh
/// standard-normal vector drawn from `noise` for `(table_id, r, iter)`
/// and `g[r]` is zero for non-gathered rows.
///
/// # Panics
///
/// Panics if `grad` is not coalesced or its dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn dense_noisy_update<N: RowNoise>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &mut N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    counters: &mut KernelCounters,
) {
    let mut buf = Vec::new();
    dense_noisy_update_with(
        table_id, table, grad, noise, iter, noise_std, lr, counters, &mut buf,
    );
}

/// [`dense_noisy_update`] with a caller-provided scratch buffer, so a
/// steady-state training loop allocates nothing. Bitwise-identical to
/// the allocating wrapper.
///
/// # Panics
///
/// Panics if `grad` is not coalesced or its dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn dense_noisy_update_with<N: RowNoise>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &mut N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    counters: &mut KernelCounters,
    buf: &mut Vec<f32>,
) {
    assert_eq!(grad.dim(), table.dim(), "grad dim mismatch");
    // Gathered rows are found by binary search over the coalesced
    // (sorted) gradient — no per-call map, no unordered container.
    assert!(
        grad.is_coalesced(),
        "gradient must be coalesced (sorted, duplicate-free rows)"
    );
    let dim = table.dim();
    buf.clear();
    buf.resize(dim, 0.0);
    let rows = table.rows();
    for r in 0..rows {
        noise.fill_unit(table_id, r as u64, iter, buf);
        let row = table.row_mut(r);
        if let Some(g) = grad.find(r as u64) {
            for ((w, &n), &gv) in row.iter_mut().zip(buf.iter()).zip(g.iter()) {
                *w -= lr * (noise_std * n + gv);
            }
        } else {
            for (w, &n) in row.iter_mut().zip(buf.iter()) {
                *w -= lr * noise_std * n;
            }
        }
    }
    counters.gaussian_samples += (rows * dim) as u64;
    counters.table_rows_read += rows as u64;
    counters.table_rows_written += rows as u64;
}

/// EANA sparse noisy update: noise (plus gradient) lands **only** on the
/// gathered rows.
///
/// # Panics
///
/// Panics if `grad` is not coalesced or its dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn sparse_noisy_update<N: RowNoise>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &mut N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    counters: &mut KernelCounters,
) {
    let mut buf = Vec::new();
    sparse_noisy_update_with(
        table_id, table, grad, noise, iter, noise_std, lr, counters, &mut buf,
    );
}

/// [`sparse_noisy_update`] with a caller-provided scratch buffer, so a
/// steady-state training loop allocates nothing. Bitwise-identical to
/// the allocating wrapper.
///
/// # Panics
///
/// Panics if `grad` is not coalesced or its dimension mismatches.
#[allow(clippy::too_many_arguments)]
pub fn sparse_noisy_update_with<N: RowNoise>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &mut N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    counters: &mut KernelCounters,
    buf: &mut Vec<f32>,
) {
    assert_eq!(grad.dim(), table.dim(), "grad dim mismatch");
    let dim = table.dim();
    buf.clear();
    buf.resize(dim, 0.0);
    // Coalesced gradients are sorted strictly increasing, so duplicates
    // are caught by a monotonicity check instead of a hash set.
    let mut last_idx: Option<u64> = None;
    for (idx, g) in grad.iter() {
        assert!(
            last_idx.is_none_or(|l| l < idx),
            "gradient must be coalesced (row {idx} out of order or duplicated)"
        );
        last_idx = Some(idx);
        noise.fill_unit(table_id, idx, iter, buf);
        let row = table.row_mut(idx as usize);
        for ((w, &n), &gv) in row.iter_mut().zip(buf.iter()).zip(g.iter()) {
            *w -= lr * (noise_std * n + gv);
        }
    }
    counters.gaussian_samples += (grad.len() * dim) as u64;
    counters.table_rows_read += grad.len() as u64;
    counters.table_rows_written += grad.len() as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::counter::CounterNoise;

    fn grad_for(dim: usize, entries: Vec<(u64, Vec<f32>)>) -> SparseGrad {
        let mut g = SparseGrad::from_entries(dim, entries);
        g.coalesce();
        g
    }

    #[test]
    fn dense_update_touches_every_row() {
        let mut table = EmbeddingTable::zeros(5, 2);
        let before = table.clone();
        let grad = grad_for(2, vec![(1, vec![1.0, 1.0])]);
        let mut noise = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        dense_noisy_update(0, &mut table, &grad, &mut noise, 1, 0.5, 0.1, &mut c);
        for r in 0..5 {
            assert_ne!(table.row(r), before.row(r), "row {r} must move (noise)");
        }
        assert_eq!(c.gaussian_samples, 10);
        assert_eq!(c.table_rows_written, 5);
    }

    #[test]
    fn dense_update_applies_grad_plus_noise() {
        // With zero noise std, dense update reduces to the sparse grad
        // update on gathered rows and a no-op elsewhere.
        let mut a = EmbeddingTable::zeros(4, 2);
        let mut b = EmbeddingTable::zeros(4, 2);
        let grad = grad_for(2, vec![(2, vec![3.0, -1.0])]);
        let mut noise = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        dense_noisy_update(0, &mut a, &grad, &mut noise, 1, 0.0, 0.1, &mut c);
        sparse_grad_update(&mut b, &grad, 0.1, &mut c);
        assert!(a.max_abs_diff(&b) < 1e-7);
    }

    #[test]
    fn sparse_noisy_update_leaves_untouched_rows_alone() {
        let mut table = EmbeddingTable::zeros(5, 2);
        let grad = grad_for(2, vec![(0, vec![1.0, 0.0]), (4, vec![0.0, 1.0])]);
        let mut noise = CounterNoise::new(2);
        let mut c = KernelCounters::new();
        sparse_noisy_update(0, &mut table, &grad, &mut noise, 1, 0.5, 0.1, &mut c);
        for r in [1usize, 2, 3] {
            assert_eq!(table.row(r), &[0.0, 0.0], "EANA must not touch row {r}");
        }
        assert_ne!(table.row(0), &[0.0, 0.0]);
        assert_ne!(table.row(4), &[0.0, 0.0]);
        assert_eq!(c.gaussian_samples, 4);
    }

    #[test]
    fn dense_and_sparse_agree_on_accessed_rows_with_same_noise_source() {
        let mut dense = EmbeddingTable::zeros(6, 3);
        let mut sparse = EmbeddingTable::zeros(6, 3);
        let grad = grad_for(3, vec![(2, vec![1.0, 2.0, 3.0])]);
        let mut n1 = CounterNoise::new(9);
        let mut n2 = CounterNoise::new(9);
        let mut c = KernelCounters::new();
        dense_noisy_update(0, &mut dense, &grad, &mut n1, 7, 0.3, 0.1, &mut c);
        sparse_noisy_update(0, &mut sparse, &grad, &mut n2, 7, 0.3, 0.1, &mut c);
        // Counter-based noise is addressed by (table,row,iter), so the
        // accessed row got the identical update in both kernels.
        assert_eq!(dense.row(2), sparse.row(2));
    }

    #[test]
    #[should_panic(expected = "coalesced")]
    fn dense_update_rejects_uncoalesced_grad() {
        let mut table = EmbeddingTable::zeros(3, 1);
        let grad = SparseGrad::from_entries(1, vec![(0, vec![1.0]), (0, vec![2.0])]);
        let mut noise = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        dense_noisy_update(0, &mut table, &grad, &mut noise, 1, 0.1, 0.1, &mut c);
    }
}
