//! DP-AdaFEST: sparsity-preserving DP-SGD (Ghazi et al., arXiv
//! 2311.08357), the fourth training algorithm of the workspace.
//!
//! Eager DP-SGD and LazyDP both add Gaussian noise to **every** row of
//! every embedding table each step (LazyDP merely defers when the writes
//! land), so their noise traffic is `O(table rows)`. AdaFEST instead
//! spends part of the privacy budget on a **private partition
//! selection**: the rows of each table are hash-partitioned (the same
//! `row mod S` scheme as [`ShardSpec`]), the per-partition gather counts
//! of the current batch are perturbed with Gaussian noise at
//! `σ_select`, and only partitions whose noisy count clears a threshold
//! receive gradient + noise. Unselected partitions are not touched at
//! all — their gradient contribution is *dropped*, which is what makes
//! the release sparse and private (writing grads without noise would
//! leak). Noise traffic becomes `O(touched partitions · partition
//! rows)`, i.e. it scales with the batch's access locality instead of
//! the table size.
//!
//! # Determinism contract
//!
//! Selection draws come from the deterministic dense-parameter address
//! space of [`RowNoise::fill_unit_dense`] under [`SELECT_PARAM_BASE`],
//! addressed by `(table, partition, iter)` — selection is a pure
//! function of `(seed, batch)`, independent of thread count, shard
//! count, and storage backend. The per-row update kernel is the dense
//! noisy-update arithmetic restricted to selected partitions, walking
//! only their row strides; each row's update is independent and its
//! noise is addressed by `(table, row, iter)`, so the visit order is
//! bitwise-immaterial and with the threshold forced to
//! `-∞` (see [`AdaFestConfig::select_all`]) a training run is
//! **bitwise identical** to eager DP-SGD(F) — a differential test pins
//! this.
//!
//! # Privacy accounting
//!
//! Each step releases two subsampled Gaussian queries — the joint
//! partition-count vector across all tables, and the selected-partition
//! gradient — and the accounting for the pair is `lazydp_privacy`'s
//! `Mechanism::SelectThenNoise`, charged per step by the trainer. That
//! mechanism treats `σ_select` as the noise multiplier **relative to
//! the count query's ℓ₂ sensitivity**, exactly as `σ` is relative to
//! the clip norm `C`. Adding or removing one example changes at most
//! [`AdaFestConfig::max_lookups`] counts per table by 1 each (worst
//! case: all its lookups land in one partition of every table), so the
//! joint count query's sensitivity is bounded by
//! `Δ = max_lookups · √(num_tables)` — and the noise actually added to
//! each count is `σ_select · Δ` ([`AdaFestConfig::selection_noise_std`]).
//! The optimizer panics on any batch whose per-example per-table lookup
//! count exceeds `max_lookups`, so the bound — and therefore the
//! reported ε — is enforced, not assumed.

use crate::clip::{clip_weights_into, clipped_fraction};
use crate::config::DpConfig;
use crate::counters::KernelCounters;
use crate::optimizer::{Optimizer, StepStats};
use lazydp_data::MiniBatch;
use lazydp_embedding::{CoalesceScratch, EmbeddingStorage, ShardSpec, SparseGrad};
use lazydp_model::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch};
use lazydp_rng::RowNoise;

/// Dense-parameter namespace for the selection draws, disjoint from the
/// MLP bases (bottom = 0, top = 64): table `t`'s partition counts are
/// perturbed under parameter `SELECT_PARAM_BASE + t`.
pub const SELECT_PARAM_BASE: u32 = 128;

/// Hyper-parameters for [`AdaFestOptimizer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaFestConfig {
    /// The shared DP-SGD hyper-parameters (σ, C, η, B, threads).
    pub dp: DpConfig,
    /// Selection noise multiplier σ_select, relative to the count
    /// query's ℓ₂ sensitivity `Δ = max_lookups · √(num_tables)` (the
    /// realized per-count noise std is
    /// [`selection_noise_std`](Self::selection_noise_std)).
    pub sigma_select: f64,
    /// Selection threshold τ: partition `p` is noised iff
    /// `count(p) + σ_select·Δ·n_p > τ`. `f64::NEG_INFINITY` selects
    /// every partition (the differential-test configuration).
    pub threshold: f64,
    /// Rows per partition. Partitions are fixed-size so the noisy-update
    /// work grows with the number of *touched* partitions, not with the
    /// table's row count.
    pub partition_rows: usize,
    /// Upper bound on the embedding lookups one example makes into one
    /// table (the pooling factor; default 1). This is what bounds the
    /// count query's sensitivity, so the optimizer **panics** on any
    /// batch that exceeds it — raise it with
    /// [`with_max_lookups`](Self::with_max_lookups) for multi-hot
    /// workloads.
    pub max_lookups: usize,
}

impl AdaFestConfig {
    /// Creates a config.
    ///
    /// # Panics
    ///
    /// Panics if `sigma_select` is not positive and finite, if
    /// `partition_rows == 0`, or if `threshold` is NaN
    /// (`-∞` is allowed — it means select-all).
    #[must_use]
    pub fn new(dp: DpConfig, sigma_select: f64, threshold: f64, partition_rows: usize) -> Self {
        assert!(
            sigma_select > 0.0 && sigma_select.is_finite(),
            "sigma_select must be positive and finite"
        );
        assert!(partition_rows > 0, "partition_rows must be positive");
        assert!(!threshold.is_nan(), "threshold must not be NaN");
        Self {
            dp,
            sigma_select,
            threshold,
            partition_rows,
            max_lookups: 1,
        }
    }

    /// Sets the per-example per-table lookup bound (pooling factor)
    /// that the count-query sensitivity is computed from. Batches that
    /// exceed it make [`AdaFestOptimizer`] panic.
    ///
    /// # Panics
    ///
    /// Panics if `max_lookups == 0`.
    #[must_use]
    pub fn with_max_lookups(mut self, max_lookups: usize) -> Self {
        assert!(max_lookups > 0, "max_lookups must be positive");
        self.max_lookups = max_lookups;
        self
    }

    /// The ℓ₂ sensitivity of the joint partition-count query over
    /// `num_tables` tables: one example moves at most `max_lookups`
    /// counts per table by 1 each, worst case all in a single partition
    /// per table, so `Δ = max_lookups · √(num_tables)`.
    #[must_use]
    pub fn count_sensitivity(&self, num_tables: usize) -> f64 {
        self.max_lookups as f64 * (num_tables as f64).sqrt()
    }

    /// The noise std actually added to each partition count:
    /// `σ_select · Δ`, so that `σ_select` is the multiplier *relative
    /// to the count query's sensitivity* — the normalization
    /// `Mechanism::SelectThenNoise` assumes.
    #[must_use]
    pub fn selection_noise_std(&self, num_tables: usize) -> f64 {
        self.sigma_select * self.count_sensitivity(num_tables)
    }

    /// Paper-flavored defaults on top of [`DpConfig::paper_default`]:
    /// `σ_select = 1.0`, `τ = 1.0`, 16 rows per partition.
    #[must_use]
    pub fn paper_default(nominal_batch: usize) -> Self {
        Self::new(DpConfig::paper_default(nominal_batch), 1.0, 1.0, 16)
    }

    /// Forces the threshold to `-∞` so every partition is selected —
    /// the configuration under which AdaFEST degenerates to eager
    /// DP-SGD bitwise (the selection noise is still drawn and charged).
    #[must_use]
    pub fn select_all(mut self) -> Self {
        self.threshold = f64::NEG_INFINITY;
        self
    }

    /// Number of partitions for a table with `rows` rows (at least 1).
    #[must_use]
    pub fn partitions_for(&self, rows: usize) -> usize {
        rows.div_ceil(self.partition_rows).max(1)
    }
}

/// Privately selects partitions:
/// `selected[p] = count(p) + noise_std·n_p > threshold`, with `n_p`
/// the deterministic standard-normal draw for
/// `(SELECT_PARAM_BASE + table_id, p, iter)`. Pure function of its
/// arguments — no entropy, no iteration-order dependence.
///
/// `noise_std` is the **realized** per-count noise std: the caller is
/// responsible for scaling the configured multiplier by the count
/// query's sensitivity
/// (`AdaFestConfig::selection_noise_std`), so the accountant's
/// unit-sensitivity view of `σ_select` stays honest.
pub fn select_partitions_into<N: RowNoise>(
    table_id: u32,
    counts: &[u64],
    noise_std: f64,
    threshold: f64,
    noise: &mut N,
    iter: u64,
    selected: &mut Vec<bool>,
) {
    selected.clear();
    let mut draw = [0.0f32; 1];
    for (p, &count) in counts.iter().enumerate() {
        noise.fill_unit_dense(SELECT_PARAM_BASE + table_id, iter, p as u64, &mut draw);
        let noisy = count as f64 + noise_std * f64::from(draw[0]);
        selected.push(noisy > threshold);
    }
}

/// The AdaFEST table update: the dense noisy-update arithmetic (`θ[r] -=
/// lr·(noise_std·n_r + g[r])`, `g[r] = 0` off the gather set) applied
/// to rows of **selected** partitions only; rows of unselected
/// partitions are untouched and their gradient entries are dropped.
///
/// The walk visits only selected partitions' rows (partition `p` owns
/// the stride `p, p+S, p+2S, …` under the `row mod S` scheme), so the
/// per-step cost is `O(selected partitions · partition rows)`, not
/// `O(table rows)`. Each row's update is independent and its noise is
/// addressed by `(table, row, iter)`, so for addressable sources the
/// visit order is immaterial and every selected row's update is bitwise
/// that of [`dense_noisy_update`](crate::noise_update::dense_noisy_update)
/// (for stream sources like `SequentialNoise` — only distributionally
/// equivalent by contract — the draw order is partition-major).
///
/// # Panics
///
/// Panics if `grad` is not coalesced, its dimension mismatches, or
/// `selected.len() != spec.shards()`.
#[allow(clippy::too_many_arguments)]
pub fn partition_noisy_update_with<T: EmbeddingStorage, N: RowNoise>(
    table_id: u32,
    table: &mut T,
    spec: &ShardSpec,
    selected: &[bool],
    grad: &SparseGrad,
    noise: &mut N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    counters: &mut KernelCounters,
    buf: &mut Vec<f32>,
) {
    assert_eq!(grad.dim(), table.dim(), "grad dim mismatch");
    assert!(
        grad.is_coalesced(),
        "gradient must be coalesced (sorted, duplicate-free rows)"
    );
    assert_eq!(
        selected.len(),
        spec.shards(),
        "selection mask / partition count mismatch"
    );
    let dim = table.dim();
    buf.clear();
    buf.resize(dim, 0.0);
    let rows = table.rows() as u64;
    let stride = spec.shards() as u64;
    let mut touched = 0u64;
    for (p, &sel) in selected.iter().enumerate() {
        if !sel {
            continue;
        }
        let mut r = p as u64;
        while r < rows {
            noise.fill_unit(table_id, r, iter, buf);
            table.with_row_mut(r, |row| {
                if let Some(g) = grad.find(r) {
                    for ((w, &n), &gv) in row.iter_mut().zip(buf.iter()).zip(g.iter()) {
                        *w -= lr * (noise_std * n + gv);
                    }
                } else {
                    for (w, &n) in row.iter_mut().zip(buf.iter()) {
                        *w -= lr * noise_std * n;
                    }
                }
            });
            touched += 1;
            r += stride;
        }
    }
    counters.gaussian_samples += touched * dim as u64;
    counters.table_rows_read += touched;
    counters.table_rows_written += touched;
}

/// Enforces the sensitivity bound the selection accounting rests on: no
/// example may make more than `max_lookups` lookups into any one table.
/// A batch that violates it would make the realized selection noise
/// smaller than the count query's true sensitivity warrants, silently
/// voiding the reported ε — so this panics instead.
fn assert_lookup_bound(batch: &MiniBatch, max_lookups: usize) {
    for (t, bag) in batch.sparse.iter().enumerate() {
        for i in 0..bag.batch_size() {
            let got = bag.sample(i).len();
            assert!(
                got <= max_lookups,
                "sample {i} makes {got} lookups into table {t}, above the configured \
                 per-example bound of {max_lookups}; raise `AdaFestConfig::with_max_lookups` \
                 so the selection noise covers the count query's true sensitivity"
            );
        }
    }
}

/// Reusable per-step buffers — the whole step allocates nothing once
/// these reach steady-state size.
#[derive(Debug, Clone, Default)]
struct AdaFestScratch {
    cache: DlrmCache,
    model_scratch: DlrmScratch,
    grads: DlrmGrads,
    logit_g: Vec<f32>,
    norms: Vec<f64>,
    dense_buf: Vec<f32>,
    noise_buf: Vec<f32>,
    coalesce: CoalesceScratch,
    counts: Vec<u64>,
    selected: Vec<bool>,
}

/// The DP-AdaFEST optimizer (see the module docs).
#[derive(Debug, Clone)]
pub struct AdaFestOptimizer<N> {
    cfg: AdaFestConfig,
    noise: N,
    counters: KernelCounters,
    iter: u64,
    scratch: AdaFestScratch,
}

impl<N: RowNoise> AdaFestOptimizer<N> {
    /// Creates an AdaFEST optimizer.
    #[must_use]
    pub fn new(cfg: AdaFestConfig, noise: N) -> Self {
        Self {
            cfg,
            noise,
            counters: KernelCounters::new(),
            iter: 0,
            scratch: AdaFestScratch::default(),
        }
    }

    /// The hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &AdaFestConfig {
        &self.cfg
    }

    /// Ghost-clipped aggregate into the scratch grads (associated fn so
    /// the borrows split); mirrors DP-SGD(F) bitwise.
    fn clipped_aggregate<T: EmbeddingStorage>(
        dp: &DpConfig,
        model: &Dlrm<T>,
        batch: &MiniBatch,
        counters: &mut KernelCounters,
        scratch: &mut AdaFestScratch,
    ) -> f64 {
        if batch.is_empty() {
            scratch.grads.reset_for(model);
            return 0.0;
        }
        model.forward_with(batch, &mut scratch.cache, &mut scratch.model_scratch);
        counters.rows_gathered += batch.total_lookups() as u64;
        Dlrm::logit_grads_into(&scratch.cache, &batch.labels, false, &mut scratch.logit_g);
        let c = dp.max_grad_norm;
        let AdaFestScratch {
            cache,
            model_scratch,
            grads,
            logit_g,
            norms,
            ..
        } = scratch;
        model.backward_clipped_with(
            cache,
            batch,
            logit_g,
            |n, w| {
                norms.clear();
                norms.extend_from_slice(n);
                clip_weights_into(n, c, w);
            },
            grads,
            model_scratch,
        );
        clipped_fraction(&scratch.norms, c)
    }
}

impl<T: EmbeddingStorage, N: RowNoise> Optimizer<T> for AdaFestOptimizer<N> {
    fn name(&self) -> &'static str {
        "DP-AdaFEST"
    }

    fn step(
        &mut self,
        model: &mut Dlrm<T>,
        batch: &MiniBatch,
        _next: Option<&MiniBatch>,
    ) -> StepStats {
        self.iter += 1;
        assert_lookup_bound(batch, self.cfg.max_lookups);
        // σ_select is relative to the count query's sensitivity; the
        // realized per-count noise std carries the Δ = max_lookups·√T
        // factor so the accountant's unit-sensitivity view is honest.
        let select_std = self.cfg.selection_noise_std(model.tables.len());
        let clipped = Self::clipped_aggregate(
            &self.cfg.dp,
            model,
            batch,
            &mut self.counters,
            &mut self.scratch,
        );
        let b = self.cfg.dp.nominal_batch as f32;
        let std = self.cfg.dp.noise_std_per_coord();
        let lr = self.cfg.dp.lr;
        let AdaFestScratch {
            grads,
            dense_buf,
            noise_buf,
            coalesce,
            counts,
            selected,
            ..
        } = &mut self.scratch;
        grads.scale(1.0 / b);
        self.counters.duplicates_removed += grads.coalesce_with(coalesce) as u64;
        model.bottom.apply(&grads.bottom, lr);
        model.top.apply(&grads.top, lr);
        model
            .bottom
            .apply_dense_noise_with(&mut self.noise, self.iter, 0, std, lr, dense_buf);
        model
            .top
            .apply_dense_noise_with(&mut self.noise, self.iter, 64, std, lr, dense_buf);
        self.counters.gaussian_samples += (model.bottom.params() + model.top.params()) as u64;
        for (t, (table, g)) in model.tables.iter_mut().zip(grads.tables.iter()).enumerate() {
            let spec = ShardSpec::new(self.cfg.partitions_for(table.rows()));
            spec.partition_counts_into(g.indices(), counts);
            select_partitions_into(
                t as u32,
                counts,
                select_std,
                self.cfg.threshold,
                &mut self.noise,
                self.iter,
                selected,
            );
            self.counters.gaussian_samples += counts.len() as u64;
            // The selection outcome is itself a differentially private
            // release (that is the point of private partition
            // selection), so aggregate selected/dropped tallies are
            // safe to surface.
            let n_selected = selected.iter().filter(|&&s| s).count() as u64;
            lazydp_obs::metrics()
                .adafest
                .partitions_selected
                .add(n_selected);
            lazydp_obs::metrics()
                .adafest
                .partitions_dropped
                .add(selected.len() as u64 - n_selected);
            partition_noisy_update_with(
                t as u32,
                table,
                &spec,
                selected,
                g,
                &mut self.noise,
                self.iter,
                std,
                lr,
                &mut self.counters,
                noise_buf,
            );
        }
        self.counters.steps += 1;
        StepStats {
            realized_batch: batch.batch_size(),
            clipped_fraction: clipped,
        }
    }

    fn counters(&self) -> KernelCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn setup() -> (Dlrm, SyntheticDataset) {
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        let model = Dlrm::new(DlrmConfig::tiny(3, 48, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(3, 48, 96));
        (model, ds)
    }

    #[test]
    fn selection_is_a_pure_function_of_seed_and_counts() {
        let counts = vec![0u64, 3, 0, 17, 1];
        let run = || {
            let mut noise = CounterNoise::new(5);
            let mut sel = Vec::new();
            select_partitions_into(2, &counts, 1.0, 1.0, &mut noise, 9, &mut sel);
            sel
        };
        assert_eq!(run(), run());
        // A different iteration gives (generically) different draws but
        // stays deterministic.
        let mut noise = CounterNoise::new(5);
        let mut sel = Vec::new();
        select_partitions_into(2, &counts, 1.0, 1.0, &mut noise, 10, &mut sel);
        assert_eq!(sel.len(), counts.len());
    }

    #[test]
    fn select_all_threshold_selects_everything() {
        let counts = vec![0u64; 16];
        let mut noise = CounterNoise::new(5);
        let mut sel = Vec::new();
        select_partitions_into(0, &counts, 1.0, f64::NEG_INFINITY, &mut noise, 1, &mut sel);
        assert!(sel.iter().all(|&s| s));
    }

    #[test]
    fn huge_threshold_selects_nothing_on_empty_counts() {
        let counts = vec![0u64; 8];
        let mut noise = CounterNoise::new(5);
        let mut sel = Vec::new();
        select_partitions_into(0, &counts, 1.0, 1e9, &mut noise, 1, &mut sel);
        assert!(sel.iter().all(|&s| !s));
    }

    #[test]
    fn hot_partitions_survive_selection_cold_ones_mostly_do_not() {
        // With σ_select = 1 and τ = 3, a count of 100 is essentially
        // always selected and a count of 0 essentially never.
        let mut hot = 0usize;
        let mut cold = 0usize;
        for iter in 1..=64u64 {
            let mut noise = CounterNoise::new(5);
            let mut sel = Vec::new();
            select_partitions_into(0, &[100, 0], 1.0, 3.0, &mut noise, iter, &mut sel);
            hot += usize::from(sel[0]);
            cold += usize::from(sel[1]);
        }
        assert_eq!(hot, 64, "hot partition must always clear τ=3");
        assert!(cold <= 3, "cold partition cleared τ=3 {cold}/64 times");
    }

    #[test]
    fn unselected_partitions_are_never_written() {
        let mut table = lazydp_embedding::EmbeddingTable::zeros(8, 2);
        let spec = ShardSpec::new(4);
        let selected = vec![true, false, true, false];
        let mut g = SparseGrad::from_entries(2, vec![(1, vec![5.0, 5.0]), (2, vec![5.0, 5.0])]);
        g.coalesce();
        let mut noise = CounterNoise::new(3);
        let mut c = KernelCounters::new();
        let mut buf = Vec::new();
        partition_noisy_update_with(
            0, &mut table, &spec, &selected, &g, &mut noise, 1, 0.5, 0.1, &mut c, &mut buf,
        );
        for r in 0..8usize {
            let part = spec.shard_of(r as u64);
            if selected[part] {
                assert_ne!(table.row(r), &[0.0, 0.0], "selected row {r} must move");
            } else {
                // Row 1 carries a gradient but sits in partition 1
                // (unselected): it must be dropped, not applied.
                assert_eq!(
                    table.row(r),
                    &[0.0, 0.0],
                    "unselected row {r} must not move"
                );
            }
        }
        assert_eq!(c.table_rows_written, 4);
        assert_eq!(c.gaussian_samples, 8);
    }

    #[test]
    fn select_all_step_matches_eager_fast_bitwise() {
        // The in-crate version of the differential test (the facade
        // version lives in tests/): τ = -∞ ⇒ AdaFEST ≡ DP-SGD(F).
        use crate::eager::{ClipStyle, EagerDpSgd};
        let (model0, ds) = setup();
        let dp = DpConfig::new(0.9, 0.8, 0.05, 16).with_threads(1);
        let mut eager_model = model0.clone();
        let mut ada_model = model0.clone();
        let mut eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(21));
        let mut ada = AdaFestOptimizer::new(
            AdaFestConfig::new(dp, 1.0, 0.0, 16).select_all(),
            CounterNoise::new(21),
        );
        for it in 0..4 {
            let batch = ds.batch_of(&(it * 16..(it + 1) * 16).collect::<Vec<_>>());
            eager.step(&mut eager_model, &batch, None);
            ada.step(&mut ada_model, &batch, None);
        }
        for (a, b) in eager_model.tables.iter().zip(ada_model.tables.iter()) {
            assert_eq!(a.max_abs_diff(b), 0.0, "tables diverged");
        }
        for (a, b) in eager_model
            .top
            .layers()
            .iter()
            .zip(ada_model.top.layers().iter())
        {
            assert_eq!(a.weight.max_abs_diff(&b.weight), 0.0, "MLP diverged");
        }
    }

    #[test]
    fn noise_work_scales_with_touched_partitions_not_table_rows() {
        // A one-sample batch touches O(1) partitions; eager noises the
        // whole table. This is AdaFEST's asymptotic claim in miniature.
        let (mut model, ds) = setup();
        let total_rows: u64 = model.tables.iter().map(|t| t.rows() as u64).sum();
        let cfg = AdaFestConfig::new(DpConfig::paper_default(1), 1.0, 2.5, 4);
        let mut opt = AdaFestOptimizer::new(cfg, CounterNoise::new(7));
        let batch = ds.batch_of(&[0]);
        opt.step(&mut model, &batch, None);
        let written =
            Optimizer::<lazydp_embedding::EmbeddingTable>::counters(&opt).table_rows_written;
        assert!(
            written < total_rows / 2,
            "AdaFEST wrote {written} of {total_rows} rows — not sparse"
        );
    }

    #[test]
    fn empty_batch_still_noises_mlp_and_selected_partitions() {
        let (mut model, _) = setup();
        let top_before = model.top.layers()[0].weight.clone();
        let tables_before = model.tables.clone();
        let cfg = AdaFestConfig::paper_default(8).select_all();
        let mut opt = AdaFestOptimizer::new(cfg, CounterNoise::new(5));
        let stats = opt.step(&mut model, &MiniBatch::default(), None);
        assert_eq!(stats.realized_batch, 0);
        assert!(
            model.top.layers()[0].weight.max_abs_diff(&top_before) > 0.0,
            "MLP noise must land on empty batches"
        );
        // Select-all: every partition of every table is selected, so
        // table noise must land even with no gradient.
        for (t, (after, before)) in model.tables.iter().zip(tables_before.iter()).enumerate() {
            assert!(
                after.max_abs_diff(before) > 0.0,
                "table {t} noise must land on empty batches"
            );
        }
    }

    #[test]
    fn count_sensitivity_is_max_lookups_times_sqrt_tables() {
        let dp = DpConfig::paper_default(8);
        let c = AdaFestConfig::new(dp, 0.5, 1.0, 16).with_max_lookups(3);
        assert_eq!(c.count_sensitivity(4), 6.0);
        assert_eq!(c.selection_noise_std(4), 3.0);
        // The single-table, one-hot case keeps the historical unit
        // sensitivity: nothing is scaled.
        let unit = AdaFestConfig::new(dp, 0.7, 1.0, 16);
        assert_eq!(unit.count_sensitivity(1), 1.0);
        assert_eq!(unit.selection_noise_std(1), 0.7);
        assert!(std::panic::catch_unwind(|| unit.with_max_lookups(0)).is_err());
    }

    #[test]
    fn realized_selection_noise_is_scaled_by_the_count_sensitivity() {
        // Multi-table + pooling > 1 accounting check: T = 3 tables and
        // max_lookups = 2 give Δ = 2√3, so table t's partition p must
        // be selected iff σ_select·Δ·n_{t,p} > τ on an empty batch
        // (all counts are 0). Recompute the mask from the raw draws and
        // check exactly the selected partitions moved.
        let (mut model, _) = setup();
        let before = model.tables.clone();
        let cfg = AdaFestConfig::new(DpConfig::paper_default(8), 0.7, 0.4, 8).with_max_lookups(2);
        let mut opt = AdaFestOptimizer::new(cfg, CounterNoise::new(11));
        opt.step(&mut model, &MiniBatch::default(), None);
        let delta = cfg.count_sensitivity(model.tables.len());
        assert_eq!(delta, 2.0 * 3f64.sqrt());
        let (mut any_selected, mut any_unselected) = (false, false);
        for (t, (table, before)) in model.tables.iter().zip(before.iter()).enumerate() {
            let spec = ShardSpec::new(cfg.partitions_for(table.rows()));
            let mut noise = CounterNoise::new(11);
            let mut draw = [0.0f32; 1];
            for p in 0..spec.shards() {
                noise.fill_unit_dense(SELECT_PARAM_BASE + t as u32, 1, p as u64, &mut draw);
                let expect = cfg.sigma_select * delta * f64::from(draw[0]) > cfg.threshold;
                let moved = (0..table.rows())
                    .filter(|&r| spec.shard_of(r as u64) == p)
                    .any(|r| table.row(r) != before.row(r));
                assert_eq!(
                    moved, expect,
                    "table {t} partition {p}: selection must use std = σ_select·Δ"
                );
                any_selected |= expect;
                any_unselected |= !expect;
            }
        }
        assert!(
            any_selected && any_unselected,
            "operating point must split partitions for the test to have teeth"
        );
    }

    #[test]
    fn step_enforces_the_per_example_lookup_bound() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let mut model = Dlrm::new(DlrmConfig::tiny(2, 32, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 32, 16).with_pooling(3));
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        let dp = DpConfig::paper_default(8);
        // The default bound is 1 lookup/table/example: a pooling-3
        // batch would undercut the accounted sensitivity, so it panics.
        let mut opt =
            AdaFestOptimizer::new(AdaFestConfig::new(dp, 1.0, 1.0, 8), CounterNoise::new(2));
        let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            opt.step(&mut model, &batch, None);
        }));
        assert!(
            res.is_err(),
            "pooling 3 must violate the default bound of 1"
        );
        // With the bound raised the same batch trains.
        let mut opt = AdaFestOptimizer::new(
            AdaFestConfig::new(dp, 1.0, 1.0, 8).with_max_lookups(3),
            CounterNoise::new(2),
        );
        opt.step(&mut model, &batch, None);
    }

    #[test]
    fn rejects_bad_configs() {
        let dp = DpConfig::paper_default(8);
        assert!(std::panic::catch_unwind(|| AdaFestConfig::new(dp, 0.0, 1.0, 16)).is_err());
        assert!(std::panic::catch_unwind(|| AdaFestConfig::new(dp, 1.0, f64::NAN, 16)).is_err());
        assert!(std::panic::catch_unwind(|| AdaFestConfig::new(dp, 1.0, 1.0, 0)).is_err());
        let c = AdaFestConfig::new(dp, 1.0, 1.0, 16);
        assert_eq!(c.partitions_for(0), 1);
        assert_eq!(c.partitions_for(17), 2);
    }
}
