//! Non-private SGD: the baseline every speedup in the paper is
//! normalized against.

use crate::counters::KernelCounters;
use crate::noise_update::sparse_grad_update;
use crate::optimizer::{Optimizer, StepStats};
use lazydp_data::MiniBatch;
use lazydp_embedding::CoalesceScratch;
use lazydp_model::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch};

/// Plain mini-batch SGD with sparse embedding updates (paper Fig. 4(a)).
///
/// Owns its forward cache, gradient buffers, and scratch arena: after
/// the first step sizes them, steady-state steps perform no heap
/// allocations (the same arena discipline as `LazyDpOptimizer`).
#[derive(Debug, Clone, Default)]
pub struct SgdOptimizer {
    lr: f32,
    counters: KernelCounters,
    cache: DlrmCache,
    grads: DlrmGrads,
    scratch: DlrmScratch,
    logit_g: Vec<f32>,
    coalesce: CoalesceScratch,
}

impl SgdOptimizer {
    /// Creates an SGD optimizer with learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive and finite.
    #[must_use]
    pub fn new(lr: f32) -> Self {
        assert!(lr.is_finite() && lr > 0.0, "learning rate must be positive");
        Self {
            lr,
            counters: KernelCounters::new(),
            ..Self::default()
        }
    }
}

impl Optimizer for SgdOptimizer {
    fn name(&self) -> &'static str {
        "SGD"
    }

    fn step(
        &mut self,
        model: &mut Dlrm,
        batch: &MiniBatch,
        _next: Option<&MiniBatch>,
    ) -> StepStats {
        if batch.is_empty() {
            return StepStats::default();
        }
        model.forward_with(batch, &mut self.cache, &mut self.scratch);
        self.counters.rows_gathered += batch.total_lookups() as u64;
        Dlrm::logit_grads_into(&self.cache, &batch.labels, true, &mut self.logit_g);
        model.backward_with(
            &self.cache,
            batch,
            &self.logit_g,
            None,
            &mut self.grads,
            &mut self.scratch,
        );
        self.counters.duplicates_removed += self.grads.coalesce_with(&mut self.coalesce) as u64;
        model.bottom.apply(&self.grads.bottom, self.lr);
        model.top.apply(&self.grads.top, self.lr);
        for (table, g) in model.tables.iter_mut().zip(self.grads.tables.iter()) {
            sparse_grad_update(table, g, self.lr, &mut self.counters);
        }
        self.counters.steps += 1;
        StepStats {
            realized_batch: batch.batch_size(),
            clipped_fraction: 0.0,
        }
    }

    fn counters(&self) -> KernelCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::Xoshiro256PlusPlus;

    #[test]
    fn sgd_learns_and_counts_sparse_work_only() {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        let mut model = Dlrm::new(DlrmConfig::tiny(3, 64, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(3, 64, 128));
        let batch = ds.batch_of(&(0..64).collect::<Vec<_>>());
        let before = model.loss(&batch);
        let mut opt = SgdOptimizer::new(0.1);
        for _ in 0..40 {
            let stats = opt.step(&mut model, &batch, None);
            assert_eq!(stats.realized_batch, 64);
        }
        let after = model.loss(&batch);
        assert!(after < before, "SGD must learn: {before:.4} -> {after:.4}");
        let c = opt.counters();
        assert_eq!(c.steps, 40);
        assert_eq!(c.gaussian_samples, 0, "SGD draws no noise");
        // Sparse: rows written per step ≤ total lookups (after dedup).
        assert!(c.table_rows_written <= c.rows_gathered);
        assert!(c.table_rows_written > 0);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut rng = Xoshiro256PlusPlus::seed_from(4);
        let mut model = Dlrm::new(DlrmConfig::tiny(2, 16, 4), &mut rng);
        let snapshot = model.tables[0].clone();
        let mut opt = SgdOptimizer::new(0.1);
        let stats = opt.step(&mut model, &MiniBatch::default(), None);
        assert_eq!(stats.realized_batch, 0);
        assert_eq!(model.tables[0], snapshot);
    }
}
