//! Instrumentation counters for the functional kernels.
//!
//! Every optimizer counts the *logical work* its kernels perform —
//! Gaussian samples drawn, table rows read/written, bytes streamed. These
//! are the exact quantities the paper's characterization attributes the
//! bottlenecks to (§4.2–4.3), and `lazydp-sysmodel` prices the same
//! counts with its roofline model; unit tests assert both sides agree.

/// Logical work counters, accumulated across optimizer steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCounters {
    /// Gaussian samples drawn (the compute-bound kernel of §4.3).
    pub gaussian_samples: u64,
    /// Embedding rows written during model update (noise and/or grad).
    pub table_rows_written: u64,
    /// Embedding rows read during model update (read-modify-write).
    pub table_rows_read: u64,
    /// Embedding rows gathered in forward passes.
    pub rows_gathered: u64,
    /// Duplicate indices removed by gradient coalescing / next-batch
    /// dedup (the dominant LazyDP overhead, Fig. 11).
    pub duplicates_removed: u64,
    /// HistoryTable entries read (LazyDP only).
    pub history_reads: u64,
    /// HistoryTable entries written (LazyDP only).
    pub history_writes: u64,
    /// Optimizer steps taken.
    pub steps: u64,
}

impl KernelCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Difference `self − earlier` (for per-step deltas).
    ///
    /// # Panics
    ///
    /// Panics (in debug) if any counter of `earlier` exceeds `self`'s.
    #[must_use]
    pub fn delta_since(&self, earlier: &Self) -> Self {
        Self {
            gaussian_samples: self.gaussian_samples - earlier.gaussian_samples,
            table_rows_written: self.table_rows_written - earlier.table_rows_written,
            table_rows_read: self.table_rows_read - earlier.table_rows_read,
            rows_gathered: self.rows_gathered - earlier.rows_gathered,
            duplicates_removed: self.duplicates_removed - earlier.duplicates_removed,
            history_reads: self.history_reads - earlier.history_reads,
            history_writes: self.history_writes - earlier.history_writes,
            steps: self.steps - earlier.steps,
        }
    }

    /// Accumulates another counter set into this one (used to merge the
    /// per-shard counters of a shard-parallel flush — each shard counts
    /// privately, then the totals are summed, so the merged counts are
    /// identical to a serial walk's).
    pub fn merge(&mut self, other: &Self) {
        self.gaussian_samples += other.gaussian_samples;
        self.table_rows_written += other.table_rows_written;
        self.table_rows_read += other.table_rows_read;
        self.rows_gathered += other.rows_gathered;
        self.duplicates_removed += other.duplicates_removed;
        self.history_reads += other.history_reads;
        self.history_writes += other.history_writes;
        self.steps += other.steps;
    }

    /// Bytes written to embedding tables, assuming `dim`-wide f32 rows.
    #[must_use]
    pub fn table_bytes_written(&self, dim: usize) -> u64 {
        self.table_rows_written * dim as u64 * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_and_bytes() {
        let a = KernelCounters {
            gaussian_samples: 100,
            table_rows_written: 10,
            ..Default::default()
        };
        let b = KernelCounters {
            gaussian_samples: 150,
            table_rows_written: 25,
            ..Default::default()
        };
        let d = b.delta_since(&a);
        assert_eq!(d.gaussian_samples, 50);
        assert_eq!(d.table_rows_written, 15);
        assert_eq!(d.table_bytes_written(128), 15 * 128 * 4);
    }

    #[test]
    fn merge_sums_every_field() {
        let mut a = KernelCounters {
            gaussian_samples: 1,
            history_reads: 2,
            ..Default::default()
        };
        let b = KernelCounters {
            gaussian_samples: 10,
            history_writes: 5,
            steps: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.gaussian_samples, 11);
        assert_eq!(a.history_reads, 2);
        assert_eq!(a.history_writes, 5);
        assert_eq!(a.steps, 1);
    }
}
