//! DP-SGD baseline optimizers: the algorithms LazyDP is compared against.
//!
//! The paper's §2.4–§2.5 and §7.4 define five training algorithms on top
//! of the same DLRM model; all are implemented here **functionally** (real
//! clipping, real Box–Muller noise, real updates) with instrumentation
//! counters that the calibrated performance model cross-validates against:
//!
//! | Paper name | Type | Gradient derivation | Noise target |
//! |---|---|---|---|
//! | SGD | [`SgdOptimizer`] | per-batch | none |
//! | DP-SGD(B) | [`EagerDpSgd`] + [`ClipStyle::PerExample`] | materialized per-example grads (Abadi et al.) | every row of every table |
//! | DP-SGD(R) | [`EagerDpSgd`] + [`ClipStyle::Reweighted`] | norm pass + reweighted pass (Lee & Kifer) | every row of every table |
//! | DP-SGD(F) | [`EagerDpSgd`] + [`ClipStyle::Fast`] | ghost norms + reweighted pass (Denison et al.) | every row of every table |
//! | EANA | [`EanaOptimizer`] | ghost norms + reweighted pass | **accessed rows only** (weaker privacy, §7.4) |
//!
//! DP-SGD(B), (R) and (F) produce *mathematically identical* models given
//! the same noise draws — asserted by this crate's tests using the
//! counter-based noise sources from `lazydp-rng`. LazyDP itself lives in
//! `lazydp-core` and implements the same [`Optimizer`] trait.
//!
//! # Example: one eager DP-SGD(F) step
//!
//! ```
//! use lazydp_data::{SyntheticConfig, SyntheticDataset};
//! use lazydp_dpsgd::{ClipStyle, DpConfig, EagerDpSgd, Optimizer};
//! use lazydp_model::{Dlrm, DlrmConfig};
//! use lazydp_rng::counter::CounterNoise;
//! use lazydp_rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(3);
//! let mut model = Dlrm::new(DlrmConfig::tiny(2, 64, 8), &mut rng);
//! let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 32));
//! let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
//!
//! let cfg = DpConfig::paper_default(8); // σ=1.1, C=1.0, η=0.05
//! let mut opt = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(1));
//! let stats = opt.step(&mut model, &batch, None);
//! assert_eq!(stats.realized_batch, 8);
//! // Eager DP-SGD noised *every* row of every table — the §4 bottleneck.
//! assert!(opt.counters().gaussian_samples >= 2 * 64 * 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adafest;
pub mod clip;
pub mod config;
pub mod counters;
pub mod eager;
pub mod eana;
pub mod noise_update;
pub mod optimizer;
pub mod parallel_update;
pub mod sgd;

pub use adafest::{AdaFestConfig, AdaFestOptimizer};
pub use clip::{clip_weights, clip_weights_into};
pub use config::DpConfig;
pub use counters::KernelCounters;
pub use eager::{ClipStyle, EagerDpSgd};
pub use eana::EanaOptimizer;
pub use optimizer::{Optimizer, StepStats};
pub use parallel_update::par_dense_noisy_update;
pub use sgd::SgdOptimizer;
