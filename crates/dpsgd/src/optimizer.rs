//! The optimizer interface shared by SGD, the DP-SGD baselines, EANA,
//! and LazyDP (`lazydp-core`).

use crate::counters::KernelCounters;
use lazydp_data::MiniBatch;
use lazydp_embedding::{EmbeddingStorage, EmbeddingTable};
use lazydp_model::Dlrm;

/// Per-step diagnostics returned by [`Optimizer::step`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StepStats {
    /// Realized batch size (varies under Poisson sampling).
    pub realized_batch: usize,
    /// Fraction of examples whose per-example gradient was clipped
    /// (0 for non-private SGD).
    pub clipped_fraction: f64,
}

/// A training algorithm: consumes one mini-batch per step and updates
/// the model in place.
///
/// `next` is the *following* iteration's mini-batch when the driver has
/// lookahead (the LazyDP `InputQueue`); eager algorithms ignore it.
/// LazyDP requires it for every step except the last before
/// [`finalize`](Self::finalize).
///
/// `T` is the embedding backend the algorithm can drive. It defaults to
/// the in-memory [`EmbeddingTable`], which every optimizer supports.
/// Algorithms whose per-row work is `O(batch)` — LazyDP — additionally
/// implement the trait for *every* [`EmbeddingStorage`], including the
/// out-of-core `lazydp_store::StoredTable`; eager DP-SGD deliberately
/// does not, because its dense full-table noisy update would thrash any
/// bounded page cache (that full-table traffic is precisely what the
/// paper removes).
pub trait Optimizer<T: EmbeddingStorage = EmbeddingTable> {
    /// Algorithm name as the paper spells it (e.g. `"DP-SGD(F)"`).
    fn name(&self) -> &'static str;

    /// Performs one training iteration.
    fn step(
        &mut self,
        model: &mut Dlrm<T>,
        batch: &MiniBatch,
        next: Option<&MiniBatch>,
    ) -> StepStats;

    /// Completes any deferred work so the model reaches its final,
    /// releasable state. Eager algorithms have nothing to do; LazyDP
    /// flushes all pending noise here (threat model §3: the adversary
    /// observes the *final* model).
    fn finalize(&mut self, model: &mut Dlrm<T>) {
        let _ = model;
    }

    /// Cumulative logical-work counters.
    fn counters(&self) -> KernelCounters;
}

#[cfg(test)]
mod tests {
    use super::*;

    // Object safety: the harness stores optimizers as trait objects.
    #[test]
    fn optimizer_is_object_safe() {
        fn _takes(_: &dyn Optimizer) {}
    }

    #[test]
    fn step_stats_default() {
        let s = StepStats::default();
        assert_eq!(s.realized_batch, 0);
        assert_eq!(s.clipped_fraction, 0.0);
    }
}
