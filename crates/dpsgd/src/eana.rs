//! EANA (Ning et al., RecSys 2022) — the prior-work comparison of §7.4.
//!
//! EANA modifies DP-SGD to add noise **only to the embedding rows that
//! were accessed** in the current iteration. That makes its model-update
//! cost proportional to the batch's unique rows (like LazyDP), but its
//! privacy is *weaker and data-dependent*: a row that is never accessed
//! never receives noise, so the released model leaks which features
//! never occurred in the data (§2.5). LazyDP achieves the same
//! asymptotic cost while preserving the exact DP-SGD guarantee.

use crate::clip::{clip_weights_into, clipped_fraction};
use crate::config::DpConfig;
use crate::counters::KernelCounters;
use crate::noise_update::sparse_noisy_update_with;
use crate::optimizer::{Optimizer, StepStats};
use lazydp_data::MiniBatch;
use lazydp_embedding::CoalesceScratch;
use lazydp_model::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch};
use lazydp_rng::RowNoise;

/// Reusable per-step buffers — one EANA step allocates nothing once
/// these reach steady-state size (pinned by
/// `tests/alloc_steady_state_eana.rs`).
#[derive(Debug, Clone, Default)]
struct EanaScratch {
    cache: DlrmCache,
    model_scratch: DlrmScratch,
    grads: DlrmGrads,
    logit_g: Vec<f32>,
    norms: Vec<f64>,
    dense_buf: Vec<f32>,
    noise_buf: Vec<f32>,
    coalesce: CoalesceScratch,
}

/// The EANA optimizer (ghost-norm clipping + accessed-rows-only noise).
#[derive(Debug, Clone)]
pub struct EanaOptimizer<N> {
    cfg: DpConfig,
    noise: N,
    counters: KernelCounters,
    iter: u64,
    scratch: EanaScratch,
}

impl<N: RowNoise> EanaOptimizer<N> {
    /// Creates an EANA optimizer.
    #[must_use]
    pub fn new(cfg: DpConfig, noise: N) -> Self {
        Self {
            cfg,
            noise,
            counters: KernelCounters::new(),
            iter: 0,
            scratch: EanaScratch::default(),
        }
    }

    /// The hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &DpConfig {
        &self.cfg
    }
}

impl<N: RowNoise> Optimizer for EanaOptimizer<N> {
    fn name(&self) -> &'static str {
        "EANA"
    }

    fn step(
        &mut self,
        model: &mut Dlrm,
        batch: &MiniBatch,
        _next: Option<&MiniBatch>,
    ) -> StepStats {
        self.iter += 1;
        if batch.is_empty() {
            // No accessed rows ⇒ EANA adds no embedding noise at all —
            // exactly the information leak §2.5 describes. MLP noise is
            // still added (dense layers are always "accessed").
            let std = self.cfg.noise_std_per_coord();
            model.bottom.apply_dense_noise_with(
                &mut self.noise,
                self.iter,
                0,
                std,
                self.cfg.lr,
                &mut self.scratch.dense_buf,
            );
            model.top.apply_dense_noise_with(
                &mut self.noise,
                self.iter,
                64,
                std,
                self.cfg.lr,
                &mut self.scratch.dense_buf,
            );
            self.counters.gaussian_samples += (model.bottom.params() + model.top.params()) as u64;
            self.counters.steps += 1;
            return StepStats::default();
        }
        model.forward_with(
            batch,
            &mut self.scratch.cache,
            &mut self.scratch.model_scratch,
        );
        self.counters.rows_gathered += batch.total_lookups() as u64;
        Dlrm::logit_grads_into(
            &self.scratch.cache,
            &batch.labels,
            false,
            &mut self.scratch.logit_g,
        );
        let c = self.cfg.max_grad_norm;
        let EanaScratch {
            cache,
            model_scratch,
            grads,
            logit_g,
            norms,
            dense_buf,
            noise_buf,
            coalesce,
        } = &mut self.scratch;
        // Fused ghost-clipping backward (same single-chain pass as the
        // eager DP-SGD(F) baseline and the LazyDP step).
        model.backward_clipped_with(
            cache,
            batch,
            logit_g,
            |n, w| {
                norms.clear();
                norms.extend_from_slice(n);
                clip_weights_into(n, c, w);
            },
            grads,
            model_scratch,
        );
        grads.scale(1.0 / self.cfg.nominal_batch as f32);
        self.counters.duplicates_removed += grads.coalesce_with(coalesce) as u64;
        let std = self.cfg.noise_std_per_coord();
        let lr = self.cfg.lr;
        model.bottom.apply(&grads.bottom, lr);
        model.top.apply(&grads.top, lr);
        model
            .bottom
            .apply_dense_noise_with(&mut self.noise, self.iter, 0, std, lr, dense_buf);
        model
            .top
            .apply_dense_noise_with(&mut self.noise, self.iter, 64, std, lr, dense_buf);
        self.counters.gaussian_samples += (model.bottom.params() + model.top.params()) as u64;
        for (t, (table, g)) in model.tables.iter_mut().zip(grads.tables.iter()).enumerate() {
            sparse_noisy_update_with(
                t as u32,
                table,
                g,
                &mut self.noise,
                self.iter,
                std,
                lr,
                &mut self.counters,
                noise_buf,
            );
        }
        self.counters.steps += 1;
        StepStats {
            realized_batch: batch.batch_size(),
            clipped_fraction: clipped_fraction(norms, c),
        }
    }

    fn counters(&self) -> KernelCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn setup() -> (Dlrm, SyntheticDataset) {
        let mut rng = Xoshiro256PlusPlus::seed_from(21);
        let model = Dlrm::new(DlrmConfig::tiny(2, 50, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 50, 64));
        (model, ds)
    }

    #[test]
    fn eana_never_noises_untouched_rows() {
        let (mut model, ds) = setup();
        let before = model.tables[0].clone();
        let mut opt = EanaOptimizer::new(DpConfig::paper_default(8), CounterNoise::new(3));
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        opt.step(&mut model, &batch, None);
        let touched: std::collections::HashSet<u64> =
            batch.table_indices(0).iter().copied().collect();
        let mut untouched_unchanged = 0;
        for r in 0..model.tables[0].rows() {
            if !touched.contains(&(r as u64)) {
                assert_eq!(
                    model.tables[0].row(r),
                    before.row(r),
                    "EANA noised untouched row {r} — privacy leak signature"
                );
                untouched_unchanged += 1;
            }
        }
        assert!(untouched_unchanged > 0, "test needs untouched rows");
    }

    #[test]
    fn eana_work_scales_with_batch_not_table() {
        let (mut model, ds) = setup();
        let mut opt = EanaOptimizer::new(DpConfig::paper_default(8), CounterNoise::new(3));
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        let mlp_params = (model.bottom.params() + model.top.params()) as u64;
        opt.step(&mut model, &batch, None);
        let c = opt.counters();
        let emb_samples = c.gaussian_samples - mlp_params;
        let dim = model.config().embedding_dim as u64;
        // At most one noise vector per lookup (fewer after dedup),
        // never table_rows × dim.
        assert!(emb_samples <= batch.total_lookups() as u64 * dim);
        let total_rows: u64 = model.tables.iter().map(|t| t.rows() as u64).sum();
        assert!(emb_samples < total_rows * dim / 2);
    }

    #[test]
    fn eana_learns_like_dp_sgd() {
        let (mut model, ds) = setup();
        let eval = ds.batch_of(&(0..64).collect::<Vec<_>>());
        let before = model.loss(&eval);
        let mut opt = EanaOptimizer::new(DpConfig::new(0.3, 5.0, 0.1, 32), CounterNoise::new(3));
        for it in 0..30 {
            let ids: Vec<usize> = (0..32).map(|k| (it * 32 + k) % 64).collect();
            let batch = ds.batch_of(&ids);
            opt.step(&mut model, &batch, None);
        }
        let after = model.loss(&eval);
        assert!(
            after < before,
            "EANA should learn: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn eana_matches_dp_sgd_on_accessed_rows_with_same_noise() {
        // With the same counter noise source, EANA and DP-SGD(F) apply
        // identical updates to accessed rows; they differ only on
        // untouched rows (which EANA leaves pristine).
        let (model0, ds) = setup();
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        let cfg = DpConfig::paper_default(8);
        let mut eana_model = model0.clone();
        let mut dp_model = model0.clone();
        let mut eana = EanaOptimizer::new(cfg, CounterNoise::new(55));
        let mut dp = crate::eager::EagerDpSgd::new(
            cfg,
            crate::eager::ClipStyle::Fast,
            CounterNoise::new(55),
        );
        eana.step(&mut eana_model, &batch, None);
        dp.step(&mut dp_model, &batch, None);
        let touched: std::collections::HashSet<u64> =
            batch.table_indices(0).iter().copied().collect();
        for &r in &touched {
            let a = eana_model.tables[0].row(r as usize);
            let b = dp_model.tables[0].row(r as usize);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-6, "row {r} differs");
            }
        }
    }
}
