//! Multi-threaded dense noisy update.
//!
//! The eager baseline's model-update sweep is embarrassingly parallel
//! over rows; the paper's tuned implementation multi-threads it with
//! TBB/OpenMP (§6). This is the Rust analogue on the
//! [`lazydp_exec::Executor`]: rows are split into fixed-size chunks
//! (never sized by the thread count), and with counter-based noise the
//! result is *identical* to the sequential
//! [`dense_noisy_update`](crate::noise_update::dense_noisy_update) —
//! verified by the tests — regardless of thread count.
//! [`EagerDpSgd`](crate::EagerDpSgd) dispatches here whenever its
//! [`DpConfig::threads`](crate::DpConfig) is above one.

use crate::counters::KernelCounters;
use lazydp_embedding::{EmbeddingTable, SparseGrad};
use lazydp_exec::Executor;
use lazydp_rng::RowNoise;

/// Embedding rows per executor chunk. Fixed (not derived from the
/// thread count) so chunk addressing — and therefore any per-chunk
/// noise state — is thread-count independent.
const ROWS_PER_CHUNK: usize = 512;

/// Parallel dense noisy update over `threads` workers. Identical to the
/// sequential kernel for any [`addressable`](RowNoise::addressable)
/// `RowNoise` (e.g. [`CounterNoise`](lazydp_rng::counter::CounterNoise))
/// at any thread count. Non-addressable (stateful) sources are
/// **rejected**: the per-chunk clones would replay the same stream in
/// every chunk, producing correlated noise — use the sequential
/// [`dense_noisy_update`](crate::noise_update::dense_noisy_update) for
/// those (as [`EagerDpSgd`](crate::EagerDpSgd) does automatically).
///
/// The gradient is looked up by binary search over the coalesced
/// entries — `SparseGrad::coalesce` already leaves them sorted by row,
/// so no per-call hash map is built.
///
/// # Panics
///
/// Panics if `noise` is not addressable, `grad` is not coalesced
/// (sorted, duplicate-free rows), dimensions mismatch, or
/// `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn par_dense_noisy_update<N>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    threads: usize,
    counters: &mut KernelCounters,
) where
    N: RowNoise + Clone + Send + Sync,
{
    assert!(
        noise.addressable(),
        "parallel noisy update needs an addressable noise source \
         (cloning a stateful stream per chunk would correlate the noise)"
    );
    assert_eq!(grad.dim(), table.dim(), "grad dim mismatch");
    let indices = grad.indices();
    assert!(
        indices.windows(2).all(|w| w[0] < w[1]),
        "gradient must be coalesced (sorted, duplicate-free rows)"
    );
    let dim = table.dim();
    let rows = table.rows();
    Executor::new(threads).par_for(table.as_mut_slice(), ROWS_PER_CHUNK * dim, |c, chunk| {
        let mut worker_noise = noise.clone();
        let first_row = c * ROWS_PER_CHUNK;
        let mut buf = vec![0.0f32; dim];
        for (k, row) in chunk.chunks_mut(dim).enumerate() {
            let r = (first_row + k) as u64;
            worker_noise.fill_unit(table_id, r, iter, &mut buf);
            if let Ok(pos) = indices.binary_search(&r) {
                let (_, g) = grad.entry(pos);
                for ((w, &n), &gv) in row.iter_mut().zip(buf.iter()).zip(g.iter()) {
                    *w -= lr * (noise_std * n + gv);
                }
            } else {
                for (w, &n) in row.iter_mut().zip(buf.iter()) {
                    *w -= lr * noise_std * n;
                }
            }
        }
    });
    counters.gaussian_samples += (rows * dim) as u64;
    counters.table_rows_read += rows as u64;
    counters.table_rows_written += rows as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise_update::dense_noisy_update;
    use lazydp_rng::counter::CounterNoise;

    fn grad() -> SparseGrad {
        let mut g = SparseGrad::from_entries(
            4,
            vec![(0, vec![1.0; 4]), (17, vec![-0.5; 4]), (63, vec![2.0; 4])],
        );
        let _ = g.coalesce();
        g
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let g = grad();
        let mut seq = EmbeddingTable::zeros(64, 4);
        let mut c1 = KernelCounters::new();
        let mut n1 = CounterNoise::new(12);
        dense_noisy_update(3, &mut seq, &g, &mut n1, 9, 0.25, 0.1, &mut c1);
        for threads in [1usize, 2, 3, 7] {
            let mut par = EmbeddingTable::zeros(64, 4);
            let mut c2 = KernelCounters::new();
            let n2 = CounterNoise::new(12);
            par_dense_noisy_update(3, &mut par, &g, &n2, 9, 0.25, 0.1, threads, &mut c2);
            assert_eq!(seq, par, "thread count {threads} changed the result");
            assert_eq!(c1.gaussian_samples, c2.gaussian_samples);
        }
    }

    #[test]
    fn tables_larger_than_one_chunk_still_match_sequential() {
        // > ROWS_PER_CHUNK rows so several chunks are actually in
        // flight, with gradient rows scattered across chunks.
        let rows = 2 * ROWS_PER_CHUNK + 37;
        let mut g = SparseGrad::from_entries(
            2,
            vec![
                (3, vec![1.0, -1.0]),
                (ROWS_PER_CHUNK as u64 + 5, vec![0.5, 0.5]),
                (rows as u64 - 1, vec![-2.0, 2.0]),
            ],
        );
        let _ = g.coalesce();
        let mut seq = EmbeddingTable::zeros(rows, 2);
        let mut c = KernelCounters::new();
        let mut n1 = CounterNoise::new(8);
        dense_noisy_update(1, &mut seq, &g, &mut n1, 4, 0.3, 0.05, &mut c);
        for threads in [1usize, 2, 5] {
            let mut par = EmbeddingTable::zeros(rows, 2);
            let n2 = CounterNoise::new(8);
            par_dense_noisy_update(1, &mut par, &g, &n2, 4, 0.3, 0.05, threads, &mut c);
            assert_eq!(seq, par, "thread count {threads} changed the result");
        }
    }

    #[test]
    fn handles_row_counts_not_divisible_by_threads() {
        let g = {
            let mut g = SparseGrad::from_entries(2, vec![(6, vec![1.0, 1.0])]);
            let _ = g.coalesce();
            g
        };
        let mut seq = EmbeddingTable::zeros(7, 2);
        let mut par = EmbeddingTable::zeros(7, 2);
        let mut c = KernelCounters::new();
        let mut n1 = CounterNoise::new(1);
        dense_noisy_update(0, &mut seq, &g, &mut n1, 1, 0.5, 0.1, &mut c);
        let n2 = CounterNoise::new(1);
        par_dense_noisy_update(0, &mut par, &g, &n2, 1, 0.5, 0.1, 3, &mut c);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "coalesced")]
    fn uncoalesced_grad_rejected() {
        let mut t = EmbeddingTable::zeros(4, 1);
        let g = SparseGrad::from_entries(1, vec![(2, vec![1.0]), (0, vec![1.0])]);
        let n = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        par_dense_noisy_update(0, &mut t, &g, &n, 1, 0.1, 0.1, 2, &mut c);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut t = EmbeddingTable::zeros(4, 2);
        let g = SparseGrad::new(2);
        let n = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        par_dense_noisy_update(0, &mut t, &g, &n, 1, 0.1, 0.1, 0, &mut c);
    }
}
