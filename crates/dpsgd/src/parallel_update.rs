//! Multi-threaded dense noisy update.
//!
//! The eager baseline's model-update sweep is embarrassingly parallel
//! over rows; the paper's tuned implementation multi-threads it with
//! TBB/OpenMP (§6). This is the Rust analogue, built on counter-based
//! noise so the result is *identical* to the sequential
//! [`dense_noisy_update`](crate::noise_update::dense_noisy_update) —
//! verified by the tests — regardless of thread count.

use crate::counters::KernelCounters;
use lazydp_embedding::{EmbeddingTable, SparseGrad};
use lazydp_rng::RowNoise;
use std::collections::HashMap;

/// Parallel dense noisy update over `threads` workers. Semantically
/// identical to the sequential kernel for any `RowNoise` whose output is
/// a pure function of `(table, row, iter)` (e.g.
/// [`CounterNoise`](lazydp_rng::counter::CounterNoise)); sequential
/// sources would give a thread-count-dependent (but distributionally
/// identical) result.
///
/// # Panics
///
/// Panics if `grad` is not coalesced, dimensions mismatch, or
/// `threads == 0`.
#[allow(clippy::too_many_arguments)]
pub fn par_dense_noisy_update<N>(
    table_id: u32,
    table: &mut EmbeddingTable,
    grad: &SparseGrad,
    noise: &N,
    iter: u64,
    noise_std: f32,
    lr: f32,
    threads: usize,
    counters: &mut KernelCounters,
) where
    N: RowNoise + Clone + Send,
{
    assert!(threads > 0, "need at least one thread");
    assert_eq!(grad.dim(), table.dim(), "grad dim mismatch");
    let dim = table.dim();
    let rows = table.rows();
    let mut map: HashMap<u64, &[f32]> = HashMap::with_capacity(grad.len());
    for (idx, vals) in grad.iter() {
        let prev = map.insert(idx, vals);
        assert!(
            prev.is_none(),
            "gradient must be coalesced (duplicate row {idx})"
        );
    }
    let map = &map;
    let rows_per_chunk = rows.div_ceil(threads).max(1);
    let data = table.as_mut_slice();
    std::thread::scope(|scope| {
        for (c, chunk) in data.chunks_mut(rows_per_chunk * dim).enumerate() {
            let mut worker_noise = noise.clone();
            scope.spawn(move || {
                let first_row = c * rows_per_chunk;
                let mut buf = vec![0.0f32; dim];
                for (k, row) in chunk.chunks_mut(dim).enumerate() {
                    let r = (first_row + k) as u64;
                    worker_noise.fill_unit(table_id, r, iter, &mut buf);
                    if let Some(g) = map.get(&r) {
                        for ((w, &n), &gv) in row.iter_mut().zip(buf.iter()).zip(g.iter()) {
                            *w -= lr * (noise_std * n + gv);
                        }
                    } else {
                        for (w, &n) in row.iter_mut().zip(buf.iter()) {
                            *w -= lr * noise_std * n;
                        }
                    }
                }
            });
        }
    });
    counters.gaussian_samples += (rows * dim) as u64;
    counters.table_rows_read += rows as u64;
    counters.table_rows_written += rows as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise_update::dense_noisy_update;
    use lazydp_rng::counter::CounterNoise;

    fn grad() -> SparseGrad {
        let mut g = SparseGrad::from_entries(
            4,
            vec![(0, vec![1.0; 4]), (17, vec![-0.5; 4]), (63, vec![2.0; 4])],
        );
        let _ = g.coalesce();
        g
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let g = grad();
        let mut seq = EmbeddingTable::zeros(64, 4);
        let mut c1 = KernelCounters::new();
        let mut n1 = CounterNoise::new(12);
        dense_noisy_update(3, &mut seq, &g, &mut n1, 9, 0.25, 0.1, &mut c1);
        for threads in [1usize, 2, 3, 7] {
            let mut par = EmbeddingTable::zeros(64, 4);
            let mut c2 = KernelCounters::new();
            let n2 = CounterNoise::new(12);
            par_dense_noisy_update(3, &mut par, &g, &n2, 9, 0.25, 0.1, threads, &mut c2);
            assert_eq!(seq, par, "thread count {threads} changed the result");
            assert_eq!(c1.gaussian_samples, c2.gaussian_samples);
        }
    }

    #[test]
    fn handles_row_counts_not_divisible_by_threads() {
        let g = {
            let mut g = SparseGrad::from_entries(2, vec![(6, vec![1.0, 1.0])]);
            let _ = g.coalesce();
            g
        };
        let mut seq = EmbeddingTable::zeros(7, 2);
        let mut par = EmbeddingTable::zeros(7, 2);
        let mut c = KernelCounters::new();
        let mut n1 = CounterNoise::new(1);
        dense_noisy_update(0, &mut seq, &g, &mut n1, 1, 0.5, 0.1, &mut c);
        let n2 = CounterNoise::new(1);
        par_dense_noisy_update(0, &mut par, &g, &n2, 1, 0.5, 0.1, 3, &mut c);
        assert_eq!(seq, par);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let mut t = EmbeddingTable::zeros(4, 2);
        let g = SparseGrad::new(2);
        let n = CounterNoise::new(1);
        let mut c = KernelCounters::new();
        par_dense_noisy_update(0, &mut t, &g, &n, 1, 0.1, 0.1, 0, &mut c);
    }
}
