//! Hardware and calibration constants.
//!
//! Every constant is either (a) quoted directly by the paper, (b) public
//! vendor data for the named parts, or (c) a **calibration constant**
//! fitted to one of the paper's own measurements and marked as such in
//! its doc comment. EXPERIMENTS.md lists the calibration targets and the
//! achieved values.

/// CPU-side constants (Intel Xeon E5-2698v4, §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSpec {
    /// Theoretical DRAM bandwidth in GB/s (paper §6: "68 GB/sec").
    pub mem_bw_gbs: f64,
    /// Fraction of theoretical bandwidth streaming kernels achieve
    /// (paper §4.3: the noisy-gradient update reaches "85.5% of
    /// theoretical memory bandwidth").
    pub stream_efficiency: f64,
    /// Effective fraction of bandwidth for *random* row-granular
    /// accesses (embedding gathers/scatters of 512 B rows). Calibration
    /// constant: fitted so SGD's per-iteration time matches the Fig. 10
    /// batch-scaling pattern.
    pub gather_efficiency: f64,
    /// Peak AVX throughput in GFLOPS (paper Fig. 6: the plateau of the
    /// microbenchmark, ≈ 265 GFLOPS on the 20-core part).
    pub avx_peak_gflops: f64,
    /// Fraction of peak the Box–Muller kernel achieves (paper §4.2/4.3:
    /// "81% of the maximum possible AVX performance", i.e. ≈ 215
    /// GFLOPS effective).
    pub avx_efficiency: f64,
    /// DRAM capacity in bytes (paper §6: 256 GB) — the OOM bound of
    /// Fig. 13(a).
    pub dram_capacity_bytes: u64,
}

/// GPU-side constants (NVIDIA V100, §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuSpec {
    /// Peak fp32 throughput in TFLOPS (V100: 14).
    pub fp32_tflops: f64,
    /// Achieved GEMM efficiency at DLRM's layer sizes. Calibration
    /// constant (mid-size GEMMs reach ~35% of peak on V100).
    pub gemm_efficiency: f64,
    /// HBM2 bandwidth in GB/s (paper §6: 900).
    pub hbm_bw_gbs: f64,
    /// HBM2 capacity in bytes (paper §6: 32 GB) — bounds DP-SGD(B)'s
    /// per-example gradient materialization.
    pub hbm_capacity_bytes: u64,
}

/// CPU↔GPU interconnect (PCIe 3.0 x16, §6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Peak bandwidth in GB/s (paper §6: 16).
    pub pcie_gbs: f64,
    /// Achieved fraction of peak for large transfers.
    pub pcie_efficiency: f64,
}

/// Power-state model for the energy figures (Fig. 12). The paper
/// measures with `pcm-power` (CPU) and `nvidia-smi` (GPU) and multiplies
/// by stage time; we assign each stage a CPU + GPU power state instead.
/// All wattages are calibration constants fitted to Fig. 12's
/// energy-vs-time ratio (DP-SGD(F): 353× energy at 259× time ⇒ its
/// average power is ≈ 1.36× SGD's).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSpec {
    /// CPU power when near-idle (framework overhead phases), W.
    pub cpu_idle_w: f64,
    /// CPU power during AVX-saturated phases (noise sampling), W.
    pub cpu_avx_w: f64,
    /// CPU power during memory-streaming phases, W.
    pub cpu_stream_w: f64,
    /// GPU idle power, W (V100 idles ≈ 70 W).
    pub gpu_idle_w: f64,
    /// GPU power during GEMM phases, W.
    pub gpu_active_w: f64,
}

/// Per-iteration host-side overheads (the PyTorch/Opacus framework costs
/// that dominate small-model iterations). All calibration constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostSpec {
    /// Fixed per-iteration overhead in seconds (kernel launches, Python
    /// dispatch, CPU↔GPU synchronization). Fitted to Fig. 10's SGD
    /// batch-scaling (0.7/1.0/1.5 at 1024/2048/4096).
    pub fixed_per_iter_s: f64,
    /// Per-sample host processing in seconds (data loader, loss,
    /// bookkeeping).
    pub per_sample_s: f64,
    /// Per-embedding-lookup host cost (embedding-bag offset handling,
    /// index conversion). Fitted to Fig. 13(b)'s SGD pooling scaling
    /// (1.0/3.2/5.0/6.5 at pooling 1/10/20/30).
    pub per_lookup_s: f64,
    /// Fixed per-iteration overhead added by the DP machinery (Opacus
    /// wrapper dispatch, extra kernel launches for clipping/noise).
    /// Fitted to Fig. 10's LazyDP batch-scaling (1.7/2.2/3.1).
    pub dp_fixed_per_iter_s: f64,
    /// Extra per-sample cost of DP gradient machinery for the
    /// ghost-norm variants F / EANA / LazyDP (hook dispatch, norm
    /// reduction, clipping).
    pub dp_fast_per_sample_s: f64,
    /// Extra per-sample cost for DP-SGD(R)'s double gradient pass.
    pub dp_reweighted_per_sample_s: f64,
    /// Extra per-sample cost for DP-SGD(B)'s per-example gradient
    /// materialization (Opacus hooks + allocator traffic). Fitted to
    /// Fig. 3's 96 MB point where DP-SGD(B) ≈ 3× DP-SGD(F).
    pub dp_per_example_per_sample_s: f64,
    /// Per-lookup cost of index dedup / `unique` for the first
    /// [`DEDUP_TIER_LOOKUPS`](crate::kernels::DEDUP_TIER_LOOKUPS)
    /// lookups (PyTorch-`unique`-style dispatch-heavy cost; LazyDP
    /// overhead item 1, 61% of its overhead — Fig. 11).
    pub dedup_per_lookup_s: f64,
    /// Per-lookup dedup cost beyond the first tier (amortized
    /// hash/radix cost at scale, memory-bound).
    pub dedup_per_lookup_bulk_s: f64,
    /// Per-unique-row cost of reading the HistoryTable and deriving the
    /// ANS standard deviation (overhead item 2, 22%).
    pub history_read_per_row_s: f64,
    /// Per-unique-row cost of updating the HistoryTable (item 3, 17%).
    pub history_write_per_row_s: f64,
}

/// The full system description.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemSpec {
    /// CPU constants.
    pub cpu: CpuSpec,
    /// GPU constants.
    pub gpu: GpuSpec,
    /// Interconnect constants.
    pub link: LinkSpec,
    /// Power states.
    pub power: PowerSpec,
    /// Host/framework overheads.
    pub host: HostSpec,
}

impl SystemSpec {
    /// The paper's testbed (§6): V100 + Xeon E5-2698v4, PCIe 3.0,
    /// PyTorch 1.12 + Opacus with hand-tuned AVX kernels.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            cpu: CpuSpec {
                mem_bw_gbs: 68.0,
                stream_efficiency: 0.855,
                gather_efficiency: 0.09,
                avx_peak_gflops: 265.0,
                avx_efficiency: 0.81,
                dram_capacity_bytes: 256 * 1_000_000_000,
            },
            gpu: GpuSpec {
                fp32_tflops: 14.0,
                gemm_efficiency: 0.35,
                hbm_bw_gbs: 900.0,
                hbm_capacity_bytes: 32 * 1_000_000_000,
            },
            link: LinkSpec {
                pcie_gbs: 16.0,
                pcie_efficiency: 0.8,
            },
            power: PowerSpec {
                cpu_idle_w: 65.0,
                cpu_avx_w: 240.0,
                cpu_stream_w: 180.0,
                gpu_idle_w: 70.0,
                gpu_active_w: 250.0,
            },
            host: HostSpec {
                fixed_per_iter_s: 30e-3,
                per_sample_s: 12e-6,
                per_lookup_s: 60e-9,
                dp_fixed_per_iter_s: 50e-3,
                dp_fast_per_sample_s: 12e-6,
                dp_reweighted_per_sample_s: 170e-6,
                dp_per_example_per_sample_s: 330e-6,
                dedup_per_lookup_s: 170e-9,
                dedup_per_lookup_bulk_s: 10e-9,
                history_read_per_row_s: 180e-9,
                history_write_per_row_s: 150e-9,
            },
        }
    }

    /// Effective streaming bandwidth in bytes/s.
    #[must_use]
    pub fn stream_bw(&self) -> f64 {
        self.cpu.mem_bw_gbs * 1e9 * self.cpu.stream_efficiency
    }

    /// Effective random-row bandwidth in bytes/s.
    #[must_use]
    pub fn gather_bw(&self) -> f64 {
        self.cpu.mem_bw_gbs * 1e9 * self.cpu.gather_efficiency
    }

    /// Effective AVX throughput in flops/s (the 215 GFLOPS of Fig. 6).
    #[must_use]
    pub fn avx_eff_flops(&self) -> f64 {
        self.cpu.avx_peak_gflops * 1e9 * self.cpu.avx_efficiency
    }

    /// Effective GPU GEMM throughput in flops/s.
    #[must_use]
    pub fn gemm_flops(&self) -> f64 {
        self.gpu.fp32_tflops * 1e12 * self.gpu.gemm_efficiency
    }

    /// Effective PCIe bandwidth in bytes/s.
    #[must_use]
    pub fn pcie_bw(&self) -> f64 {
        self.link.pcie_gbs * 1e9 * self.link.pcie_efficiency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_quoted_values() {
        let s = SystemSpec::paper_default();
        // §6 quotes.
        assert_eq!(s.cpu.mem_bw_gbs, 68.0);
        assert_eq!(s.gpu.hbm_bw_gbs, 900.0);
        assert_eq!(s.link.pcie_gbs, 16.0);
        assert_eq!(s.cpu.dram_capacity_bytes, 256_000_000_000);
        // §4.3: 81% of peak ⇒ ≈ 215 GFLOPS effective.
        assert!((s.avx_eff_flops() / 1e9 - 214.65).abs() < 1.0);
        // §4.3: 85.5% of 68 GB/s ⇒ ≈ 58.1 GB/s streams.
        assert!((s.stream_bw() / 1e9 - 58.14).abs() < 0.1);
    }

    #[test]
    fn derived_rates_are_positive_and_ordered() {
        let s = SystemSpec::paper_default();
        assert!(s.gather_bw() < s.stream_bw(), "random slower than stream");
        assert!(s.gemm_flops() > s.avx_eff_flops(), "GPU beats CPU at GEMM");
        assert!(s.pcie_bw() > 0.0);
    }
}
