//! Per-algorithm iteration models: op counts → stage latencies → energy.
//!
//! The op-count formulas here mirror, one for one, the instrumented
//! kernels of `lazydp-dpsgd` / `lazydp-core` (cross-validated in
//! `lazydp-bench`): e.g. eager DP-SGD draws `total_rows × dim` Gaussians
//! and streams the whole table, LazyDP draws `unique_next × dim` (with
//! ANS) and scatters `unique_cur + unique_next` rows.

use crate::breakdown::StageBreakdown;
use crate::kernels::{
    dedup_time, dense_update_time, gather_time, gaussian_time, gemm_time, history_time, pcie_time,
    scatter_time, stream_time,
};
use crate::spec::SystemSpec;
use crate::workload::Workload;
use std::fmt;

/// The training algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Non-private SGD (the normalization baseline).
    Sgd,
    /// DP-SGD(B): materialized per-example gradients.
    DpSgdB,
    /// DP-SGD(R): reweighted two-pass DP-SGD.
    DpSgdR,
    /// DP-SGD(F): ghost-norm DP-SGD (the strongest eager baseline).
    DpSgdF,
    /// EANA: noise on accessed rows only (weaker privacy).
    Eana,
    /// LazyDP with or without aggregated noise sampling.
    LazyDp {
        /// Whether ANS (§5.2.2) is enabled.
        ans: bool,
    },
}

impl Algorithm {
    /// The paper's display name.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Self::Sgd => "SGD",
            Self::DpSgdB => "DP-SGD(B)",
            Self::DpSgdR => "DP-SGD(R)",
            Self::DpSgdF => "DP-SGD(F)",
            Self::Eana => "EANA",
            Self::LazyDp { ans: true } => "LazyDP",
            Self::LazyDp { ans: false } => "LazyDP(w/o ANS)",
        }
    }

    /// The four algorithms of Fig. 10.
    #[must_use]
    pub fn fig10_set() -> [Self; 4] {
        [
            Self::Sgd,
            Self::LazyDp { ans: true },
            Self::LazyDp { ans: false },
            Self::DpSgdF,
        ]
    }
}

/// Out-of-memory verdict from the capacity model (Fig. 13(a): DP-SGD(F)
/// OOMs at 192 GB because the dense noisy gradient doubles the
/// footprint past the 256 GB DRAM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OomError {
    /// Which memory pool overflowed ("CPU DRAM" / "GPU HBM").
    pub pool: &'static str,
    /// Bytes required.
    pub required: u64,
    /// Bytes available.
    pub capacity: u64,
}

impl fmt::Display for OomError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out of memory: {} needs {:.1} GB but has {:.1} GB",
            self.pool,
            self.required as f64 / 1e9,
            self.capacity as f64 / 1e9
        )
    }
}

impl std::error::Error for OomError {}

/// The result of pricing one training iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationEstimate {
    /// Stage latencies (seconds).
    pub breakdown: StageBreakdown,
    /// Energy per iteration (joules), from the power-state model.
    pub energy_j: f64,
    /// CPU DRAM footprint (bytes).
    pub cpu_dram_bytes: u64,
    /// GPU HBM footprint (bytes).
    pub gpu_hbm_bytes: u64,
}

impl IterationEstimate {
    /// Average power (W) over the iteration.
    #[must_use]
    pub fn avg_power_w(&self) -> f64 {
        self.energy_j / self.breakdown.total()
    }
}

/// CPU DRAM footprint of `alg` on `wl` (embeddings live on the CPU,
/// §2.2).
#[must_use]
pub fn cpu_dram_bytes(alg: Algorithm, wl: &Workload) -> u64 {
    let emb = wl.config.embedding_bytes();
    match alg {
        Algorithm::Sgd => emb + emb / 100,
        // Eager DP-SGD materializes a dense noisy-gradient tensor the
        // size of the full embedding table (§4.1 / Fig. 13(a) OOM).
        Algorithm::DpSgdB | Algorithm::DpSgdR | Algorithm::DpSgdF => 2 * emb + emb / 100,
        Algorithm::Eana => emb + emb / 100,
        Algorithm::LazyDp { .. } => {
            // + HistoryTable (4 B/row) + prefetched batch.
            emb + wl.config.total_rows() * 4 + wl.total_lookups() * 4 + emb / 100
        }
    }
}

/// GPU HBM footprint (MLPs + activations; DP-SGD(B) adds per-example
/// gradient storage, §2.5).
#[must_use]
pub fn gpu_hbm_bytes(alg: Algorithm, wl: &Workload) -> u64 {
    let mlp = wl.mlp_params() * 4;
    let act_width: u64 = (wl.config.bottom_layers.iter().sum::<usize>()
        + wl.config.top_layers.iter().sum::<usize>()
        + wl.config.top_input_dim()) as u64;
    let acts = wl.batch as u64 * act_width * 4;
    let base = 3 * mlp + 2 * acts;
    match alg {
        Algorithm::DpSgdB => base + wl.batch as u64 * mlp,
        _ => base,
    }
}

/// Prices one training iteration of `alg` on `wl` under `spec`.
///
/// # Errors
///
/// Returns [`OomError`] when the capacity model says the configuration
/// cannot run (the Fig. 13(a) "OOM" bar).
pub fn estimate(
    alg: Algorithm,
    wl: &Workload,
    spec: &SystemSpec,
) -> Result<IterationEstimate, OomError> {
    let cpu_need = cpu_dram_bytes(alg, wl);
    if cpu_need > spec.cpu.dram_capacity_bytes {
        return Err(OomError {
            pool: "CPU DRAM",
            required: cpu_need,
            capacity: spec.cpu.dram_capacity_bytes,
        });
    }
    let gpu_need = gpu_hbm_bytes(alg, wl);
    if gpu_need > spec.gpu.hbm_capacity_bytes {
        return Err(OomError {
            pool: "GPU HBM",
            required: gpu_need,
            capacity: spec.gpu.hbm_capacity_bytes,
        });
    }

    let b = wl.batch as f64;
    let dim = wl.config.embedding_dim as u64;
    let row_bytes = wl.row_bytes();
    let fwd_flops = wl.forward_gemm_flops();
    let lookups = wl.total_lookups();
    let unique = wl.total_expected_unique();
    let emb_elems = wl.embedding_elements();
    let mlp_params = wl.mlp_params();

    // ---- Stages common to all algorithms -------------------------------
    let fwd = gemm_time(spec, fwd_flops)
        + gather_time(spec, lookups, row_bytes)
        + pcie_time(spec, wl.pcie_bytes_one_way());
    // Standard per-batch backward: activation+weight GEMMs ≈ 2× forward,
    // plus returning pooled-embedding gradients over PCIe.
    let bwd_batch_base = gemm_time(spec, 2 * fwd_flops) + pcie_time(spec, wl.pcie_bytes_one_way());
    let other_base = spec.host.fixed_per_iter_s
        + b * spec.host.per_sample_s
        + lookups as f64 * spec.host.per_lookup_s;

    let mut s = StageBreakdown {
        fwd,
        other: if alg == Algorithm::Sgd {
            other_base
        } else {
            other_base + spec.host.dp_fixed_per_iter_s
        },
        ..Default::default()
    };

    match alg {
        Algorithm::Sgd => {
            s.bwd_per_batch = bwd_batch_base;
            s.grad_coalesce = dedup_time(spec, lookups);
            s.noisy_grad_update = scatter_time(spec, unique.ceil() as u64, row_bytes)
                + stream_time(spec, mlp_params, 2, 12);
        }
        Algorithm::DpSgdB | Algorithm::DpSgdR | Algorithm::DpSgdF => {
            match alg {
                Algorithm::DpSgdB => {
                    // Materialize per-example weight grads: the weight
                    // GEMMs plus writing+reading B×params on HBM, plus
                    // the per-sample hook overhead of Opacus.
                    s.bwd_per_example = gemm_time(spec, 2 * fwd_flops)
                        + (b * mlp_params as f64 * 4.0 * 2.0) / (spec.gpu.hbm_bw_gbs * 1e9)
                        + b * spec.host.dp_per_example_per_sample_s;
                    s.bwd_per_batch = bwd_batch_base;
                }
                Algorithm::DpSgdR => {
                    // Norm pass (recomputes per-example grads without
                    // storing) + reweighted pass.
                    s.bwd_per_example =
                        gemm_time(spec, 2 * fwd_flops) + b * spec.host.dp_reweighted_per_sample_s;
                    s.bwd_per_batch = bwd_batch_base;
                }
                _ => {
                    // DP-SGD(F): ghost-norm pass (activation-grad chain
                    // only ≈ 1× forward flops) + reweighted pass.
                    s.bwd_per_example =
                        gemm_time(spec, fwd_flops) + b * spec.host.dp_fast_per_sample_s;
                    s.bwd_per_batch = bwd_batch_base;
                }
            }
            s.grad_coalesce = dedup_time(spec, lookups);
            // Dense noisy update over the whole table (§4): the three
            // sub-stages of Fig. 5.
            s.noise_sampling = gaussian_time(spec, emb_elems + mlp_params);
            s.noisy_grad_gen = stream_time(spec, emb_elems, 1, 8);
            s.noisy_grad_update =
                dense_update_time(spec, emb_elems) + stream_time(spec, mlp_params, 2, 12);
        }
        Algorithm::Eana => {
            s.bwd_per_example = gemm_time(spec, fwd_flops) + b * spec.host.dp_fast_per_sample_s;
            s.bwd_per_batch = bwd_batch_base;
            s.grad_coalesce = dedup_time(spec, lookups);
            let touched = unique.ceil() as u64;
            s.noise_sampling = gaussian_time(spec, touched * dim + mlp_params);
            s.noisy_grad_gen = stream_time(spec, touched * dim, 1, 8);
            s.noisy_grad_update =
                scatter_time(spec, touched, row_bytes) + stream_time(spec, mlp_params, 2, 12);
        }
        Algorithm::LazyDp { ans } => {
            s.bwd_per_example = gemm_time(spec, fwd_flops) + b * spec.host.dp_fast_per_sample_s;
            s.bwd_per_batch = bwd_batch_base;
            // Coalesce the gradient AND dedup the next batch's indices.
            s.grad_coalesce = dedup_time(spec, 2 * lookups);
            let unique_rows = unique.ceil() as u64;
            // Noise: with ANS one draw per next-unique row; without it
            // the *per-iteration steady-state* draw count equals eager
            // DP-SGD's (§5.2.2: every deferred iteration still owes one
            // draw, so totals are conserved).
            let noise_draws = if ans { unique_rows * dim } else { emb_elems };
            s.noise_sampling = gaussian_time(spec, noise_draws + mlp_params);
            s.noisy_grad_gen = stream_time(spec, 2 * unique_rows * dim, 1, 8);
            // Scatter: current batch's gradient rows + next batch's
            // noise rows.
            s.noisy_grad_update = scatter_time(spec, 2 * unique_rows, row_bytes)
                + stream_time(spec, mlp_params, 2, 12);
            let (hr, hw) = history_time(spec, unique_rows);
            s.history_read = hr;
            s.history_write = hw;
        }
    }

    let energy_j = energy(&s, spec);
    Ok(IterationEstimate {
        breakdown: s,
        energy_j,
        cpu_dram_bytes: cpu_need,
        gpu_hbm_bytes: gpu_need,
    })
}

/// Power-state energy model (Fig. 12 methodology: stage time × stage
/// power, CPU + GPU).
#[must_use]
pub fn energy(s: &StageBreakdown, spec: &SystemSpec) -> f64 {
    let p = &spec.power;
    let gpu_heavy = s.fwd + s.bwd_per_example + s.bwd_per_batch;
    let cpu_avx = s.noise_sampling;
    let cpu_stream =
        s.noisy_grad_gen + s.noisy_grad_update + s.grad_coalesce + s.history_read + s.history_write;
    let idle = s.other;
    gpu_heavy * (p.cpu_stream_w + p.gpu_active_w)
        + cpu_avx * (p.cpu_avx_w + p.gpu_idle_w)
        + cpu_stream * (p.cpu_stream_w + p.gpu_idle_w)
        + idle * (p.cpu_idle_w + p.gpu_idle_w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::SkewLevel;
    use lazydp_model::DlrmConfig;

    fn spec() -> SystemSpec {
        SystemSpec::paper_default()
    }

    fn ratio(alg: Algorithm, wl: &Workload) -> f64 {
        let sgd = estimate(Algorithm::Sgd, wl, &spec())
            .expect("sgd fits")
            .breakdown
            .total();
        let t = estimate(alg, wl, &spec()).expect("fits").breakdown.total();
        t / sgd
    }

    #[test]
    fn headline_fig10_ratios() {
        // Paper Fig. 10 at batch 2048, 96 GB model: DP-SGD(F) ≈ 259×
        // SGD, LazyDP(w/o ANS) ≈ 151×, LazyDP ≈ 2.2×.
        let wl = Workload::mlperf_default(2048);
        let f = ratio(Algorithm::DpSgdF, &wl);
        assert!(
            (200.0..330.0).contains(&f),
            "DP-SGD(F)/SGD = {f}, expect ≈ 259"
        );
        let wo = ratio(Algorithm::LazyDp { ans: false }, &wl);
        assert!((100.0..200.0).contains(&wo), "w/o ANS = {wo}, expect ≈ 151");
        let lazy = ratio(Algorithm::LazyDp { ans: true }, &wl);
        assert!(
            (1.5..3.2).contains(&lazy),
            "LazyDP/SGD = {lazy}, expect ≈ 2.2"
        );
        // §7.1: LazyDP speedup over DP-SGD(F) is 85–155×.
        let speedup = f / lazy;
        assert!(
            (60.0..180.0).contains(&speedup),
            "speedup {speedup}, expect ≈ 119"
        );
    }

    #[test]
    fn sgd_batch_scaling_matches_fig10() {
        // Fig. 10: SGD at 1024/2048/4096 ≈ 0.7/1.0/1.5 (norm. to 2048).
        let t = |b: usize| {
            estimate(Algorithm::Sgd, &Workload::mlperf_default(b), &spec())
                .expect("fits")
                .breakdown
                .total()
        };
        let t2048 = t(2048);
        let r1024 = t(1024) / t2048;
        let r4096 = t(4096) / t2048;
        assert!((0.6..0.85).contains(&r1024), "1024 ratio {r1024}");
        assert!((1.35..1.75).contains(&r4096), "4096 ratio {r4096}");
    }

    #[test]
    fn fig3_ordering_and_convergence() {
        // B ≥ R ≥ F always; the gap shrinks as the table grows (§4.1).
        let gap_at = |div: u64| {
            let wl = Workload::mlperf_default(2048).with_config(DlrmConfig::mlperf(div));
            let b = estimate(Algorithm::DpSgdB, &wl, &spec())
                .expect("fits")
                .breakdown
                .total();
            let r = estimate(Algorithm::DpSgdR, &wl, &spec())
                .expect("fits")
                .breakdown
                .total();
            let f = estimate(Algorithm::DpSgdF, &wl, &spec())
                .expect("fits")
                .breakdown
                .total();
            assert!(b >= r && r >= f, "ordering violated at div {div}");
            b / f
        };
        let gap_small = gap_at(1000); // 96 MB
        let gap_large = gap_at(1); // 96 GB
        assert!(gap_small > 1.5, "visible gap at 96 MB: {gap_small}");
        assert!(gap_large < 1.1, "gap nearly gone at 96 GB: {gap_large}");
    }

    #[test]
    fn fig13a_linear_scaling_and_oom() {
        // DP-SGD(F) scales ∝ table size (68.3/129.2/259.2 at 24/48/96 GB)
        // and OOMs at 192 GB; SGD and LazyDP stay flat and fit.
        let at = |mult: u64, div: u64| -> Workload {
            let mut cfg = DlrmConfig::mlperf(div);
            if mult > 1 {
                cfg = cfg
                    .clone()
                    .with_table_rows(cfg.table_rows.iter().map(|&r| r * mult).collect());
            }
            Workload::mlperf_default(2048).with_config(cfg)
        };
        let f24 = ratio(Algorithm::DpSgdF, &at(1, 4));
        let f48 = ratio(Algorithm::DpSgdF, &at(1, 2));
        let f96 = ratio(Algorithm::DpSgdF, &at(1, 1));
        assert!(
            f48 / f24 > 1.7 && f48 / f24 < 2.2,
            "24→48 doubling: {}",
            f48 / f24
        );
        assert!(
            f96 / f48 > 1.7 && f96 / f48 < 2.2,
            "48→96 doubling: {}",
            f96 / f48
        );
        // 192 GB: eager OOMs, LazyDP and SGD fit.
        let wl192 = at(2, 1);
        assert!(
            estimate(Algorithm::DpSgdF, &wl192, &spec()).is_err(),
            "DP-SGD(F) must OOM"
        );
        assert!(estimate(Algorithm::LazyDp { ans: true }, &wl192, &spec()).is_ok());
        assert!(estimate(Algorithm::Sgd, &wl192, &spec()).is_ok());
        // LazyDP flat across sizes (0.9..2.3 band in the paper).
        let l24 = ratio(Algorithm::LazyDp { ans: true }, &at(1, 4));
        let l96 = ratio(Algorithm::LazyDp { ans: true }, &at(1, 1));
        assert!(
            (l96 - l24).abs() / l24 < 0.25,
            "LazyDP must stay flat: {l24} vs {l96}"
        );
    }

    #[test]
    fn fig13b_pooling_narrows_the_gap() {
        // Fig. 13(b): pooling 30 still gives ≈ 16.7× LazyDP speedup.
        let at = |pool: usize| {
            Workload::mlperf_default(2048).with_config(DlrmConfig::mlperf(1).with_pooling(pool))
        };
        let gap1 =
            ratio(Algorithm::DpSgdF, &at(1)) / ratio(Algorithm::LazyDp { ans: true }, &at(1));
        let gap30 =
            ratio(Algorithm::DpSgdF, &at(30)) / ratio(Algorithm::LazyDp { ans: true }, &at(30));
        assert!(gap30 < gap1, "pooling must narrow the gap");
        assert!(
            (8.0..40.0).contains(&gap30),
            "pool-30 gap {gap30}, expect ≈ 16.7"
        );
        // SGD itself slows with pooling (1.0 → 6.5 at pooling 30).
        let sgd1 = estimate(Algorithm::Sgd, &at(1), &spec())
            .expect("fits")
            .breakdown
            .total();
        let sgd30 = estimate(Algorithm::Sgd, &at(30), &spec())
            .expect("fits")
            .breakdown
            .total();
        let r = sgd30 / sgd1;
        assert!(
            (4.0..9.0).contains(&r),
            "SGD pooling-30 slowdown {r}, expect ≈ 6.5"
        );
    }

    #[test]
    fn fig13c_rmc_ordering() {
        // Fig. 13(c): DP-SGD(F)/SGD ratio is largest for RMC3 (big
        // tables, pooling 1) and smallest for RMC2 (heavy pooling).
        let wl = |cfg: DlrmConfig| Workload::mlperf_default(2048).with_config(cfg);
        let r1 = ratio(Algorithm::DpSgdF, &wl(DlrmConfig::rmc1(1)));
        let r2 = ratio(Algorithm::DpSgdF, &wl(DlrmConfig::rmc2(1)));
        let r3 = ratio(Algorithm::DpSgdF, &wl(DlrmConfig::rmc3(1)));
        assert!(r3 > r1 && r1 > r2, "RMC ordering: r1={r1} r2={r2} r3={r3}");
        // LazyDP stays within a few × of SGD on all three (paper:
        // 3.8/3.8/2.6).
        for cfg in [
            DlrmConfig::rmc1(1),
            DlrmConfig::rmc2(1),
            DlrmConfig::rmc3(1),
        ] {
            let l = ratio(Algorithm::LazyDp { ans: true }, &wl(cfg));
            assert!((1.2..6.0).contains(&l), "LazyDP RMC ratio {l}");
        }
    }

    #[test]
    fn fig13d_skew_helps_lazydp_not_dpsgd() {
        let wl = |skew| Workload::mlperf_default(2048).with_skew(skew);
        let lazy_random = estimate(
            Algorithm::LazyDp { ans: true },
            &wl(SkewLevel::Random),
            &spec(),
        )
        .expect("fits")
        .breakdown
        .total();
        let lazy_high = estimate(
            Algorithm::LazyDp { ans: true },
            &wl(SkewLevel::High),
            &spec(),
        )
        .expect("fits")
        .breakdown
        .total();
        assert!(lazy_high < lazy_random, "skew must shrink LazyDP's work");
        let f_random = estimate(Algorithm::DpSgdF, &wl(SkewLevel::Random), &spec())
            .expect("fits")
            .breakdown
            .total();
        let f_high = estimate(Algorithm::DpSgdF, &wl(SkewLevel::High), &spec())
            .expect("fits")
            .breakdown
            .total();
        assert!(
            (f_high - f_random).abs() / f_random < 0.02,
            "DP-SGD(F) must be skew-insensitive"
        );
    }

    #[test]
    fn fig14_eana_comparison() {
        // Fig. 14: LazyDP within 27–37% of EANA while keeping full DP.
        let wl = Workload::mlperf_default(2048);
        let eana = estimate(Algorithm::Eana, &wl, &spec())
            .expect("fits")
            .breakdown
            .total();
        let lazy = estimate(Algorithm::LazyDp { ans: true }, &wl, &spec())
            .expect("fits")
            .breakdown
            .total();
        let overhead = lazy / eana - 1.0;
        assert!(
            (0.05..0.6).contains(&overhead),
            "LazyDP vs EANA overhead {overhead}, expect ≈ 0.27–0.37"
        );
    }

    #[test]
    fn fig12_energy_ratio_exceeds_time_ratio() {
        // Fig. 12: DP-SGD(F) burns 353× the energy at 259× the time —
        // its average power is higher (AVX-saturated CPU phases).
        let wl = Workload::mlperf_default(2048);
        let sgd = estimate(Algorithm::Sgd, &wl, &spec()).expect("fits");
        let f = estimate(Algorithm::DpSgdF, &wl, &spec()).expect("fits");
        let time_ratio = f.breakdown.total() / sgd.breakdown.total();
        let energy_ratio = f.energy_j / sgd.energy_j;
        assert!(energy_ratio > time_ratio, "{energy_ratio} !> {time_ratio}");
        assert!(
            (1.1..1.7).contains(&(energy_ratio / time_ratio)),
            "power ratio {} (paper ≈ 1.36)",
            energy_ratio / time_ratio
        );
        // LazyDP energy stays within a few × of SGD (paper: 1.8–3.0 vs
        // 0.7–1.5).
        let lazy = estimate(Algorithm::LazyDp { ans: true }, &wl, &spec()).expect("fits");
        let lazy_ratio = lazy.energy_j / sgd.energy_j;
        assert!(
            (1.2..4.5).contains(&lazy_ratio),
            "LazyDP energy ratio {lazy_ratio}"
        );
    }

    #[test]
    fn lazydp_overhead_share_matches_fig11() {
        // Fig. 11: LazyDP's own overhead (dedup + HistoryTable) is ≈ 15%
        // of its end-to-end time, split ≈ 61/22/17.
        let wl = Workload::mlperf_default(2048);
        let lazy = estimate(Algorithm::LazyDp { ans: true }, &wl, &spec()).expect("fits");
        let share = lazy.breakdown.lazydp_overhead() / lazy.breakdown.total();
        assert!(
            (0.05..0.30).contains(&share),
            "overhead share {share}, expect ≈ 0.15"
        );
        let o = &lazy.breakdown;
        let total_oh = o.lazydp_overhead();
        let dedup_share = o.grad_coalesce / total_oh;
        assert!(
            (0.4..0.8).contains(&dedup_share),
            "dedup {dedup_share}, expect ≈ 0.61"
        );
        assert!(
            o.history_read > o.history_write,
            "read+std > write (22% vs 17%)"
        );
    }

    #[test]
    fn noise_reduction_factors_match_section_7_1() {
        // §7.1: LazyDP reduces noise-sampling latency ≈ 1081× and
        // noisy-update latency ≈ 418× vs DP-SGD(F).
        let wl = Workload::mlperf_default(2048);
        let f = estimate(Algorithm::DpSgdF, &wl, &spec())
            .expect("fits")
            .breakdown;
        let l = estimate(Algorithm::LazyDp { ans: true }, &wl, &spec())
            .expect("fits")
            .breakdown;
        let sampling_factor = f.noise_sampling / l.noise_sampling;
        let update_factor = f.noisy_grad_update / l.noisy_grad_update;
        assert!(
            (200.0..5000.0).contains(&sampling_factor),
            "sampling reduction {sampling_factor}, expect O(1000)"
        );
        assert!(
            (100.0..2000.0).contains(&update_factor),
            "update reduction {update_factor}, expect O(400)"
        );
    }

    #[test]
    fn dp_sgd_b_gpu_memory_blows_up_with_batch() {
        // §2.5: B×params per-example grads; at some batch size the HBM
        // capacity model must reject DP-SGD(B) while (F) still fits.
        let wl = Workload::mlperf_default(16_384);
        assert!(estimate(Algorithm::DpSgdB, &wl, &spec()).is_err());
        assert!(estimate(Algorithm::DpSgdF, &wl, &spec()).is_ok());
    }

    #[test]
    fn oom_error_is_informative() {
        let wl = Workload::mlperf_default(2048).with_config({
            let cfg = DlrmConfig::mlperf(1);
            let doubled = cfg.table_rows.iter().map(|&r| r * 2).collect();
            cfg.with_table_rows(doubled)
        });
        let err = estimate(Algorithm::DpSgdF, &wl, &spec()).expect_err("must OOM");
        assert_eq!(err.pool, "CPU DRAM");
        assert!(err.required > err.capacity);
        let msg = err.to_string();
        assert!(msg.contains("out of memory"), "{msg}");
    }
}
