//! Calibrated roofline performance & energy model of the paper's
//! CPU-GPU training system.
//!
//! The paper's evaluation runs on an NVIDIA V100 (32 GB HBM2, 900 GB/s) +
//! Intel Xeon E5-2698v4 (256 GB DDR4, 68 GB/s) testbed (§6) with heavily
//! hand-optimized AVX kernels (§4.2: 8.2× over stock PyTorch, 81% of
//! peak AVX). That hardware is not available to this reproduction, so —
//! per the substitution policy in DESIGN.md — this crate prices each
//! algorithm's per-iteration work with a roofline model
//! (`time = max(flops/peak, bytes/bandwidth)`) parameterized by the
//! paper's published constants.
//!
//! **Why this is trustworthy:** the op counts priced here (Gaussian
//! samples, rows streamed/gathered, GEMM flops) are the *same formulas*
//! the functional optimizers in `lazydp-dpsgd`/`lazydp-core` execute and
//! count via `KernelCounters`; tests in
//! `lazydp-bench` assert both sides agree at small scale. The roofline
//! constants themselves are validated against the paper's quoted
//! micro-measurements (215 GFLOPS at N=101 = 81% of peak; 85.5% of
//! stream bandwidth; noise sampling + noisy update = 83.1% of model
//! update at 96 GB).
//!
//! # Example
//!
//! ```
//! # fn main() -> Result<(), lazydp_sysmodel::OomError> {
//! use lazydp_sysmodel::{estimate, Algorithm, SystemSpec, Workload};
//!
//! let spec = SystemSpec::paper_default();
//! let wl = Workload::mlperf_default(2048);
//! let sgd = estimate(Algorithm::Sgd, &wl, &spec)?;
//! let dpf = estimate(Algorithm::DpSgdF, &wl, &spec)?;
//! let speed_ratio = dpf.breakdown.total() / sgd.breakdown.total();
//! assert!(speed_ratio > 100.0, "DP-SGD(F) is two orders slower at 96 GB");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod breakdown;
pub mod kernels;
pub mod spec;
pub mod workload;

pub use algorithms::{estimate, Algorithm, IterationEstimate, OomError};
pub use breakdown::StageBreakdown;
pub use kernels::effective_avx_gflops;
pub use spec::{CpuSpec, GpuSpec, LinkSpec, PowerSpec, SystemSpec};
pub use workload::Workload;
