//! Per-iteration stage breakdown — the unit every figure is built from.

/// Seconds spent in each stage of one training iteration, following the
/// stage taxonomy of the paper's figures (Fig. 3 for end-to-end bars,
//  Fig. 5 for the model-update sub-stages, Fig. 11 for LazyDP).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StageBreakdown {
    /// Forward propagation (embedding gather + MLP GEMMs + PCIe in).
    pub fwd: f64,
    /// Per-example gradient work (DP-SGD(B/R)'s materialization or the
    /// ghost-norm pass of (F)/EANA/LazyDP).
    pub bwd_per_example: f64,
    /// Per-batch gradient derivation (standard or reweighted backward).
    pub bwd_per_batch: f64,
    /// Gradient coalescing / next-batch index dedup (Fig. 11).
    pub grad_coalesce: f64,
    /// Gaussian noise sampling (compute-bound, §4.3).
    pub noise_sampling: f64,
    /// Noisy-gradient generation (merging noise and gradient).
    pub noisy_grad_gen: f64,
    /// Noisy-gradient update (the table-write stream / scatter).
    pub noisy_grad_update: f64,
    /// HistoryTable reads + ANS std-dev derivation (LazyDP only).
    pub history_read: f64,
    /// HistoryTable writes (LazyDP only).
    pub history_write: f64,
    /// Everything else (framework overhead, host per-sample work,
    /// losses, optimizer bookkeeping).
    pub other: f64,
}

impl StageBreakdown {
    /// Total iteration time.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.fwd
            + self.bwd_per_example
            + self.bwd_per_batch
            + self.grad_coalesce
            + self.noise_sampling
            + self.noisy_grad_gen
            + self.noisy_grad_update
            + self.history_read
            + self.history_write
            + self.other
    }

    /// The model-update stage as Fig. 3/Fig. 5 define it: everything
    /// after gradient derivation.
    #[must_use]
    pub fn model_update(&self) -> f64 {
        self.grad_coalesce
            + self.noise_sampling
            + self.noisy_grad_gen
            + self.noisy_grad_update
            + self.history_read
            + self.history_write
    }

    /// LazyDP's pure overhead (Fig. 11, blue bar): dedup + HistoryTable
    /// maintenance.
    #[must_use]
    pub fn lazydp_overhead(&self) -> f64 {
        self.grad_coalesce + self.history_read + self.history_write
    }

    /// `(label, seconds)` pairs for rendering, in display order.
    #[must_use]
    pub fn labeled(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("fwd", self.fwd),
            ("bwd_per_example", self.bwd_per_example),
            ("bwd_per_batch", self.bwd_per_batch),
            ("grad_coalesce", self.grad_coalesce),
            ("noise_sampling", self.noise_sampling),
            ("noisy_grad_gen", self.noisy_grad_gen),
            ("noisy_grad_update", self.noisy_grad_update),
            ("history_read", self.history_read),
            ("history_write", self.history_write),
            ("other", self.other),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StageBreakdown {
        StageBreakdown {
            fwd: 1.0,
            bwd_per_example: 2.0,
            bwd_per_batch: 3.0,
            grad_coalesce: 0.5,
            noise_sampling: 4.0,
            noisy_grad_gen: 0.25,
            noisy_grad_update: 1.25,
            history_read: 0.1,
            history_write: 0.05,
            other: 0.35,
        }
    }

    #[test]
    fn totals_add_up() {
        let b = sample();
        assert!((b.total() - 12.5).abs() < 1e-12);
        assert!((b.model_update() - 6.15).abs() < 1e-12);
        assert!((b.lazydp_overhead() - 0.65).abs() < 1e-12);
    }

    #[test]
    fn labeled_covers_all_fields() {
        let b = sample();
        let sum: f64 = b.labeled().iter().map(|(_, v)| v).sum();
        assert!(
            (sum - b.total()).abs() < 1e-12,
            "labels must cover every field"
        );
        assert_eq!(b.labeled().len(), 10);
    }
}
