//! Roofline pricing of the primitive kernels.
//!
//! Each function returns seconds for one kernel invocation under a
//! [`SystemSpec`]. The central abstraction is the paper's own
//! microbenchmark (§4.3, Fig. 6): a kernel that loads a vector, performs
//! `N` AVX compute instructions on it, and stores it back runs at
//! `time = max(compute, memory)` — compute-bound for large `N` (noise
//! sampling, N = 101), memory-bound for small `N` (noisy gradient
//! update, N = 2).

use crate::spec::SystemSpec;

/// AVX compute instructions per 8-wide vector for Box–Muller noise
/// sampling (paper §4.3). Kept numerically identical to
/// `lazydp_rng::gaussian::BOX_MULLER_AVX_OPS_PER_VECTOR`; a cross-crate
/// test in `lazydp-bench` asserts they match.
pub const NOISE_SAMPLING_AVX_OPS: u32 = 101;

/// AVX compute instructions per element for the noisy-gradient update
/// stream (§4.3: multiply by learning rate, add to weight).
pub const UPDATE_AVX_OPS: u32 = 2;

/// Time of a streaming kernel over `elements` f32 values performing
/// `flops_per_elem` compute per element and moving `bytes_per_elem`
/// to/from DRAM.
#[must_use]
pub fn stream_time(
    spec: &SystemSpec,
    elements: u64,
    flops_per_elem: u32,
    bytes_per_elem: u32,
) -> f64 {
    let e = elements as f64;
    let compute = e * f64::from(flops_per_elem) / spec.avx_eff_flops();
    let memory = e * f64::from(bytes_per_elem) / spec.stream_bw();
    compute.max(memory)
}

/// Time to draw `count` Gaussian samples with the Box–Muller kernel:
/// `N = 101` compute ops per element, 8 bytes of traffic per element
/// (RNG state in, sample out). Strongly compute-bound (Fig. 6).
#[must_use]
pub fn gaussian_time(spec: &SystemSpec, count: u64) -> f64 {
    stream_time(spec, count, NOISE_SAMPLING_AVX_OPS, 8)
}

/// Time of the dense noisy-gradient update over `elements` weights:
/// read noisy gradient + read weight + write weight = 12 B/element,
/// 2 flops/element. Memory-bound (§4.3).
#[must_use]
pub fn dense_update_time(spec: &SystemSpec, elements: u64) -> f64 {
    stream_time(spec, elements, UPDATE_AVX_OPS, 12)
}

/// Time to randomly gather (or scatter) `rows` rows of `row_bytes`
/// bytes each — row-granular accesses at the degraded random-access
/// bandwidth.
#[must_use]
pub fn gather_time(spec: &SystemSpec, rows: u64, row_bytes: u64) -> f64 {
    (rows as f64) * (row_bytes as f64) / spec.gather_bw()
}

/// Read-modify-write scatter of `rows` rows (twice the traffic of a
/// gather).
#[must_use]
pub fn scatter_time(spec: &SystemSpec, rows: u64, row_bytes: u64) -> f64 {
    2.0 * gather_time(spec, rows, row_bytes)
}

/// Time of a GEMM with `flops` floating-point operations on the GPU.
#[must_use]
pub fn gemm_time(spec: &SystemSpec, flops: u64) -> f64 {
    (flops as f64) / spec.gemm_flops()
}

/// Time to move `bytes` across PCIe.
#[must_use]
pub fn pcie_time(spec: &SystemSpec, bytes: u64) -> f64 {
    (bytes as f64) / spec.pcie_bw()
}

/// The Fig. 6 microbenchmark curve: effective AVX throughput (GFLOPS)
/// when performing `n_ops` AVX compute instructions per loaded+stored
/// 8-float vector.
///
/// Rises linearly while memory-bound, then saturates at the effective
/// AVX peak. Noise sampling sits at `n_ops = 101` (compute-bound, ≈ 215
/// GFLOPS); the update kernel at `n_ops = 2` (memory-bound).
#[must_use]
pub fn effective_avx_gflops(spec: &SystemSpec, n_ops: u32) -> f64 {
    if n_ops == 0 {
        return 0.0;
    }
    // Per the paper's counting, one AVX instruction over 8 lanes = 8
    // flops; the microbenchmark loads and stores one 32-byte vector.
    let flops_per_vector = f64::from(n_ops) * 8.0;
    let bytes_per_vector = 64.0; // 32 B load + 32 B store
    let compute = flops_per_vector / spec.avx_eff_flops();
    let memory = bytes_per_vector / spec.stream_bw();
    let time = compute.max(memory);
    flops_per_vector / time / 1e9
}

/// Lookup count up to which dedup pays the dispatch-heavy first-tier
/// rate; beyond it the amortized bulk rate applies.
pub const DEDUP_TIER_LOOKUPS: u64 = 100_000;

/// Sorting/deduplication cost for `lookups` indices (`torch.unique`
/// style): dispatch-heavy up to [`DEDUP_TIER_LOOKUPS`], amortized
/// hash/radix cost beyond (both calibrated — see `HostSpec`).
#[must_use]
pub fn dedup_time(spec: &SystemSpec, lookups: u64) -> f64 {
    let tier1 = lookups.min(DEDUP_TIER_LOOKUPS) as f64;
    let bulk = lookups.saturating_sub(DEDUP_TIER_LOOKUPS) as f64;
    tier1 * spec.host.dedup_per_lookup_s + bulk * spec.host.dedup_per_lookup_bulk_s
}

/// HistoryTable maintenance for `unique_rows` rows: read + ANS std-dev
/// derivation, then write-back (calibrated per-row costs).
#[must_use]
pub fn history_time(spec: &SystemSpec, unique_rows: u64) -> (f64, f64) {
    (
        (unique_rows as f64) * spec.host.history_read_per_row_s,
        (unique_rows as f64) * spec.host.history_write_per_row_s,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SystemSpec;

    #[test]
    fn noise_sampling_is_compute_bound_at_paper_rate() {
        let s = SystemSpec::paper_default();
        // §4.3: noise sampling achieves ≈ 215 GFLOPS (81% of peak).
        let g = effective_avx_gflops(&s, NOISE_SAMPLING_AVX_OPS);
        assert!((g - 214.65).abs() < 2.0, "N=101 effective {g} GFLOPS");
        // Per-element time dominated by compute:
        let t = gaussian_time(&s, 1_000_000);
        let compute_only = 1e6 * 101.0 / s.avx_eff_flops();
        assert!((t - compute_only).abs() / compute_only < 1e-9);
    }

    #[test]
    fn update_kernel_is_memory_bound() {
        let s = SystemSpec::paper_default();
        let t = dense_update_time(&s, 1_000_000);
        let memory_only = 1e6 * 12.0 / s.stream_bw();
        assert!((t - memory_only).abs() / memory_only < 1e-9);
        // §4.3: at N = 2 the kernel reaches only a sliver of AVX peak.
        let g = effective_avx_gflops(&s, UPDATE_AVX_OPS);
        assert!(g < 30.0, "N=2 effective {g} GFLOPS must be memory-bound");
    }

    #[test]
    fn fig6_curve_shape() {
        let s = SystemSpec::paper_default();
        // Monotone non-decreasing, linear ramp then plateau.
        let mut prev = 0.0;
        for n in 0..=124u32 {
            let g = effective_avx_gflops(&s, n);
            assert!(g + 1e-9 >= prev, "curve must be non-decreasing at N={n}");
            prev = g;
        }
        // Plateau = effective peak.
        let plateau = effective_avx_gflops(&s, 124);
        assert!((plateau - s.avx_eff_flops() / 1e9).abs() < 1.0);
        // Ramp region: N=1 throughput set by memory.
        let ramp = effective_avx_gflops(&s, 1);
        assert!((ramp - 8.0 / (64.0 / s.stream_bw()) / 1e9).abs() < 0.5);
    }

    #[test]
    fn paper_96gb_model_update_fractions() {
        // §4.2: at the default 96 GB model, noise sampling + noisy
        // gradient update = 83.1% of the model-update stage (the rest
        // being noisy-gradient generation and bookkeeping).
        let s = SystemSpec::paper_default();
        let elements: u64 = 187_727_727 * 128; // ≈ the 26 Criteo tables × dim
        let sampling = gaussian_time(&s, elements);
        let gen = stream_time(&s, elements, 1, 8);
        let update = dense_update_time(&s, elements);
        let frac = (sampling + update) / (sampling + gen + update);
        assert!((frac - 0.831).abs() < 0.01, "fraction {frac}");
        // And sampling alone dominates (the compute wall).
        assert!(sampling > update && update > gen);
    }

    #[test]
    fn gather_slower_than_stream_per_byte() {
        let s = SystemSpec::paper_default();
        let bytes = 512u64 * 1000;
        let g = gather_time(&s, 1000, 512);
        let st = stream_time(&s, bytes / 4, 0, 4);
        assert!(g > st, "random rows must cost more than streaming");
        assert!(scatter_time(&s, 1000, 512) > g);
    }

    #[test]
    fn gemm_and_pcie_scale_linearly() {
        let s = SystemSpec::paper_default();
        assert!((gemm_time(&s, 2_000_000) / gemm_time(&s, 1_000_000) - 2.0).abs() < 1e-9);
        assert!((pcie_time(&s, 2_000_000) / pcie_time(&s, 1_000_000) - 2.0).abs() < 1e-9);
    }
}
