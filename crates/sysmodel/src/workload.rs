//! Workload description: model configuration + batch + access skew.

use lazydp_data::trace::{expected_unique_uniform, expected_unique_zipf, zipf_exponent_for_skew};
use lazydp_data::SkewLevel;
use lazydp_model::DlrmConfig;

/// One evaluation point: a DLRM configuration trained at a batch size
/// over a trace with the given skew.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// The (paper-scale) model configuration.
    pub config: DlrmConfig,
    /// Mini-batch size.
    pub batch: usize,
    /// Table-access skew (§6 default: uniform/"Random").
    pub skew: SkewLevel,
}

impl Workload {
    /// The paper's default workload: full-scale MLPerf DLRM (96 GB),
    /// uniform trace.
    #[must_use]
    pub fn mlperf_default(batch: usize) -> Self {
        Self {
            config: DlrmConfig::mlperf(1),
            batch,
            skew: SkewLevel::Random,
        }
    }

    /// Replaces the model configuration.
    #[must_use]
    pub fn with_config(mut self, config: DlrmConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the skew level (Fig. 13(d)).
    #[must_use]
    pub fn with_skew(mut self, skew: SkewLevel) -> Self {
        self.skew = skew;
        self
    }

    /// Lookups per table per iteration (`batch × pooling`).
    #[must_use]
    pub fn lookups_per_table(&self) -> u64 {
        self.batch as u64 * self.config.pooling as u64
    }

    /// Total lookups per iteration across tables.
    #[must_use]
    pub fn total_lookups(&self) -> u64 {
        self.lookups_per_table() * self.config.num_tables() as u64
    }

    /// Expected number of *distinct* rows gathered from table `t` in one
    /// iteration — the quantity that sets LazyDP's and EANA's noise and
    /// scatter work (paper §5.1).
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    #[must_use]
    pub fn expected_unique_rows(&self, t: usize) -> f64 {
        let rows = self.config.table_rows[t];
        let draws = self.lookups_per_table();
        match self.skew.target() {
            None => expected_unique_uniform(rows, draws),
            Some((fraction, mass)) => {
                let s = cached_zipf_exponent(rows, fraction, mass);
                expected_unique_zipf(rows, s, draws)
            }
        }
    }

    /// Expected distinct rows per iteration summed over tables.
    #[must_use]
    pub fn total_expected_unique(&self) -> f64 {
        (0..self.config.num_tables())
            .map(|t| self.expected_unique_rows(t))
            .sum()
    }

    /// Bytes of one embedding row.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.config.embedding_dim as u64 * 4
    }

    /// GEMM flops of one *forward* pass (bottom MLP + top MLP +
    /// interaction), `2·B·Σ in×out`.
    #[must_use]
    pub fn forward_gemm_flops(&self) -> u64 {
        let b = self.batch as u64;
        let mut flops = 0u64;
        let mut prev = self.config.num_dense as u64;
        for &w in &self.config.bottom_layers {
            flops += 2 * b * prev * w as u64;
            prev = w as u64;
        }
        let mut prev = self.config.top_input_dim() as u64;
        for &w in &self.config.top_layers {
            flops += 2 * b * prev * w as u64;
            prev = w as u64;
        }
        // Dot interaction: (T+1)T/2 pairwise dots of dim-length vectors.
        let n = self.config.num_tables() as u64 + 1;
        flops += 2 * b * (n * (n - 1) / 2) * self.config.embedding_dim as u64;
        flops
    }

    /// PCIe bytes per direction per iteration: the pooled embedding
    /// vectors (one per table per sample) plus dense features/grads.
    #[must_use]
    pub fn pcie_bytes_one_way(&self) -> u64 {
        let b = self.batch as u64;
        b * self.config.num_tables() as u64 * self.row_bytes()
            + b * self.config.num_dense as u64 * 4
    }

    /// Total embedding elements (`total_rows × dim`) — the dense noisy
    /// update's working set.
    #[must_use]
    pub fn embedding_elements(&self) -> u64 {
        self.config.embedding_params()
    }

    /// Total MLP parameters.
    #[must_use]
    pub fn mlp_params(&self) -> u64 {
        self.config.mlp_params()
    }
}

/// Memoized wrapper around the (expensive) Zipf skew-calibration solver:
/// sweeps over the 26 Criteo tables re-solve identical instances many
/// times.
fn cached_zipf_exponent(rows: u64, fraction: f64, mass: f64) -> f64 {
    use std::collections::BTreeMap;
    use std::sync::{Mutex, OnceLock};
    type ZipfCache = Mutex<BTreeMap<(u64, u64, u64), f64>>;
    static CACHE: OnceLock<ZipfCache> = OnceLock::new();
    let key = (rows, fraction.to_bits(), mass.to_bits());
    let cache = CACHE.get_or_init(|| Mutex::new(BTreeMap::new()));
    if let Some(&v) = cache.lock().expect("cache lock").get(&key) {
        return v;
    }
    let v = zipf_exponent_for_skew(rows, fraction, mass);
    cache.lock().expect("cache lock").insert(key, v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_exponent_cache_is_consistent() {
        let a = cached_zipf_exponent(100_000, 0.1, 0.9);
        let b = cached_zipf_exponent(100_000, 0.1, 0.9);
        assert_eq!(a, b);
        assert!((a - zipf_exponent_for_skew(100_000, 0.1, 0.9)).abs() < 1e-12);
    }

    #[test]
    fn default_workload_dimensions() {
        let wl = Workload::mlperf_default(2048);
        assert_eq!(wl.lookups_per_table(), 2048);
        assert_eq!(wl.total_lookups(), 2048 * 26);
        assert_eq!(wl.row_bytes(), 512);
        // ≈ 24 G elements for the 96 GB model.
        assert!(wl.embedding_elements() > 20_000_000_000);
    }

    #[test]
    fn unique_rows_capped_by_lookups_and_table() {
        let wl = Workload::mlperf_default(2048);
        for t in 0..wl.config.num_tables() {
            let u = wl.expected_unique_rows(t);
            assert!(u <= wl.lookups_per_table() as f64 + 1e-9);
            assert!(u <= wl.config.table_rows[t] as f64 + 1e-9);
            assert!(u > 0.0);
        }
        // The tiny 3-row table saturates at 3 unique rows.
        let t3 = wl
            .config
            .table_rows
            .iter()
            .position(|&r| r == 3)
            .expect("criteo has a 3-row table");
        assert!((wl.expected_unique_rows(t3) - 3.0).abs() < 0.01);
    }

    #[test]
    fn skew_reduces_unique_rows() {
        let base = Workload::mlperf_default(4096);
        let mut prev = f64::INFINITY;
        for skew in SkewLevel::all() {
            let wl = base.clone().with_skew(skew);
            let u = wl.total_expected_unique();
            assert!(u < prev, "{skew:?}: {u} !< {prev}");
            prev = u;
        }
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn forward_flops_match_hand_count_for_tiny_config() {
        let cfg = DlrmConfig::tiny(2, 10, 8); // bottom 13→16→8, top in 8+3=11 →16→1
        let wl = Workload {
            config: cfg,
            batch: 4,
            skew: SkewLevel::Random,
        };
        let expect = 2 * 4 * (13 * 16 + 16 * 8) + 2 * 4 * (11 * 16 + 16 * 1) + 2 * 4 * 3 * 8;
        assert_eq!(wl.forward_gemm_flops(), expect as u64);
    }

    #[test]
    fn pcie_scales_with_batch_not_pooling() {
        let a = Workload::mlperf_default(1024);
        let b = Workload::mlperf_default(2048);
        assert_eq!(b.pcie_bytes_one_way(), 2 * a.pcie_bytes_one_way());
        let pooled = Workload {
            config: DlrmConfig::mlperf(1).with_pooling(30),
            batch: 1024,
            skew: SkewLevel::Random,
        };
        assert_eq!(pooled.pcie_bytes_one_way(), a.pcie_bytes_one_way());
    }
}
