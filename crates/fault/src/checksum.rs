//! FNV-1a 64-bit checksums — the integrity primitive shared by the
//! spill file's per-page trailers (`lazydp_store`) and the checkpoint
//! payload/manifest (`lazydp_core`).
//!
//! FNV-1a is not cryptographic; the threat model here is torn writes
//! and bit rot, not an adversary forging pages. It is byte-order
//! independent (defined over the little-endian byte stream both users
//! already emit), dependency-free, and fast enough to disappear next
//! to the I/O it guards.

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` in one call.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Incremental FNV-1a, for hashing a stream while it is written/read.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a64(u64);

impl Fnv1a64 {
    /// A fresh hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// The digest so far (the hasher remains usable).
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }

    #[test]
    fn single_byte_flips_change_the_digest() {
        let base = fnv1a64(&[0u8; 64]);
        for i in 0..64 {
            let mut buf = [0u8; 64];
            buf[i] = 1;
            assert_ne!(fnv1a64(&buf), base, "flip at {i} must be detected");
        }
    }
}
