//! Deterministic, seeded fault injection for the LazyDP stack.
//!
//! A long DP training job that dies on a transient spill-device error
//! loses work that has already spent irrevocable privacy budget. This
//! crate is how the workspace *proves* it survives such failures: the
//! storage engine (`lazydp_store`) and the checkpoint path
//! (`lazydp_core`) consult an installed [`FaultPlan`] at well-known
//! injection **sites**, and the plan decides — as a pure function of
//! `(seed, site, operation ordinal)` — whether that operation fails,
//! and how. The same plan therefore reproduces the identical failure
//! sequence on every run, which is what makes the kill-and-resume
//! recovery harness (`tests/crash_recovery.rs`) and the CI fault leg
//! deterministic.
//!
//! # Fault kinds
//!
//! * [`FaultKind::Transient`] — the operation fails once; the caller's
//!   bounded retry (see [`with_retry`]) re-executes it under a new
//!   ordinal, which succeeds unless the plan fails that one too.
//! * [`FaultKind::Persistent`] — with an `@N` trigger, the site fails at
//!   ordinal `N` **and every ordinal after it**: the device is gone.
//!   Retries exhaust and the storage engine degrades to its resident
//!   backend (bitwise-identical by the `EmbeddingStorage` contract).
//! * [`FaultKind::Corrupt`] — at a write site, the payload is corrupted
//!   *after* its checksum is computed, simulating a torn page the next
//!   read must detect by checksum rather than silently train on.
//! * [`FaultKind::Kill`] — the process "crashes": a panic with the
//!   distinctive [`InjectedKill`] payload unwinds the training loop, to
//!   be caught by a recovery harness that then resumes from the
//!   last-good checkpoint.
//!
//! # Ordinals are per call-site owner, not global
//!
//! Each injecting object (a `PageFile`, a `CheckpointStore`, an
//! optimizer) counts its **own** operations and passes the count as the
//! ordinal. Two runs that construct the same objects and perform the
//! same schedule therefore see the same `(site, ordinal)` stream — no
//! global counter races across unrelated tables or tests. (Concurrent
//! accessors of one object interleave their schedules, which can shift
//! which operation a *rate* rule hits; values stay exact because every
//! injected failure is retried or recovered, never absorbed into row
//! data.)
//!
//! # The `LAZYDP_FAULTS` environment knob
//!
//! ```text
//! LAZYDP_FAULTS=<seed>:<rule>,<rule>,...
//!     rule := <site>@<ordinal>=<kind>      fire at exactly that ordinal
//!           | <site>*<rate>=<kind>         fire pseudo-randomly at that rate
//!     site := page.read | page.write | ckpt.write | ckpt.sync
//!           | ckpt.rename | step | flush | checkpoint
//!     kind := transient | persistent | corrupt | kill
//! ```
//!
//! Example: `LAZYDP_FAULTS=7:page.read*0.01=transient,page.write*0.01=transient`
//! makes ~1% of spill-file I/O fail transiently — the whole test suite
//! must still pass bitwise (CI's fault leg). Unset, empty, or `off`
//! disables injection; a programmatic [`install`] overrides the
//! environment until [`clear`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// A named injection point. Every site is owned by one layer of the
/// stack; the owner counts its own operations and passes the ordinal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Site {
    /// `page.read` — a spill-file page read (`PageFile::read_page`).
    PageRead,
    /// `page.write` — a spill-file page write (`PageFile::write_page`).
    PageWrite,
    /// `ckpt.write` — writing checkpoint bytes to the temp file.
    CkptWrite,
    /// `ckpt.sync` — `sync_all` on the checkpoint temp file.
    CkptSync,
    /// `ckpt.rename` — the atomic rename publishing a checkpoint.
    CkptRename,
    /// `step` — a kill point inside the optimizer step, after the
    /// lookahead flush but before the sparse updates land.
    MidStep,
    /// `flush` — a kill point inside the sharded pending-noise flush
    /// (runs on the overlap worker when overlap is active).
    MidFlush,
    /// `checkpoint` — a kill point between writing a checkpoint's temp
    /// file and publishing it (rename + manifest update).
    MidCheckpoint,
}

/// All sites, for spec parsing and diagnostics.
pub const SITES: [Site; 8] = [
    Site::PageRead,
    Site::PageWrite,
    Site::CkptWrite,
    Site::CkptSync,
    Site::CkptRename,
    Site::MidStep,
    Site::MidFlush,
    Site::MidCheckpoint,
];

impl Site {
    /// The spec-string spelling of the site.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Site::PageRead => "page.read",
            Site::PageWrite => "page.write",
            Site::CkptWrite => "ckpt.write",
            Site::CkptSync => "ckpt.sync",
            Site::CkptRename => "ckpt.rename",
            Site::MidStep => "step",
            Site::MidFlush => "flush",
            Site::MidCheckpoint => "checkpoint",
        }
    }

    fn from_name(s: &str) -> Option<Self> {
        SITES.iter().copied().find(|site| site.name() == s)
    }

    /// A per-site salt decorrelating rate decisions across sites.
    fn salt(self) -> u64 {
        match self {
            Site::PageRead => 0x9e37_79b9_7f4a_7c15,
            Site::PageWrite => 0xbf58_476d_1ce4_e5b9,
            Site::CkptWrite => 0x94d0_49bb_1331_11eb,
            Site::CkptSync => 0x2545_f491_4f6c_dd1d,
            Site::CkptRename => 0xd6e8_feb8_6659_fd93,
            Site::MidStep => 0xa24b_aed4_963e_e407,
            Site::MidFlush => 0x9fb2_1c65_1e98_df25,
            Site::MidCheckpoint => 0x3c79_ac49_2ba7_b653,
        }
    }
}

impl std::fmt::Display for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What an injected fault does to the operation it hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail this one operation; a retry (new ordinal) succeeds.
    Transient,
    /// Fail this and (with an `@N` trigger) every later operation at
    /// the site — the device is gone for good.
    Persistent,
    /// Corrupt the payload after its checksum is computed (write sites;
    /// elsewhere it degenerates to a transient failure).
    Corrupt,
    /// Panic with an [`InjectedKill`] payload — the in-process stand-in
    /// for `kill -9` that a recovery harness catches.
    Kill,
}

impl FaultKind {
    fn from_name(s: &str) -> Option<Self> {
        match s {
            "transient" => Some(Self::Transient),
            "persistent" => Some(Self::Persistent),
            "corrupt" => Some(Self::Corrupt),
            "kill" => Some(Self::Kill),
            _ => None,
        }
    }
}

/// When a rule fires.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Trigger {
    /// Exactly ordinal `n` (every ordinal `>= n` for `Persistent`).
    At(u64),
    /// Pseudo-randomly with this probability per operation, decided by
    /// `hash(seed, site, ordinal)` — deterministic for a fixed plan.
    Rate(f64),
}

/// One parsed rule: fire `kind` at `site` when `trigger` matches.
#[derive(Debug, Clone, PartialEq)]
struct FaultRule {
    site: Site,
    trigger: Trigger,
    kind: FaultKind,
}

/// A deterministic failure schedule: a seed plus a list of rules.
///
/// Build one programmatically with [`FaultPlan::new`] + [`FaultPlan::rule`],
/// or parse the `LAZYDP_FAULTS` spec with [`FaultPlan::parse`]. Install
/// process-wide with [`install`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given rate-decision seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds "fire `kind` at exactly ordinal `n` of `site`" (every
    /// ordinal `>= n` when `kind` is [`FaultKind::Persistent`]).
    #[must_use]
    pub fn rule(mut self, site: Site, n: u64, kind: FaultKind) -> Self {
        self.rules.push(FaultRule {
            site,
            trigger: Trigger::At(n),
            kind,
        });
        self
    }

    /// Adds "fire `kind` at `site` with probability `rate` per
    /// operation" (decided deterministically from the plan seed).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= rate <= 1.0`.
    #[must_use]
    pub fn rate_rule(mut self, site: Site, rate: f64, kind: FaultKind) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of [0,1]");
        self.rules.push(FaultRule {
            site,
            trigger: Trigger::Rate(rate),
            kind,
        });
        self
    }

    /// True when the plan has no rules.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Parses the `LAZYDP_FAULTS` spec: `<seed>:<rule>,<rule>,...` (see
    /// the crate docs for the rule grammar). An empty rule list is
    /// valid and injects nothing.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed component.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (seed_s, rules_s) = spec
            .split_once(':')
            .ok_or_else(|| format!("missing ':' in fault spec {spec:?}"))?;
        let seed = seed_s
            .trim()
            .parse::<u64>()
            .map_err(|e| format!("bad fault seed {seed_s:?}: {e}"))?;
        let mut plan = FaultPlan::new(seed);
        for rule in rules_s.split(',').map(str::trim).filter(|r| !r.is_empty()) {
            let (lhs, kind_s) = rule
                .split_once('=')
                .ok_or_else(|| format!("missing '=' in fault rule {rule:?}"))?;
            let kind = FaultKind::from_name(kind_s.trim())
                .ok_or_else(|| format!("unknown fault kind {kind_s:?}"))?;
            let (site_s, trigger) = if let Some((s, n)) = lhs.split_once('@') {
                let n = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|e| format!("bad ordinal {n:?}: {e}"))?;
                (s, Trigger::At(n))
            } else if let Some((s, p)) = lhs.split_once('*') {
                let p = p
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| format!("bad rate {p:?}: {e}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("rate {p} out of [0,1]"));
                }
                (s, Trigger::Rate(p))
            } else {
                return Err(format!("rule {rule:?} needs '@<ordinal>' or '*<rate>'"));
            };
            let site = Site::from_name(site_s.trim())
                .ok_or_else(|| format!("unknown fault site {site_s:?}"))?;
            plan.rules.push(FaultRule {
                site,
                trigger,
                kind,
            });
        }
        Ok(plan)
    }

    /// Whether (and how) operation `ordinal` at `site` fails under this
    /// plan — a pure function, so a fixed plan yields a fixed failure
    /// sequence. First matching rule wins.
    #[must_use]
    pub fn decide(&self, site: Site, ordinal: u64) -> Option<FaultKind> {
        self.rules.iter().find_map(|r| {
            if r.site != site {
                return None;
            }
            let hit = match r.trigger {
                Trigger::At(n) => {
                    if r.kind == FaultKind::Persistent {
                        ordinal >= n
                    } else {
                        ordinal == n
                    }
                }
                Trigger::Rate(p) => unit_hash(self.seed, site, ordinal) < p,
            };
            hit.then_some(r.kind)
        })
    }
}

/// splitmix64-style mix of `(seed, site, ordinal)` into `[0, 1)`.
fn unit_hash(seed: u64, site: Site, ordinal: u64) -> f64 {
    let mut z = seed ^ site.salt() ^ ordinal.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    // Top 53 bits → an exactly representable f64 in [0, 1).
    (z >> 11) as f64 / (1u64 << 53) as f64
}

// ---------- process-wide plan ---------------------------------------------

/// Plan state: not yet resolved from the environment.
const STATE_UNRESOLVED: u8 = u8::MAX;
/// Plan state: no injection (fast path — one relaxed load per site).
const STATE_OFF: u8 = 0;
/// Plan state: a plan is active; consult it under the lock.
const STATE_ON: u8 = 1;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNRESOLVED);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

fn plan_lock() -> MutexGuard<'static, Option<Arc<FaultPlan>>> {
    // A panicking holder cannot leave a torn plan: the guarded value is
    // a single Arc swap.
    PLAN.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Installs `plan` process-wide, overriding `LAZYDP_FAULTS` until
/// [`clear`] is called.
pub fn install(plan: FaultPlan) {
    let state = if plan.is_empty() { STATE_OFF } else { STATE_ON };
    *plan_lock() = Some(Arc::new(plan));
    STATE.store(state, Ordering::Release);
}

/// Removes any installed plan and re-arms resolution from the
/// `LAZYDP_FAULTS` environment variable (so a test that installs a plan
/// hands the environment's plan back to the rest of the process).
pub fn clear() {
    *plan_lock() = None;
    STATE.store(STATE_UNRESOLVED, Ordering::Release);
}

#[cold]
fn resolve_env() -> u8 {
    let mut guard = plan_lock();
    // Another thread may have resolved or installed while we waited.
    let state = STATE.load(Ordering::Acquire);
    if state != STATE_UNRESOLVED {
        return state;
    }
    let plan = match std::env::var("LAZYDP_FAULTS") {
        Ok(s) if !s.trim().is_empty() && s.trim() != "off" && s.trim() != "0" => {
            match FaultPlan::parse(&s) {
                Ok(p) => p,
                // A misconfigured injection plan must not be silently
                // ignored — the CI leg depends on it being active.
                Err(e) => panic!("invalid LAZYDP_FAULTS: {e}"),
            }
        }
        _ => FaultPlan::default(),
    };
    let state = if plan.is_empty() { STATE_OFF } else { STATE_ON };
    *guard = Some(Arc::new(plan));
    STATE.store(state, Ordering::Release);
    state
}

/// True when a non-empty plan is active (env or installed).
#[must_use]
pub fn active() -> bool {
    let mut state = STATE.load(Ordering::Acquire);
    if state == STATE_UNRESOLVED {
        state = resolve_env();
    }
    state == STATE_ON
}

/// Whether operation `ordinal` at `site` fails under the active plan.
/// The disabled fast path is one relaxed atomic load; fired faults are
/// counted in the `fault.injected` obs metric.
#[must_use]
pub fn decide(site: Site, ordinal: u64) -> Option<FaultKind> {
    if !active() {
        return None;
    }
    let plan = plan_lock().clone()?;
    let kind = plan.decide(site, ordinal)?;
    lazydp_obs::metrics().fault.injected.incr();
    Some(kind)
}

/// The panic payload of an injected kill — the in-process stand-in for
/// `kill -9`. Recovery harnesses downcast `catch_unwind`'s payload to
/// this type to tell an injected crash from a real bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedKill {
    /// The site that fired.
    pub site: Site,
    /// The operation ordinal that fired.
    pub ordinal: u64,
}

impl std::fmt::Display for InjectedKill {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected kill at {}#{}", self.site, self.ordinal)
    }
}

/// A kill point: panics with an [`InjectedKill`] payload when the
/// active plan fires **any** kind at `(site, ordinal)` (kill sites have
/// no payload to corrupt or retry, so every kind means "die here").
/// No-op otherwise.
///
/// # Panics
///
/// Panics (by design) when the plan fires.
pub fn point(site: Site, ordinal: u64) {
    if decide(site, ordinal).is_some() {
        std::panic::panic_any(InjectedKill { site, ordinal });
    }
}

/// Builds the `io::Error` representing an injected storage fault.
/// Transient faults map to [`std::io::ErrorKind::Interrupted`] —
/// the conventional "try again" kind — everything else to
/// [`std::io::ErrorKind::Other`].
#[must_use]
pub fn injected_io_error(kind: FaultKind, site: Site, ordinal: u64) -> std::io::Error {
    let ek = match kind {
        FaultKind::Transient => std::io::ErrorKind::Interrupted,
        _ => std::io::ErrorKind::Other,
    };
    std::io::Error::new(ek, format!("injected {kind:?} fault at {site}#{ordinal}"))
}

// ---------- bounded retry with deterministic backoff ----------------------

/// Retry attempts per operation (the first try plus three retries).
pub const MAX_ATTEMPTS: usize = 4;

/// Errors that [`with_retry`] may re-execute after.
pub trait Retryable {
    /// True when re-executing the failed operation could succeed
    /// (transient I/O); false when it provably cannot (corruption).
    fn retryable(&self) -> bool;
}

impl Retryable for std::io::Error {
    fn retryable(&self) -> bool {
        true
    }
}

/// Runs `op` up to [`MAX_ATTEMPTS`] times, backing off between attempts
/// by a doubling count of `yield_now` calls — deterministic work, no
/// clock (lint rule D2 keeps wall-clock reads out of training crates).
/// Retries and final give-ups are counted in the `fault.*` obs metrics.
///
/// # Errors
///
/// Returns the last error once attempts are exhausted, or the first
/// non-retryable error immediately.
pub fn with_retry<T, E: Retryable>(mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
    let mut backoff = 1u32;
    for attempt in 1..=MAX_ATTEMPTS {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) if e.retryable() && attempt < MAX_ATTEMPTS => {
                lazydp_obs::metrics().fault.retries.incr();
                for _ in 0..backoff {
                    std::thread::yield_now();
                }
                backoff = backoff.saturating_mul(2);
            }
            Err(e) => {
                if e.retryable() {
                    lazydp_obs::metrics().fault.giveups.incr();
                }
                return Err(e);
            }
        }
    }
    unreachable!("loop returns on the last attempt")
}

/// Serializes tests (and harness sections) that install process-wide
/// plans — the plan is global state, and `cargo test` runs in parallel.
#[must_use = "the section is serialized only while the guard lives"]
pub fn exclusive() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    // A test that panicked mid-section (e.g. an injected kill) poisons
    // the lock; the next section recovers and installs its own plan.
    LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_full_grammar() {
        let p = FaultPlan::parse("7:page.read@3=transient,page.write*0.5=corrupt,step@2=kill")
            .expect("parse");
        assert_eq!(p.seed, 7);
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.decide(Site::PageRead, 3), Some(FaultKind::Transient));
        assert_eq!(p.decide(Site::PageRead, 2), None);
        assert_eq!(p.decide(Site::PageRead, 4), None);
        assert_eq!(p.decide(Site::MidStep, 2), Some(FaultKind::Kill));
        assert_eq!(p.decide(Site::MidFlush, 2), None);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "no-colon",
            "x:page.read@1=transient",
            "1:page.read@1",
            "1:page.read=transient",
            "1:nowhere@1=transient",
            "1:page.read@1=explode",
            "1:page.read*1.5=transient",
            "1:page.read@x=transient",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn empty_rule_list_parses_and_injects_nothing() {
        let p = FaultPlan::parse("42:").expect("parse");
        assert!(p.is_empty());
        assert_eq!(p.decide(Site::PageRead, 0), None);
    }

    #[test]
    fn persistent_at_fails_every_later_ordinal() {
        let p = FaultPlan::new(1).rule(Site::PageWrite, 5, FaultKind::Persistent);
        assert_eq!(p.decide(Site::PageWrite, 4), None);
        for n in [5u64, 6, 100, u64::MAX] {
            assert_eq!(p.decide(Site::PageWrite, n), Some(FaultKind::Persistent));
        }
    }

    #[test]
    fn rate_decisions_are_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::new(99).rate_rule(Site::PageRead, 0.25, FaultKind::Transient);
        let fire = |ord| p.decide(Site::PageRead, ord).is_some();
        let hits: usize = (0..10_000).filter(|&o| fire(o)).count();
        assert!(
            (2_000..3_000).contains(&hits),
            "rate 0.25 fired {hits}/10000"
        );
        // Pure function of (seed, site, ordinal): identical on re-query.
        for o in 0..200 {
            assert_eq!(fire(o), fire(o));
        }
        // Different sites decorrelate.
        assert_eq!(p.decide(Site::PageWrite, 0), None);
    }

    #[test]
    fn first_matching_rule_wins() {
        let p = FaultPlan::new(1)
            .rule(Site::PageRead, 2, FaultKind::Kill)
            .rate_rule(Site::PageRead, 1.0, FaultKind::Transient);
        assert_eq!(p.decide(Site::PageRead, 2), Some(FaultKind::Kill));
        assert_eq!(p.decide(Site::PageRead, 3), Some(FaultKind::Transient));
    }

    #[test]
    fn install_decide_clear_round_trip() {
        let _g = exclusive();
        install(FaultPlan::new(3).rule(Site::CkptSync, 1, FaultKind::Transient));
        assert!(active());
        assert_eq!(decide(Site::CkptSync, 1), Some(FaultKind::Transient));
        assert_eq!(decide(Site::CkptSync, 0), None);
        clear();
        // Post-clear state depends on the environment; under `cargo
        // test` without LAZYDP_FAULTS this site must be quiet again.
        if std::env::var("LAZYDP_FAULTS").is_err() {
            assert_eq!(decide(Site::CkptSync, 1), None);
        }
    }

    #[test]
    fn kill_point_panics_with_a_typed_payload() {
        let _g = exclusive();
        install(FaultPlan::new(0).rule(Site::MidStep, 7, FaultKind::Kill));
        point(Site::MidStep, 6); // no-op
        let err = std::panic::catch_unwind(|| point(Site::MidStep, 7)).expect_err("must panic");
        let kill = err.downcast_ref::<InjectedKill>().expect("typed payload");
        assert_eq!(
            *kill,
            InjectedKill {
                site: Site::MidStep,
                ordinal: 7
            }
        );
        assert_eq!(kill.to_string(), "injected kill at step#7");
        clear();
    }

    #[test]
    fn with_retry_absorbs_transients_and_reports_giveups() {
        let mut failures_left = 2;
        let got = with_retry(|| {
            if failures_left > 0 {
                failures_left -= 1;
                Err(std::io::Error::new(std::io::ErrorKind::Interrupted, "x"))
            } else {
                Ok(41)
            }
        });
        assert_eq!(got.expect("two transients then success"), 41);

        let got: Result<(), _> = with_retry(|| Err(std::io::Error::other("gone")));
        assert!(got.is_err(), "persistent failure exhausts attempts");
    }

    #[test]
    fn injected_io_errors_carry_site_and_kind() {
        let e = injected_io_error(FaultKind::Transient, Site::PageRead, 9);
        assert_eq!(e.kind(), std::io::ErrorKind::Interrupted);
        assert!(e.to_string().contains("page.read#9"), "{e}");
        let e = injected_io_error(FaultKind::Persistent, Site::PageWrite, 0);
        assert_ne!(e.kind(), std::io::ErrorKind::Interrupted);
    }
}
