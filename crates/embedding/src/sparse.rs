//! Sparse per-row gradients and coalescing.
//!
//! A mini-batch's embedding gradient only touches the gathered rows. The
//! *coalescing* step (dedup + accumulate per distinct row) is what LazyDP
//! reports as part of its 15% overhead (paper Fig. 11: "removing
//! duplicated embedding indices" is 61% of the overhead), so it is a
//! first-class, instrumentable operation here.

use std::collections::BTreeMap;

/// A sparse gradient over an embedding table: a list of `(row, values)`
/// entries, each `values` being a `dim`-wide vector.
///
/// Entries may contain duplicate rows until [`coalesce`](Self::coalesce)
/// is called.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SparseGrad {
    dim: usize,
    indices: Vec<u64>,
    /// Row-major `indices.len() × dim` values.
    values: Vec<f32>,
}

impl SparseGrad {
    /// Creates an empty gradient for dimension `dim`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        Self {
            dim,
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Builds from `(row, values)` entries.
    ///
    /// # Panics
    ///
    /// Panics if any entry's length differs from `dim`.
    #[must_use]
    pub fn from_entries(dim: usize, entries: Vec<(u64, Vec<f32>)>) -> Self {
        let mut g = Self::new(dim);
        for (idx, vals) in entries {
            g.push(idx, &vals);
        }
        g
    }

    /// Empties the gradient (and re-dims it), keeping both backing
    /// allocations — the arena-reuse entry point: a cleared gradient
    /// refilled with at most as many entries as it ever held allocates
    /// nothing.
    pub fn reset(&mut self, dim: usize) {
        self.dim = dim;
        self.indices.clear();
        self.values.clear();
    }

    /// Appends an entry.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim`.
    pub fn push(&mut self, index: u64, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "sparse entry dim mismatch");
        self.indices.push(index);
        self.values.extend_from_slice(values);
    }

    /// Appends a zero entry and returns a mutable slice to fill it.
    pub fn push_zeros(&mut self, index: u64) -> &mut [f32] {
        self.indices.push(index);
        let start = self.values.len();
        self.values.resize(start + self.dim, 0.0);
        &mut self.values[start..]
    }

    /// Accumulates `alpha * values` into the entry for `index`, creating
    /// it if absent. O(n) scan — use [`coalesce`](Self::coalesce) for
    /// bulk merging instead.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != dim`.
    pub fn accumulate(&mut self, index: u64, alpha: f32, values: &[f32]) {
        assert_eq!(values.len(), self.dim, "sparse entry dim mismatch");
        if let Some(pos) = self.indices.iter().position(|&i| i == index) {
            let row = &mut self.values[pos * self.dim..(pos + 1) * self.dim];
            for (r, &v) in row.iter_mut().zip(values.iter()) {
                *r += alpha * v;
            }
        } else {
            let row = self.push_zeros(index);
            for (r, &v) in row.iter_mut().zip(values.iter()) {
                *r = alpha * v;
            }
        }
    }

    /// The embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of entries (including duplicates before coalescing).
    #[must_use]
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the gradient has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The row indices (possibly with duplicates).
    #[must_use]
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Iterates over `(row, values)` entries.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[f32])> {
        self.indices
            .iter()
            .copied()
            .zip(self.values.chunks_exact(self.dim.max(1)))
    }

    /// Values of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn entry(&self, i: usize) -> (u64, &[f32]) {
        (
            self.indices[i],
            &self.values[i * self.dim..(i + 1) * self.dim],
        )
    }

    /// Mutable values of entry `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn entry_mut(&mut self, i: usize) -> &mut [f32] {
        let d = self.dim;
        &mut self.values[i * d..(i + 1) * d]
    }

    /// In-place scaling of every value.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.values {
            *v *= alpha;
        }
    }

    /// Merges duplicate rows by summation and sorts entries by row index.
    ///
    /// Returns the number of duplicate entries that were merged away —
    /// the quantity LazyDP's overhead accounting tracks (Fig. 11).
    pub fn coalesce(&mut self) -> usize {
        self.coalesce_with(&mut CoalesceScratch::default())
    }

    /// [`coalesce`](Self::coalesce) through caller-owned scratch: the
    /// permutation and the merged entry buffers live in `scratch` and
    /// are swapped with the gradient's own buffers at the end, so a
    /// steady-state training step coalesces without touching the heap.
    ///
    /// Duplicate rows are summed in their original entry order (the
    /// in-place sort is made stable by an index tie-break), so the
    /// result is bitwise identical to the historical allocating
    /// implementation.
    pub fn coalesce_with(&mut self, scratch: &mut CoalesceScratch) -> usize {
        if self.indices.len() <= 1 {
            return 0;
        }
        let before = self.indices.len();
        scratch.order.clear();
        scratch.order.extend(0..before as u32);
        // Unstable sort (no temp buffer) made stable via the index
        // tie-break, preserving the duplicate accumulation order.
        scratch
            .order
            .sort_unstable_by_key(|&i| (self.indices[i as usize], i));
        scratch.indices.clear();
        scratch.values.clear();
        for &src in &scratch.order {
            let src = src as usize;
            let idx = self.indices[src];
            let vals = &self.values[src * self.dim..(src + 1) * self.dim];
            if scratch.indices.last() == Some(&idx) {
                let start = scratch.values.len() - self.dim;
                for (acc, &v) in scratch.values[start..].iter_mut().zip(vals.iter()) {
                    *acc += v;
                }
            } else {
                scratch.indices.push(idx);
                scratch.values.extend_from_slice(vals);
            }
        }
        std::mem::swap(&mut self.indices, &mut scratch.indices);
        std::mem::swap(&mut self.values, &mut scratch.values);
        before - self.indices.len()
    }

    /// Sums the squared L2 norms of all entries (in `f64`, accumulated
    /// through the pinned [`vecops::norm_sq`](lazydp_tensor::vecops)
    /// primitive).
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        lazydp_tensor::vecops::norm_sq(&self.values)
    }

    /// Whether entries are sorted by strictly increasing row index —
    /// i.e. whether [`coalesce`](Self::coalesce) has run since the last
    /// mutation. The update kernels require this.
    #[must_use]
    pub fn is_coalesced(&self) -> bool {
        self.indices.windows(2).all(|w| w[0] < w[1])
    }

    /// Binary-searches a **coalesced** gradient for `index`.
    ///
    /// Returns `None` both for absent rows and (unreliably) on
    /// uncoalesced gradients — callers should check
    /// [`is_coalesced`](Self::is_coalesced) first.
    #[must_use]
    pub fn find(&self, index: u64) -> Option<&[f32]> {
        self.indices
            .binary_search(&index)
            .ok()
            .map(|i| &self.values[i * self.dim..(i + 1) * self.dim])
    }

    /// Converts to a dense map for test comparisons (a `BTreeMap` so
    /// downstream iteration is deterministic).
    #[must_use]
    pub fn to_dense_map(&self) -> BTreeMap<u64, Vec<f32>> {
        let mut m: BTreeMap<u64, Vec<f32>> = BTreeMap::new();
        for (idx, vals) in self.iter() {
            let e = m.entry(idx).or_insert_with(|| vec![0.0; self.dim]);
            for (a, &v) in e.iter_mut().zip(vals.iter()) {
                *a += v;
            }
        }
        m
    }
}

/// Reusable buffers for [`SparseGrad::coalesce_with`]: the sort
/// permutation plus the merged index/value arrays (swapped into the
/// gradient each call, so the gradient's previous buffers become next
/// call's scratch).
#[derive(Debug, Clone, Default)]
pub struct CoalesceScratch {
    order: Vec<u32>,
    indices: Vec<u64>,
    values: Vec<f32>,
}

/// Deduplicates a list of row indices, returning the sorted unique set
/// and the number of duplicates removed.
///
/// This is the standalone "remove duplicated embedding indices among the
/// embeddings accessed next" operation of LazyDP (61% of its overhead,
/// Fig. 11) — split out so `lazydp-core` can instrument it separately
/// from gradient coalescing.
#[must_use]
pub fn dedup_indices(indices: &[u64]) -> (Vec<u64>, usize) {
    let mut sorted = Vec::new();
    let dups = dedup_indices_into(indices, &mut sorted);
    (sorted, dups)
}

/// [`dedup_indices`] into a caller-owned vector (cleared and refilled;
/// the in-place unstable sort and `Vec::dedup` allocate nothing), so
/// the per-step lookahead dedup reuses one buffer per table. Returns
/// the number of duplicates removed.
pub fn dedup_indices_into(indices: &[u64], out: &mut Vec<u64>) -> usize {
    out.clear();
    out.extend_from_slice(indices);
    out.sort_unstable();
    out.dedup();
    indices.len() - out.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_iter_roundtrip() {
        let mut g = SparseGrad::new(2);
        g.push(5, &[1.0, 2.0]);
        g.push(3, &[3.0, 4.0]);
        let entries: Vec<_> = g.iter().map(|(i, v)| (i, v.to_vec())).collect();
        assert_eq!(entries, vec![(5, vec![1.0, 2.0]), (3, vec![3.0, 4.0])]);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn coalesce_merges_sorts_and_counts() {
        let mut g = SparseGrad::from_entries(
            2,
            vec![
                (7, vec![1.0, 1.0]),
                (2, vec![2.0, 2.0]),
                (7, vec![10.0, 10.0]),
                (2, vec![0.5, 0.5]),
                (1, vec![9.0, 9.0]),
            ],
        );
        let merged = g.coalesce();
        assert_eq!(merged, 2);
        assert_eq!(g.indices(), &[1, 2, 7]);
        assert_eq!(g.entry(0).1, &[9.0, 9.0]);
        assert_eq!(g.entry(1).1, &[2.5, 2.5]);
        assert_eq!(g.entry(2).1, &[11.0, 11.0]);
    }

    #[test]
    fn coalesce_preserves_total_mass() {
        let mut g = SparseGrad::from_entries(
            1,
            vec![
                (0, vec![1.0]),
                (1, vec![2.0]),
                (0, vec![3.0]),
                (1, vec![4.0]),
            ],
        );
        let sum_before: f32 = g.iter().map(|(_, v)| v[0]).sum();
        g.coalesce();
        let sum_after: f32 = g.iter().map(|(_, v)| v[0]).sum();
        assert_eq!(sum_before, sum_after);
    }

    #[test]
    fn accumulate_creates_or_adds() {
        let mut g = SparseGrad::new(2);
        g.accumulate(4, 1.0, &[1.0, 1.0]);
        g.accumulate(4, 2.0, &[1.0, 2.0]);
        g.accumulate(9, 1.0, &[5.0, 5.0]);
        assert_eq!(g.len(), 2);
        assert_eq!(g.to_dense_map()[&4], vec![3.0, 5.0]);
        assert_eq!(g.to_dense_map()[&9], vec![5.0, 5.0]);
    }

    #[test]
    fn scale_and_norm() {
        let mut g = SparseGrad::from_entries(2, vec![(0, vec![3.0, 4.0])]);
        assert!((g.norm_sq() - 25.0).abs() < 1e-9);
        g.scale(2.0);
        assert!((g.norm_sq() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn dedup_indices_counts_duplicates() {
        let (uniq, dups) = dedup_indices(&[5, 1, 5, 3, 1, 1]);
        assert_eq!(uniq, vec![1, 3, 5]);
        assert_eq!(dups, 3);
        let (empty, zero) = dedup_indices(&[]);
        assert!(empty.is_empty());
        assert_eq!(zero, 0);
    }

    #[test]
    fn coalesce_on_empty_and_singleton() {
        let mut empty = SparseGrad::new(4);
        assert_eq!(empty.coalesce(), 0);
        let mut single = SparseGrad::from_entries(1, vec![(3, vec![1.0])]);
        assert_eq!(single.coalesce(), 0);
        assert_eq!(single.indices(), &[3]);
    }

    #[test]
    #[should_panic(expected = "sparse entry dim mismatch")]
    fn push_rejects_wrong_dim() {
        let mut g = SparseGrad::new(3);
        g.push(0, &[1.0]);
    }
}
