//! Embedding-bag forward/backward: gather + pooling.
//!
//! A DLRM embedding layer gathers `pooling` rows per sample and reduces
//! them to a single vector (paper §2.1: "multiple embedding vectors can
//! be gathered from the embedding table, all of which are pooled into a
//! single vector using a reduction operation").

use crate::sparse::SparseGrad;
use crate::storage::EmbeddingStorage;
use lazydp_tensor::Matrix;

/// Reduction applied to the gathered vectors of one sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pooling {
    /// Element-wise sum (the DLRM/MLPerf default).
    #[default]
    Sum,
    /// Element-wise mean.
    Mean,
}

/// Batched lookup structure for one table: CSR-style offsets into a flat
/// index list. Sample `i` gathers `indices[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BagIndices {
    offsets: Vec<u32>,
    indices: Vec<u64>,
}

impl BagIndices {
    /// Builds from per-sample index lists.
    #[must_use]
    pub fn from_samples(samples: &[Vec<u64>]) -> Self {
        let mut offsets = Vec::with_capacity(samples.len() + 1);
        let mut indices = Vec::new();
        offsets.push(0u32);
        for s in samples {
            indices.extend_from_slice(s);
            offsets.push(indices.len() as u32);
        }
        Self { offsets, indices }
    }

    /// Number of samples.
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Total number of lookups across the batch.
    #[must_use]
    pub fn total_lookups(&self) -> usize {
        self.indices.len()
    }

    /// The flat index list.
    #[must_use]
    pub fn flat_indices(&self) -> &[u64] {
        &self.indices
    }

    /// Index list of sample `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= batch_size()`.
    #[must_use]
    pub fn sample(&self, i: usize) -> &[u64] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.indices[lo..hi]
    }

    /// Sorted unique indices of the whole batch and duplicate count.
    #[must_use]
    pub fn unique_indices(&self) -> (Vec<u64>, usize) {
        crate::sparse::dedup_indices(&self.indices)
    }
}

/// Forward/backward of one embedding-bag layer over one table.
///
/// Stateless: the table is passed explicitly so the optimizers own the
/// weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct EmbeddingBag {
    pooling: Pooling,
}

impl EmbeddingBag {
    /// Creates a bag with the given pooling reduction.
    #[must_use]
    pub fn new(pooling: Pooling) -> Self {
        Self { pooling }
    }

    /// The configured pooling.
    #[must_use]
    pub fn pooling(&self) -> Pooling {
        self.pooling
    }

    /// Forward: pooled output, one row per sample (`B × dim`).
    ///
    /// Samples with an empty index list produce a zero vector.
    ///
    /// Generic over the table backend (any [`EmbeddingStorage`]): the
    /// accumulation arithmetic is identical whether the rows come from
    /// memory, shards, or disk pages.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for `table`.
    #[must_use]
    pub fn forward<T: EmbeddingStorage>(&self, table: &T, batch: &BagIndices) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.forward_into(table, batch, &mut out);
        out
    }

    /// [`forward`](Self::forward) into a caller-owned output matrix
    /// (reshaped, zeroed, and refilled; no allocation at steady state).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range for `table`.
    pub fn forward_into<T: EmbeddingStorage>(
        &self,
        table: &T,
        batch: &BagIndices,
        out: &mut Matrix,
    ) {
        out.reset_zeroed(batch.batch_size(), table.dim());
        for i in 0..batch.batch_size() {
            let idxs = batch.sample(i);
            if idxs.is_empty() {
                continue;
            }
            let row = out.row_mut(i);
            for &idx in idxs {
                table.with_row(idx, |trow| {
                    for (o, &w) in row.iter_mut().zip(trow.iter()) {
                        *o += w;
                    }
                });
            }
            if self.pooling == Pooling::Mean {
                let inv = 1.0 / idxs.len() as f32;
                for o in row.iter_mut() {
                    *o *= inv;
                }
            }
        }
    }

    /// Backward: per-row sparse gradient from the pooled-output gradient
    /// (`B × dim`). The result is **un-coalesced** (one entry per lookup)
    /// so callers can decide when to pay for coalescing — mirroring the
    /// paper's separation of "gradient coalescing" as its own stage
    /// (Fig. 11).
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` has the wrong shape.
    #[must_use]
    pub fn backward(&self, grad_out: &Matrix, batch: &BagIndices, dim: usize) -> SparseGrad {
        let mut grad = SparseGrad::new(dim);
        self.backward_into(grad_out, batch, dim, &mut grad);
        grad
    }

    /// [`backward`](Self::backward) into a caller-owned sparse gradient
    /// (reset and refilled, keeping its allocations).
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` has the wrong shape.
    pub fn backward_into(
        &self,
        grad_out: &Matrix,
        batch: &BagIndices,
        dim: usize,
        grad: &mut SparseGrad,
    ) {
        assert_eq!(
            grad_out.shape(),
            (batch.batch_size(), dim),
            "grad_out shape mismatch"
        );
        grad.reset(dim);
        for i in 0..batch.batch_size() {
            let idxs = batch.sample(i);
            if idxs.is_empty() {
                continue;
            }
            let g = grad_out.row(i);
            let scale = match self.pooling {
                Pooling::Sum => 1.0,
                Pooling::Mean => 1.0 / idxs.len() as f32,
            };
            for &idx in idxs {
                let entry = grad.push_zeros(idx);
                for (e, &gv) in entry.iter_mut().zip(g.iter()) {
                    *e = scale * gv;
                }
            }
        }
    }

    /// Weighted backward: like [`backward_into`](Self::backward_into)
    /// but multiplies example `i`'s contribution by `w[i]` — the sparse
    /// half of the clipped-aggregate backward, fed the *unscaled*
    /// gradient chain so the clip factor applies exactly once, at the
    /// gradient-entry write (`entry = scale · (w_i · δ_i)`).
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` has the wrong shape or
    /// `w.len() != batch.batch_size()`.
    pub fn backward_weighted_into(
        &self,
        grad_out: &Matrix,
        batch: &BagIndices,
        w: &[f32],
        dim: usize,
        grad: &mut SparseGrad,
    ) {
        assert_eq!(
            grad_out.shape(),
            (batch.batch_size(), dim),
            "grad_out shape mismatch"
        );
        assert_eq!(w.len(), batch.batch_size(), "one weight per example");
        grad.reset(dim);
        for (i, &wi) in w.iter().enumerate() {
            let idxs = batch.sample(i);
            if idxs.is_empty() {
                continue;
            }
            let g = grad_out.row(i);
            let scale = match self.pooling {
                Pooling::Sum => 1.0,
                Pooling::Mean => 1.0 / idxs.len() as f32,
            };
            for &idx in idxs {
                let entry = grad.push_zeros(idx);
                for (e, &gv) in entry.iter_mut().zip(g.iter()) {
                    *e = scale * (wi * gv);
                }
            }
        }
    }

    /// Per-example squared gradient norm of this bag's weights, without
    /// materializing per-example gradients — the embedding half of the
    /// DP-SGD(F) *ghost norm* trick (paper §2.5, Denison et al.).
    ///
    /// For sum pooling, example `i`'s gradient w.r.t. row `r` is
    /// `c_{i,r} · δ_i` where `c_{i,r}` is the number of times `r` occurs
    /// in the sample's lookups, so
    /// `‖g_i‖² = (Σ_r c_{i,r}²) · ‖δ_i‖²`. Mean pooling scales by
    /// `1/L_i²`.
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` has the wrong number of rows.
    #[must_use]
    pub fn per_example_norm_sq(&self, grad_out: &Matrix, batch: &BagIndices) -> Vec<f64> {
        let mut out = Vec::new();
        self.per_example_norm_sq_into(grad_out, batch, &mut out, &mut Vec::new());
        out
    }

    /// [`per_example_norm_sq`](Self::per_example_norm_sq) into
    /// caller-owned buffers. Duplicate counts come from sorting the
    /// sample's lookups into `idx_scratch` and measuring runs — no hash
    /// map, no allocation at steady state, and identical results (the
    /// `Σ c²` terms are exact small integers, so summation order cannot
    /// change the value).
    ///
    /// # Panics
    ///
    /// Panics if `grad_out` has the wrong number of rows.
    pub fn per_example_norm_sq_into(
        &self,
        grad_out: &Matrix,
        batch: &BagIndices,
        out: &mut Vec<f64>,
        idx_scratch: &mut Vec<u64>,
    ) {
        assert_eq!(
            grad_out.rows(),
            batch.batch_size(),
            "grad_out rows mismatch"
        );
        out.clear();
        for i in 0..batch.batch_size() {
            let idxs = batch.sample(i);
            idx_scratch.clear();
            idx_scratch.extend_from_slice(idxs);
            idx_scratch.sort_unstable();
            let mut c_sq = 0.0f64;
            let mut run = 0u64;
            let mut prev = 0u64;
            for &idx in idx_scratch.iter() {
                if run > 0 && idx == prev {
                    run += 1;
                } else {
                    c_sq += (run * run) as f64;
                    prev = idx;
                    run = 1;
                }
            }
            c_sq += (run * run) as f64;
            let delta_sq = lazydp_tensor::vecops::norm_sq(grad_out.row(i));
            let scale = match self.pooling {
                Pooling::Sum => 1.0,
                Pooling::Mean => {
                    let l = idxs.len() as f64;
                    if l == 0.0 {
                        0.0
                    } else {
                        1.0 / (l * l)
                    }
                }
            };
            out.push(c_sq * delta_sq * scale);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::EmbeddingTable;

    fn table_with_rows(rows: &[&[f32]]) -> EmbeddingTable {
        let dim = rows[0].len();
        let mut t = EmbeddingTable::zeros(rows.len(), dim);
        for (r, vals) in rows.iter().enumerate() {
            t.row_mut(r).copy_from_slice(vals);
        }
        t
    }

    #[test]
    fn forward_sum_and_mean() {
        let t = table_with_rows(&[&[1.0, 0.0], &[0.0, 2.0], &[4.0, 4.0]]);
        let batch = BagIndices::from_samples(&[vec![0, 1], vec![2], vec![]]);
        let sum = EmbeddingBag::new(Pooling::Sum).forward(&t, &batch);
        assert_eq!(sum.row(0), &[1.0, 2.0]);
        assert_eq!(sum.row(1), &[4.0, 4.0]);
        assert_eq!(sum.row(2), &[0.0, 0.0]);
        let mean = EmbeddingBag::new(Pooling::Mean).forward(&t, &batch);
        assert_eq!(mean.row(0), &[0.5, 1.0]);
        assert_eq!(mean.row(1), &[4.0, 4.0]);
    }

    #[test]
    fn backward_scatter_matches_forward_structure() {
        let batch = BagIndices::from_samples(&[vec![0, 1], vec![1, 1]]);
        let grad_out = Matrix::from_rows(&[&[1.0, 2.0], &[10.0, 20.0]]);
        let mut g = EmbeddingBag::new(Pooling::Sum).backward(&grad_out, &batch, 2);
        assert_eq!(g.len(), 4, "one entry per lookup before coalescing");
        g.coalesce();
        let dense = g.to_dense_map();
        assert_eq!(dense[&0], vec![1.0, 2.0]);
        // Row 1 gets sample 0's grad once and sample 1's grad twice.
        assert_eq!(dense[&1], vec![21.0, 42.0]);
    }

    #[test]
    fn backward_mean_scales_by_bag_length() {
        let batch = BagIndices::from_samples(&[vec![0, 1, 2, 3]]);
        let grad_out = Matrix::from_rows(&[&[4.0]]);
        let g = EmbeddingBag::new(Pooling::Mean).backward(&grad_out, &batch, 1);
        for (_, v) in g.iter() {
            assert_eq!(v, &[1.0]);
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn forward_backward_finite_difference() {
        // dL/dW check with L = sum(output): each gathered row's grad is 1.
        let mut t = table_with_rows(&[&[0.5, -0.5], &[1.5, 2.5]]);
        let batch = BagIndices::from_samples(&[vec![0, 1, 1]]);
        let bag = EmbeddingBag::new(Pooling::Sum);
        let grad_out = Matrix::filled(1, 2, 1.0);
        let mut g = bag.backward(&grad_out, &batch, 2);
        g.coalesce();
        let eps = 1e-3f32;
        for (idx, gvals) in g.iter() {
            for d in 0..2 {
                let orig = t.row(idx as usize)[d];
                t.row_mut(idx as usize)[d] = orig + eps;
                let up: f32 = bag.forward(&t, &batch).as_slice().iter().sum();
                t.row_mut(idx as usize)[d] = orig - eps;
                let down: f32 = bag.forward(&t, &batch).as_slice().iter().sum();
                t.row_mut(idx as usize)[d] = orig;
                let fd = (up - down) / (2.0 * eps);
                assert!(
                    (gvals[d] - fd).abs() < 1e-2,
                    "row {idx} dim {d}: {} vs {fd}",
                    gvals[d]
                );
            }
        }
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn ghost_norm_matches_explicit_per_example_norm() {
        let batch = BagIndices::from_samples(&[vec![0, 1], vec![2, 2, 3]]);
        let grad_out = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 0.5]]);
        let bag = EmbeddingBag::new(Pooling::Sum);
        let ghost = bag.per_example_norm_sq(&grad_out, &batch);
        // Explicit: materialize each example's sparse grad and take its norm.
        for i in 0..2 {
            let single = BagIndices::from_samples(&[batch.sample(i).to_vec()]);
            let g_i = Matrix::from_vec(1, 2, grad_out.row(i).to_vec());
            let mut sg = bag.backward(&g_i, &single, 2);
            sg.coalesce();
            let explicit = sg.norm_sq();
            assert!(
                (ghost[i] - explicit).abs() < 1e-9,
                "example {i}: ghost {} explicit {explicit}",
                ghost[i]
            );
        }
    }

    #[test]
    fn ghost_norm_mean_pooling() {
        let batch = BagIndices::from_samples(&[vec![0, 1, 1]]);
        let grad_out = Matrix::from_rows(&[&[3.0]]);
        let bag = EmbeddingBag::new(Pooling::Mean);
        let ghost = bag.per_example_norm_sq(&grad_out, &batch);
        let single = BagIndices::from_samples(&[batch.sample(0).to_vec()]);
        let mut sg = bag.backward(&grad_out, &single, 1);
        sg.coalesce();
        assert!((ghost[0] - sg.norm_sq()).abs() < 1e-9);
    }

    #[test]
    fn bag_indices_accessors() {
        let batch = BagIndices::from_samples(&[vec![5, 5, 2], vec![9]]);
        assert_eq!(batch.batch_size(), 2);
        assert_eq!(batch.total_lookups(), 4);
        assert_eq!(batch.sample(0), &[5, 5, 2]);
        assert_eq!(batch.sample(1), &[9]);
        let (uniq, dups) = batch.unique_indices();
        assert_eq!(uniq, vec![2, 5, 9]);
        assert_eq!(dups, 1);
    }
}
