//! The row-access surface shared by every embedding-table backend.
//!
//! LazyDP's training loop only ever touches an embedding table through a
//! handful of row-granular operations: gather a batch's rows, apply a
//! coalesced sparse update, and (at release time) add pending noise to
//! individual rows. [`EmbeddingStorage`] captures exactly that surface,
//! so the optimizer stack (`lazydp-core`), the DLRM forward/backward
//! (`lazydp-model`), and checkpointing are written once and run
//! unchanged against any backend:
//!
//! * [`EmbeddingTable`] — dense in-memory rows (the default),
//! * [`ShardedTable`] — hash-partitioned in-memory shards,
//! * `lazydp_store::StoredTable` — the out-of-core paged backend, where
//!   only a bounded page cache is resident and the cold majority of the
//!   table lives on disk.
//!
//! The contract is *bitwise*: for the same logical row contents, every
//! backend must return identical bytes from [`with_row`] and apply
//! identical arithmetic in [`sparse_update`] — backends change where a
//! row lives, never what happens to it. Row borrows are scoped through
//! closures ([`with_row`]/[`with_row_mut`]) rather than returned,
//! because a paged backend can only pin a row while its page is held in
//! the cache.
//!
//! [`with_row`]: EmbeddingStorage::with_row
//! [`with_row_mut`]: EmbeddingStorage::with_row_mut
//! [`sparse_update`]: EmbeddingStorage::sparse_update

use crate::shard::ShardedTable;
use crate::sparse::SparseGrad;
use crate::table::EmbeddingTable;
use lazydp_tensor::Matrix;

/// Row-granular access to one embedding table, independent of where the
/// rows live (RAM, shards, or disk pages). See the module docs for the
/// bitwise contract between backends.
pub trait EmbeddingStorage: std::fmt::Debug + Send + Sync {
    /// Number of rows (embedding vectors).
    fn rows(&self) -> usize;

    /// Embedding dimension.
    fn dim(&self) -> usize;

    /// Bytes of weight payload the table logically holds (`rows × dim ×
    /// 4`, regardless of how much of it is resident).
    fn bytes(&self) -> u64;

    /// Runs `f` on row `r` (a `dim`-wide slice).
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R;

    /// Runs `f` on row `r` mutably; the backend persists whatever `f`
    /// writes.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows()`.
    fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R;

    /// Total number of `f32` parameters.
    fn elements(&self) -> usize {
        self.rows() * self.dim()
    }

    /// Gathers `indices` into a dense `indices.len() × dim` matrix, in
    /// input order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    fn gather(&self, indices: &[u64]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.dim());
        for (i, &idx) in indices.iter().enumerate() {
            self.with_row(idx, |row| out.row_mut(i).copy_from_slice(row));
        }
        out
    }

    /// Sparse SGD update: `row[idx] -= lr * grad_row` for every entry —
    /// identical arithmetic to [`EmbeddingTable::sparse_update`] on
    /// every backend.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension differs from the table's.
    fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim(), "sparse grad dim mismatch");
        for (idx, values) in grad.iter() {
            self.with_row_mut(idx, |row| {
                for (w, &g) in row.iter_mut().zip(values.iter()) {
                    *w -= lr * g;
                }
            });
        }
    }

    /// Hints that the given **sorted, deduplicated** rows are about to
    /// be accessed, letting a paged backend fault their pages in ahead
    /// of the access. A no-op for resident backends. Purely a
    /// performance hint: it never changes any row's value.
    fn prefetch_rows(&self, sorted_rows: &[u64]) {
        let _ = sorted_rows;
    }

    /// Materializes the table as a dense in-memory [`EmbeddingTable`]
    /// (bitwise copy of every row).
    fn to_dense_table(&self) -> EmbeddingTable {
        let mut out = EmbeddingTable::zeros(self.rows(), self.dim());
        for r in 0..self.rows() {
            self.with_row(r as u64, |row| out.row_mut(r).copy_from_slice(row));
        }
        out
    }
}

impl EmbeddingStorage for EmbeddingTable {
    fn rows(&self) -> usize {
        EmbeddingTable::rows(self)
    }

    fn dim(&self) -> usize {
        EmbeddingTable::dim(self)
    }

    fn bytes(&self) -> u64 {
        EmbeddingTable::bytes(self)
    }

    fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        f(self.row(usize::try_from(r).expect("row fits usize")))
    }

    fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R {
        f(self.row_mut(usize::try_from(r).expect("row fits usize")))
    }

    fn gather(&self, indices: &[u64]) -> Matrix {
        EmbeddingTable::gather(self, indices)
    }

    fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        EmbeddingTable::sparse_update(self, grad, lr);
    }

    fn to_dense_table(&self) -> EmbeddingTable {
        self.clone()
    }
}

impl EmbeddingStorage for ShardedTable {
    fn rows(&self) -> usize {
        ShardedTable::rows(self)
    }

    fn dim(&self) -> usize {
        ShardedTable::dim(self)
    }

    fn bytes(&self) -> u64 {
        ShardedTable::bytes(self)
    }

    fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        f(self.row(r))
    }

    fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R {
        f(self.row_mut(r))
    }

    fn gather(&self, indices: &[u64]) -> Matrix {
        ShardedTable::gather(self, indices)
    }

    fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        ShardedTable::sparse_update(self, grad, lr);
    }

    fn to_dense_table(&self) -> EmbeddingTable {
        self.to_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::{Prng, Xoshiro256PlusPlus};

    fn dense(rows: usize, dim: usize) -> EmbeddingTable {
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        EmbeddingTable::init_uniform(rows, dim, &mut rng)
    }

    /// Exercises a backend purely through the trait surface and checks
    /// it against the dense reference (shared with `lazydp_store`'s
    /// tests in spirit: any backend must pass this).
    fn check_backend<T: EmbeddingStorage>(mut backend: T, reference: &EmbeddingTable) {
        assert_eq!(backend.rows(), reference.rows());
        assert_eq!(backend.dim(), reference.dim());
        assert_eq!(backend.bytes(), reference.bytes());
        assert_eq!(backend.elements(), reference.elements());
        for r in 0..reference.rows() as u64 {
            backend.with_row(r, |row| assert_eq!(row, reference.row(r as usize)));
        }
        let idx = [0u64, 7, 3, 7];
        assert_eq!(backend.gather(&idx), reference.gather(&idx));
        // Mutate through the trait, then re-read.
        let mut grad = SparseGrad::from_entries(
            reference.dim(),
            vec![
                (2, vec![1.0; reference.dim()]),
                (9, vec![-0.5; reference.dim()]),
            ],
        );
        let _ = grad.coalesce();
        let mut want = reference.clone();
        want.sparse_update(&grad, 0.1);
        backend.sparse_update(&grad, 0.1);
        backend.with_row_mut(4, |row| row[0] = 42.0);
        want.row_mut(4)[0] = 42.0;
        backend.prefetch_rows(&[2, 9]); // must be value-invisible
        assert_eq!(backend.to_dense_table(), want);
    }

    #[test]
    fn dense_table_satisfies_the_trait_contract() {
        let d = dense(12, 4);
        check_backend(d.clone(), &d);
    }

    #[test]
    fn sharded_table_satisfies_the_trait_contract() {
        let d = dense(12, 4);
        check_backend(ShardedTable::from_dense(&d, 3), &d);
    }

    #[test]
    fn default_gather_and_update_match_inherent_ones() {
        // A minimal backend that only supplies the two required row
        // accessors must still gather/update exactly like the dense
        // table (this is what keeps `lazydp_store` honest).
        #[derive(Debug)]
        struct Wrapper(EmbeddingTable);
        impl EmbeddingStorage for Wrapper {
            fn rows(&self) -> usize {
                self.0.rows()
            }
            fn dim(&self) -> usize {
                self.0.dim()
            }
            fn bytes(&self) -> u64 {
                self.0.bytes()
            }
            fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R {
                f(self.0.row(r as usize))
            }
            fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R {
                f(self.0.row_mut(r as usize))
            }
        }
        let d = dense(10, 3);
        check_backend(Wrapper(d.clone()), &d);
        let mut rng = Xoshiro256PlusPlus::seed_from(9);
        let probe: Vec<u64> = (0..6).map(|_| rng.next_u64() % 10).collect();
        assert_eq!(Wrapper(d.clone()).gather(&probe), d.gather(&probe));
    }
}
