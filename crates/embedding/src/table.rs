//! Embedding table storage and update primitives.

use crate::sparse::SparseGrad;
use lazydp_rng::Prng;
use lazydp_tensor::Matrix;

/// An embedding table: `rows` vectors of `dim` `f32` weights.
///
/// The table is a *trainable* weight tensor (paper §1): SGD updates only
/// gathered rows, while DP-SGD must add noise to every row. Both access
/// styles are provided as primitives here; optimizers in `lazydp-dpsgd`
/// and `lazydp-core` choose which to invoke and account for their cost.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddingTable {
    rows: usize,
    dim: usize,
    weights: Vec<f32>,
}

impl EmbeddingTable {
    /// Creates a zero-initialized table.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    #[must_use]
    pub fn zeros(rows: usize, dim: usize) -> Self {
        assert!(
            rows > 0 && dim > 0,
            "table must be non-empty ({rows}x{dim})"
        );
        Self {
            rows,
            dim,
            weights: vec![0.0; rows * dim],
        }
    }

    /// Creates a table initialized uniformly in `[-a, a]` with
    /// `a = 1/rows` scaled like the DLRM reference (`U(-1/√rows, 1/√rows)`).
    #[must_use]
    pub fn init_uniform<R: Prng>(rows: usize, dim: usize, rng: &mut R) -> Self {
        let mut t = Self::zeros(rows, dim);
        let a = 1.0 / (rows as f32).sqrt();
        for w in &mut t.weights {
            *w = (rng.next_f32() * 2.0 - 1.0) * a;
        }
        t
    }

    /// Number of rows (embedding vectors).
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total number of `f32` parameters.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.weights.len()
    }

    /// Size in bytes of the weight storage.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.weights.len() * std::mem::size_of::<f32>()) as u64
    }

    /// Row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        &self.weights[r * self.dim..(r + 1) * self.dim]
    }

    /// Mutable row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        let d = self.dim;
        &mut self.weights[r * d..(r + 1) * d]
    }

    /// Flat weight view.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.weights
    }

    /// Mutable flat weight view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.weights
    }

    /// Gathers `indices` into a dense `indices.len() × dim` matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn gather(&self, indices: &[u64]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.dim);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx as usize));
        }
        out
    }

    /// Sparse SGD update: `row[idx] -= lr * grad_row` for every entry of
    /// the (coalesced or not) sparse gradient — the paper's Fig. 4(a)
    /// update path.
    ///
    /// # Panics
    ///
    /// Panics if the gradient dimension differs from the table's.
    pub fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        for (idx, values) in grad.iter() {
            let row = self.row_mut(idx as usize);
            for (w, &g) in row.iter_mut().zip(values.iter()) {
                *w -= lr * g;
            }
        }
    }

    /// Applies `f` to every row — the dense full-table traversal that
    /// eager DP-SGD's noisy gradient update performs (Fig. 4(b)). The
    /// closure receives `(row_index, row_slice)`.
    pub fn for_each_row_mut(&mut self, mut f: impl FnMut(usize, &mut [f32])) {
        for (r, chunk) in self.weights.chunks_exact_mut(self.dim).enumerate() {
            f(r, chunk);
        }
    }

    /// L2 norm of the full table (test helper).
    #[must_use]
    pub fn frob_norm(&self) -> f64 {
        lazydp_tensor::vecops::norm(&self.weights)
    }

    /// Maximum absolute element-wise difference to another table.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(
            (self.rows, self.dim),
            (other.rows, other.dim),
            "table shape mismatch"
        );
        lazydp_tensor::vecops::max_abs_diff(&self.weights, &other.weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    #[test]
    fn init_uniform_bounds_and_determinism() {
        let mut r1 = Xoshiro256PlusPlus::seed_from(1);
        let mut r2 = Xoshiro256PlusPlus::seed_from(1);
        let a = EmbeddingTable::init_uniform(100, 8, &mut r1);
        let b = EmbeddingTable::init_uniform(100, 8, &mut r2);
        assert_eq!(a, b);
        let bound = 1.0 / (100f32).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn gather_returns_rows_in_order() {
        let mut t = EmbeddingTable::zeros(4, 2);
        for r in 0..4 {
            let rf = r as f32;
            t.row_mut(r).copy_from_slice(&[rf, rf * 10.0]);
        }
        let g = t.gather(&[3, 1, 3]);
        assert_eq!(g.row(0), &[3.0, 30.0]);
        assert_eq!(g.row(1), &[1.0, 10.0]);
        assert_eq!(g.row(2), &[3.0, 30.0]);
    }

    #[test]
    fn sparse_update_touches_only_listed_rows() {
        let mut t = EmbeddingTable::zeros(5, 2);
        let grad = SparseGrad::from_entries(2, vec![(1, vec![1.0, 2.0]), (3, vec![-1.0, 0.5])]);
        t.sparse_update(&grad, 0.1);
        assert_eq!(t.row(0), &[0.0, 0.0]);
        assert_eq!(t.row(1), &[-0.1, -0.2]);
        assert_eq!(t.row(2), &[0.0, 0.0]);
        assert!((t.row(3)[0] - 0.1).abs() < 1e-7);
        assert!((t.row(3)[1] + 0.05).abs() < 1e-7);
        assert_eq!(t.row(4), &[0.0, 0.0]);
    }

    #[test]
    fn duplicate_indices_accumulate_in_sparse_update() {
        // An un-coalesced gradient may list the same row twice; both
        // contributions must land (matching dense scatter-add semantics).
        let mut t = EmbeddingTable::zeros(2, 1);
        let grad = SparseGrad::from_entries(1, vec![(0, vec![1.0]), (0, vec![2.0])]);
        t.sparse_update(&grad, 1.0);
        assert_eq!(t.row(0), &[-3.0]);
    }

    #[test]
    fn for_each_row_mut_visits_all_rows_once() {
        let mut t = EmbeddingTable::zeros(7, 3);
        let mut visited = Vec::new();
        t.for_each_row_mut(|r, row| {
            visited.push(r);
            row[0] = r as f32;
        });
        assert_eq!(visited, (0..7).collect::<Vec<_>>());
        assert_eq!(t.row(6)[0], 6.0);
    }

    #[test]
    fn bytes_and_elements() {
        let t = EmbeddingTable::zeros(10, 16);
        assert_eq!(t.elements(), 160);
        assert_eq!(t.bytes(), 640);
    }

    #[test]
    #[should_panic(expected = "row 9 out of")]
    fn gather_rejects_out_of_range() {
        let t = EmbeddingTable::zeros(4, 2);
        let _ = t.gather(&[9]);
    }
}
