//! Per-row access statistics.
//!
//! The paper's skew study (Fig. 13(d)) defines workloads by how
//! concentrated table accesses are: "90% of the embedding table accesses
//! are concentrated on 36% / 10% / 0.6% of table entries" for the
//! low/medium/high-skew datasets. [`AccessTracker`] measures exactly that
//! statistic from an observed trace, which the tests in `lazydp-data` use
//! to validate the calibrated Zipf generators.

/// Records how many times each row of one table has been accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessTracker {
    counts: Vec<u64>,
    total: u64,
}

impl AccessTracker {
    /// Creates a tracker for a table with `rows` rows.
    #[must_use]
    pub fn new(rows: usize) -> Self {
        Self {
            counts: vec![0; rows],
            total: 0,
        }
    }

    /// Records one access to `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn record(&mut self, row: u64) {
        self.counts[row as usize] += 1;
        self.total += 1;
    }

    /// Records a batch of accesses.
    pub fn record_all(&mut self, rows: &[u64]) {
        for &r in rows {
            self.record(r);
        }
    }

    /// Total number of recorded accesses.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of rows accessed at least once.
    #[must_use]
    pub fn touched_rows(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Fraction of all accesses captured by the most-accessed
    /// `fraction` of rows (the paper's skew metric).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    #[must_use]
    pub fn mass_of_top_fraction(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction), "fraction outside [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        let k = ((self.counts.len() as f64) * fraction).round() as usize;
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = sorted.iter().take(k).sum();
        top as f64 / self.total as f64
    }

    /// Smallest fraction of rows that captures at least `mass` of all
    /// accesses (inverse of [`mass_of_top_fraction`](Self::mass_of_top_fraction)).
    ///
    /// # Panics
    ///
    /// Panics if `mass` is outside `[0, 1]`.
    #[must_use]
    pub fn fraction_for_mass(&self, mass: f64) -> f64 {
        assert!((0.0..=1.0).contains(&mass), "mass outside [0,1]");
        if self.total == 0 {
            return 0.0;
        }
        let target = (self.total as f64) * mass;
        let mut sorted = self.counts.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let mut acc = 0u64;
        for (i, &c) in sorted.iter().enumerate() {
            acc += c;
            if acc as f64 >= target {
                return (i + 1) as f64 / self.counts.len() as f64;
            }
        }
        1.0
    }

    /// The raw per-row counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_totals() {
        let mut t = AccessTracker::new(4);
        t.record_all(&[0, 0, 1, 3]);
        assert_eq!(t.total(), 4);
        assert_eq!(t.touched_rows(), 3);
        assert_eq!(t.counts(), &[2, 1, 0, 1]);
    }

    #[test]
    fn top_fraction_mass_on_uniform_counts() {
        let mut t = AccessTracker::new(10);
        for r in 0..10 {
            t.record(r);
        }
        assert!((t.mass_of_top_fraction(0.5) - 0.5).abs() < 1e-12);
        assert!((t.mass_of_top_fraction(1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_fraction_mass_on_skewed_counts() {
        let mut t = AccessTracker::new(10);
        // Row 0 gets 90 accesses, the rest 10 in total.
        for _ in 0..90 {
            t.record(0);
        }
        for r in 1..10 {
            t.record(r);
        }
        t.record(1); // 100 total
        assert!(t.mass_of_top_fraction(0.1) >= 0.9);
        let f = t.fraction_for_mass(0.9);
        assert!((f - 0.1).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn fraction_for_mass_inverts_mass_of_top_fraction() {
        let mut t = AccessTracker::new(100);
        for r in 0..100u64 {
            for _ in 0..(101 - r) {
                t.record(r);
            }
        }
        for mass in [0.3, 0.5, 0.9] {
            let f = t.fraction_for_mass(mass);
            assert!(t.mass_of_top_fraction(f) >= mass - 1e-9);
        }
    }

    #[test]
    fn empty_tracker_edge_cases() {
        let t = AccessTracker::new(5);
        assert_eq!(t.mass_of_top_fraction(0.5), 0.0);
        assert_eq!(t.fraction_for_mass(0.5), 0.0);
        assert_eq!(t.touched_rows(), 0);
    }
}
