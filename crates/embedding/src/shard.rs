//! Hash-partitioned embedding shards.
//!
//! LazyDP's sparse path (gather → lazy flush → sparse update) touches
//! `O(batch)` rows per iteration, so once the per-row *noise sampling*
//! is parallel (PR 2), the next scaling lever is partitioning the sparse
//! *state* itself: split a table's rows across `S` independent shards so
//! that history bookkeeping, noise accumulation, and the sparse update
//! of each shard can proceed in parallel with no shared mutable state —
//! the same partitioning that sparsity-preserving DP embedding training
//! systems use to keep the DP machinery off the critical path.
//!
//! The partition function is the modulo hash `shard(r) = r mod S` with
//! local index `r div S`. Two properties make it the right choice here:
//!
//! 1. **Skew robustness** — hot rows of a Zipf trace (low row ids, the
//!    way `lazydp_data`'s `AccessDistribution` ranks them) spread
//!    round-robin across shards instead of piling into one range shard.
//! 2. **Order preservation** — for rows of one shard, global order and
//!    local order coincide (`r1 < r2 ∧ r1 ≡ r2 (mod S)` ⇒
//!    `r1/S < r2/S`), so partitioning a sorted, deduplicated index list
//!    yields sorted, deduplicated per-shard lists with no re-sort.
//!
//! Everything here is *layout only*: a [`ShardedTable`] holds exactly
//! the same `rows × dim` weights as the dense [`EmbeddingTable`] it was
//! built from, and every operation is defined to be bitwise identical to
//! the dense equivalent (asserted by this module's tests and the
//! workspace-level proptests).

use crate::sparse::SparseGrad;
use crate::table::EmbeddingTable;
use lazydp_exec::Executor;
use lazydp_tensor::Matrix;

/// The hash-partition function mapping global rows to `S` shards.
///
/// A `ShardSpec` is deliberately tiny (one `usize`) and `Copy`: it is
/// the *shared contract* between every sharded structure — a
/// [`ShardedTable`], its `ShardedHistory` (in `lazydp-core`), and the
/// per-shard gradient partitions must all agree on it, or rows would
/// migrate between shards mid-training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ShardSpec {
    shards: usize,
}

impl ShardSpec {
    /// A partition into `shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        Self { shards }
    }

    /// Number of shards `S`.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning global row `row` (`row mod S`).
    #[must_use]
    pub fn shard_of(&self, row: u64) -> usize {
        usize::try_from(row % self.shards as u64).expect("shard index fits usize")
    }

    /// The row's index within its shard (`row div S`).
    #[must_use]
    pub fn local_row(&self, row: u64) -> u64 {
        row / self.shards as u64
    }

    /// The `(shard, local_row)` pair of a global row — **the** one
    /// row→shard partition function of the workspace.
    ///
    /// Every structure that splits per-row state by shard —
    /// [`ShardedTable`] here and `ShardedHistory` in `lazydp-core`
    /// today; any future sharded layer (e.g. a shard-partitioned
    /// `lazydp_store` backend) — must route through this single helper
    /// rather than re-deriving the modulo arithmetic, so the partition
    /// can never drift between layers: a row's weights and its noise
    /// history are always owned by the same shard. (`lazydp_store`'s
    /// row→page mapping is orthogonal — pages slice *within* a table's
    /// row space, shards slice *across* it.)
    #[must_use]
    pub fn locate(&self, row: u64) -> (usize, u64) {
        (self.shard_of(row), self.local_row(row))
    }

    /// The global row for local index `local` of shard `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    #[must_use]
    pub fn global_row(&self, shard: usize, local: u64) -> u64 {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        local * self.shards as u64 + shard as u64
    }

    /// Number of global rows `< total_rows` owned by `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= shards`.
    #[must_use]
    pub fn rows_in_shard(&self, total_rows: usize, shard: usize) -> usize {
        assert!(shard < self.shards, "shard {shard} out of {}", self.shards);
        (total_rows + self.shards - 1 - shard) / self.shards
    }

    /// Splits a **sorted, deduplicated** global index list into one
    /// sorted, deduplicated *global*-index list per shard (property 2 of
    /// the module docs: no re-sort needed).
    #[must_use]
    pub fn partition_indices(&self, sorted: &[u64]) -> Vec<Vec<u64>> {
        let mut out = vec![Vec::new(); self.shards];
        for &row in sorted {
            out[self.shard_of(row)].push(row);
        }
        out
    }

    /// Splits a **coalesced** (sorted, duplicate-free) sparse gradient
    /// into one coalesced per-shard gradient with **local** row indices.
    #[must_use]
    pub fn partition_grad(&self, grad: &SparseGrad) -> Vec<SparseGrad> {
        let mut out = vec![SparseGrad::new(grad.dim()); self.shards];
        for (row, values) in grad.iter() {
            out[self.shard_of(row)].push(self.local_row(row), values);
        }
        out
    }

    /// Counts, per shard, how many of the given rows it owns — the
    /// partition-count gather of DP-AdaFEST's private partition
    /// selection (one count per hash partition, fed to the Gaussian
    /// threshold test). `rows` need not be sorted or deduplicated; the
    /// caller decides whether duplicates count once (pass a deduped
    /// list) or per occurrence. `counts` is cleared and resized to
    /// `shards()`, so a warm caller re-uses its allocation.
    pub fn partition_counts_into(&self, rows: &[u64], counts: &mut Vec<u64>) {
        counts.clear();
        counts.resize(self.shards, 0);
        for &row in rows {
            counts[self.shard_of(row)] += 1;
        }
    }

    /// Allocating convenience wrapper over
    /// [`partition_counts_into`](Self::partition_counts_into).
    #[must_use]
    pub fn partition_counts(&self, rows: &[u64]) -> Vec<u64> {
        let mut counts = Vec::new();
        self.partition_counts_into(rows, &mut counts);
        counts
    }
}

/// An embedding table hash-partitioned into `S` independent shards.
///
/// Row `r` lives at local row `r div S` of shard `r mod S`; each shard
/// is an ordinary [`EmbeddingTable`], so every per-row primitive is
/// *literally the same code* as the dense path — sharding changes where
/// a row lives, never what happens to it. That is what makes the
/// S-shard training path bitwise identical to the 1-shard path.
///
/// The payoff is [`par_sparse_update`](Self::par_sparse_update): shards
/// are disjoint owned allocations, so safe Rust can hand each worker its
/// own shard mutably and apply a batch's sparse update shard-parallel.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedTable {
    spec: ShardSpec,
    rows: usize,
    dim: usize,
    shards: Vec<EmbeddingTable>,
}

impl ShardedTable {
    /// Creates a zero-initialized sharded table.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0`, `dim == 0`, or `shards > rows` (a shard
    /// would be empty — use fewer shards for tiny tables).
    #[must_use]
    pub fn zeros(rows: usize, dim: usize, shards: usize) -> Self {
        let spec = ShardSpec::new(shards);
        assert!(
            shards <= rows,
            "cannot split {rows} rows into {shards} non-empty shards"
        );
        let shards = (0..shards)
            .map(|s| EmbeddingTable::zeros(spec.rows_in_shard(rows, s), dim))
            .collect();
        Self {
            spec,
            rows,
            dim,
            shards,
        }
    }

    /// Re-partitions a dense table into `shards` shards (bitwise copy of
    /// every row).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0` or `shards > table.rows()`.
    #[must_use]
    pub fn from_dense(table: &EmbeddingTable, shards: usize) -> Self {
        let mut out = Self::zeros(table.rows(), table.dim(), shards);
        for r in 0..table.rows() {
            out.row_mut(r as u64).copy_from_slice(table.row(r));
        }
        out
    }

    /// Reassembles the dense table (bitwise copy of every row).
    #[must_use]
    pub fn to_dense(&self) -> EmbeddingTable {
        let mut out = EmbeddingTable::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(self.row(r as u64));
        }
        out
    }

    /// The partition function.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Total number of (global) rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shards themselves (read-only).
    #[must_use]
    pub fn shards(&self) -> &[EmbeddingTable] {
        &self.shards
    }

    /// Size in bytes of the weight storage (identical to the dense
    /// table's: sharding adds no per-row overhead).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(EmbeddingTable::bytes).sum()
    }

    /// Global row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: u64) -> &[f32] {
        assert!((r as usize) < self.rows, "row {r} out of {}", self.rows);
        let (s, l) = self.spec.locate(r);
        self.shards[s].row(l as usize)
    }

    /// Mutable global row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: u64) -> &mut [f32] {
        assert!((r as usize) < self.rows, "row {r} out of {}", self.rows);
        let (s, l) = self.spec.locate(r);
        self.shards[s].row_mut(l as usize)
    }

    /// Gathers `indices` into a dense `indices.len() × dim` matrix, in
    /// input order — identical output to [`EmbeddingTable::gather`].
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn gather(&self, indices: &[u64]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.dim);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Sequential sparse update — identical arithmetic to
    /// [`EmbeddingTable::sparse_update`], routed through the partition.
    ///
    /// # Panics
    ///
    /// Panics on gradient dimension mismatch.
    pub fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        for (idx, values) in grad.iter() {
            let row = self.row_mut(idx);
            for (w, &g) in row.iter_mut().zip(values.iter()) {
                *w -= lr * g;
            }
        }
    }

    /// Shard-parallel sparse update: partitions the **coalesced** grad
    /// with [`ShardSpec::partition_grad`] and updates every shard
    /// concurrently on `exec` (chunk = one shard, so the chunk-addressed
    /// determinism contract of `lazydp_exec` applies: bitwise identical
    /// to [`sparse_update`](Self::sparse_update) for any thread count).
    ///
    /// # Panics
    ///
    /// Panics on gradient dimension mismatch.
    pub fn par_sparse_update(&mut self, grad: &SparseGrad, lr: f32, exec: &Executor) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        let by_shard = self.spec.partition_grad(grad);
        exec.par_for(&mut self.shards, 1, |s, chunk| {
            chunk[0].sparse_update(&by_shard[s], lr);
        });
    }

    /// Maximum absolute element-wise difference to another sharded
    /// table.
    ///
    /// # Panics
    ///
    /// Panics on shape or partition mismatch.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Self) -> f32 {
        assert_eq!(
            (self.spec, self.rows, self.dim),
            (other.spec, other.rows, other.dim),
            "sharded table shape mismatch"
        );
        let mut m = 0.0f32;
        for (a, b) in self.shards.iter().zip(other.shards.iter()) {
            m = m.max(a.max_abs_diff(b));
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn dense(rows: usize, dim: usize) -> EmbeddingTable {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        EmbeddingTable::init_uniform(rows, dim, &mut rng)
    }

    #[test]
    fn spec_roundtrips_rows_and_counts_them() {
        for shards in [1usize, 2, 3, 4, 8] {
            let spec = ShardSpec::new(shards);
            let total = 37usize;
            let mut seen = 0usize;
            for s in 0..shards {
                for local in 0..spec.rows_in_shard(total, s) as u64 {
                    let g = spec.global_row(s, local);
                    assert!((g as usize) < total);
                    assert_eq!(spec.shard_of(g), s);
                    assert_eq!(spec.local_row(g), local);
                    seen += 1;
                }
            }
            assert_eq!(seen, total, "partition must cover every row once");
        }
    }

    #[test]
    fn partition_counts_match_partition_indices() {
        let spec = ShardSpec::new(4);
        let rows: Vec<u64> = vec![0, 1, 4, 5, 8, 9, 13, 21];
        let counts = spec.partition_counts(&rows);
        let parts = spec.partition_indices(&rows);
        assert_eq!(counts.len(), 4);
        for (c, p) in counts.iter().zip(parts.iter()) {
            assert_eq!(*c, p.len() as u64);
        }
        assert_eq!(counts.iter().sum::<u64>(), rows.len() as u64);
    }

    #[test]
    fn partition_counts_into_reuses_and_resets_the_buffer() {
        let spec = ShardSpec::new(3);
        let mut counts = vec![99u64; 7]; // stale, wrong-sized buffer
        spec.partition_counts_into(&[0, 3, 6, 1], &mut counts);
        assert_eq!(counts, vec![3, 1, 0]);
        // Empty row list ⇒ all-zero counts, still one slot per shard.
        spec.partition_counts_into(&[], &mut counts);
        assert_eq!(counts, vec![0, 0, 0]);
    }

    #[test]
    fn partition_preserves_sorted_dedup_order() {
        let spec = ShardSpec::new(3);
        let parts = spec.partition_indices(&[0, 1, 2, 3, 6, 7, 9, 12]);
        assert_eq!(parts[0], vec![0, 3, 6, 9, 12]);
        assert_eq!(parts[1], vec![1, 7]);
        assert_eq!(parts[2], vec![2]);
        for p in &parts {
            assert!(p.windows(2).all(|w| w[0] < w[1]), "sorted per shard");
        }
    }

    #[test]
    fn from_dense_roundtrip_is_bitwise() {
        let d = dense(29, 6);
        for shards in [1usize, 2, 4, 8] {
            let sharded = ShardedTable::from_dense(&d, shards);
            assert_eq!(sharded.to_dense(), d, "{shards} shards");
            assert_eq!(sharded.bytes(), d.bytes());
            for r in 0..29u64 {
                assert_eq!(sharded.row(r), d.row(r as usize));
            }
        }
    }

    #[test]
    fn gather_matches_dense_gather() {
        let d = dense(40, 4);
        let sharded = ShardedTable::from_dense(&d, 4);
        let idx = [3u64, 39, 0, 3, 17];
        assert_eq!(sharded.gather(&idx), d.gather(&idx));
    }

    #[test]
    fn sparse_updates_match_dense_bitwise_for_any_shard_count() {
        let d0 = dense(50, 3);
        let mut grad = SparseGrad::from_entries(
            3,
            vec![
                (0, vec![1.0, -2.0, 0.5]),
                (7, vec![0.25, 0.0, -1.0]),
                (49, vec![3.0, 3.0, 3.0]),
                (7, vec![1.0, 1.0, 1.0]),
            ],
        );
        let _ = grad.coalesce();
        let mut want = d0.clone();
        want.sparse_update(&grad, 0.1);
        for shards in [1usize, 2, 4, 8] {
            let mut seq = ShardedTable::from_dense(&d0, shards);
            seq.sparse_update(&grad, 0.1);
            assert_eq!(seq.to_dense(), want, "sequential, {shards} shards");
            for threads in [1usize, 4] {
                let mut par = ShardedTable::from_dense(&d0, shards);
                par.par_sparse_update(&grad, 0.1, &Executor::new(threads));
                assert_eq!(
                    par.to_dense(),
                    want,
                    "parallel, {shards} shards, {threads} threads"
                );
                assert_eq!(par.max_abs_diff(&seq), 0.0);
            }
        }
    }

    #[test]
    fn locate_is_the_shard_of_local_row_pair() {
        for shards in [1usize, 3, 8] {
            let spec = ShardSpec::new(shards);
            for row in 0..64u64 {
                assert_eq!(spec.locate(row), (spec.shard_of(row), spec.local_row(row)));
            }
        }
    }

    #[test]
    fn zipf_hot_rows_spread_across_shards() {
        // Module-doc property 1: the hottest rows of a rank-ordered
        // trace (ids 0..k) land in k distinct shards, not one.
        let spec = ShardSpec::new(4);
        let hot: Vec<usize> = (0..4u64).map(|r| spec.shard_of(r)).collect();
        let distinct: std::collections::HashSet<_> = hot.iter().collect();
        assert_eq!(distinct.len(), 4);
    }

    #[test]
    #[should_panic(expected = "non-empty shards")]
    fn rejects_more_shards_than_rows() {
        let _ = ShardedTable::zeros(3, 2, 8);
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn rejects_zero_shards() {
        let _ = ShardSpec::new(0);
    }
}
