//! Virtual (lazily materialized) embedding tables.
//!
//! The paper's whole point is that LazyDP touches only `O(batch)` rows
//! per iteration while eager DP-SGD touches *all* of them. A
//! [`VirtualTable`] exploits that asymmetry to let the **functional**
//! stack run at the paper's true scale: rows are materialized on first
//! touch — untouched rows are pure functions of `(seed, row)` — so a
//! logically-96 GB table costs physical memory proportional only to the
//! rows training has actually visited. Algorithms that must touch every
//! row (eager DP-SGD's dense noisy update) are *physically impossible*
//! to run this way, which is exactly the paper's Fig. 4 asymmetry.

use crate::sparse::SparseGrad;
use lazydp_rng::counter::CounterRng;
use std::collections::BTreeMap;

/// An embedding table with lazily materialized rows.
///
/// Unmaterialized rows hold their deterministic initialization value
/// (uniform `±1/√rows`, matching
/// [`EmbeddingTable::init_uniform`](crate::EmbeddingTable::init_uniform)'s
/// distribution but addressed per-row so any row can be produced in
/// isolation).
#[derive(Debug, Clone)]
pub struct VirtualTable {
    logical_rows: u64,
    dim: usize,
    init: CounterRng,
    init_bound: f32,
    materialized: BTreeMap<u64, Vec<f32>>,
}

impl VirtualTable {
    /// Creates a virtual table with `logical_rows × dim` logical
    /// parameters and zero physical rows.
    ///
    /// # Panics
    ///
    /// Panics if `logical_rows == 0` or `dim == 0`.
    #[must_use]
    pub fn new(logical_rows: u64, dim: usize, seed: u64) -> Self {
        assert!(logical_rows > 0 && dim > 0, "table must be non-empty");
        Self {
            logical_rows,
            dim,
            init: CounterRng::new(seed ^ 0x7fe1_57ab_1e00_cafe),
            init_bound: 1.0 / (logical_rows as f64).sqrt() as f32,
            materialized: BTreeMap::new(),
        }
    }

    /// Logical row count.
    #[must_use]
    pub fn logical_rows(&self) -> u64 {
        self.logical_rows
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Logical size in bytes (what an eager algorithm would have to
    /// allocate and stream).
    #[must_use]
    pub fn logical_bytes(&self) -> u64 {
        self.logical_rows * self.dim as u64 * 4
    }

    /// Number of physically materialized rows.
    #[must_use]
    pub fn materialized_rows(&self) -> usize {
        self.materialized.len()
    }

    /// Physical weight bytes actually resident.
    #[must_use]
    pub fn physical_bytes(&self) -> u64 {
        (self.materialized.len() * self.dim * 4) as u64
    }

    /// The deterministic initialization value of row `r` (whether or not
    /// it is materialized).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn init_row(&self, r: u64) -> Vec<f32> {
        assert!(
            r < self.logical_rows,
            "row {r} out of {}",
            self.logical_rows
        );
        let mut stream = self.init.derive(r).stream(0);
        let mut out = vec![0.0f32; self.dim];
        for x in &mut out {
            use lazydp_rng::Prng;
            *x = (stream.next_f32() * 2.0 - 1.0) * self.init_bound;
        }
        out
    }

    /// Reads row `r` into a freshly allocated vector (init value if
    /// never written).
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    #[must_use]
    pub fn read_row(&self, r: u64) -> Vec<f32> {
        match self.materialized.get(&r) {
            Some(v) => v.clone(),
            None => self.init_row(r),
        }
    }

    /// Mutable access to row `r`, materializing it on first touch.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row_mut(&mut self, r: u64) -> &mut [f32] {
        assert!(
            r < self.logical_rows,
            "row {r} out of {}",
            self.logical_rows
        );
        if !self.materialized.contains_key(&r) {
            let init = self.init_row(r);
            self.materialized.insert(r, init);
        }
        self.materialized.get_mut(&r).expect("just inserted")
    }

    /// Sum-pools the rows of `indices` into a `dim`-wide vector (the
    /// embedding-bag forward for one sample).
    #[must_use]
    pub fn pool(&self, indices: &[u64]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dim];
        for &idx in indices {
            let row = self.read_row(idx);
            for (o, &w) in out.iter_mut().zip(row.iter()) {
                *o += w;
            }
        }
        out
    }

    /// Sparse update `row[idx] -= lr · g` — identical semantics to
    /// [`EmbeddingTable::sparse_update`](crate::EmbeddingTable::sparse_update).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range rows.
    pub fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        for (idx, values) in grad.iter() {
            let row = self.row_mut(idx);
            for (w, &g) in row.iter_mut().zip(values.iter()) {
                *w -= lr * g;
            }
        }
    }

    /// Materializes into a dense [`EmbeddingTable`](crate::EmbeddingTable)
    /// — test helper for small logical sizes; panics by design if the
    /// table would not reasonably fit (> 2^28 elements).
    ///
    /// # Panics
    ///
    /// Panics if `logical_rows × dim > 2^28`.
    #[must_use]
    pub fn to_dense(&self) -> crate::EmbeddingTable {
        let elements = self.logical_rows * self.dim as u64;
        assert!(
            elements <= 1 << 28,
            "refusing to densify {elements} elements"
        );
        let mut t = crate::EmbeddingTable::zeros(self.logical_rows as usize, self.dim);
        for r in 0..self.logical_rows {
            t.row_mut(r as usize).copy_from_slice(&self.read_row(r));
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn untouched_rows_cost_nothing() {
        let t = VirtualTable::new(1u64 << 40, 128, 7); // logical 512 TB
        assert_eq!(t.materialized_rows(), 0);
        assert_eq!(t.physical_bytes(), 0);
        assert_eq!(t.logical_bytes(), (1u64 << 40) * 512);
        // Reading does not materialize.
        let _ = t.read_row(123_456_789_000);
        assert_eq!(t.materialized_rows(), 0);
    }

    #[test]
    fn init_rows_are_deterministic_and_bounded() {
        let t1 = VirtualTable::new(10_000, 16, 42);
        let t2 = VirtualTable::new(10_000, 16, 42);
        assert_eq!(t1.init_row(777), t2.init_row(777));
        assert_ne!(t1.init_row(777), t1.init_row(778));
        let bound = 1.0 / (10_000f64).sqrt() as f32;
        assert!(t1.init_row(5).iter().all(|x| x.abs() <= bound));
        let t3 = VirtualTable::new(10_000, 16, 43);
        assert_ne!(t1.init_row(777), t3.init_row(777), "seed-sensitive");
    }

    #[test]
    fn writes_materialize_and_persist() {
        let mut t = VirtualTable::new(1_000_000, 4, 1);
        let before = t.read_row(99);
        t.row_mut(99)[0] += 1.0;
        assert_eq!(t.materialized_rows(), 1);
        let after = t.read_row(99);
        assert!((after[0] - before[0] - 1.0).abs() < 1e-7);
        assert_eq!(&after[1..], &before[1..]);
        // Other rows untouched.
        assert_eq!(t.read_row(98), t.init_row(98));
    }

    #[test]
    fn sparse_update_matches_dense_table_semantics() {
        let mut v = VirtualTable::new(64, 4, 5);
        let mut d = v.to_dense();
        let mut grad = SparseGrad::from_entries(
            4,
            vec![
                (3, vec![1.0, 2.0, 3.0, 4.0]),
                (60, vec![-1.0, 0.0, 0.5, 2.0]),
            ],
        );
        let _ = grad.coalesce();
        v.sparse_update(&grad, 0.1);
        d.sparse_update(&grad, 0.1);
        for r in 0..64u64 {
            let vr = v.read_row(r);
            let dr = d.row(r as usize);
            for (a, b) in vr.iter().zip(dr.iter()) {
                assert!((a - b).abs() < 1e-7, "row {r}");
            }
        }
        assert_eq!(v.materialized_rows(), 2, "only updated rows resident");
    }

    #[test]
    fn pool_sums_rows() {
        let t = VirtualTable::new(100, 3, 9);
        let pooled = t.pool(&[1, 2]);
        let expect: Vec<f32> = t
            .init_row(1)
            .iter()
            .zip(t.init_row(2).iter())
            .map(|(a, b)| a + b)
            .collect();
        assert_eq!(pooled, expect);
        assert_eq!(t.pool(&[]), vec![0.0; 3]);
    }

    #[test]
    #[should_panic(expected = "refusing to densify")]
    fn densify_guard() {
        let t = VirtualTable::new(1 << 30, 512, 1);
        let _ = t.to_dense();
    }
}
