//! Embedding-layer substrate: tables, bags, pooling, sparse gradients.
//!
//! Embedding layers are the heart of the LazyDP paper. A table is an array
//! of `dim`-wide vectors indexed by a categorical feature; a training
//! iteration *gathers* a handful of rows (0.03% of MLPerf DLRM's table per
//! iteration, paper §1), pools them, and — under non-private SGD —
//! *sparsely* updates only the gathered rows (paper Fig. 4(a)). DP-SGD
//! instead turns that into a dense noisy update of every row
//! (Fig. 4(b)), which is the bottleneck LazyDP removes.
//!
//! This crate provides the functional pieces:
//!
//! * [`EmbeddingTable`] — the weight storage with sparse/dense update
//!   primitives,
//! * [`EmbeddingBag`] — gather + pooling forward/backward,
//! * [`SparseGrad`] — per-row gradients with coalescing (the "gradient
//!   coalescing" stage of Fig. 11),
//! * [`AccessTracker`] — per-row access statistics used to validate the
//!   skewed-workload generators against Fig. 13(d)'s definitions,
//! * [`VirtualTable`] — a lazily-materialized table that lets the
//!   functional LazyDP stack run at the paper's true 96 GB+ logical
//!   scale (only touched rows are resident; see `lazydp-core::scale`),
//! * [`ShardedTable`] / [`ShardSpec`] — the table hash-partitioned into
//!   `S` independent shards so sparse updates (and, in `lazydp-core`,
//!   the pending-noise flush) run shard-parallel while staying bitwise
//!   identical to the 1-shard path,
//! * [`EmbeddingStorage`] — the row-access trait those backends (and
//!   `lazydp_store::StoredTable`, the out-of-core paged backend) share,
//!   so the whole training stack is generic over where rows live.
//!
//! # Example: sharding a table without changing its contents
//!
//! ```
//! use lazydp_embedding::{EmbeddingTable, ShardedTable, SparseGrad};
//! use lazydp_exec::Executor;
//! use lazydp_rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(1);
//! let dense = EmbeddingTable::init_uniform(100, 8, &mut rng);
//! let mut sharded = ShardedTable::from_dense(&dense, 4);
//!
//! // Same rows, same gathers — only the in-memory layout changed.
//! assert_eq!(sharded.gather(&[0, 97, 3]), dense.gather(&[0, 97, 3]));
//!
//! // Sparse updates apply shard-parallel, bitwise equal to the dense path.
//! let mut grad = SparseGrad::from_entries(8, vec![(3, vec![1.0; 8])]);
//! let _ = grad.coalesce();
//! sharded.par_sparse_update(&grad, 0.05, &Executor::new(4));
//! let mut expect = dense.clone();
//! expect.sparse_update(&grad, 0.05);
//! assert_eq!(sharded.to_dense(), expect);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod bag;
pub mod shard;
pub mod sparse;
pub mod storage;
pub mod table;
pub mod virtual_table;

pub use access::AccessTracker;
pub use bag::{EmbeddingBag, Pooling};
pub use shard::{ShardSpec, ShardedTable};
pub use sparse::{CoalesceScratch, SparseGrad};
pub use storage::EmbeddingStorage;
pub use table::EmbeddingTable;
pub use virtual_table::VirtualTable;
