//! Embedding-layer substrate: tables, bags, pooling, sparse gradients.
//!
//! Embedding layers are the heart of the LazyDP paper. A table is an array
//! of `dim`-wide vectors indexed by a categorical feature; a training
//! iteration *gathers* a handful of rows (0.03% of MLPerf DLRM's table per
//! iteration, paper §1), pools them, and — under non-private SGD —
//! *sparsely* updates only the gathered rows (paper Fig. 4(a)). DP-SGD
//! instead turns that into a dense noisy update of every row
//! (Fig. 4(b)), which is the bottleneck LazyDP removes.
//!
//! This crate provides the functional pieces:
//!
//! * [`EmbeddingTable`] — the weight storage with sparse/dense update
//!   primitives,
//! * [`EmbeddingBag`] — gather + pooling forward/backward,
//! * [`SparseGrad`] — per-row gradients with coalescing (the "gradient
//!   coalescing" stage of Fig. 11),
//! * [`AccessTracker`] — per-row access statistics used to validate the
//!   skewed-workload generators against Fig. 13(d)'s definitions,
//! * [`VirtualTable`] — a lazily-materialized table that lets the
//!   functional LazyDP stack run at the paper's true 96 GB+ logical
//!   scale (only touched rows are resident; see `lazydp-core::scale`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod bag;
pub mod sparse;
pub mod table;
pub mod virtual_table;

pub use access::AccessTracker;
pub use bag::{EmbeddingBag, Pooling};
pub use sparse::SparseGrad;
pub use table::EmbeddingTable;
pub use virtual_table::VirtualTable;
