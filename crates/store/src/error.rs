//! Typed storage errors.
//!
//! Before PR 10 every I/O failure inside [`StoredTable`] aborted the
//! process through an `expect()`. Now the engine distinguishes the two
//! things that can actually go wrong — the spill device failing
//! (retryable, and survivable by degrading to the resident backend)
//! and a page coming back with the wrong checksum (not retryable:
//! re-reading corrupt bytes yields the same corrupt bytes) — and every
//! fallible public API returns this type.
//!
//! [`StoredTable`]: crate::StoredTable

use std::io;
use std::path::PathBuf;

/// Why a storage-engine operation failed.
#[derive(Debug)]
pub enum StorageError {
    /// The spill device failed. `site` names the operation
    /// (`page.read`, `page.write`, …), `page` the page involved when
    /// one is.
    Io {
        /// The failing operation.
        site: &'static str,
        /// The page being accessed, if the operation was page-scoped.
        page: Option<usize>,
        /// The underlying I/O error.
        source: io::Error,
    },
    /// A page's stored checksum did not match its data at fault-in —
    /// a torn or corrupted page that must never be trained on.
    Corrupt {
        /// The corrupt page.
        page: usize,
        /// The spill file holding it.
        path: PathBuf,
        /// The checksum recorded in the page trailer.
        stored: u64,
        /// The checksum computed over the page data just read.
        computed: u64,
    },
}

impl StorageError {
    /// True when re-executing the failed operation could succeed.
    /// Device errors are worth retrying (and, exhausted, worth
    /// degrading over); corruption is final.
    #[must_use]
    pub fn retryable(&self) -> bool {
        matches!(self, StorageError::Io { .. })
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io { site, page, source } => match page {
                Some(p) => write!(f, "spill {site} failed on page {p}: {source}"),
                None => write!(f, "spill {site} failed: {source}"),
            },
            StorageError::Corrupt {
                page,
                path,
                stored,
                computed,
            } => write!(
                f,
                "page {page} of {} failed checksum verification \
                 (checksum mismatch: trailer {stored:#018x}, data {computed:#018x})",
                path.display()
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            StorageError::Corrupt { .. } => None,
        }
    }
}

impl From<StorageError> for io::Error {
    fn from(e: StorageError) -> Self {
        match e {
            StorageError::Io { source, .. } => source,
            corrupt => io::Error::new(io::ErrorKind::InvalidData, corrupt.to_string()),
        }
    }
}

impl lazydp_fault::Retryable for StorageError {
    fn retryable(&self) -> bool {
        StorageError::retryable(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_not_retryable_and_names_the_checksum() {
        let e = StorageError::Corrupt {
            page: 3,
            path: PathBuf::from("/tmp/x.pages"),
            stored: 1,
            computed: 2,
        };
        assert!(!e.retryable());
        let msg = e.to_string();
        assert!(msg.contains("checksum mismatch"), "{msg}");
        assert!(msg.contains("page 3"), "{msg}");
        let io_e: io::Error = e.into();
        assert_eq!(io_e.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn io_errors_are_retryable_and_keep_their_source() {
        let e = StorageError::Io {
            site: "page.read",
            page: Some(7),
            source: io::Error::new(io::ErrorKind::Interrupted, "blip"),
        };
        assert!(e.retryable());
        assert!(e.to_string().contains("page 7"));
        assert!(std::error::Error::source(&e).is_some());
        let io_e: io::Error = e.into();
        assert_eq!(io_e.kind(), io::ErrorKind::Interrupted);
    }
}
