//! Bounded page cache with clock (second-chance) eviction and dirty
//! write-back.
//!
//! The cache is the memory half of the storage engine: at most
//! `capacity` page frames are resident; faulting a page that is not
//! resident loads it from the [`PageFile`], evicting the first
//! not-recently-referenced frame the clock hand finds (writing it back
//! first if dirty). Eviction order is **deterministic** for a fixed
//! access schedule: the hand starts at frame 0, every fault advances it
//! by the same rule, and nothing in the policy depends on time, hashing
//! order, or thread identity. (Concurrent accessors of one table — the
//! lookahead prefetch racing the dense compute — interleave their
//! *schedules* nondeterministically, which may shift hit/miss counts,
//! but every access goes through this one coherent cache, so row values
//! are exact regardless. See `StoredTable`'s docs.)

use crate::error::StorageError;
use crate::pagefile::PageFile;
use lazydp_obs::CacheCounters;
use std::collections::HashMap;

/// Frame page id meaning "belongs to no page": set when an eviction's
/// replacement load fails after the old mapping was already removed.
/// Can never collide with a real id — tables address pages `0..pages`.
const ORPHAN_PAGE: usize = usize::MAX;

/// One resident page.
#[derive(Debug)]
struct Frame {
    page: usize,
    data: Vec<f32>,
    dirty: bool,
    /// Second-chance bit: set on every access, cleared when the clock
    /// hand sweeps past.
    referenced: bool,
}

/// A bounded set of page frames with clock eviction.
#[derive(Debug)]
pub struct PageCache {
    capacity: usize,
    page_elems: usize,
    frames: Vec<Frame>,
    /// page id → frame slot.
    map: HashMap<usize, usize>,
    hand: usize,
    /// Per-instance counters, mirrored into the `lazydp_obs` registry
    /// (`store.*` metrics) on every record.
    counters: CacheCounters,
}

impl PageCache {
    /// Creates an empty cache of at most `capacity` pages of
    /// `page_elems` elements each.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0` or `page_elems == 0`.
    #[must_use]
    pub fn new(capacity: usize, page_elems: usize) -> Self {
        assert!(capacity > 0, "cache must hold at least one page");
        assert!(page_elems > 0, "pages must be non-empty");
        Self {
            capacity,
            page_elems,
            frames: Vec::new(),
            map: HashMap::new(),
            hand: 0,
            counters: CacheCounters::new(),
        }
    }

    /// Capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pages currently resident.
    #[must_use]
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    /// The per-instance counters so far (test-only: production readers
    /// go through the `lazydp_obs` registry snapshot — rule O1).
    #[cfg(test)]
    #[must_use]
    pub fn stats(&self) -> lazydp_obs::CacheView {
        self.counters.obs_read()
    }

    /// Faults `page` in (loading from `file` on a miss, evicting via the
    /// clock if full) and returns its frame slot. The frame's reference
    /// bit is set.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the load or an eviction write-back.
    fn fault(&mut self, page: usize, file: &mut PageFile) -> Result<usize, StorageError> {
        if let Some(&slot) = self.map.get(&page) {
            self.counters.record_hit();
            self.frames[slot].referenced = true;
            return Ok(slot);
        }
        self.counters.record_miss(file.page_bytes());
        let slot = if self.frames.len() < self.capacity {
            let mut data = vec![0.0f32; self.page_elems];
            file.read_page(page, &mut data)?;
            self.frames.push(Frame {
                page,
                data,
                dirty: false,
                referenced: true,
            });
            self.frames.len() - 1
        } else {
            let slot = self.evict_slot();
            if self.frames[slot].dirty {
                self.counters.record_write_back(file.page_bytes());
                file.write_page(self.frames[slot].page, &self.frames[slot].data)?;
                // Mark clean *before* the fallible load below: if the
                // load errors, the frame is an unmapped clean orphan
                // that a later eviction discards harmlessly — leaving
                // it dirty would eventually write stale bytes over a
                // newer copy of the evicted page.
                self.frames[slot].dirty = false;
            }
            self.counters.record_eviction();
            let evicted = self.frames[slot].page;
            self.map.remove(&evicted);
            if let Err(e) = file.read_page(page, &mut self.frames[slot].data) {
                // The old mapping is already gone, so on a failed load
                // the frame's bytes belong to no page. Poison its id:
                // if it kept `evicted` and that page were later faulted
                // into another frame, evicting this orphan would unmap
                // the *live* frame — stranding its dirty updates and
                // silently resurrecting the stale file copy.
                let frame = &mut self.frames[slot];
                frame.page = ORPHAN_PAGE;
                frame.referenced = false;
                return Err(e);
            }
            let frame = &mut self.frames[slot];
            frame.page = page;
            frame.referenced = true;
            slot
        };
        self.map.insert(page, slot);
        Ok(slot)
    }

    /// Clock sweep: advance the hand, clearing reference bits, until a
    /// frame without its second chance is found. Terminates because each
    /// cleared bit can only delay a frame by one full revolution.
    fn evict_slot(&mut self) -> usize {
        loop {
            let slot = self.hand;
            self.hand = (self.hand + 1) % self.frames.len();
            if self.frames[slot].referenced {
                self.frames[slot].referenced = false;
            } else {
                return slot;
            }
        }
    }

    /// Runs `f` on the resident copy of `page`.
    ///
    /// # Errors
    ///
    /// Propagates fault I/O errors.
    pub fn with_page<R>(
        &mut self,
        page: usize,
        file: &mut PageFile,
        f: impl FnOnce(&[f32]) -> R,
    ) -> Result<R, StorageError> {
        let slot = self.fault(page, file)?;
        Ok(f(&self.frames[slot].data))
    }

    /// Runs `f` on the resident copy of `page` mutably and marks the
    /// frame dirty.
    ///
    /// # Errors
    ///
    /// Propagates fault I/O errors.
    pub fn with_page_mut<R>(
        &mut self,
        page: usize,
        file: &mut PageFile,
        f: impl FnOnce(&mut [f32]) -> R,
    ) -> Result<R, StorageError> {
        let slot = self.fault(page, file)?;
        self.frames[slot].dirty = true;
        Ok(f(&mut self.frames[slot].data))
    }

    /// The resident copy of `page`, if any, setting its reference bit.
    /// No hit is recorded — this is for callers that already faulted
    /// the page in (and accounted the access) via [`PageCache::touch`].
    pub fn peek(&mut self, page: usize) -> Option<&[f32]> {
        let &slot = self.map.get(&page)?;
        self.frames[slot].referenced = true;
        Some(&self.frames[slot].data)
    }

    /// Like [`PageCache::peek`], mutably; marks the frame dirty.
    pub fn peek_mut(&mut self, page: usize) -> Option<&mut [f32]> {
        let &slot = self.map.get(&page)?;
        let frame = &mut self.frames[slot];
        frame.referenced = true;
        frame.dirty = true;
        Some(&mut frame.data)
    }

    /// Faults `page` in without exposing it (the prefetch primitive).
    ///
    /// # Errors
    ///
    /// Propagates fault I/O errors.
    pub fn touch(&mut self, page: usize, file: &mut PageFile) -> Result<(), StorageError> {
        let _ = self.fault(page, file)?;
        Ok(())
    }

    /// Writes every dirty frame back to `file` (frames stay resident and
    /// become clean). Write-back traffic is counted as spill bytes.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn flush(&mut self, file: &mut PageFile) -> Result<(), StorageError> {
        for slot in 0..self.frames.len() {
            if self.frames[slot].dirty {
                self.counters.record_write_back(file.page_bytes());
                file.write_page(self.frames[slot].page, &self.frames[slot].data)?;
                self.frames[slot].dirty = false;
            }
        }
        Ok(())
    }

    /// The resident frames as `(page, data)` pairs, in an unspecified
    /// order. Frame data is authoritative — it is at least as new as
    /// the file's copy — which is what the degradation path needs to
    /// rebuild a bitwise-identical resident table when the spill device
    /// dies.
    pub fn resident_pages(&self) -> impl Iterator<Item = (usize, &[f32])> {
        self.frames
            .iter()
            .filter(|fr| fr.page != ORPHAN_PAGE)
            .map(|fr| (fr.page, fr.data.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(pages: usize, elems: usize) -> PageFile {
        PageFile::create(&std::env::temp_dir(), pages, elems).expect("page file")
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let mut f = file(4, 2);
        let mut c = PageCache::new(2, 2);
        c.touch(0, &mut f).unwrap();
        c.touch(1, &mut f).unwrap();
        c.touch(0, &mut f).unwrap();
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 2, 0));
        assert_eq!(s.bytes_loaded, 2 * 2 * 4);
        assert!((s.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn writes_survive_eviction_round_trips() {
        let mut f = file(3, 2);
        let mut c = PageCache::new(1, 2); // pathological 1-page cache
        c.with_page_mut(0, &mut f, |p| p.copy_from_slice(&[1.0, 2.0]))
            .unwrap();
        c.with_page_mut(1, &mut f, |p| p.copy_from_slice(&[3.0, 4.0]))
            .unwrap();
        c.with_page_mut(2, &mut f, |p| p.copy_from_slice(&[5.0, 6.0]))
            .unwrap();
        // Pages 0 and 1 were evicted dirty; fault them back.
        let got0 = c.with_page(0, &mut f, <[f32]>::to_vec).unwrap();
        assert_eq!(got0, vec![1.0, 2.0]);
        let got1 = c.with_page(1, &mut f, <[f32]>::to_vec).unwrap();
        assert_eq!(got1, vec![3.0, 4.0]);
        let s = c.stats();
        assert_eq!(s.write_backs, 3, "each dirty page written back once");
        assert_eq!(s.bytes_spilled, 3 * 2 * 4);
    }

    #[test]
    fn clock_gives_second_chances() {
        let mut f = file(4, 1);
        let mut c = PageCache::new(2, 1);
        c.touch(0, &mut f).unwrap(); // frames: [0*, _]
        c.touch(1, &mut f).unwrap(); // frames: [0*, 1*]
        c.touch(0, &mut f).unwrap(); // hit; 0 referenced again
                                     // Fault 2: hand clears 0's bit, clears 1's bit, wraps, evicts 0?
                                     // No — second chance: hand at 0 finds referenced → clear, hand
                                     // at 1 finds referenced → clear, hand back at 0 finds clear →
                                     // evict 0. Then touching 1 must still hit (it stayed resident).
        c.touch(2, &mut f).unwrap();
        let before = c.stats().misses;
        c.touch(1, &mut f).unwrap();
        assert_eq!(c.stats().misses, before, "page 1 kept its frame");
    }

    #[test]
    fn failed_replacement_load_orphans_the_frame_without_aliasing() {
        use lazydp_fault::{FaultKind, FaultPlan, Site};
        let _serial = lazydp_fault::exclusive();
        let mut f = file(4, 1);
        let mut c = PageCache::new(2, 1);
        c.with_page_mut(0, &mut f, |p| p[0] = 10.0).unwrap(); // read #0
        c.touch(1, &mut f).unwrap(); // read #1, cache full
                                     // Fail the next load (read #2): page 0 is evicted (written
                                     // back) and its map entry removed before the replacement read
                                     // errors — the frame must become a true orphan, not keep id 0.
        lazydp_fault::install(FaultPlan::new(1).rule(Site::PageRead, 2, FaultKind::Transient));
        assert!(c.touch(2, &mut f).is_err(), "injected load must surface");
        lazydp_fault::clear();
        let live: Vec<usize> = c.resident_pages().map(|(p, _)| p).collect();
        assert_eq!(live, vec![1], "the orphan frame must not be reported");
        // Page 0 comes back into the *other* frame and is updated...
        c.with_page_mut(0, &mut f, |p| p[0] = 20.0).unwrap();
        // ...then the orphan slot is recycled. Before the orphan id was
        // poisoned, this eviction did `map.remove(&0)` — unmapping the
        // LIVE page-0 frame and stranding its dirty update, so later
        // reads resurrected the stale file copy.
        c.touch(3, &mut f).unwrap();
        assert_eq!(
            c.peek(0).map(<[f32]>::to_vec),
            Some(vec![20.0]),
            "recycling the orphan must not unmap the live remapping"
        );
    }

    #[test]
    fn eviction_sequence_is_deterministic() {
        // Same schedule → same counters, run twice from scratch.
        let run = || {
            let mut f = file(8, 1);
            let mut c = PageCache::new(3, 1);
            for &p in &[0usize, 1, 2, 3, 0, 4, 1, 5, 6, 2, 0, 7, 3] {
                c.touch(p, &mut f).unwrap();
            }
            c.stats()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn flush_writes_dirty_frames_once() {
        let mut f = file(2, 2);
        let mut c = PageCache::new(2, 2);
        c.with_page_mut(0, &mut f, |p| p[0] = 9.0).unwrap();
        c.flush(&mut f).unwrap();
        c.flush(&mut f).unwrap(); // clean now: no extra traffic
        assert_eq!(c.stats().write_backs, 1);
        // The file really holds the value.
        let mut buf = [0.0f32; 2];
        f.read_page(0, &mut buf).unwrap();
        assert_eq!(buf[0], 9.0);
    }

    #[test]
    fn capacity_is_respected() {
        let mut f = file(10, 1);
        let mut c = PageCache::new(4, 1);
        for p in 0..10 {
            c.touch(p, &mut f).unwrap();
        }
        assert_eq!(c.resident(), 4);
        assert_eq!(c.capacity(), 4);
    }
}
