//! Storage-engine configuration.

use std::path::{Path, PathBuf};

/// Environment variable forcing the page-cache capacity (in pages) for
/// every [`StoredTable`](crate::StoredTable) created afterwards. CI sets
/// `LAZYDP_STORE_PAGES=4` in one matrix leg so the eviction and
/// write-back paths are exercised by the whole test suite, not just the
/// storage-specific tests.
pub const CACHE_PAGES_ENV: &str = "LAZYDP_STORE_PAGES";

/// Configuration of the out-of-core embedding storage engine: page
/// geometry, cache budget, and where spill files live.
///
/// Flows into training through
/// [`LazyDpConfig::with_storage`](../lazydp_core/struct.LazyDpConfig.html)
/// and `PrivateTrainer::make_private_stored*`, or is passed directly to
/// the [`StoredTable`](crate::StoredTable) constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageConfig {
    /// Rows per page. A page is the unit of disk I/O and cache
    /// residency; `page_rows × dim × 4` bytes each.
    pub page_rows: usize,
    /// Page-cache capacity in pages (the hot set kept in memory).
    /// Overridden at construction time by [`CACHE_PAGES_ENV`] when set.
    pub cache_pages: usize,
    /// Directory spill files are created in. `None` (the default) uses
    /// the OS temp dir; files are uniquely named and deleted when the
    /// table is dropped either way.
    pub spill_dir: Option<PathBuf>,
}

impl Default for StorageConfig {
    fn default() -> Self {
        Self {
            page_rows: 64,
            cache_pages: 256,
            spill_dir: None,
        }
    }
}

impl StorageConfig {
    /// The default configuration (64-row pages, 256-page cache, OS temp
    /// dir spill).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the rows-per-page geometry.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows == 0`.
    #[must_use]
    pub fn with_page_rows(mut self, page_rows: usize) -> Self {
        assert!(page_rows > 0, "pages must hold at least one row");
        self.page_rows = page_rows;
        self
    }

    /// Sets the cache capacity in pages.
    ///
    /// # Panics
    ///
    /// Panics if `cache_pages == 0`.
    #[must_use]
    pub fn with_cache_pages(mut self, cache_pages: usize) -> Self {
        assert!(cache_pages > 0, "cache must hold at least one page");
        self.cache_pages = cache_pages;
        self
    }

    /// Sets the spill directory.
    #[must_use]
    pub fn with_spill_dir(mut self, dir: impl AsRef<Path>) -> Self {
        self.spill_dir = Some(dir.as_ref().to_path_buf());
        self
    }

    /// The cache capacity actually used at construction time: the
    /// [`CACHE_PAGES_ENV`] override when set (and parsable, ≥ 1), else
    /// [`cache_pages`](Self::cache_pages).
    #[must_use]
    pub fn effective_cache_pages(&self) -> usize {
        std::env::var(CACHE_PAGES_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cache_pages)
    }

    /// The spill directory actually used at construction time.
    #[must_use]
    pub fn effective_spill_dir(&self) -> PathBuf {
        self.spill_dir.clone().unwrap_or_else(std::env::temp_dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trip() {
        let cfg = StorageConfig::new()
            .with_page_rows(8)
            .with_cache_pages(2)
            .with_spill_dir("/tmp/somewhere");
        assert_eq!(cfg.page_rows, 8);
        assert_eq!(cfg.cache_pages, 2);
        assert_eq!(cfg.spill_dir.as_deref(), Some(Path::new("/tmp/somewhere")));
        assert_eq!(cfg.effective_spill_dir(), PathBuf::from("/tmp/somewhere"));
    }

    #[test]
    fn default_spill_is_the_os_temp_dir() {
        let cfg = StorageConfig::default();
        assert_eq!(cfg.effective_spill_dir(), std::env::temp_dir());
    }

    #[test]
    #[should_panic(expected = "at least one row")]
    fn rejects_zero_page_rows() {
        let _ = StorageConfig::new().with_page_rows(0);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn rejects_zero_cache_pages() {
        let _ = StorageConfig::new().with_cache_pages(0);
    }
}
