//! Out-of-core embedding storage engine: paged tables, a clock-eviction
//! page cache, and lazy-noise-aware prefetch.
//!
//! LazyDP's central observation is that delaying noise until a row is
//! actually accessed shrinks the per-step working set from the whole
//! table to the batch's rows — which means the cold majority of the
//! table never needs to be *resident* at all. This crate turns that
//! observation into capacity: train embedding tables larger than RAM,
//! bitwise identical to the in-memory path.
//!
//! Three layers:
//!
//! * [`PageFile`] — fixed-size row pages in a plain spill file, explicit
//!   positioned I/O (no mmap, no dependencies), deleted on drop;
//! * [`PageCache`] — a bounded hot set with clock (second-chance)
//!   eviction, dirty write-back, and hit/miss/spill counters;
//! * [`StoredTable`] — the disk-backed table implementing
//!   `lazydp_embedding::EmbeddingStorage`, so `LazyDpOptimizer`, the
//!   sharded pending-noise flush, `finalize_model`, and checkpointing
//!   run against it unchanged.
//!
//! [`StorageConfig`] carries the knobs (page size, cache capacity in
//! pages, spill directory) and flows through
//! `LazyDpConfig::with_storage` / `PrivateTrainer::make_private_stored`
//! in `lazydp-core`; the `LAZYDP_STORE_PAGES` environment variable
//! ([`CACHE_PAGES_ENV`]) force-overrides the cache capacity so CI can
//! exercise the eviction paths under the whole test suite.
//!
//! # Fault model
//!
//! Every page carries an FNV-1a-64 checksum trailer, verified at
//! fault-in; device failures surface as typed [`StorageError`]s,
//! transient ones absorbed by bounded retry, persistent ones by
//! degrading the table to a bitwise-identical in-memory backend.
//! Deterministic fault injection (the `LAZYDP_FAULTS` plan in
//! `lazydp_fault`) drives all of these paths in tests and CI; see
//! `ARCHITECTURE.md` § "Fault model & recovery contract".
//!
//! # Example: a table bigger than its cache
//!
//! ```
//! use lazydp_embedding::{EmbeddingStorage, EmbeddingTable, SparseGrad};
//! use lazydp_rng::Xoshiro256PlusPlus;
//! use lazydp_store::{StorageConfig, StoredTable};
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(1);
//! let dense = EmbeddingTable::init_uniform(256, 8, &mut rng);
//! // 4 rows per page, at most 2 pages resident: ~97% of the table
//! // lives only on disk at any moment.
//! let cfg = StorageConfig::new().with_page_rows(4).with_cache_pages(2);
//! let mut stored = StoredTable::from_dense(&dense, &cfg).expect("spill");
//!
//! // Same gathers, same sparse updates, bitwise.
//! assert_eq!(stored.gather(&[0, 255, 7]), dense.gather(&[0, 255, 7]));
//! let mut grad = SparseGrad::from_entries(8, vec![(200, vec![1.0; 8])]);
//! let _ = grad.coalesce();
//! let mut expect = dense.clone();
//! expect.sparse_update(&grad, 0.05);
//! stored.sparse_update(&grad, 0.05);
//! assert_eq!(stored.to_dense(), expect);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod error;
pub mod pagefile;
pub mod stored;

pub use cache::PageCache;
pub use config::{StorageConfig, CACHE_PAGES_ENV};
pub use error::StorageError;
pub use pagefile::{sweep_stale_spill_files, PageFile};
pub use stored::StoredTable;
