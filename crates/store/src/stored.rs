//! The disk-backed embedding table.

use crate::cache::PageCache;
use crate::config::StorageConfig;
use crate::pagefile::PageFile;
use lazydp_embedding::{EmbeddingStorage, EmbeddingTable, SparseGrad};
use lazydp_rng::Prng;
use lazydp_tensor::Matrix;
use std::io;
use std::sync::Mutex;

/// The paged engine state: the spill file and the page cache that fronts
/// it. One lock guards both — every access is a (cache op, possible file
/// op) pair that must be atomic.
#[derive(Debug)]
struct Engine {
    file: PageFile,
    cache: PageCache,
}

/// An out-of-core embedding table: rows live in fixed-size pages in a
/// spill file; a bounded [`PageCache`] keeps the hot set resident with
/// clock eviction and dirty write-back.
///
/// `StoredTable` implements [`EmbeddingStorage`], so the whole LazyDP
/// training stack — `LazyDpOptimizer::step`, the sharded pending-noise
/// flush, `finalize_model`, and checkpointing — runs against it
/// unchanged, and (the tentpole invariant, proven by the workspace
/// proptests and `examples/out_of_core.rs`) releases a model **bitwise
/// identical** to the in-memory backend for any page size and any cache
/// capacity, including a pathological 1-page cache.
///
/// # Determinism contract
///
/// Row *values* are exact regardless of cache behaviour: every read and
/// write goes through the same coherent cache, and eviction only moves
/// bytes, never transforms them. Eviction *order* (and therefore the
/// hit/miss/spill counters) is deterministic for a fixed access
/// schedule — sequential training produces identical counters run to
/// run. When [`prefetch_rows`](EmbeddingStorage::prefetch_rows) runs
/// concurrently with the dense compute (the lookahead overlap in
/// `lazydp-core`), the two schedules interleave nondeterministically and
/// counters may shift between runs; values never do.
///
/// # Concurrency
///
/// The engine sits behind a [`Mutex`], making shared-reference access
/// (`gather` during the forward pass, `prefetch_rows` from the overlap
/// worker) safe from any thread. Lock scope is one operation — batch
/// operations take the lock once, not per row.
#[derive(Debug)]
pub struct StoredTable {
    rows: usize,
    dim: usize,
    page_rows: usize,
    pages: usize,
    engine: Mutex<Engine>,
}

impl StoredTable {
    /// Creates a zero-initialized stored table (sparse spill file: zero
    /// pages cost no disk until written).
    ///
    /// # Errors
    ///
    /// Propagates spill-file creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn zeros(rows: usize, dim: usize, cfg: &StorageConfig) -> io::Result<Self> {
        assert!(
            rows > 0 && dim > 0,
            "table must be non-empty ({rows}x{dim})"
        );
        let page_rows = cfg.page_rows;
        let pages = rows.div_ceil(page_rows);
        let page_elems = page_rows * dim;
        let file = PageFile::create(&cfg.effective_spill_dir(), pages, page_elems)?;
        let cache = PageCache::new(cfg.effective_cache_pages(), page_elems);
        Ok(Self {
            rows,
            dim,
            page_rows,
            pages,
            engine: Mutex::new(Engine { file, cache }),
        })
    }

    /// Spills a dense in-memory table to disk (bitwise copy of every
    /// row, written page-sequentially, bypassing the cache).
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors.
    pub fn from_dense(table: &EmbeddingTable, cfg: &StorageConfig) -> io::Result<Self> {
        let out = Self::zeros(table.rows(), table.dim(), cfg)?;
        {
            let mut engine = out.lock();
            let mut buf = vec![0.0f32; out.page_rows * out.dim];
            for page in 0..out.pages {
                buf.fill(0.0);
                let first = page * out.page_rows;
                let last = (first + out.page_rows).min(table.rows());
                for (k, r) in (first..last).enumerate() {
                    buf[k * out.dim..(k + 1) * out.dim].copy_from_slice(table.row(r));
                }
                engine.file.write_page(page, &buf)?;
            }
        }
        Ok(out)
    }

    /// Creates a table initialized exactly like
    /// [`EmbeddingTable::init_uniform`] — the same RNG draw order, row
    /// by row — so a stored model and an in-memory model built from the
    /// same seed are bitwise identical from step 0.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors.
    pub fn init_uniform<R: Prng>(
        rows: usize,
        dim: usize,
        rng: &mut R,
        cfg: &StorageConfig,
    ) -> io::Result<Self> {
        let out = Self::zeros(rows, dim, cfg)?;
        let a = 1.0 / (rows as f32).sqrt();
        {
            let mut engine = out.lock();
            let mut buf = vec![0.0f32; out.page_rows * out.dim];
            for page in 0..out.pages {
                buf.fill(0.0);
                let first = page * out.page_rows;
                let valid = ((first + out.page_rows).min(rows) - first) * dim;
                for w in &mut buf[..valid] {
                    *w = (rng.next_f32() * 2.0 - 1.0) * a;
                }
                engine.file.write_page(page, &buf)?;
            }
        }
        Ok(out)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Engine> {
        self.engine.lock().expect("storage engine lock poisoned")
    }

    /// `(page, first element within the page)` of a row.
    fn locate(&self, r: u64) -> (usize, usize) {
        let r = usize::try_from(r).expect("row fits usize");
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        (r / self.page_rows, (r % self.page_rows) * self.dim)
    }

    /// Rows per page.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Total pages backing the table.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages
    }

    /// Page-cache capacity in pages.
    #[must_use]
    pub fn cache_pages(&self) -> usize {
        self.lock().cache.capacity()
    }

    /// Bytes of weights resident in the cache right now (upper bound:
    /// capacity × page bytes).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        let engine = self.lock();
        engine.cache.resident() as u64 * engine.file.page_bytes()
    }

    /// The cache counters so far (test-only: production readers go
    /// through the `lazydp_obs` registry snapshot — rule O1).
    #[cfg(test)]
    #[must_use]
    pub fn stats(&self) -> lazydp_obs::CacheView {
        self.lock().cache.stats()
    }

    /// Writes every dirty cached page back to the spill file (pages stay
    /// resident). Useful for bounding the data at risk; not required for
    /// correctness — reads are always served through the cache.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors.
    pub fn sync(&self) -> io::Result<()> {
        let mut guard = self.lock();
        let engine = &mut *guard;
        engine.cache.flush(&mut engine.file)
    }

    /// Materializes the table in memory (page-sequential scan through
    /// the cache — bitwise copy of every row).
    #[must_use]
    pub fn to_dense(&self) -> EmbeddingTable {
        self.to_dense_table()
    }

    /// Maximum absolute element-wise difference to a dense table
    /// (test/validation helper).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff_dense(&self, other: &EmbeddingTable) -> f32 {
        assert_eq!(
            (self.rows, self.dim),
            (other.rows(), other.dim()),
            "table shape mismatch"
        );
        let mut worst = 0.0f32;
        for r in 0..self.rows as u64 {
            self.with_row(r, |row| {
                for (a, b) in row.iter().zip(other.row(r as usize)) {
                    worst = worst.max((a - b).abs());
                }
            });
        }
        worst
    }
}

impl EmbeddingStorage for StoredTable {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn bytes(&self) -> u64 {
        (self.rows * self.dim * 4) as u64
    }

    fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        let (page, start) = self.locate(r);
        let dim = self.dim;
        let mut guard = self.lock();
        let engine = &mut *guard;
        engine
            .cache
            .with_page(page, &mut engine.file, |data| f(&data[start..start + dim]))
            .expect("storage engine read failed")
    }

    fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R {
        let (page, start) = self.locate(r);
        let dim = self.dim;
        let mut guard = self.lock();
        let engine = &mut *guard;
        engine
            .cache
            .with_page_mut(page, &mut engine.file, |data| {
                f(&mut data[start..start + dim])
            })
            .expect("storage engine write failed")
    }

    fn gather(&self, indices: &[u64]) -> Matrix {
        // One lock for the whole batch rather than per row.
        let mut out = Matrix::zeros(indices.len(), self.dim);
        let mut guard = self.lock();
        let engine = &mut *guard;
        for (i, &idx) in indices.iter().enumerate() {
            let (page, start) = self.locate(idx);
            engine
                .cache
                .with_page(page, &mut engine.file, |data| {
                    out.row_mut(i)
                        .copy_from_slice(&data[start..start + self.dim]);
                })
                .expect("storage engine read failed");
        }
        out
    }

    fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        let mut guard = self.lock();
        let engine = &mut *guard;
        for (idx, values) in grad.iter() {
            let (page, start) = self.locate(idx);
            engine
                .cache
                .with_page_mut(page, &mut engine.file, |data| {
                    for (w, &g) in data[start..start + self.dim].iter_mut().zip(values.iter()) {
                        *w -= lr * g;
                    }
                })
                .expect("storage engine write failed");
        }
    }

    /// Faults in the pages of the given **sorted** rows (each page once,
    /// ascending page order — sorted input means duplicates coalesce
    /// into consecutive hits the skip below removes for free).
    ///
    /// The lock is taken **per page**, not across the whole loop: this
    /// runs on the lookahead overlap worker concurrently with the main
    /// thread's forward-pass reads of the same table, and holding the
    /// engine lock for the full multi-page I/O burst would stall those
    /// reads — serializing exactly the overlap prefetch exists to
    /// create.
    fn prefetch_rows(&self, sorted_rows: &[u64]) {
        let mut last_page = usize::MAX;
        for &r in sorted_rows {
            let (page, _) = self.locate(r);
            if page == last_page {
                continue;
            }
            last_page = page;
            let mut guard = self.lock();
            let engine = &mut *guard;
            engine
                .cache
                .touch(page, &mut engine.file)
                .expect("storage engine prefetch failed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn cfg(page_rows: usize, cache_pages: usize) -> StorageConfig {
        // Explicit cache size; the LAZYDP_STORE_PAGES CI override is
        // intentionally honored (identity must hold at ANY capacity).
        StorageConfig::new()
            .with_page_rows(page_rows)
            .with_cache_pages(cache_pages)
    }

    fn dense(rows: usize, dim: usize) -> EmbeddingTable {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        EmbeddingTable::init_uniform(rows, dim, &mut rng)
    }

    #[test]
    fn from_dense_round_trips_bitwise_at_any_geometry() {
        let d = dense(37, 5);
        for (page_rows, cache_pages) in [(1usize, 1usize), (4, 2), (8, 100), (64, 1)] {
            let s = StoredTable::from_dense(&d, &cfg(page_rows, cache_pages)).expect("spill");
            assert_eq!(s.rows(), 37);
            assert_eq!(s.dim(), 5);
            assert_eq!(EmbeddingStorage::bytes(&s), d.bytes());
            assert_eq!(s.to_dense(), d, "pages {page_rows} cache {cache_pages}");
            assert_eq!(s.max_abs_diff_dense(&d), 0.0);
        }
    }

    #[test]
    fn init_uniform_matches_the_in_memory_table_bitwise() {
        let mut r1 = Xoshiro256PlusPlus::seed_from(42);
        let mut r2 = Xoshiro256PlusPlus::seed_from(42);
        let mem = EmbeddingTable::init_uniform(100, 8, &mut r1);
        let stored = StoredTable::init_uniform(100, 8, &mut r2, &cfg(16, 3)).expect("spill");
        assert_eq!(stored.to_dense(), mem);
        // Both RNGs drew the same number of values.
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn updates_survive_a_one_page_cache() {
        let d = dense(20, 3);
        let mut s = StoredTable::from_dense(&d, &cfg(2, 1)).expect("spill");
        let mut want = d.clone();
        let mut grad = SparseGrad::from_entries(
            3,
            vec![(0, vec![1.0; 3]), (9, vec![-2.0; 3]), (19, vec![0.5; 3])],
        );
        let _ = grad.coalesce();
        want.sparse_update(&grad, 0.1);
        s.sparse_update(&grad, 0.1);
        // Thrash the cache with reads of every row, then check.
        let all: Vec<u64> = (0..20).collect();
        let g = EmbeddingStorage::gather(&s, &all);
        for r in 0..20usize {
            assert_eq!(g.row(r), want.row(r), "row {r}");
        }
        // Counter asserts only hold when the cache is really smaller
        // than the table (the LAZYDP_STORE_PAGES CI override may widen
        // it — value identity above must hold either way).
        if s.cache_pages() < s.total_pages() {
            let stats = s.stats();
            assert!(stats.evictions > 0, "an undersized cache must evict");
            assert!(stats.write_backs > 0, "dirty pages must spill");
        }
    }

    #[test]
    fn gather_matches_dense_and_counts_hits() {
        let d = dense(32, 4);
        let s = StoredTable::from_dense(&d, &cfg(4, 8)).expect("spill");
        let idx = [3u64, 31, 0, 3, 17, 3];
        assert_eq!(EmbeddingStorage::gather(&s, &idx), d.gather(&idx));
        let stats = s.stats();
        if s.cache_pages() >= 2 {
            assert!(stats.hits >= 2, "repeated rows hit the cache");
        }
        assert_eq!(stats.hit_rate(), stats.hits as f64 / 6.0);
    }

    #[test]
    fn prefetch_is_value_invisible_and_warms_the_cache() {
        let d = dense(64, 2);
        let s = StoredTable::from_dense(&d, &cfg(8, 8)).expect("spill");
        s.prefetch_rows(&[0, 1, 9, 17, 33]);
        let misses_after_prefetch = s.stats().misses;
        // The prefetched rows span 4 pages; if they all fit, the gather
        // is served entirely from memory.
        let _ = EmbeddingStorage::gather(&s, &[0, 1, 9, 17, 33]);
        if s.cache_pages() >= 4 {
            assert_eq!(s.stats().misses, misses_after_prefetch);
        }
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let dir = std::env::temp_dir().join("lazydp-store-test-spill");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let s = StoredTable::zeros(8, 2, &cfg(2, 1).with_spill_dir(&dir)).expect("spill");
        drop(s);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(Result::ok)
            .collect();
        assert!(
            leftovers.is_empty(),
            "no stray spill files after drop: {leftovers:?}"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn zeros_reads_back_zero_everywhere() {
        let s = StoredTable::zeros(10, 4, &cfg(3, 2)).expect("spill");
        for r in 0..10u64 {
            s.with_row(r, |row| assert!(row.iter().all(|&w| w == 0.0)));
        }
        assert_eq!(s.total_pages(), 4);
        assert_eq!(s.page_rows(), 3);
    }

    #[test]
    fn sync_persists_dirty_pages() {
        let mut s = StoredTable::zeros(4, 2, &cfg(2, 2)).expect("spill");
        s.with_row_mut(3, |row| row.copy_from_slice(&[7.0, 8.0]));
        s.sync().expect("sync");
        assert!(s.stats().write_backs >= 1);
        s.with_row(3, |row| assert_eq!(row, &[7.0, 8.0]));
    }
}
