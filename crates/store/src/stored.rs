//! The disk-backed embedding table.

use crate::cache::PageCache;
use crate::config::StorageConfig;
use crate::error::StorageError;
use crate::pagefile::PageFile;
use lazydp_embedding::{EmbeddingStorage, EmbeddingTable, SparseGrad};
use lazydp_rng::Prng;
use lazydp_tensor::Matrix;
use std::collections::BTreeSet;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// The paged engine state: the spill file and the page cache that fronts
/// it. One lock guards both — every access is a (cache op, possible file
/// op) pair that must be atomic.
#[derive(Debug)]
struct Engine {
    file: PageFile,
    cache: PageCache,
}

/// Where the rows actually live right now.
///
/// A table starts [`Backend::Paged`]. If the spill device fails
/// persistently — bounded retries exhausted on an I/O error — the table
/// *degrades*: every page is drained into memory (resident cache frames
/// are authoritative over the file's copies) and the backend becomes
/// [`Backend::Resident`], a plain page-major `Vec<f32>`. Row values are
/// bitwise unaffected; only the capacity benefit is lost. Corruption
/// (checksum mismatch) is **not** degradable — the bytes are wrong, and
/// training on them would silently poison the model, so it panics with a
/// typed message instead.
// One Backend lives per table (behind its engine mutex) — boxing the
// paged variant would buy nothing and cost an indirection on every
// row access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum Backend {
    Paged(Engine),
    /// Page-major rows (`pages * page_rows * dim` elements, tail page
    /// zero-padded) — indexable with the same [`StoredTable::locate`]
    /// arithmetic as the paged path.
    Resident(Vec<f32>),
}

/// An out-of-core embedding table: rows live in fixed-size checksummed
/// pages in a spill file; a bounded [`PageCache`] keeps the hot set
/// resident with clock eviction and dirty write-back.
///
/// `StoredTable` implements [`EmbeddingStorage`], so the whole LazyDP
/// training stack — `LazyDpOptimizer::step`, the sharded pending-noise
/// flush, `finalize_model`, and checkpointing — runs against it
/// unchanged, and (the tentpole invariant, proven by the workspace
/// proptests and `examples/out_of_core.rs`) releases a model **bitwise
/// identical** to the in-memory backend for any page size and any cache
/// capacity, including a pathological 1-page cache.
///
/// # Determinism contract
///
/// Row *values* are exact regardless of cache behaviour: every read and
/// write goes through the same coherent cache, and eviction only moves
/// bytes, never transforms them. Eviction *order* (and therefore the
/// hit/miss/spill counters) is deterministic for a fixed access
/// schedule — sequential training produces identical counters run to
/// run. When [`prefetch_rows`](EmbeddingStorage::prefetch_rows) runs
/// concurrently with the dense compute (the lookahead overlap in
/// `lazydp-core`), the two schedules interleave nondeterministically and
/// counters may shift between runs; values never do.
///
/// # Fault model
///
/// Transient spill-device errors are absorbed by bounded retry
/// ([`lazydp_fault::with_retry`]); a persistently failing device
/// promotes the table to an in-memory resident backend, bitwise
/// identical (`fault.degradations` counts these). A page whose checksum
/// does not match at fault-in is *unrecoverable*: the engine panics with
/// a message naming the checksum mismatch rather than training on torn
/// bytes. Deterministic fault injection for all of this is driven by
/// the `LAZYDP_FAULTS` plan (see `lazydp_fault`).
///
/// # Concurrency
///
/// The engine sits behind a [`Mutex`], making shared-reference access
/// (`gather` during the forward pass, `prefetch_rows` from the overlap
/// worker) safe from any thread. Lock scope is one operation — batch
/// operations take the lock once, not per row.
#[derive(Debug)]
pub struct StoredTable {
    rows: usize,
    dim: usize,
    page_rows: usize,
    pages: usize,
    engine: Mutex<Backend>,
}

impl StoredTable {
    /// Creates a zero-initialized stored table (sparse spill file: zero
    /// pages cost no disk until written).
    ///
    /// # Errors
    ///
    /// Propagates spill-file creation errors.
    ///
    /// # Panics
    ///
    /// Panics if `rows == 0` or `dim == 0`.
    pub fn zeros(rows: usize, dim: usize, cfg: &StorageConfig) -> Result<Self, StorageError> {
        assert!(
            rows > 0 && dim > 0,
            "table must be non-empty ({rows}x{dim})"
        );
        let page_rows = cfg.page_rows;
        let pages = rows.div_ceil(page_rows);
        let page_elems = page_rows * dim;
        let file = PageFile::create(&cfg.effective_spill_dir(), pages, page_elems)?;
        let cache = PageCache::new(cfg.effective_cache_pages(), page_elems);
        Ok(Self {
            rows,
            dim,
            page_rows,
            pages,
            engine: Mutex::new(Backend::Paged(Engine { file, cache })),
        })
    }

    /// Spills a dense in-memory table to disk (bitwise copy of every
    /// row, written page-sequentially, bypassing the cache). Transient
    /// write faults are retried.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors once retries are exhausted.
    pub fn from_dense(table: &EmbeddingTable, cfg: &StorageConfig) -> Result<Self, StorageError> {
        let out = Self::zeros(table.rows(), table.dim(), cfg)?;
        {
            let mut guard = out.lock();
            let engine = paged(&mut guard);
            let mut buf = vec![0.0f32; out.page_rows * out.dim];
            for page in 0..out.pages {
                buf.fill(0.0);
                let first = page * out.page_rows;
                let last = (first + out.page_rows).min(table.rows());
                for (k, r) in (first..last).enumerate() {
                    buf[k * out.dim..(k + 1) * out.dim].copy_from_slice(table.row(r));
                }
                lazydp_fault::with_retry(|| engine.file.write_page(page, &buf))?;
            }
        }
        Ok(out)
    }

    /// Creates a table initialized exactly like
    /// [`EmbeddingTable::init_uniform`] — the same RNG draw order, row
    /// by row — so a stored model and an in-memory model built from the
    /// same seed are bitwise identical from step 0.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors once retries are exhausted.
    pub fn init_uniform<R: Prng>(
        rows: usize,
        dim: usize,
        rng: &mut R,
        cfg: &StorageConfig,
    ) -> Result<Self, StorageError> {
        let out = Self::zeros(rows, dim, cfg)?;
        let a = 1.0 / (rows as f32).sqrt();
        {
            let mut guard = out.lock();
            let engine = paged(&mut guard);
            let mut buf = vec![0.0f32; out.page_rows * out.dim];
            for page in 0..out.pages {
                buf.fill(0.0);
                let first = page * out.page_rows;
                let valid = ((first + out.page_rows).min(rows) - first) * dim;
                for w in &mut buf[..valid] {
                    *w = (rng.next_f32() * 2.0 - 1.0) * a;
                }
                lazydp_fault::with_retry(|| engine.file.write_page(page, &buf))?;
            }
        }
        Ok(out)
    }

    fn lock(&self) -> MutexGuard<'_, Backend> {
        // Explicit poison recovery, not a second panic: the engine's
        // structural invariants (cache map ↔ frames, file bookkeeping)
        // hold at every point user code can unwind — closures run only
        // after frame bookkeeping is complete — so the state behind a
        // poisoned lock is coherent. What *can* be torn is the row a
        // panicking closure was mid-writing; the crash-recovery
        // protocol discards exactly that by resuming from the last-good
        // checkpoint, and cascading the poison into every later access
        // would turn one injected kill into a process-wide outage.
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// `(page, first element within the page)` of a row.
    fn locate(&self, r: u64) -> (usize, usize) {
        let r = usize::try_from(r).expect("row fits usize");
        assert!(r < self.rows, "row {r} out of {}", self.rows);
        (r / self.page_rows, (r % self.page_rows) * self.dim)
    }

    /// Elements per page.
    fn page_elems(&self) -> usize {
        self.page_rows * self.dim
    }

    /// Makes `page` accessible: on the paged backend, faults it into the
    /// cache (retrying transient device errors); if retries exhaust on
    /// an I/O error, degrades the table to the resident backend. The
    /// lock is held by the caller throughout, so the page cannot be
    /// evicted between this and the caller's access.
    ///
    /// # Panics
    ///
    /// Panics on unrecoverable corruption (checksum mismatch), or when
    /// the device died *and* draining the surviving pages failed too.
    fn ensure_page(&self, backend: &mut Backend, page: usize) {
        let Backend::Paged(engine) = &mut *backend else {
            return;
        };
        let res = {
            let eng = &mut *engine;
            lazydp_fault::with_retry(|| eng.cache.touch(page, &mut eng.file))
        };
        match res {
            Ok(()) => {}
            Err(e) if e.retryable() => {
                // The spill device is gone for good. Graceful
                // degradation: pull every row into memory (bitwise) and
                // stop using the device.
                match self.drain_to_resident(engine) {
                    Ok(data) => *backend = Backend::Resident(data),
                    Err(drain_err) => panic!(
                        "spill device failed persistently ({e}) and draining \
                         the table to memory failed too: {drain_err}"
                    ),
                }
            }
            Err(corrupt) => panic!("unrecoverable storage corruption: {corrupt}"),
        }
    }

    /// Reads the whole table into a page-major buffer: file pages for
    /// everything not resident, then the resident cache frames on top
    /// (they are authoritative — at least as new as the file's copy, and
    /// a dirty frame may be the *only* copy after a failed write-back).
    fn drain_to_resident(&self, engine: &mut Engine) -> Result<Vec<f32>, StorageError> {
        let page_elems = self.page_elems();
        let mut data = vec![0.0f32; self.pages * page_elems];
        let resident: BTreeSet<usize> = engine.cache.resident_pages().map(|(p, _)| p).collect();
        let mut buf = vec![0.0f32; page_elems];
        for page in 0..self.pages {
            if resident.contains(&page) {
                continue;
            }
            lazydp_fault::with_retry(|| engine.file.read_page(page, &mut buf))?;
            data[page * page_elems..(page + 1) * page_elems].copy_from_slice(&buf);
        }
        for (page, frame) in engine.cache.resident_pages() {
            data[page * page_elems..(page + 1) * page_elems].copy_from_slice(frame);
        }
        lazydp_obs::metrics().fault.degradations.incr();
        Ok(data)
    }

    /// Rows per page.
    #[must_use]
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Total pages backing the table.
    #[must_use]
    pub fn total_pages(&self) -> usize {
        self.pages
    }

    /// Page-cache capacity in pages. After degradation everything is
    /// resident, reported as the full page count.
    #[must_use]
    pub fn cache_pages(&self) -> usize {
        match &*self.lock() {
            Backend::Paged(engine) => engine.cache.capacity(),
            Backend::Resident(_) => self.pages,
        }
    }

    /// True when the spill device failed persistently and the table fell
    /// back to the in-memory resident backend.
    #[must_use]
    pub fn degraded(&self) -> bool {
        matches!(&*self.lock(), Backend::Resident(_))
    }

    /// Bytes of weights resident in memory right now (paged: up to
    /// capacity × page bytes; degraded: the whole table).
    #[must_use]
    pub fn resident_bytes(&self) -> u64 {
        match &*self.lock() {
            Backend::Paged(engine) => engine.cache.resident() as u64 * engine.file.page_bytes(),
            Backend::Resident(data) => (data.len() * 4) as u64,
        }
    }

    /// The cache counters so far (test-only: production readers go
    /// through the `lazydp_obs` registry snapshot — rule O1).
    #[cfg(test)]
    #[must_use]
    pub fn stats(&self) -> lazydp_obs::CacheView {
        match &*self.lock() {
            Backend::Paged(engine) => engine.cache.stats(),
            Backend::Resident(_) => lazydp_obs::CacheView::default(),
        }
    }

    /// Writes every dirty cached page back to the spill file (pages stay
    /// resident). Useful for bounding the data at risk; not required for
    /// correctness — reads are always served through the cache. A no-op
    /// on a degraded table.
    ///
    /// # Errors
    ///
    /// Propagates write I/O errors once retries are exhausted.
    pub fn sync(&self) -> Result<(), StorageError> {
        let mut guard = self.lock();
        match &mut *guard {
            Backend::Paged(engine) => {
                let eng = &mut *engine;
                lazydp_fault::with_retry(|| eng.cache.flush(&mut eng.file))
            }
            Backend::Resident(_) => Ok(()),
        }
    }

    /// Re-reads every page from the spill file, verifying each checksum
    /// trailer (dirty resident frames are flushed first so the scan sees
    /// current data). A no-op on a degraded table.
    ///
    /// # Errors
    ///
    /// [`StorageError::Corrupt`] for the first page whose trailer does
    /// not match; [`StorageError::Io`] on device failure.
    pub fn verify_pages(&self) -> Result<(), StorageError> {
        let mut guard = self.lock();
        let Backend::Paged(engine) = &mut *guard else {
            return Ok(());
        };
        let eng = &mut *engine;
        lazydp_fault::with_retry(|| eng.cache.flush(&mut eng.file))?;
        let mut buf = vec![0.0f32; self.page_elems()];
        for page in 0..self.pages {
            lazydp_fault::with_retry(|| eng.file.read_page(page, &mut buf))?;
        }
        Ok(())
    }

    /// Materializes the table in memory (page-sequential scan through
    /// the cache — bitwise copy of every row).
    #[must_use]
    pub fn to_dense(&self) -> EmbeddingTable {
        self.to_dense_table()
    }

    /// Maximum absolute element-wise difference to a dense table
    /// (test/validation helper).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn max_abs_diff_dense(&self, other: &EmbeddingTable) -> f32 {
        assert_eq!(
            (self.rows, self.dim),
            (other.rows(), other.dim()),
            "table shape mismatch"
        );
        let mut worst = 0.0f32;
        for r in 0..self.rows as u64 {
            self.with_row(r, |row| {
                for (a, b) in row.iter().zip(other.row(r as usize)) {
                    worst = worst.max((a - b).abs());
                }
            });
        }
        worst
    }
}

/// The paged engine of a freshly constructed table (constructors only —
/// nothing can have degraded it yet).
fn paged(guard: &mut Backend) -> &mut Engine {
    match guard {
        Backend::Paged(engine) => engine,
        Backend::Resident(_) => unreachable!("fresh table is paged"),
    }
}

impl EmbeddingStorage for StoredTable {
    fn rows(&self) -> usize {
        self.rows
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn bytes(&self) -> u64 {
        (self.rows * self.dim * 4) as u64
    }

    fn with_row<R>(&self, r: u64, f: impl FnOnce(&[f32]) -> R) -> R {
        let (page, start) = self.locate(r);
        let dim = self.dim;
        let mut guard = self.lock();
        self.ensure_page(&mut guard, page);
        match &mut *guard {
            Backend::Paged(engine) => {
                let data = engine.cache.peek(page).expect("page pinned by ensure_page");
                f(&data[start..start + dim])
            }
            Backend::Resident(data) => {
                let base = page * self.page_elems() + start;
                f(&data[base..base + dim])
            }
        }
    }

    fn with_row_mut<R>(&mut self, r: u64, f: impl FnOnce(&mut [f32]) -> R) -> R {
        let (page, start) = self.locate(r);
        let dim = self.dim;
        let page_elems = self.page_elems();
        let mut guard = self.lock();
        self.ensure_page(&mut guard, page);
        match &mut *guard {
            Backend::Paged(engine) => {
                let data = engine
                    .cache
                    .peek_mut(page)
                    .expect("page pinned by ensure_page");
                f(&mut data[start..start + dim])
            }
            Backend::Resident(data) => {
                let base = page * page_elems + start;
                f(&mut data[base..base + dim])
            }
        }
    }

    fn gather(&self, indices: &[u64]) -> Matrix {
        // One lock for the whole batch rather than per row.
        let mut out = Matrix::zeros(indices.len(), self.dim);
        let mut guard = self.lock();
        for (i, &idx) in indices.iter().enumerate() {
            let (page, start) = self.locate(idx);
            self.ensure_page(&mut guard, page);
            match &mut *guard {
                Backend::Paged(engine) => {
                    let data = engine.cache.peek(page).expect("page pinned by ensure_page");
                    out.row_mut(i)
                        .copy_from_slice(&data[start..start + self.dim]);
                }
                Backend::Resident(data) => {
                    let base = page * self.page_elems() + start;
                    out.row_mut(i).copy_from_slice(&data[base..base + self.dim]);
                }
            }
        }
        out
    }

    fn sparse_update(&mut self, grad: &SparseGrad, lr: f32) {
        assert_eq!(grad.dim(), self.dim, "sparse grad dim mismatch");
        let page_elems = self.page_elems();
        let mut guard = self.lock();
        for (idx, values) in grad.iter() {
            let (page, start) = self.locate(idx);
            self.ensure_page(&mut guard, page);
            match &mut *guard {
                Backend::Paged(engine) => {
                    let data = engine
                        .cache
                        .peek_mut(page)
                        .expect("page pinned by ensure_page");
                    for (w, &g) in data[start..start + self.dim].iter_mut().zip(values.iter()) {
                        *w -= lr * g;
                    }
                }
                Backend::Resident(data) => {
                    let base = page * page_elems + start;
                    for (w, &g) in data[base..base + self.dim].iter_mut().zip(values.iter()) {
                        *w -= lr * g;
                    }
                }
            }
        }
    }

    /// Faults in the pages of the given **sorted** rows (each page once,
    /// ascending page order — sorted input means duplicates coalesce
    /// into consecutive hits the skip below removes for free).
    ///
    /// The lock is taken **per page**, not across the whole loop: this
    /// runs on the lookahead overlap worker concurrently with the main
    /// thread's forward-pass reads of the same table, and holding the
    /// engine lock for the full multi-page I/O burst would stall those
    /// reads — serializing exactly the overlap prefetch exists to
    /// create.
    ///
    /// Prefetch is best-effort: a failing prefetch is swallowed (after
    /// its own retries) rather than degrading or panicking — the demand
    /// access that actually needs the row will retry, degrade, or report
    /// the corruption with the right context.
    fn prefetch_rows(&self, sorted_rows: &[u64]) {
        let mut last_page = usize::MAX;
        for &r in sorted_rows {
            let (page, _) = self.locate(r);
            if page == last_page {
                continue;
            }
            last_page = page;
            let mut guard = self.lock();
            match &mut *guard {
                Backend::Paged(engine) => {
                    let eng = &mut *engine;
                    let _ = lazydp_fault::with_retry(|| eng.cache.touch(page, &mut eng.file));
                }
                // Everything is already resident; nothing to warm.
                Backend::Resident(_) => return,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_fault::{FaultKind, FaultPlan, Site};
    use lazydp_rng::Xoshiro256PlusPlus;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn cfg(page_rows: usize, cache_pages: usize) -> StorageConfig {
        // Explicit cache size; the LAZYDP_STORE_PAGES CI override is
        // intentionally honored (identity must hold at ANY capacity).
        StorageConfig::new()
            .with_page_rows(page_rows)
            .with_cache_pages(cache_pages)
    }

    fn dense(rows: usize, dim: usize) -> EmbeddingTable {
        let mut rng = Xoshiro256PlusPlus::seed_from(3);
        EmbeddingTable::init_uniform(rows, dim, &mut rng)
    }

    #[test]
    fn from_dense_round_trips_bitwise_at_any_geometry() {
        let d = dense(37, 5);
        for (page_rows, cache_pages) in [(1usize, 1usize), (4, 2), (8, 100), (64, 1)] {
            let s = StoredTable::from_dense(&d, &cfg(page_rows, cache_pages)).expect("spill");
            assert_eq!(s.rows(), 37);
            assert_eq!(s.dim(), 5);
            assert_eq!(EmbeddingStorage::bytes(&s), d.bytes());
            assert_eq!(s.to_dense(), d, "pages {page_rows} cache {cache_pages}");
            assert_eq!(s.max_abs_diff_dense(&d), 0.0);
        }
    }

    #[test]
    fn init_uniform_matches_the_in_memory_table_bitwise() {
        let mut r1 = Xoshiro256PlusPlus::seed_from(42);
        let mut r2 = Xoshiro256PlusPlus::seed_from(42);
        let mem = EmbeddingTable::init_uniform(100, 8, &mut r1);
        let stored = StoredTable::init_uniform(100, 8, &mut r2, &cfg(16, 3)).expect("spill");
        assert_eq!(stored.to_dense(), mem);
        // Both RNGs drew the same number of values.
        assert_eq!(r1.next_u64(), r2.next_u64());
    }

    #[test]
    fn transient_read_storm_is_value_neutral_single_threaded() {
        let _serial = lazydp_fault::exclusive();
        let d = dense(64, 4);
        let mut want = d.clone();
        let mut s = StoredTable::from_dense(&d, &cfg(4, 3)).expect("spill");
        lazydp_fault::install(
            FaultPlan::new(7)
                .rate_rule(Site::PageRead, 0.10, FaultKind::Transient)
                .rate_rule(Site::PageWrite, 0.10, FaultKind::Transient),
        );
        let mut rng = Xoshiro256PlusPlus::seed_from(11);
        for step in 0..200u64 {
            let row = rng.next_u64() % 64;
            let delta = (step as f32).sin();
            want.with_row_mut(row, |r| r[0] += delta);
            s.with_row_mut(row, |r| r[0] += delta);
            let probe: Vec<u64> = (0..8).map(|_| rng.next_u64() % 64).collect();
            let gs = EmbeddingStorage::gather(&s, &probe);
            let gw = EmbeddingStorage::gather(&want, &probe);
            assert_eq!(gs, gw, "step {step}: storm must not change a value");
        }
        lazydp_fault::clear();
        assert_eq!(s.max_abs_diff_dense(&want), 0.0);
    }

    #[test]
    fn updates_survive_a_one_page_cache() {
        let d = dense(20, 3);
        let mut s = StoredTable::from_dense(&d, &cfg(2, 1)).expect("spill");
        let mut want = d.clone();
        let mut grad = SparseGrad::from_entries(
            3,
            vec![(0, vec![1.0; 3]), (9, vec![-2.0; 3]), (19, vec![0.5; 3])],
        );
        let _ = grad.coalesce();
        want.sparse_update(&grad, 0.1);
        s.sparse_update(&grad, 0.1);
        // Thrash the cache with reads of every row, then check.
        let all: Vec<u64> = (0..20).collect();
        let g = EmbeddingStorage::gather(&s, &all);
        for r in 0..20usize {
            assert_eq!(g.row(r), want.row(r), "row {r}");
        }
        // Counter asserts only hold when the cache is really smaller
        // than the table (the LAZYDP_STORE_PAGES CI override may widen
        // it — value identity above must hold either way).
        if s.cache_pages() < s.total_pages() {
            let stats = s.stats();
            assert!(stats.evictions > 0, "an undersized cache must evict");
            assert!(stats.write_backs > 0, "dirty pages must spill");
        }
    }

    #[test]
    fn gather_matches_dense_and_counts_hits() {
        let d = dense(32, 4);
        let s = StoredTable::from_dense(&d, &cfg(4, 8)).expect("spill");
        let idx = [3u64, 31, 0, 3, 17, 3];
        assert_eq!(EmbeddingStorage::gather(&s, &idx), d.gather(&idx));
        let stats = s.stats();
        if s.cache_pages() >= 2 {
            assert!(stats.hits >= 2, "repeated rows hit the cache");
        }
        assert_eq!(stats.hit_rate(), stats.hits as f64 / 6.0);
    }

    #[test]
    fn prefetch_is_value_invisible_and_warms_the_cache() {
        let d = dense(64, 2);
        let s = StoredTable::from_dense(&d, &cfg(8, 8)).expect("spill");
        s.prefetch_rows(&[0, 1, 9, 17, 33]);
        let misses_after_prefetch = s.stats().misses;
        // The prefetched rows span 4 pages; if they all fit, the gather
        // is served entirely from memory.
        let _ = EmbeddingStorage::gather(&s, &[0, 1, 9, 17, 33]);
        if s.cache_pages() >= 4 {
            assert_eq!(s.stats().misses, misses_after_prefetch);
        }
        assert_eq!(s.to_dense(), d);
    }

    #[test]
    fn spill_file_is_removed_on_drop() {
        let dir = std::env::temp_dir().join("lazydp-store-test-spill");
        std::fs::create_dir_all(&dir).expect("mkdir");
        let s = StoredTable::zeros(8, 2, &cfg(2, 1).with_spill_dir(&dir)).expect("spill");
        drop(s);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("readdir")
            .filter_map(Result::ok)
            .collect();
        assert!(
            leftovers.is_empty(),
            "no stray spill files after drop: {leftovers:?}"
        );
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn zeros_reads_back_zero_everywhere() {
        let s = StoredTable::zeros(10, 4, &cfg(3, 2)).expect("spill");
        for r in 0..10u64 {
            s.with_row(r, |row| assert!(row.iter().all(|&w| w == 0.0)));
        }
        assert_eq!(s.total_pages(), 4);
        assert_eq!(s.page_rows(), 3);
    }

    #[test]
    fn sync_persists_dirty_pages() {
        let mut s = StoredTable::zeros(4, 2, &cfg(2, 2)).expect("spill");
        s.with_row_mut(3, |row| row.copy_from_slice(&[7.0, 8.0]));
        s.sync().expect("sync");
        assert!(s.stats().write_backs >= 1);
        s.with_row(3, |row| assert_eq!(row, &[7.0, 8.0]));
        s.verify_pages().expect("all checksums valid");
    }

    #[test]
    fn lock_poisoning_is_recovered_not_cascaded() {
        let s = StoredTable::zeros(4, 2, &cfg(2, 2)).expect("spill");
        // A user closure panicking while the engine lock is held poisons
        // the mutex; later accesses must recover, not panic again.
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            s.with_row(0, |_| panic!("user closure exploded"))
        }));
        assert!(unwound.is_err());
        s.with_row(0, |row| assert_eq!(row, &[0.0, 0.0]));
    }

    #[test]
    fn transient_faults_are_absorbed_bitwise() {
        let _g = lazydp_fault::exclusive();
        let d = dense(20, 3);
        let want = {
            // Reference run with no plan installed.
            let s = StoredTable::from_dense(&d, &cfg(2, 1)).expect("spill");
            s.to_dense()
        };
        lazydp_fault::install(
            FaultPlan::new(11)
                .rate_rule(Site::PageRead, 0.2, FaultKind::Transient)
                .rate_rule(Site::PageWrite, 0.2, FaultKind::Transient),
        );
        let s = StoredTable::from_dense(&d, &cfg(2, 1)).expect("spill");
        let got = s.to_dense();
        lazydp_fault::clear();
        assert_eq!(got, want, "retried I/O must be value-invisible");
        assert_eq!(got, d);
    }

    #[test]
    fn persistent_write_failure_degrades_bitwise() {
        let _g = lazydp_fault::exclusive();
        let d = dense(20, 3);
        // from_dense writes pages 0..10 (write ordinals 0..9); fail every
        // write from ordinal 10 on — the first eviction write-back dies,
        // retries exhaust, and the table must fall back to memory.
        let mut s = StoredTable::from_dense(&d, &cfg(2, 1)).expect("spill");
        lazydp_fault::install(FaultPlan::new(0).rule(Site::PageWrite, 10, FaultKind::Persistent));
        let mut want = d.clone();
        let mut grad = SparseGrad::from_entries(
            3,
            vec![(0, vec![1.0; 3]), (9, vec![-2.0; 3]), (19, vec![0.5; 3])],
        );
        let _ = grad.coalesce();
        want.sparse_update(&grad, 0.1);
        s.sparse_update(&grad, 0.1);
        let got = s.to_dense();
        lazydp_fault::clear();
        assert!(s.degraded(), "persistent write failure must degrade");
        assert_eq!(s.cache_pages(), s.total_pages());
        assert_eq!(got, want, "degradation must be bitwise-invisible");
        // The degraded table keeps working.
        s.sparse_update(&grad, 0.1);
        want.sparse_update(&grad, 0.1);
        assert_eq!(s.to_dense(), want);
        s.sync().expect("sync is a no-op when degraded");
    }

    #[test]
    fn corrupt_pages_panic_rather_than_train() {
        let _g = lazydp_fault::exclusive();
        lazydp_fault::install(FaultPlan::new(0).rule(Site::PageWrite, 2, FaultKind::Corrupt));
        let unwound = catch_unwind(AssertUnwindSafe(|| {
            // 2 pages, 1-frame cache. Write ordinals: zeros writes none;
            // ordinal 0-1 don't happen here (no from_dense) — force an
            // eviction write-back at ordinal 2 via enough traffic.
            let mut s = StoredTable::zeros(4, 2, &cfg(2, 1)).expect("spill");
            s.with_row_mut(0, |row| row.copy_from_slice(&[1.0, 2.0])); // page 0 dirty
            s.sync().expect("write ordinal 0: clean");
            s.with_row_mut(0, |row| row[0] += 1.0);
            s.sync().expect("write ordinal 1: clean");
            s.with_row_mut(0, |row| row[0] += 1.0);
            s.sync().expect("write ordinal 2: torn silently");
            s.with_row_mut(2, |_| ()); // evict page 0 (clean now)
            s.with_row(0, |_| ()); // fault torn page back in: must panic
        }));
        lazydp_fault::clear();
        let payload = unwound.expect_err("torn page must not be trained on");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("checksum mismatch"), "payload: {msg}");
    }
}
