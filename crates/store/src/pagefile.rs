//! Fixed-size row pages persisted to a plain file, with per-page
//! checksums and deterministic fault injection.
//!
//! A [`PageFile`] is the disk half of the storage engine: `pages` slots,
//! each holding `page_elems` little-endian `f32`s followed by an 8-byte
//! FNV-1a-64 trailer over those data bytes, accessed with explicit
//! positioned reads/writes (`read_exact_at`/`write_all_at` on Unix, a
//! seek-based fallback elsewhere). No mmap, no external dependencies —
//! the file is created sparse (zero pages cost no disk until written),
//! uniquely named, and deleted on drop, so `cargo test` leaves no stray
//! spill files behind.
//!
//! The trailer is verified on every fault-in: a torn or bit-rotted page
//! surfaces as [`StorageError::Corrupt`] instead of silently training on
//! garbage. A trailer of zero is the never-written sentinel (sparse
//! pages read back all-zero) and is accepted only when the data bytes
//! are themselves all zero.
//!
//! Every read and write consults the active [`lazydp_fault`] plan under
//! this file's **own** operation ordinals, so a fixed plan reproduces
//! the identical failure sequence on every run regardless of what other
//! tables are doing.

use std::collections::BTreeSet;
use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use lazydp_fault::checksum::fnv1a64;
use lazydp_fault::{FaultKind, InjectedKill, Site};

use crate::error::StorageError;

/// Process-wide counter making spill-file names unique even when many
/// tables share one spill directory.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(0);

/// Spill files currently owned by a live [`PageFile`] in this process.
/// [`sweep_stale_spill_files`] removes lazydp spill files *not* in this
/// set — leftovers of an earlier crashed run.
static LIVE: Mutex<BTreeSet<PathBuf>> = Mutex::new(BTreeSet::new());

fn live_lock() -> std::sync::MutexGuard<'static, BTreeSet<PathBuf>> {
    // The guarded value is only ever inserted into / removed from, so a
    // panicking holder cannot leave it torn.
    LIVE.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Removes lazydp spill files in `dir` that no live [`PageFile`] of this
/// process owns — the debris an earlier crashed run left behind (the
/// normal path removes them on drop). Returns how many were removed.
///
/// Call this at recovery time, before training restarts, and only when
/// no *other* training process shares the spill directory (stale files
/// are recognised by name pattern, not by owner).
///
/// # Errors
///
/// Propagates the directory-listing error; per-file removal failures are
/// skipped (another sweeper may have won the race).
pub fn sweep_stale_spill_files(dir: &Path) -> io::Result<usize> {
    let live = live_lock().clone();
    let mut removed = 0usize;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("lazydp-store-")
            && name.ends_with(".pages")
            && !live.contains(&path)
            && std::fs::remove_file(&path).is_ok()
        {
            removed += 1;
        }
    }
    Ok(removed)
}

/// A file of fixed-size, checksummed `f32` pages with positioned I/O.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    page_elems: usize,
    pages: usize,
    /// Scratch byte buffer reused across reads/writes (one slot:
    /// data bytes plus the checksum trailer).
    scratch: Vec<u8>,
    /// This file's own operation ordinals for fault-plan decisions.
    read_ops: u64,
    write_ops: u64,
}

impl PageFile {
    /// Creates a sparse, zero-filled page file in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors (missing directory, permissions).
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0` or `page_elems == 0`.
    pub fn create(dir: &Path, pages: usize, page_elems: usize) -> Result<Self, StorageError> {
        assert!(pages > 0 && page_elems > 0, "empty page file");
        let name = format!(
            "lazydp-store-{}-{}.pages",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let create = || -> io::Result<File> {
            let file = OpenOptions::new()
                .read(true)
                .write(true)
                .create_new(true)
                .open(&path)?;
            // A sparse zero file: unwritten slots read back as zero data
            // plus a zero trailer — the never-written sentinel — which
            // is exactly the zero-initialized table the callers expect.
            file.set_len((pages as u64) * slot_bytes(page_elems))?;
            Ok(file)
        };
        let file = create().map_err(|source| StorageError::Io {
            site: "create",
            page: None,
            source,
        })?;
        live_lock().insert(path.clone());
        Ok(Self {
            file,
            path,
            page_elems,
            pages,
            scratch: vec![0u8; slot_bytes(page_elems) as usize],
            read_ops: 0,
            write_ops: 0,
        })
    }

    /// Number of pages.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Elements per page.
    #[must_use]
    pub fn page_elems(&self) -> usize {
        self.page_elems
    }

    /// Data bytes per page (excluding the checksum trailer — the
    /// training-relevant payload the cache counters account in).
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        (self.page_elems * 4) as u64
    }

    /// The spill file's path (diagnostics; the file is deleted on drop).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn offset(&self, page: usize) -> u64 {
        assert!(page < self.pages, "page {page} out of {}", self.pages);
        (page as u64) * slot_bytes(self.page_elems)
    }

    /// Consults the fault plan for this operation; returns the injected
    /// I/O failure if one fires, panics on an injected kill.
    fn injection(
        &self,
        site: Site,
        ordinal: u64,
        page: usize,
    ) -> Result<Option<FaultKind>, StorageError> {
        match lazydp_fault::decide(site, ordinal) {
            None => Ok(None),
            Some(FaultKind::Kill) => {
                std::panic::panic_any(InjectedKill { site, ordinal });
            }
            // Corrupt on a write is handled by the caller (flip a byte
            // after checksumming); anywhere else it degenerates to an
            // I/O failure.
            Some(FaultKind::Corrupt) if site == Site::PageWrite => Ok(Some(FaultKind::Corrupt)),
            Some(kind) => Err(StorageError::Io {
                site: site.name(),
                page: Some(page),
                source: lazydp_fault::injected_io_error(kind, site, ordinal),
            }),
        }
    }

    /// Reads page `page` into `out` (`page_elems` long), verifying its
    /// checksum trailer.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on device failure (retryable);
    /// [`StorageError::Corrupt`] when the trailer does not match the
    /// data just read (not retryable — the bytes on disk are wrong).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `out` has the wrong length,
    /// or when the fault plan fires an injected kill here.
    pub fn read_page(&mut self, page: usize, out: &mut [f32]) -> Result<(), StorageError> {
        assert_eq!(out.len(), self.page_elems, "page buffer length mismatch");
        let ord = self.read_ops;
        self.read_ops += 1;
        self.injection(Site::PageRead, ord, page)?;
        let off = self.offset(page);
        read_exact_at(&mut self.file, &mut self.scratch, off).map_err(|source| {
            StorageError::Io {
                site: Site::PageRead.name(),
                page: Some(page),
                source,
            }
        })?;
        let (data, trailer) = self.scratch.split_at(self.page_elems * 4);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        // Trailer 0 + all-zero data = a never-written sparse slot.
        if stored != 0 || data.iter().any(|&b| b != 0) {
            let computed = fnv1a64(data);
            if computed != stored {
                lazydp_obs::metrics().fault.checksum_failures.incr();
                return Err(StorageError::Corrupt {
                    page,
                    path: self.path.clone(),
                    stored,
                    computed,
                });
            }
        }
        for (v, b) in out.iter_mut().zip(data.chunks_exact(4)) {
            *v = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
        Ok(())
    }

    /// Writes `data` (`page_elems` long) as page `page`, appending its
    /// checksum trailer.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on device failure (retryable).
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` has the wrong length,
    /// or when the fault plan fires an injected kill here.
    pub fn write_page(&mut self, page: usize, data: &[f32]) -> Result<(), StorageError> {
        assert_eq!(data.len(), self.page_elems, "page buffer length mismatch");
        let ord = self.write_ops;
        self.write_ops += 1;
        let injected = self.injection(Site::PageWrite, ord, page)?;
        let off = self.offset(page);
        let data_bytes = self.page_elems * 4;
        for (b, &v) in self.scratch[..data_bytes]
            .chunks_exact_mut(4)
            .zip(data.iter())
        {
            b.copy_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a64(&self.scratch[..data_bytes]);
        self.scratch[data_bytes..].copy_from_slice(&sum.to_le_bytes());
        if injected == Some(FaultKind::Corrupt) {
            // A torn page: one data byte flips *after* the checksum was
            // computed, so the next fault-in must detect the mismatch.
            self.scratch[ord as usize % data_bytes] ^= 0x80;
        }
        write_all_at(&mut self.file, &self.scratch, off).map_err(|source| StorageError::Io {
            site: Site::PageWrite.name(),
            page: Some(page),
            source,
        })
    }
}

/// Bytes per on-disk slot: page data plus the 8-byte checksum trailer.
fn slot_bytes(page_elems: usize) -> u64 {
    (page_elems * 4 + 8) as u64
}

impl Drop for PageFile {
    fn drop(&mut self) {
        live_lock().remove(&self.path);
        // Best-effort cleanup: the spill file is scratch state, never a
        // durability surface (checkpoints are), so a failed unlink only
        // leaks temp-dir space.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(unix)]
fn read_exact_at(file: &mut File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &mut File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &mut File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

#[cfg(not(unix))]
fn write_all_at(file: &mut File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_fault::FaultPlan;

    fn temp_dir() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn pages_round_trip_and_start_zeroed() {
        let mut f = PageFile::create(&temp_dir(), 3, 4).expect("create");
        let mut buf = [1.0f32; 4];
        f.read_page(2, &mut buf).expect("read");
        assert_eq!(buf, [0.0; 4], "sparse pages read back as zeros");
        f.write_page(1, &[1.5, -2.0, 0.25, 1e-30]).expect("write");
        f.read_page(1, &mut buf).expect("read");
        assert_eq!(buf, [1.5, -2.0, 0.25, 1e-30], "bitwise round trip");
        f.read_page(0, &mut buf).expect("read");
        assert_eq!(buf, [0.0; 4], "neighbour pages untouched");
    }

    #[test]
    fn all_zero_written_pages_still_verify() {
        // An explicitly written zero page carries a real (nonzero)
        // checksum; it must read back fine alongside sparse zeros.
        let mut f = PageFile::create(&temp_dir(), 2, 4).expect("create");
        f.write_page(0, &[0.0; 4]).expect("write");
        let mut buf = [9.0f32; 4];
        f.read_page(0, &mut buf).expect("read written zeros");
        assert_eq!(buf, [0.0; 4]);
        f.read_page(1, &mut buf).expect("read sparse zeros");
        assert_eq!(buf, [0.0; 4]);
    }

    #[test]
    fn file_is_deleted_on_drop() {
        let f = PageFile::create(&temp_dir(), 1, 2).expect("create");
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "spill file must be cleaned up");
    }

    #[test]
    fn names_are_unique_within_a_directory() {
        let a = PageFile::create(&temp_dir(), 1, 1).expect("a");
        let b = PageFile::create(&temp_dir(), 1, 1).expect("b");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    #[should_panic(expected = "page 3 out of")]
    fn rejects_out_of_range_pages() {
        let mut f = PageFile::create(&temp_dir(), 3, 2).expect("create");
        let mut buf = [0.0f32; 2];
        let _ = f.read_page(3, &mut buf);
    }

    #[test]
    fn create_fails_in_a_missing_directory() {
        let missing = temp_dir().join("lazydp-definitely-missing-dir");
        assert!(PageFile::create(&missing, 1, 1).is_err());
    }

    #[test]
    fn torn_pages_are_detected_by_checksum() {
        let mut f = PageFile::create(&temp_dir(), 2, 4).expect("create");
        f.write_page(0, &[1.0, 2.0, 3.0, 4.0]).expect("write");
        // Tear the page behind the engine's back: flip one data byte.
        {
            use std::os::unix::fs::FileExt;
            let raw = OpenOptions::new()
                .write(true)
                .open(f.path())
                .expect("reopen");
            raw.write_all_at(&[0xFF], 2).expect("corrupt");
        }
        let mut buf = [0.0f32; 4];
        let err = f.read_page(0, &mut buf).expect_err("must detect");
        assert!(
            matches!(err, StorageError::Corrupt { page: 0, .. }),
            "{err}"
        );
        assert!(err.to_string().contains("checksum mismatch"), "{err}");
        assert!(!err.retryable());
    }

    #[test]
    fn a_corrupted_trailer_is_detected_too() {
        let mut f = PageFile::create(&temp_dir(), 1, 2).expect("create");
        f.write_page(0, &[5.0, 6.0]).expect("write");
        {
            use std::os::unix::fs::FileExt;
            let raw = OpenOptions::new()
                .write(true)
                .open(f.path())
                .expect("reopen");
            // Trailer starts after the 8 data bytes of a 2-elem page.
            raw.write_all_at(&[0xAA], 8).expect("corrupt trailer");
        }
        let mut buf = [0.0f32; 2];
        assert!(matches!(
            f.read_page(0, &mut buf),
            Err(StorageError::Corrupt { .. })
        ));
    }

    #[test]
    fn injected_transient_faults_fail_that_ordinal_only() {
        let _g = lazydp_fault::exclusive();
        lazydp_fault::install(FaultPlan::new(0).rule(Site::PageRead, 1, FaultKind::Transient));
        let mut f = PageFile::create(&temp_dir(), 1, 2).expect("create");
        let mut buf = [0.0f32; 2];
        f.read_page(0, &mut buf).expect("ordinal 0 clean");
        let err = f.read_page(0, &mut buf).expect_err("ordinal 1 fails");
        assert!(err.retryable());
        f.read_page(0, &mut buf).expect("ordinal 2 clean again");
        lazydp_fault::clear();
    }

    #[test]
    fn injected_write_corruption_is_caught_at_fault_in() {
        let _g = lazydp_fault::exclusive();
        lazydp_fault::install(FaultPlan::new(0).rule(Site::PageWrite, 0, FaultKind::Corrupt));
        let mut f = PageFile::create(&temp_dir(), 1, 4).expect("create");
        f.write_page(0, &[1.0, 2.0, 3.0, 4.0])
            .expect("the write itself succeeds (torn silently)");
        lazydp_fault::clear();
        let mut buf = [0.0f32; 4];
        assert!(
            matches!(f.read_page(0, &mut buf), Err(StorageError::Corrupt { .. })),
            "torn write must not be silently trained on"
        );
    }

    #[test]
    fn sweep_removes_only_stale_spill_files() {
        // A private directory so parallel tests' live files don't race
        // the assertion.
        let dir = temp_dir().join(format!("lazydp-sweep-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        let live = PageFile::create(&dir, 1, 2).expect("live");
        let stale = dir.join("lazydp-store-999999-7.pages");
        std::fs::write(&stale, b"debris").expect("stale");
        let unrelated = dir.join("keep.txt");
        std::fs::write(&unrelated, b"keep").expect("unrelated");
        let removed = sweep_stale_spill_files(&dir).expect("sweep");
        assert_eq!(removed, 1);
        assert!(!stale.exists(), "stale spill file swept");
        assert!(live.path().exists(), "live spill file kept");
        assert!(unrelated.exists(), "unrelated file kept");
        drop(live);
        let _ = std::fs::remove_file(&unrelated);
        let _ = std::fs::remove_dir(&dir);
    }
}
