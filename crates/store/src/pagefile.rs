//! Fixed-size row pages persisted to a plain file.
//!
//! A [`PageFile`] is the disk half of the storage engine: `pages` slots
//! of `page_elems` little-endian `f32`s each, accessed with explicit
//! positioned reads/writes (`read_exact_at`/`write_all_at` on Unix, a
//! seek-based fallback elsewhere). No mmap, no external dependencies —
//! the file is created sparse (zero pages cost no disk until written),
//! uniquely named, and deleted on drop, so `cargo test` leaves no stray
//! spill files behind.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter making spill-file names unique even when many
/// tables share one spill directory.
static NEXT_FILE_ID: AtomicU64 = AtomicU64::new(0);

/// A file of fixed-size `f32` pages with positioned I/O.
#[derive(Debug)]
pub struct PageFile {
    file: File,
    path: PathBuf,
    page_elems: usize,
    pages: usize,
    /// Scratch byte buffer reused across reads/writes (one page).
    scratch: Vec<u8>,
}

impl PageFile {
    /// Creates a sparse, zero-filled page file in `dir`.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors (missing directory, permissions).
    ///
    /// # Panics
    ///
    /// Panics if `pages == 0` or `page_elems == 0`.
    pub fn create(dir: &Path, pages: usize, page_elems: usize) -> io::Result<Self> {
        assert!(pages > 0 && page_elems > 0, "empty page file");
        let name = format!(
            "lazydp-store-{}-{}.pages",
            std::process::id(),
            NEXT_FILE_ID.fetch_add(1, Ordering::Relaxed)
        );
        let path = dir.join(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        // A sparse zero file: unwritten pages read back as 0.0, which is
        // exactly the zero-initialized table the callers expect.
        file.set_len((pages as u64) * (page_elems as u64) * 4)?;
        Ok(Self {
            file,
            path,
            page_elems,
            pages,
            scratch: vec![0u8; page_elems * 4],
        })
    }

    /// Number of pages.
    #[must_use]
    pub fn pages(&self) -> usize {
        self.pages
    }

    /// Elements per page.
    #[must_use]
    pub fn page_elems(&self) -> usize {
        self.page_elems
    }

    /// Bytes per page.
    #[must_use]
    pub fn page_bytes(&self) -> u64 {
        (self.page_elems * 4) as u64
    }

    /// The spill file's path (diagnostics; the file is deleted on drop).
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn offset(&self, page: usize) -> u64 {
        assert!(page < self.pages, "page {page} out of {}", self.pages);
        (page as u64) * self.page_bytes()
    }

    /// Reads page `page` into `out` (`page_elems` long).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `out` has the wrong length.
    pub fn read_page(&mut self, page: usize, out: &mut [f32]) -> io::Result<()> {
        assert_eq!(out.len(), self.page_elems, "page buffer length mismatch");
        let off = self.offset(page);
        read_exact_at(&mut self.file, &mut self.scratch, off)?;
        for (v, b) in out.iter_mut().zip(self.scratch.chunks_exact(4)) {
            *v = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
        }
        Ok(())
    }

    /// Writes `data` (`page_elems` long) as page `page`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `page` is out of range or `data` has the wrong length.
    pub fn write_page(&mut self, page: usize, data: &[f32]) -> io::Result<()> {
        assert_eq!(data.len(), self.page_elems, "page buffer length mismatch");
        let off = self.offset(page);
        for (b, &v) in self.scratch.chunks_exact_mut(4).zip(data.iter()) {
            b.copy_from_slice(&v.to_le_bytes());
        }
        write_all_at(&mut self.file, &self.scratch, off)
    }
}

impl Drop for PageFile {
    fn drop(&mut self) {
        // Best-effort cleanup: the spill file is scratch state, never a
        // durability surface (checkpoints are), so a failed unlink only
        // leaks temp-dir space.
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(unix)]
fn read_exact_at(file: &mut File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

#[cfg(unix)]
fn write_all_at(file: &mut File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.write_all_at(buf, offset)
}

#[cfg(not(unix))]
fn read_exact_at(file: &mut File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::{Read, Seek, SeekFrom};
    file.seek(SeekFrom::Start(offset))?;
    file.read_exact(buf)
}

#[cfg(not(unix))]
fn write_all_at(file: &mut File, buf: &[u8], offset: u64) -> io::Result<()> {
    use std::io::{Seek, SeekFrom, Write};
    file.seek(SeekFrom::Start(offset))?;
    file.write_all(buf)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir() -> PathBuf {
        std::env::temp_dir()
    }

    #[test]
    fn pages_round_trip_and_start_zeroed() {
        let mut f = PageFile::create(&temp_dir(), 3, 4).expect("create");
        let mut buf = [1.0f32; 4];
        f.read_page(2, &mut buf).expect("read");
        assert_eq!(buf, [0.0; 4], "sparse pages read back as zeros");
        f.write_page(1, &[1.5, -2.0, 0.25, 1e-30]).expect("write");
        f.read_page(1, &mut buf).expect("read");
        assert_eq!(buf, [1.5, -2.0, 0.25, 1e-30], "bitwise round trip");
        f.read_page(0, &mut buf).expect("read");
        assert_eq!(buf, [0.0; 4], "neighbour pages untouched");
    }

    #[test]
    fn file_is_deleted_on_drop() {
        let f = PageFile::create(&temp_dir(), 1, 2).expect("create");
        let path = f.path().to_path_buf();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists(), "spill file must be cleaned up");
    }

    #[test]
    fn names_are_unique_within_a_directory() {
        let a = PageFile::create(&temp_dir(), 1, 1).expect("a");
        let b = PageFile::create(&temp_dir(), 1, 1).expect("b");
        assert_ne!(a.path(), b.path());
    }

    #[test]
    #[should_panic(expected = "page 3 out of")]
    fn rejects_out_of_range_pages() {
        let mut f = PageFile::create(&temp_dir(), 3, 2).expect("create");
        let mut buf = [0.0f32; 2];
        let _ = f.read_page(3, &mut buf);
    }

    #[test]
    fn create_fails_in_a_missing_directory() {
        let missing = temp_dir().join("lazydp-definitely-missing-dir");
        assert!(PageFile::create(&missing, 1, 1).is_err());
    }
}
