//! DLRM: the deep learning recommendation model the paper trains.
//!
//! Architecture (paper Fig. 1): a bottom MLP embeds the dense features, a
//! set of embedding tables embeds the categorical features, a pairwise
//! dot-product **feature interaction** combines them, and a top MLP
//! produces the click logit. The MLPerf (v2.1) DLRM configuration used as
//! the paper's default — 26 Criteo embedding tables, 128-dim embeddings,
//! bottom MLP 13-512-256-128, top MLP 479-1024-1024-512-256-1 ("8 MLP
//! layers … total model size of 96 GB", §6) — is available as
//! [`DlrmConfig::mlperf`], along with the RMC1/2/3 variants of
//! Fig. 13(c) and arbitrarily scaled-down versions for functional runs.
//!
//! The crate supports the three gradient-derivation styles the paper
//! compares (§2.5):
//!
//! * per-batch gradients (plain SGD),
//! * materialized **per-example** gradients (DP-SGD(B)),
//! * **ghost norms** — per-example gradient L2 norms computed without
//!   materializing per-example weight gradients (DP-SGD(F)), plus the
//!   reweighted batch pass that both DP-SGD(R) and DP-SGD(F) share.
//!
//! # Example
//!
//! ```
//! use lazydp_data::{SyntheticConfig, SyntheticDataset};
//! use lazydp_model::{Dlrm, DlrmConfig};
//! use lazydp_rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(7);
//! let model = Dlrm::new(DlrmConfig::tiny(2, 64, 8), &mut rng);
//! let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 32));
//! let batch = ds.batch_of(&[0, 1, 2, 3]);
//! let cache = model.forward(&batch);
//! assert_eq!(cache.logits().len(), 4); // one click logit per example
//! assert!(model.loss(&batch).is_finite());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod dlrm;
pub mod interaction;
pub mod metrics;
pub mod mlp;

pub use config::{DlrmConfig, InteractionKind};
pub use dlrm::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch};
pub use metrics::{accuracy, auc, calibration, log_loss};
pub use mlp::{LayerGrad, Mlp, MlpCache, MlpGrads};
