//! Click-through-rate evaluation metrics.
//!
//! The RecSys literature (and the MLPerf DLRM benchmark the paper's
//! workload comes from) reports **ROC-AUC** as the primary quality
//! metric, alongside log-loss. These are the metrics the
//! privacy-vs-utility experiments use to show that DP training — with or
//! without LazyDP — pays in utility as σ grows, while LazyDP's speedups
//! are utility-neutral (the model is mathematically equivalent).

/// Area under the ROC curve via the rank-sum (Mann–Whitney U)
/// formulation with midrank tie handling.
///
/// Returns 0.5 for degenerate inputs (all-positive or all-negative
/// labels), which is the convention that keeps training-loop telemetry
/// total.
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or a label is outside
/// `[0, 1]`.
#[must_use]
pub fn auc(labels: &[f32], scores: &[f32]) -> f64 {
    assert_eq!(labels.len(), scores.len(), "label/score length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let n_pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let n_neg = labels.len() - n_pos;
    for &y in labels {
        assert!((0.0..=1.0).contains(&y), "label {y} outside [0,1]");
    }
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    // Midranks over the scores.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("NaN score"));
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0usize;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = midrank;
        }
        i = j + 1;
    }
    let mut rank_sum_pos = 0.0f64;
    for (&y, &r) in labels.iter().zip(ranks.iter()) {
        if y >= 0.5 {
            rank_sum_pos += r;
        }
    }
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean log-loss of probability predictions (clamped to avoid infinite
/// penalties at exactly 0/1).
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn log_loss(labels: &[f32], probs: &[f32]) -> f64 {
    assert_eq!(labels.len(), probs.len(), "label/prob length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let eps = 1e-7f64;
    let mut loss = 0.0f64;
    for (&y, &p) in labels.iter().zip(probs.iter()) {
        let p = f64::from(p).clamp(eps, 1.0 - eps);
        let y = f64::from(y);
        loss += -(y * p.ln() + (1.0 - y) * (1.0 - p).ln());
    }
    loss / labels.len() as f64
}

/// Calibration ratio: mean predicted probability / empirical click rate.
/// 1.0 is perfectly calibrated; ads systems track this closely.
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or no positives exist.
#[must_use]
pub fn calibration(labels: &[f32], probs: &[f32]) -> f64 {
    assert_eq!(labels.len(), probs.len(), "label/prob length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let mut pred_total = 0.0f64;
    for &p in probs {
        pred_total += f64::from(p);
    }
    let mean_pred = pred_total / probs.len() as f64;
    let mut label_total = 0.0f64;
    for &y in labels {
        label_total += f64::from(y);
    }
    let ctr = label_total / labels.len() as f64;
    assert!(ctr > 0.0, "no positive labels — calibration undefined");
    mean_pred / ctr
}

/// Accuracy at the 0.5 threshold.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
#[must_use]
pub fn accuracy(labels: &[f32], probs: &[f32]) -> f64 {
    assert_eq!(labels.len(), probs.len(), "label/prob length mismatch");
    assert!(!labels.is_empty(), "empty evaluation set");
    let correct = labels
        .iter()
        .zip(probs.iter())
        .filter(|(&y, &p)| (p >= 0.5) == (y >= 0.5))
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auc_perfect_and_inverted() {
        let labels = [0.0f32, 0.0, 1.0, 1.0];
        assert_eq!(auc(&labels, &[0.1, 0.2, 0.8, 0.9]), 1.0);
        assert_eq!(auc(&labels, &[0.9, 0.8, 0.2, 0.1]), 0.0);
    }

    #[test]
    fn auc_known_value_with_tie() {
        // scores: pos {0.8, 0.5}, neg {0.5, 0.2}. Pairs: (0.8>0.5)=1,
        // (0.8>0.2)=1, (0.5=0.5)=0.5, (0.5>0.2)=1 → AUC = 3.5/4.
        let labels = [1.0f32, 1.0, 0.0, 0.0];
        let scores = [0.8f32, 0.5, 0.5, 0.2];
        assert!((auc(&labels, &scores) - 0.875).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_inputs_return_half() {
        assert_eq!(auc(&[1.0, 1.0], &[0.3, 0.9]), 0.5);
        assert_eq!(auc(&[0.0, 0.0], &[0.3, 0.9]), 0.5);
    }

    #[test]
    fn auc_is_threshold_free() {
        // Any strictly monotone transform of the scores preserves AUC.
        let labels = [0.0f32, 1.0, 0.0, 1.0, 1.0, 0.0];
        let scores = [0.2f32, 0.7, 0.4, 0.6, 0.9, 0.1];
        let shifted: Vec<f32> = scores.iter().map(|s| s * 10.0 - 3.0).collect();
        assert!((auc(&labels, &scores) - auc(&labels, &shifted)).abs() < 1e-12);
    }

    #[test]
    fn log_loss_basics() {
        // Perfect confident predictions → ~0; uninformative 0.5 → ln 2.
        assert!(log_loss(&[1.0, 0.0], &[1.0, 0.0]) < 1e-5);
        let l = log_loss(&[1.0, 0.0], &[0.5, 0.5]);
        assert!((l - std::f64::consts::LN_2).abs() < 1e-9);
        // Clamping keeps confident-wrong finite.
        assert!(log_loss(&[1.0], &[0.0]).is_finite());
    }

    #[test]
    fn calibration_and_accuracy() {
        let labels = [1.0f32, 0.0, 0.0, 0.0];
        let probs = [0.5f32, 0.2, 0.2, 0.1];
        assert!((calibration(&labels, &probs) - 1.0).abs() < 1e-6);
        assert!((accuracy(&labels, &probs) - 1.0).abs() < 1e-12);
        let bad = [0.9f32, 0.9, 0.9, 0.9];
        assert!(calibration(&labels, &bad) > 3.0);
        assert!((accuracy(&labels, &bad) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn auc_rejects_mismatch() {
        let _ = auc(&[1.0], &[0.5, 0.5]);
    }
}
