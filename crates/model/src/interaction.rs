//! Feature interaction: combining the bottom-MLP output with the pooled
//! embedding vectors (paper Fig. 1).

use crate::config::InteractionKind;
use lazydp_tensor::Matrix;

/// Forward pass of the interaction.
///
/// `inputs` holds `n = T+1` matrices of identical shape `B × d`:
/// `inputs[0]` is the bottom-MLP output, `inputs[1..]` the pooled
/// embeddings. For [`InteractionKind::Dot`] the output is
/// `[bottom | pairwise dot products]` of width `d + n(n−1)/2`; for
/// [`InteractionKind::Concat`] it is all inputs side by side.
///
/// # Panics
///
/// Panics if `inputs` is empty or shapes disagree.
#[must_use]
pub fn interaction_forward(kind: InteractionKind, inputs: &[Matrix]) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    interaction_forward_into(kind, inputs, &mut out);
    out
}

/// [`interaction_forward`] into a caller-owned output matrix (reshaped
/// and overwritten in place; no allocation at steady state). The
/// arithmetic — including the plain ascending dot accumulation of the
/// pairwise terms — is identical to the allocating path.
///
/// # Panics
///
/// Panics if `inputs` is empty or shapes disagree.
pub fn interaction_forward_into(kind: InteractionKind, inputs: &[Matrix], out: &mut Matrix) {
    assert!(!inputs.is_empty(), "interaction needs at least one input");
    let (batch, dim) = inputs[0].shape();
    for m in inputs {
        assert_eq!(
            m.shape(),
            (batch, dim),
            "interaction inputs must share shape"
        );
    }
    match kind {
        InteractionKind::Concat => {
            out.reset_zeroed(batch, dim * inputs.len());
            for b in 0..batch {
                let row = out.row_mut(b);
                for (i, m) in inputs.iter().enumerate() {
                    row[i * dim..(i + 1) * dim].copy_from_slice(m.row(b));
                }
            }
        }
        InteractionKind::Dot => {
            let n = inputs.len();
            let pairs = n * (n - 1) / 2;
            out.reset_zeroed(batch, dim + pairs);
            for b in 0..batch {
                let row = out.row_mut(b);
                row[..dim].copy_from_slice(inputs[0].row(b));
                let mut k = dim;
                for i in 0..n {
                    for j in (i + 1)..n {
                        let mut acc = 0.0f32;
                        for (x, y) in inputs[i].row(b).iter().zip(inputs[j].row(b)) {
                            acc += x * y;
                        }
                        row[k] = acc;
                        k += 1;
                    }
                }
            }
        }
    }
}

/// Backward pass: gradient of each interaction input given the gradient
/// of the interaction output.
///
/// # Panics
///
/// Panics if shapes disagree with what [`interaction_forward`] produced.
#[must_use]
pub fn interaction_backward(
    kind: InteractionKind,
    inputs: &[Matrix],
    grad_out: &Matrix,
) -> Vec<Matrix> {
    let mut grads = Vec::new();
    interaction_backward_into(kind, inputs, grad_out, &mut grads);
    grads
}

/// [`interaction_backward`] into a caller-owned vector of per-input
/// gradient matrices (each reshaped and overwritten in place).
///
/// # Panics
///
/// Panics if shapes disagree with what [`interaction_forward`] produced.
pub fn interaction_backward_into(
    kind: InteractionKind,
    inputs: &[Matrix],
    grad_out: &Matrix,
    grads: &mut Vec<Matrix>,
) {
    assert!(!inputs.is_empty(), "interaction needs at least one input");
    let (batch, dim) = inputs[0].shape();
    grads.resize_with(inputs.len(), || Matrix::zeros(0, 0));
    match kind {
        InteractionKind::Concat => {
            assert_eq!(grad_out.shape(), (batch, dim * inputs.len()), "grad shape");
            for (i, g) in grads.iter_mut().enumerate() {
                grad_out.col_slice_into(i * dim, dim, g);
            }
        }
        InteractionKind::Dot => {
            let n = inputs.len();
            let pairs = n * (n - 1) / 2;
            assert_eq!(grad_out.shape(), (batch, dim + pairs), "grad shape");
            for g in grads.iter_mut() {
                g.reset_zeroed(batch, dim);
            }
            for b in 0..batch {
                let g = grad_out.row(b);
                // Pass-through part for the bottom vector.
                grads[0].row_mut(b).copy_from_slice(&g[..dim]);
                let mut k = dim;
                for i in 0..n {
                    for j in (i + 1)..n {
                        let gk = g[k];
                        if gk != 0.0 {
                            // d(z_i·z_j)/dz_i = z_j and vice versa.
                            for d in 0..dim {
                                grads[i].row_mut(b)[d] += gk * inputs[j].row(b)[d];
                                grads[j].row_mut(b)[d] += gk * inputs[i].row(b)[d];
                            }
                        }
                        k += 1;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(n: usize, batch: usize, dim: usize) -> Vec<Matrix> {
        (0..n)
            .map(|t| {
                Matrix::from_fn(batch, dim, |i, j| {
                    ((t * 13 + i * 7 + j * 3) as f32 % 9.0 - 4.0) / 4.0
                })
            })
            .collect()
    }

    #[test]
    fn dot_forward_shape_and_values() {
        let ins = inputs(3, 2, 4);
        let out = interaction_forward(InteractionKind::Dot, &ins);
        assert_eq!(out.shape(), (2, 4 + 3));
        // First dim columns replicate the bottom vector.
        assert_eq!(&out.row(0)[..4], ins[0].row(0));
        // Pair (0,1) dot check for sample 1.
        let expect: f32 = ins[0]
            .row(1)
            .iter()
            .zip(ins[1].row(1))
            .map(|(a, b)| a * b)
            .sum();
        assert!((out[(1, 4)] - expect).abs() < 1e-6);
    }

    #[test]
    fn concat_forward_roundtrip() {
        let ins = inputs(3, 2, 4);
        let out = interaction_forward(InteractionKind::Concat, &ins);
        assert_eq!(out.shape(), (2, 12));
        let back = interaction_backward(InteractionKind::Concat, &ins, &out);
        for (b, i) in back.iter().zip(ins.iter()) {
            assert_eq!(b, i, "concat backward is a split");
        }
    }

    #[test]
    fn dot_backward_matches_finite_difference() {
        let ins = inputs(3, 2, 3);
        let grad_out = Matrix::from_fn(2, 3 + 3, |i, j| ((i + j) as f32 * 0.37).cos());
        let grads = interaction_backward(InteractionKind::Dot, &ins, &grad_out);
        // Scalar loss: sum(grad_out ⊙ forward(inputs)).
        let loss = |ins: &[Matrix]| -> f32 {
            interaction_forward(InteractionKind::Dot, ins)
                .as_slice()
                .iter()
                .zip(grad_out.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let eps = 1e-3f32;
        for t in 0..3 {
            for b in 0..2 {
                for d in 0..3 {
                    let mut pert = ins.clone();
                    pert[t].row_mut(b)[d] += eps;
                    let up = loss(&pert);
                    pert[t].row_mut(b)[d] -= 2.0 * eps;
                    let down = loss(&pert);
                    let fd = (up - down) / (2.0 * eps);
                    let got = grads[t][(b, d)];
                    assert!(
                        (got - fd).abs() < 1e-2,
                        "input {t} sample {b} dim {d}: {got} vs {fd}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_input_dot_has_no_pairs() {
        let ins = inputs(1, 3, 4);
        let out = interaction_forward(InteractionKind::Dot, &ins);
        assert_eq!(out.shape(), (3, 4));
        assert_eq!(out, ins[0]);
    }

    #[test]
    #[should_panic(expected = "share shape")]
    fn rejects_mismatched_inputs() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 4);
        let _ = interaction_forward(InteractionKind::Dot, &[a, b]);
    }
}
