//! DLRM model configurations: the paper's default and its variants.

/// How the bottom-MLP output and embedding vectors are combined before
/// the top MLP (paper Fig. 1 "feature interaction").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InteractionKind {
    /// Pairwise dot products of all (T+1) vectors, concatenated with the
    /// bottom-MLP output — the DLRM/MLPerf default.
    #[default]
    Dot,
    /// Plain concatenation of all vectors (used by simpler RecSys
    /// variants; cheaper, larger top-MLP input).
    Concat,
}

/// Full structural description of a DLRM instance.
///
/// `bottom_layers` / `top_layers` list the *output* widths of each MLP
/// layer; input widths are inferred (`num_dense` for the bottom,
/// [`top_input_dim`](Self::top_input_dim) for the top). The last bottom
/// width must equal `embedding_dim` so the interaction sees
/// equal-length vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct DlrmConfig {
    /// Dense (continuous) features per sample. Criteo: 13.
    pub num_dense: usize,
    /// Embedding vector width. MLPerf DLRM: 128.
    pub embedding_dim: usize,
    /// Rows of each embedding table. MLPerf DLRM: 26 Criteo tables.
    pub table_rows: Vec<u64>,
    /// Embedding lookups per table per sample. MLPerf default: 1.
    pub pooling: usize,
    /// Bottom MLP output widths. MLPerf: `[512, 256, 128]`.
    pub bottom_layers: Vec<usize>,
    /// Top MLP output widths (last must be 1). MLPerf:
    /// `[1024, 1024, 512, 256, 1]`.
    pub top_layers: Vec<usize>,
    /// Feature-interaction style.
    pub interaction: InteractionKind,
}

/// The 26 Criteo-Terabyte table cardinalities with the MLPerf cap of
/// 40 M rows per table — the paper's default "96 GB" model (§6 — at
/// dim 128 × f32 these sum to 96.1 GB, and the HistoryTable over them is
/// the 751 MB quoted in §7.2).
pub const CRITEO_TB_CAPPED_ROWS: [u64; 26] = [
    39_884_406, 39_043, 17_289, 7_420, 20_263, 3, 7_120, 1_543, 63, 38_532_951, 2_953_546, 403_346,
    10, 2_208, 11_938, 155, 4, 976, 14, 39_979_771, 25_641_295, 39_664_984, 585_935, 12_972, 108,
    36,
];

impl DlrmConfig {
    /// The paper's default model: MLPerf (v2.1) DLRM, 96 GB of
    /// embeddings, scaled down by `scale_div` (the paper itself scales
    /// 10×↓ to 1000×↓ for its Fig. 3 sweep). `scale_div = 1` is the full
    /// model — only the performance model can hold that; functional runs
    /// should use large divisors.
    ///
    /// # Panics
    ///
    /// Panics if `scale_div == 0`.
    #[must_use]
    pub fn mlperf(scale_div: u64) -> Self {
        assert!(scale_div > 0, "scale divisor must be positive");
        Self {
            num_dense: 13,
            embedding_dim: 128,
            table_rows: CRITEO_TB_CAPPED_ROWS
                .iter()
                .map(|&r| (r / scale_div).max(r.min(4)))
                .collect(),
            pooling: 1,
            bottom_layers: vec![512, 256, 128],
            top_layers: vec![1024, 1024, 512, 256, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// RMC1 (after DeepRecSys/HPCA'20, approximated — see DESIGN.md):
    /// a few large tables with moderate pooling and small MLPs
    /// (8 × 20 M rows × dim 64 ≈ 41 GB).
    #[must_use]
    pub fn rmc1(scale_div: u64) -> Self {
        assert!(scale_div > 0, "scale divisor must be positive");
        Self {
            num_dense: 13,
            embedding_dim: 64,
            table_rows: vec![(20_000_000 / scale_div).max(4); 8],
            pooling: 10,
            bottom_layers: vec![256, 128, 64],
            top_layers: vec![512, 128, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// RMC2 (approximated): many tables with heavy pooling — the
    /// embedding-dominated class (32 × 6 M rows × dim 64 ≈ 49 GB,
    /// 960 lookups/sample). SGD itself is slow here, which is why
    /// Fig. 13(c) shows the smallest DP-SGD(F)/SGD gap for RMC2.
    #[must_use]
    pub fn rmc2(scale_div: u64) -> Self {
        assert!(scale_div > 0, "scale divisor must be positive");
        Self {
            num_dense: 13,
            embedding_dim: 64,
            table_rows: vec![(6_000_000 / scale_div).max(4); 32],
            pooling: 30,
            bottom_layers: vec![256, 128, 64],
            top_layers: vec![512, 128, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// RMC3 (approximated): few but very large tables (8 × 30 M rows ×
    /// dim 128 ≈ 123 GB), pooling 1, big MLPs — the class where
    /// DP-SGD(F)'s dense noisy update hurts most (Fig. 13(c): 329× over
    /// SGD; it barely fits the 256 GB DRAM with the dense noisy
    /// gradient).
    #[must_use]
    pub fn rmc3(scale_div: u64) -> Self {
        assert!(scale_div > 0, "scale divisor must be positive");
        Self {
            num_dense: 13,
            embedding_dim: 128,
            table_rows: vec![(30_000_000 / scale_div).max(4); 8],
            pooling: 1,
            bottom_layers: vec![512, 256, 128],
            top_layers: vec![1024, 512, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// A tiny configuration for functional tests: `num_tables` tables of
    /// `rows` rows, `dim`-wide embeddings, small MLPs.
    #[must_use]
    pub fn tiny(num_tables: usize, rows: u64, dim: usize) -> Self {
        Self {
            num_dense: 13,
            embedding_dim: dim,
            table_rows: vec![rows; num_tables],
            pooling: 1,
            bottom_layers: vec![16, dim],
            top_layers: vec![16, 1],
            interaction: InteractionKind::Dot,
        }
    }

    /// Sets the pooling factor.
    #[must_use]
    pub fn with_pooling(mut self, pooling: usize) -> Self {
        assert!(pooling > 0, "pooling must be positive");
        self.pooling = pooling;
        self
    }

    /// Replaces the embedding table row counts (e.g. for the Fig. 13(a)
    /// table-size sweep).
    #[must_use]
    pub fn with_table_rows(mut self, table_rows: Vec<u64>) -> Self {
        assert!(!table_rows.is_empty(), "need at least one table");
        self.table_rows = table_rows;
        self
    }

    /// Number of embedding tables.
    #[must_use]
    pub fn num_tables(&self) -> usize {
        self.table_rows.len()
    }

    /// Total embedding rows across all tables.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.table_rows.iter().sum()
    }

    /// Total embedding parameters (`total_rows × embedding_dim`).
    #[must_use]
    pub fn embedding_params(&self) -> u64 {
        self.total_rows() * self.embedding_dim as u64
    }

    /// Embedding storage in bytes (f32).
    #[must_use]
    pub fn embedding_bytes(&self) -> u64 {
        self.embedding_params() * 4
    }

    /// Input width of the top MLP, determined by the interaction.
    ///
    /// For `Dot` with `T` tables: `embedding_dim + (T+1)·T/2` (pairwise
    /// dots among the T embedding outputs and the bottom output,
    /// concatenated with the bottom output). MLPerf: 128 + 27·26/2 = 479.
    #[must_use]
    pub fn top_input_dim(&self) -> usize {
        let n = self.num_tables() + 1;
        match self.interaction {
            InteractionKind::Dot => self.embedding_dim + n * (n - 1) / 2,
            InteractionKind::Concat => self.embedding_dim * n,
        }
    }

    /// MLP parameter count (weights + biases of both MLPs).
    #[must_use]
    pub fn mlp_params(&self) -> u64 {
        let mut total = 0u64;
        let mut prev = self.num_dense;
        for &w in &self.bottom_layers {
            total += (prev * w + w) as u64;
            prev = w;
        }
        let mut prev = self.top_input_dim();
        for &w in &self.top_layers {
            total += (prev * w + w) as u64;
            prev = w;
        }
        total
    }

    /// Total number of MLP layers (the paper counts 8 for MLPerf DLRM).
    #[must_use]
    pub fn num_mlp_layers(&self) -> usize {
        self.bottom_layers.len() + self.top_layers.len()
    }

    /// Total model bytes (embeddings + MLPs, f32).
    #[must_use]
    pub fn model_bytes(&self) -> u64 {
        self.embedding_bytes() + self.mlp_params() * 4
    }

    /// Validates structural invariants; returns an error string naming
    /// the first violation.
    ///
    /// # Errors
    ///
    /// Returns `Err` if the bottom MLP does not end at `embedding_dim`,
    /// the top MLP does not end at width 1, any table is empty, or
    /// `pooling == 0`.
    pub fn validate(&self) -> Result<(), String> {
        if self.bottom_layers.last() != Some(&self.embedding_dim) {
            return Err(format!(
                "bottom MLP must end at embedding_dim {} (got {:?})",
                self.embedding_dim, self.bottom_layers
            ));
        }
        if self.top_layers.last() != Some(&1) {
            return Err(format!(
                "top MLP must end at width 1 (got {:?})",
                self.top_layers
            ));
        }
        if self.table_rows.is_empty() {
            return Err("need at least one embedding table".to_owned());
        }
        if self.table_rows.contains(&0) {
            return Err("embedding tables must be non-empty".to_owned());
        }
        if self.pooling == 0 {
            return Err("pooling must be positive".to_owned());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlperf_full_scale_matches_paper_quotes() {
        let cfg = DlrmConfig::mlperf(1);
        assert_eq!(cfg.num_tables(), 26);
        assert_eq!(cfg.num_mlp_layers(), 8, "paper: 8 MLP layers");
        assert_eq!(cfg.top_input_dim(), 479, "MLPerf top MLP input width");
        // §6: "total model size of 96 GB".
        let gb = cfg.model_bytes() as f64 / 1e9;
        assert!((gb - 96.0).abs() < 2.0, "model size {gb} GB");
        // §7.2: HistoryTable = total rows × 4 B ≈ 751 MB.
        let history_mb = cfg.total_rows() as f64 * 4.0 / 1e6;
        assert!(
            (history_mb - 751.0).abs() < 2.0,
            "history table {history_mb} MB"
        );
        cfg.validate().expect("valid config");
    }

    #[test]
    fn input_queue_overhead_matches_paper() {
        // §7.2: batch 2048 × 26 tables × 1 lookup × 4 B = 213 KB.
        let cfg = DlrmConfig::mlperf(1);
        let bytes = 2048 * cfg.num_tables() as u64 * cfg.pooling as u64 * 4;
        assert_eq!(bytes, 212_992);
        assert!((bytes as f64 / 1e3 - 213.0).abs() < 0.1);
    }

    #[test]
    fn scaling_divides_rows() {
        let full = DlrmConfig::mlperf(1);
        let tenth = DlrmConfig::mlperf(10);
        // 10×↓ of the paper's Fig. 3 ⇒ ≈ 9.6 GB.
        let gb = tenth.embedding_bytes() as f64 / 1e9;
        assert!((gb - 9.6).abs() < 0.3, "scaled size {gb} GB");
        assert!(tenth.total_rows() < full.total_rows() / 9);
        tenth.validate().expect("valid");
    }

    #[test]
    fn rmc_presets_are_valid_and_ordered() {
        for cfg in [
            DlrmConfig::rmc1(1),
            DlrmConfig::rmc2(1),
            DlrmConfig::rmc3(1),
        ] {
            cfg.validate().expect("valid RMC preset");
        }
        // RMC3 has the largest embedding footprint, RMC2 the most lookups.
        let (r1, r2, r3) = (
            DlrmConfig::rmc1(1),
            DlrmConfig::rmc2(1),
            DlrmConfig::rmc3(1),
        );
        assert!(r3.embedding_bytes() > r1.embedding_bytes());
        assert!(r3.embedding_bytes() > r2.embedding_bytes());
        let lookups = |c: &DlrmConfig| c.num_tables() * c.pooling;
        assert!(lookups(&r2) > lookups(&r1));
        assert!(lookups(&r1) > lookups(&r3));
    }

    #[test]
    fn tiny_preset_valid_and_small() {
        let cfg = DlrmConfig::tiny(4, 100, 8);
        cfg.validate().expect("valid");
        assert!(cfg.model_bytes() < 1_000_000);
        assert_eq!(cfg.top_input_dim(), 8 + 5 * 4 / 2);
    }

    #[test]
    fn concat_interaction_dim() {
        let mut cfg = DlrmConfig::tiny(3, 10, 8);
        cfg.interaction = InteractionKind::Concat;
        assert_eq!(cfg.top_input_dim(), 8 * 4);
    }

    #[test]
    fn validation_catches_errors() {
        let mut cfg = DlrmConfig::tiny(2, 10, 8);
        cfg.bottom_layers = vec![16, 7];
        assert!(cfg.validate().is_err(), "bottom/embedding mismatch");
        let mut cfg = DlrmConfig::tiny(2, 10, 8);
        cfg.top_layers = vec![16, 2];
        assert!(cfg.validate().is_err(), "top must end at 1");
        let mut cfg = DlrmConfig::tiny(2, 10, 8);
        cfg.table_rows = vec![];
        assert!(cfg.validate().is_err(), "no tables");
    }

    #[test]
    #[allow(clippy::identity_op)]
    fn mlp_params_formula() {
        // bottom 13→512→256→128, top 479→1024→1024→512→256→1.
        let cfg = DlrmConfig::mlperf(1000);
        let bottom = 13 * 512 + 512 + 512 * 256 + 256 + 256 * 128 + 128;
        let top = 479 * 1024
            + 1024
            + 1024 * 1024
            + 1024
            + 1024 * 512
            + 512
            + 512 * 256
            + 256
            + 256 * 1
            + 1;
        assert_eq!(cfg.mlp_params(), (bottom + top) as u64);
    }
}
