//! The full DLRM model: bottom MLP + embedding bags + feature
//! interaction + top MLP (paper Fig. 1).

use crate::config::DlrmConfig;
use crate::interaction::{
    interaction_backward, interaction_backward_into, interaction_forward_into,
};
use crate::mlp::{Mlp, MlpCache, MlpGrads};
use lazydp_data::MiniBatch;
use lazydp_embedding::{
    CoalesceScratch, EmbeddingBag, EmbeddingStorage, EmbeddingTable, Pooling, SparseGrad,
};
use lazydp_rng::Prng;
use lazydp_tensor::{bce_with_logits, bce_with_logits_grad, Matrix, ScratchArena};

/// Forward-pass cache for one mini-batch.
///
/// Reusable: [`Dlrm::forward_with`] reshapes every cached matrix in
/// place, so a trainer-owned cache stops allocating once each buffer has
/// reached its steady-state size.
#[derive(Debug, Clone, Default)]
pub struct DlrmCache {
    /// Bottom-MLP cache.
    pub bottom: MlpCache,
    /// Interaction inputs: `[bottom output, emb table 0, …]`, each `B × d`.
    pub inter_inputs: Vec<Matrix>,
    /// Top-MLP cache (its input is the interaction output).
    pub top: MlpCache,
}

impl DlrmCache {
    /// The output logits (one per example).
    #[must_use]
    pub fn logits(&self) -> Vec<f32> {
        self.top.output().as_slice().to_vec()
    }

    /// The output logits as a borrowed slice (the `B × 1` top output,
    /// row-major — allocation-free accessor for the hot loop).
    #[must_use]
    pub fn logits_slice(&self) -> &[f32] {
        self.top.output().as_slice()
    }
}

/// Reusable working state for the DLRM forward/backward passes — the
/// model-level slice of the step-scoped scratch arena. Owned by the
/// trainer/optimizer and lazily sized on the first step; with it, the
/// whole forward + ghost-norm + reweighted-backward pipeline performs
/// zero heap allocations at steady state.
#[derive(Debug, Clone, Default)]
pub struct DlrmScratch {
    /// Dense-feature input matrix (`B × num_dense`).
    x: Matrix,
    /// Logit-gradient column (`B × 1`).
    g: Matrix,
    /// Gradient of the top-MLP input (the interaction output).
    grad_top_in: Matrix,
    /// Per-interaction-input gradients.
    inter_grads: Vec<Matrix>,
    /// Discarded input-gradient of the bottom MLP.
    grad_x: Matrix,
    /// Typed buffer pools for the MLP passes.
    arena: ScratchArena,
    /// Sorted-run scratch for the embedding ghost norms.
    bag_idx: Vec<u64>,
    /// Per-layer top-MLP activation gradients stashed between the two
    /// phases of the fused clipped backward.
    top_dz: Vec<Matrix>,
    /// Same for the bottom MLP.
    bottom_dz: Vec<Matrix>,
}

/// Gradients of every trainable tensor in the model.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DlrmGrads {
    /// Bottom-MLP gradients.
    pub bottom: MlpGrads,
    /// Top-MLP gradients.
    pub top: MlpGrads,
    /// Per-table sparse embedding gradients.
    pub tables: Vec<SparseGrad>,
}

impl DlrmGrads {
    /// Total squared L2 norm across all tensors.
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        let mut total = self.bottom.norm_sq() + self.top.norm_sq();
        for t in &self.tables {
            total += t.norm_sq();
        }
        total
    }

    /// Total L2 norm.
    #[must_use]
    pub fn norm(&self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// In-place scaling of every gradient value.
    pub fn scale(&mut self, alpha: f32) {
        self.bottom.scale(alpha);
        self.top.scale(alpha);
        for t in &mut self.tables {
            t.scale(alpha);
        }
    }

    /// Coalesces every table gradient, returning total duplicates merged.
    pub fn coalesce(&mut self) -> usize {
        self.tables.iter_mut().map(SparseGrad::coalesce).sum()
    }

    /// [`coalesce`](Self::coalesce) through caller-owned scratch (see
    /// [`SparseGrad::coalesce_with`]).
    pub fn coalesce_with(&mut self, scratch: &mut CoalesceScratch) -> usize {
        self.tables
            .iter_mut()
            .map(|t| t.coalesce_with(scratch))
            .sum()
    }

    /// (Re)shapes `self` to match `model` — MLP gradients zeroed, table
    /// gradients empty — reusing existing allocations where shapes
    /// already agree.
    pub fn reset_for<T: EmbeddingStorage>(&mut self, model: &Dlrm<T>) {
        if self.bottom.layers.len() != model.bottom.layers().len() {
            self.bottom = MlpGrads::zeros_like(&model.bottom);
        } else {
            self.bottom.set_zero();
        }
        if self.top.layers.len() != model.top.layers().len() {
            self.top = MlpGrads::zeros_like(&model.top);
        } else {
            self.top.set_zero();
        }
        if self.tables.len() != model.tables.len() {
            self.tables = model
                .tables
                .iter()
                .map(|t| SparseGrad::new(t.dim()))
                .collect();
        } else {
            for (g, t) in self.tables.iter_mut().zip(model.tables.iter()) {
                g.reset(t.dim());
            }
        }
    }
}

/// The DLRM model, generic over where its embedding rows live.
///
/// `T` is the embedding backend — any [`EmbeddingStorage`]: the default
/// in-memory [`EmbeddingTable`], a hash-partitioned
/// `lazydp_embedding::ShardedTable`, or the out-of-core
/// `lazydp_store::StoredTable`. The MLPs are always resident (they are
/// tiny next to the tables); only the embedding rows move backends. The
/// whole forward/backward below is written against the trait, so every
/// backend trains bitwise identically (see `EmbeddingStorage`'s
/// contract).
#[derive(Debug, Clone)]
pub struct Dlrm<T: EmbeddingStorage = EmbeddingTable> {
    config: DlrmConfig,
    /// Bottom (dense-feature) MLP.
    pub bottom: Mlp,
    /// One embedding table per categorical feature.
    pub tables: Vec<T>,
    /// One bag (gather+pool) per table.
    pub bags: Vec<EmbeddingBag>,
    /// Top (interaction) MLP ending in the click logit.
    pub top: Mlp,
}

impl Dlrm {
    /// Builds and initializes an in-memory model from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`DlrmConfig::validate`]).
    #[must_use]
    pub fn new<R: Prng>(config: DlrmConfig, rng: &mut R) -> Self {
        Dlrm::new_with(config, rng, |rows, dim, rng| {
            EmbeddingTable::init_uniform(rows, dim, rng)
        })
    }

    /// Per-example logit gradients of the BCE loss.
    ///
    /// `mean = true` gives ∂(mean loss)/∂z (plain SGD); `mean = false`
    /// gives per-example ∂loss_i/∂z_i (the DP clipping convention —
    /// DP-SGD averages *after* clipping).
    ///
    /// (Defined on the default instantiation — it never touches the
    /// embedding backend — so `Dlrm::logit_grads(..)` keeps resolving
    /// without a turbofish.)
    #[must_use]
    pub fn logit_grads(cache: &DlrmCache, labels: &[f32], mean: bool) -> Vec<f32> {
        bce_with_logits_grad(&cache.logits(), labels, mean)
    }

    /// [`logit_grads`](Self::logit_grads) into a caller-owned vector,
    /// reading the logits straight off the cached top output
    /// (allocation-free at steady state).
    pub fn logit_grads_into(cache: &DlrmCache, labels: &[f32], mean: bool, out: &mut Vec<f32>) {
        lazydp_tensor::bce_with_logits_grad_into(cache.logits_slice(), labels, mean, out);
    }
}

impl<T: EmbeddingStorage> Dlrm<T> {
    /// Builds a model whose embedding tables come from `make_table(rows,
    /// dim, rng)`. The RNG is threaded through in the exact order
    /// [`Dlrm::new`] uses (bottom MLP, top MLP, then tables), so a
    /// backend whose constructor draws the same values — e.g.
    /// `StoredTable::init_uniform` — yields a model bitwise identical to
    /// the in-memory one from the same seed.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    #[must_use]
    pub fn new_with<R: Prng>(
        config: DlrmConfig,
        rng: &mut R,
        mut make_table: impl FnMut(usize, usize, &mut R) -> T,
    ) -> Self {
        Self::try_new_with(config, rng, |rows, dim, rng| {
            Ok::<T, std::convert::Infallible>(make_table(rows, dim, rng))
        })
        .expect("infallible table constructor")
    }

    /// [`new_with`](Self::new_with) for fallible table constructors
    /// (disk-backed tables can hit I/O errors).
    ///
    /// # Errors
    ///
    /// Propagates the first `make_table` error.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid.
    pub fn try_new_with<R: Prng, E>(
        config: DlrmConfig,
        rng: &mut R,
        mut make_table: impl FnMut(usize, usize, &mut R) -> Result<T, E>,
    ) -> Result<Self, E> {
        config.validate().expect("invalid DLRM config");
        let bottom = Mlp::new(config.num_dense, &config.bottom_layers, rng);
        let top = Mlp::new(config.top_input_dim(), &config.top_layers, rng);
        let tables = config
            .table_rows
            .iter()
            .map(|&rows| make_table(rows as usize, config.embedding_dim, rng))
            .collect::<Result<Vec<_>, E>>()?;
        let bags = vec![EmbeddingBag::new(Pooling::Sum); config.table_rows.len()];
        Ok(Self {
            config,
            bottom,
            tables,
            bags,
            top,
        })
    }

    /// Rebuilds the model on a different embedding backend, converting
    /// each table with `f(table_index, table)`. MLPs, bags, and config
    /// move over untouched, so the converted model is observationally
    /// identical whenever `f` preserves row contents.
    #[must_use]
    pub fn map_tables<U: EmbeddingStorage>(self, mut f: impl FnMut(usize, T) -> U) -> Dlrm<U> {
        self.try_map_tables(|i, t| Ok::<U, std::convert::Infallible>(f(i, t)))
            .expect("infallible table conversion")
    }

    /// [`map_tables`](Self::map_tables) for fallible conversions.
    ///
    /// # Errors
    ///
    /// Propagates the first conversion error.
    pub fn try_map_tables<U: EmbeddingStorage, E>(
        self,
        mut f: impl FnMut(usize, T) -> Result<U, E>,
    ) -> Result<Dlrm<U>, E> {
        let tables = self
            .tables
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect::<Result<Vec<_>, E>>()?;
        Ok(Dlrm {
            config: self.config,
            bottom: self.bottom,
            tables,
            bags: self.bags,
            top: self.top,
        })
    }

    /// The model configuration.
    #[must_use]
    pub fn config(&self) -> &DlrmConfig {
        &self.config
    }

    /// Forward pass over a mini-batch.
    ///
    /// # Panics
    ///
    /// Panics if the batch is inconsistent or empty.
    #[must_use]
    pub fn forward(&self, batch: &MiniBatch) -> DlrmCache {
        let mut cache = DlrmCache::default();
        self.forward_with(batch, &mut cache, &mut DlrmScratch::default());
        cache
    }

    /// [`forward`](Self::forward) into a reusable cache with working
    /// buffers from `scratch` — the zero-allocation forward of the
    /// training hot loop. Bitwise identical to the allocating path.
    ///
    /// # Panics
    ///
    /// Panics if the batch is inconsistent or empty.
    pub fn forward_with(
        &self,
        batch: &MiniBatch,
        cache: &mut DlrmCache,
        scratch: &mut DlrmScratch,
    ) {
        assert!(batch.is_consistent(), "inconsistent mini-batch");
        assert!(!batch.is_empty(), "empty mini-batch");
        scratch
            .x
            .assign_from_slice(batch.batch_size(), batch.num_dense, &batch.dense);
        self.bottom.forward_into(&scratch.x, &mut cache.bottom);
        cache
            .inter_inputs
            .resize_with(1 + self.tables.len(), || Matrix::zeros(0, 0));
        cache.inter_inputs[0].copy_from(cache.bottom.output());
        for (t, table) in self.tables.iter().enumerate() {
            self.bags[t].forward_into(table, &batch.sparse[t], &mut cache.inter_inputs[t + 1]);
        }
        // The interaction output is written straight into the top MLP's
        // input activation slot, skipping a copy.
        if cache.top.activations.is_empty() {
            cache.top.activations.push(Matrix::zeros(0, 0));
        }
        interaction_forward_into(
            self.config.interaction,
            &cache.inter_inputs,
            &mut cache.top.activations[0],
        );
        self.top.forward_in_place(&mut cache.top);
    }

    /// Mean BCE loss of a batch (convenience for tests/examples).
    #[must_use]
    pub fn loss(&self, batch: &MiniBatch) -> f64 {
        let cache = self.forward(batch);
        bce_with_logits(&cache.logits(), &batch.labels)
    }

    /// Per-batch backward pass.
    ///
    /// `grad_logits[i]` is ∂L/∂logit_i; pass `weights` to compute the
    /// reweighted sum `Σ_i w_i·grad_i` instead (the DP-SGD(R)/(F)
    /// second pass) — valid because the backward graph is linear in the
    /// logit gradient.
    ///
    /// The returned table gradients are **un-coalesced**.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    #[must_use]
    pub fn backward(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
        weights: Option<&[f32]>,
    ) -> DlrmGrads {
        let mut grads = DlrmGrads::default();
        self.backward_with(
            cache,
            batch,
            grad_logits,
            weights,
            &mut grads,
            &mut DlrmScratch::default(),
        );
        grads
    }

    /// [`backward`](Self::backward) into caller-owned gradients with
    /// working buffers from `scratch` (zero allocation at steady state;
    /// bitwise identical to the allocating path).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    pub fn backward_with(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
        weights: Option<&[f32]>,
        grads: &mut DlrmGrads,
        scratch: &mut DlrmScratch,
    ) {
        let b = batch.batch_size();
        assert_eq!(grad_logits.len(), b, "one logit grad per example");
        scratch.g.assign_from_slice(b, 1, grad_logits);
        if grads.tables.len() != self.tables.len() {
            grads.tables = self
                .tables
                .iter()
                .map(|t| SparseGrad::new(t.dim()))
                .collect();
        }
        // The weighted path propagates the *unscaled* gradient chain
        // (identical bits to the ghost-norm chain) and applies the
        // per-example weights only at the parameter-gradient sites —
        // the arrangement under which the fused clipped backward is
        // bitwise-identical to this two-pass path.
        if let Some(w) = weights {
            assert_eq!(w.len(), b, "one weight per example");
            self.top.backward_weighted_into(
                &cache.top,
                &scratch.g,
                w,
                &mut grads.top,
                &mut scratch.grad_top_in,
                &mut scratch.arena,
            );
        } else {
            self.top.backward_into(
                &cache.top,
                &scratch.g,
                &mut grads.top,
                &mut scratch.grad_top_in,
                &mut scratch.arena,
            );
        }
        interaction_backward_into(
            self.config.interaction,
            &cache.inter_inputs,
            &scratch.grad_top_in,
            &mut scratch.inter_grads,
        );
        if let Some(w) = weights {
            self.bottom.backward_weighted_into(
                &cache.bottom,
                &scratch.inter_grads[0],
                w,
                &mut grads.bottom,
                &mut scratch.grad_x,
                &mut scratch.arena,
            );
            for t in 0..self.tables.len() {
                self.bags[t].backward_weighted_into(
                    &scratch.inter_grads[t + 1],
                    &batch.sparse[t],
                    w,
                    self.config.embedding_dim,
                    &mut grads.tables[t],
                );
            }
        } else {
            self.bottom.backward_into(
                &cache.bottom,
                &scratch.inter_grads[0],
                &mut grads.bottom,
                &mut scratch.grad_x,
                &mut scratch.arena,
            );
            for t in 0..self.tables.len() {
                self.bags[t].backward_into(
                    &scratch.inter_grads[t + 1],
                    &batch.sparse[t],
                    self.config.embedding_dim,
                    &mut grads.tables[t],
                );
            }
        }
    }

    /// Fused ghost-clipping backward over the whole model: one gradient
    /// chain computes the per-example ghost norms (dense MLPs + sparse
    /// bags, in the exact accumulation order of
    /// [`per_example_grad_norms_with`](Self::per_example_grad_norms_with)),
    /// `clip` turns them into per-example weights, and the clipped
    /// aggregate gradients come from the cached per-layer activation
    /// gradients with the weights applied inside the weight-grad GEMM
    /// epilogue — the chain is never re-run, and per-example weight
    /// gradients are never materialized.
    ///
    /// Bitwise-identical to `per_example_grad_norms_with` + `clip` +
    /// `backward_with(Some(w))` (proptest-pinned), at two GEMMs per
    /// dense layer instead of three.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    pub fn backward_clipped_with(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
        clip: impl FnOnce(&[f64], &mut Vec<f32>),
        grads: &mut DlrmGrads,
        scratch: &mut DlrmScratch,
    ) {
        let b = batch.batch_size();
        assert_eq!(grad_logits.len(), b, "one logit grad per example");
        scratch.g.assign_from_slice(b, 1, grad_logits);
        if grads.tables.len() != self.tables.len() {
            grads.tables = self
                .tables
                .iter()
                .map(|t| SparseGrad::new(t.dim()))
                .collect();
        }
        // Phase A: ghost-norm chain with per-layer dz stashing. The
        // norm accumulation order (top layers, then bottom layers, then
        // each bag) replicates per_example_grad_norms_with bit for bit.
        let mut norms = scratch.arena.take_f64(0);
        self.top.backward_ghost_norms_cached_into(
            &cache.top,
            &scratch.g,
            &mut norms,
            &mut scratch.grad_top_in,
            &mut scratch.top_dz,
            &mut scratch.arena,
        );
        interaction_backward_into(
            self.config.interaction,
            &cache.inter_inputs,
            &scratch.grad_top_in,
            &mut scratch.inter_grads,
        );
        let mut bottom_norms = scratch.arena.take_f64(0);
        self.bottom.backward_ghost_norms_cached_into(
            &cache.bottom,
            &scratch.inter_grads[0],
            &mut bottom_norms,
            &mut scratch.grad_x,
            &mut scratch.bottom_dz,
            &mut scratch.arena,
        );
        for (n, bn) in norms.iter_mut().zip(bottom_norms.iter()) {
            *n += bn;
        }
        let mut emb_norms = bottom_norms; // reuse the pooled buffer
        for t in 0..self.tables.len() {
            self.bags[t].per_example_norm_sq_into(
                &scratch.inter_grads[t + 1],
                &batch.sparse[t],
                &mut emb_norms,
                &mut scratch.bag_idx,
            );
            for (n, en) in norms.iter_mut().zip(emb_norms.iter()) {
                *n += en;
            }
        }
        scratch.arena.put_f64(emb_norms);
        let mut w = scratch.arena.take_f32(0);
        clip(&norms, &mut w);
        // Phase B: clipped parameter gradients from the cached dz; the
        // interaction gradients still hold Phase A's (unscaled) values,
        // so the bag backward reads them directly.
        self.top
            .weighted_grads_from_cached(&cache.top, &scratch.top_dz, &w, &mut grads.top);
        self.bottom.weighted_grads_from_cached(
            &cache.bottom,
            &scratch.bottom_dz,
            &w,
            &mut grads.bottom,
        );
        for t in 0..self.tables.len() {
            self.bags[t].backward_weighted_into(
                &scratch.inter_grads[t + 1],
                &batch.sparse[t],
                &w,
                self.config.embedding_dim,
                &mut grads.tables[t],
            );
        }
        scratch.arena.put_f32(w);
        scratch.arena.put_f64(norms);
    }

    /// [`backward_clipped_with`](Self::backward_clipped_with) allocating
    /// its own outputs and scratch (tests and examples).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    #[must_use]
    pub fn backward_clipped(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
        clip: impl FnOnce(&[f64], &mut Vec<f32>),
    ) -> DlrmGrads {
        let mut grads = DlrmGrads::default();
        self.backward_clipped_with(
            cache,
            batch,
            grad_logits,
            clip,
            &mut grads,
            &mut DlrmScratch::default(),
        );
        grads
    }

    /// Per-example gradient L2 norms via ghost norms (DP-SGD(F) style):
    /// no per-example weight gradient is materialized anywhere.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    #[must_use]
    pub fn per_example_grad_norms(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
    ) -> Vec<f64> {
        let mut norms = Vec::new();
        self.per_example_grad_norms_with(
            cache,
            batch,
            grad_logits,
            &mut norms,
            &mut DlrmScratch::default(),
        );
        norms
    }

    /// [`per_example_grad_norms`](Self::per_example_grad_norms) into a
    /// caller-owned vector with working buffers from `scratch` (zero
    /// allocation at steady state; identical results).
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    pub fn per_example_grad_norms_with(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
        norms: &mut Vec<f64>,
        scratch: &mut DlrmScratch,
    ) {
        let b = batch.batch_size();
        assert_eq!(grad_logits.len(), b, "one logit grad per example");
        scratch.g.assign_from_slice(b, 1, grad_logits);
        self.top.backward_ghost_norms_into(
            &cache.top,
            &scratch.g,
            norms,
            &mut scratch.grad_top_in,
            &mut scratch.arena,
        );
        interaction_backward_into(
            self.config.interaction,
            &cache.inter_inputs,
            &scratch.grad_top_in,
            &mut scratch.inter_grads,
        );
        let mut bottom_norms = scratch.arena.take_f64(0);
        self.bottom.backward_ghost_norms_into(
            &cache.bottom,
            &scratch.inter_grads[0],
            &mut bottom_norms,
            &mut scratch.grad_x,
            &mut scratch.arena,
        );
        for (n, bn) in norms.iter_mut().zip(bottom_norms.iter()) {
            *n += bn;
        }
        let mut emb_norms = bottom_norms; // reuse the pooled buffer
        for t in 0..self.tables.len() {
            self.bags[t].per_example_norm_sq_into(
                &scratch.inter_grads[t + 1],
                &batch.sparse[t],
                &mut emb_norms,
                &mut scratch.bag_idx,
            );
            for (n, en) in norms.iter_mut().zip(emb_norms.iter()) {
                *n += en;
            }
        }
        scratch.arena.put_f64(emb_norms);
    }

    /// Materialized per-example gradients (DP-SGD(B) style). Memory is
    /// `O(B × params)` for the MLP part — exactly the overhead the paper
    /// describes in §2.5.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree with the cached batch size.
    #[must_use]
    pub fn per_example_grads(
        &self,
        cache: &DlrmCache,
        batch: &MiniBatch,
        grad_logits: &[f32],
    ) -> Vec<DlrmGrads> {
        let b = batch.batch_size();
        assert_eq!(grad_logits.len(), b, "one logit grad per example");
        let g = Matrix::from_vec(b, 1, grad_logits.to_vec());
        let (_, grad_top_in) = self.top.backward(&cache.top, &g);
        let inter_grads =
            interaction_backward(self.config.interaction, &cache.inter_inputs, &grad_top_in);
        let top_per_ex = self.top.per_example_grads(&cache.top, &g);
        let bottom_per_ex = self
            .bottom
            .per_example_grads(&cache.bottom, &inter_grads[0]);
        (0..b)
            .map(|i| {
                let tables = (0..self.tables.len())
                    .map(|t| {
                        let dim = self.config.embedding_dim;
                        let single = lazydp_embedding::bag::BagIndices::from_samples(&[batch
                            .sparse[t]
                            .sample(i)
                            .to_vec()]);
                        let gi = Matrix::from_vec(1, dim, inter_grads[t + 1].row(i).to_vec());
                        self.bags[t].backward(&gi, &single, dim)
                    })
                    .collect();
                DlrmGrads {
                    bottom: bottom_per_ex[i].clone(),
                    top: top_per_ex[i].clone(),
                    tables,
                }
            })
            .collect()
    }

    /// Applies gradients: `θ -= lr · g` on MLPs and sparse updates on
    /// embedding tables (non-private SGD's model-update stage,
    /// Fig. 4(a)).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn apply(&mut self, grads: &DlrmGrads, lr: f32) {
        self.bottom.apply(&grads.bottom, lr);
        self.top.apply(&grads.top, lr);
        assert_eq!(
            grads.tables.len(),
            self.tables.len(),
            "table count mismatch"
        );
        for (table, g) in self.tables.iter_mut().zip(grads.tables.iter()) {
            table.sparse_update(g, lr);
        }
    }

    /// Total trainable parameters.
    #[must_use]
    pub fn params(&self) -> u64 {
        self.bottom.params() as u64
            + self.top.params() as u64
            + self.tables.iter().map(|t| t.elements() as u64).sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_rng::Xoshiro256PlusPlus;

    fn tiny_setup(batch: usize) -> (Dlrm, MiniBatch, SyntheticDataset) {
        let mut rng = Xoshiro256PlusPlus::seed_from(7);
        let cfg = DlrmConfig::tiny(3, 50, 8);
        let model = Dlrm::new(cfg, &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(3, 50, 256));
        let b = ds.batch_of(&(0..batch).collect::<Vec<_>>());
        (model, b, ds)
    }

    #[test]
    fn forward_produces_one_logit_per_example() {
        let (model, batch, _) = tiny_setup(5);
        let cache = model.forward(&batch);
        assert_eq!(cache.logits().len(), 5);
        assert!(cache.logits().iter().all(|l| l.is_finite()));
    }

    #[test]
    fn backward_gradients_match_finite_difference_on_embedding() {
        let (mut model, batch, _) = tiny_setup(4);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, true);
        let mut grads = model.backward(&cache, &batch, &gl, None);
        grads.coalesce();
        let eps = 1e-3f32;
        // Probe the first nonzero embedding-grad coordinate of table 0.
        let (row, vals) = grads.tables[0].entry(0);
        let d = vals.iter().position(|&v| v.abs() > 1e-6).unwrap_or(0);
        let expect = vals[d];
        let orig = model.tables[0].row(row as usize)[d];
        model.tables[0].row_mut(row as usize)[d] = orig + eps;
        let up = model.loss(&batch);
        model.tables[0].row_mut(row as usize)[d] = orig - eps;
        let down = model.loss(&batch);
        model.tables[0].row_mut(row as usize)[d] = orig;
        let fd = ((up - down) / (2.0 * f64::from(eps))) as f32;
        assert!(
            (expect - fd).abs() < 1e-2,
            "emb grad {expect} vs finite diff {fd}"
        );
    }

    #[test]
    fn backward_gradients_match_finite_difference_on_mlp() {
        let (mut model, batch, _) = tiny_setup(4);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, true);
        let grads = model.backward(&cache, &batch, &gl, None);
        let eps = 1e-3f32;
        let expect = grads.top.layers[0].dw[(0, 0)];
        let orig = model.top.layers()[0].weight[(0, 0)];
        model.top.layers_mut()[0].weight[(0, 0)] = orig + eps;
        let up = model.loss(&batch);
        model.top.layers_mut()[0].weight[(0, 0)] = orig - eps;
        let down = model.loss(&batch);
        model.top.layers_mut()[0].weight[(0, 0)] = orig;
        let fd = ((up - down) / (2.0 * f64::from(eps))) as f32;
        assert!((expect - fd).abs() < 1e-2, "top w grad {expect} vs {fd}");
    }

    fn clip_min_one(norms: &[f64], c: f64, w: &mut Vec<f32>) {
        w.clear();
        w.extend(norms.iter().map(|&n| {
            let norm = n.sqrt();
            if norm <= c {
                1.0
            } else {
                (c / norm) as f32
            }
        }));
    }

    #[test]
    fn fused_clipped_backward_matches_two_pass_bitwise() {
        let (model, batch, _) = tiny_setup(6);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, true);
        // Middle C clips some examples; tiny C clips all; huge C none.
        for c in [1e-4f64, 0.05, 1e6] {
            let norms = model.per_example_grad_norms(&cache, &batch, &gl);
            let mut w = Vec::new();
            clip_min_one(&norms, c, &mut w);
            let two_pass = model.backward(&cache, &batch, &gl, Some(&w));
            let mut seen = Vec::new();
            let fused = model.backward_clipped(&cache, &batch, &gl, |n, out| {
                seen = n.to_vec();
                clip_min_one(n, c, out);
            });
            assert_eq!(seen, norms, "C={c}: fused ghost norms");
            assert_eq!(two_pass, fused, "C={c}: clipped aggregate grads");
        }
    }

    #[test]
    fn per_example_grads_sum_to_batch_grads() {
        let (model, batch, _) = tiny_setup(4);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, false);
        let mut batch_grads = model.backward(&cache, &batch, &gl, None);
        batch_grads.coalesce();
        let per_ex = model.per_example_grads(&cache, &batch, &gl);
        // Sum the per-example grads and compare (MLP part).
        let mut sum_bottom = MlpGrads::zeros_like(&model.bottom);
        let mut sum_top = MlpGrads::zeros_like(&model.top);
        for g in &per_ex {
            sum_bottom.axpy(1.0, &g.bottom);
            sum_top.axpy(1.0, &g.top);
        }
        for (a, b) in sum_bottom
            .layers
            .iter()
            .zip(batch_grads.bottom.layers.iter())
        {
            assert!(a.dw.max_abs_diff(&b.dw) < 1e-4);
        }
        for (a, b) in sum_top.layers.iter().zip(batch_grads.top.layers.iter()) {
            assert!(a.dw.max_abs_diff(&b.dw) < 1e-4);
        }
        // Embedding part: sum of per-example dense maps equals batch map.
        for t in 0..3 {
            let mut sum_map: std::collections::HashMap<u64, Vec<f32>> = Default::default();
            for g in &per_ex {
                for (idx, vals) in g.tables[t].to_dense_map() {
                    let e = sum_map.entry(idx).or_insert_with(|| vec![0.0; 8]);
                    for (a, v) in e.iter_mut().zip(vals.iter()) {
                        *a += v;
                    }
                }
            }
            let batch_map = batch_grads.tables[t].to_dense_map();
            assert_eq!(sum_map.len(), batch_map.len(), "table {t} rows");
            for (idx, vals) in &batch_map {
                for (a, b) in sum_map[idx].iter().zip(vals.iter()) {
                    assert!((a - b).abs() < 1e-4, "table {t} row {idx}");
                }
            }
        }
    }

    #[test]
    fn ghost_norms_match_materialized_norms() {
        let (model, batch, _) = tiny_setup(6);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, false);
        let ghost = model.per_example_grad_norms(&cache, &batch, &gl);
        let per_ex = model.per_example_grads(&cache, &batch, &gl);
        for (i, g) in per_ex.iter().enumerate() {
            let mut materialized = g.clone();
            materialized.coalesce(); // per-example norms need coalesced rows
            let explicit = materialized.norm_sq();
            let rel = (ghost[i] - explicit).abs() / explicit.max(1e-12);
            assert!(
                rel < 1e-6,
                "example {i}: ghost {} explicit {explicit}",
                ghost[i]
            );
        }
    }

    #[test]
    fn weighted_backward_equals_weighted_per_example_sum() {
        let (model, batch, _) = tiny_setup(4);
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, false);
        let weights = [0.25f32, 1.0, 0.0, 0.5];
        let mut weighted = model.backward(&cache, &batch, &gl, Some(&weights));
        weighted.coalesce();
        let per_ex = model.per_example_grads(&cache, &batch, &gl);
        let mut sum_top = MlpGrads::zeros_like(&model.top);
        for (g, &w) in per_ex.iter().zip(weights.iter()) {
            sum_top.axpy(w, &g.top);
        }
        for (a, b) in sum_top.layers.iter().zip(weighted.top.layers.iter()) {
            assert!(a.dw.max_abs_diff(&b.dw) < 1e-5);
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let (mut model, _, ds) = tiny_setup(4);
        let ids: Vec<usize> = (0..64).collect();
        let batch = ds.batch_of(&ids);
        let before = model.loss(&batch);
        for _ in 0..60 {
            let cache = model.forward(&batch);
            let gl = Dlrm::logit_grads(&cache, &batch.labels, true);
            let mut grads = model.backward(&cache, &batch, &gl, None);
            grads.coalesce();
            model.apply(&grads, 0.1);
        }
        let after = model.loss(&batch);
        assert!(
            after < before - 0.05,
            "training must reduce loss: {before:.4} -> {after:.4}"
        );
    }

    #[test]
    fn apply_respects_sparsity() {
        let (mut model, batch, _) = tiny_setup(3);
        let before = model.tables[0].clone();
        let cache = model.forward(&batch);
        let gl = Dlrm::logit_grads(&cache, &batch.labels, true);
        let mut grads = model.backward(&cache, &batch, &gl, None);
        grads.coalesce();
        model.apply(&grads, 0.5);
        let touched: std::collections::HashSet<u64> =
            batch.table_indices(0).iter().copied().collect();
        for r in 0..model.tables[0].rows() {
            let changed = model.tables[0].row(r) != before.row(r);
            if touched.contains(&(r as u64)) {
                // May legitimately be unchanged if the gradient is ~0,
                // but untouched rows must never change:
                continue;
            }
            assert!(!changed, "untouched row {r} changed");
        }
    }
}
