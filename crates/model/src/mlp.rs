//! Multi-layer perceptron with the three gradient-derivation styles of
//! the paper's DP-SGD variants.
//!
//! The crucial structural fact (paper §2.5, Denison et al.): activation
//! gradients are *already per-example* — each row of a `B × d` gradient
//! matrix belongs to one example. Only the weight-gradient GEMM
//! (`aᵀ·δ`) sums over examples. Therefore:
//!
//! * plain SGD / the reweighted pass run one weight-grad GEMM,
//! * DP-SGD(B) materializes `B` outer products (`a_i δ_iᵀ`),
//! * DP-SGD(F) reads per-example norms straight off the activations and
//!   activation gradients: `‖grad_W L_i‖² = ‖a_i‖²·‖δ_i‖²` per linear
//!   layer (the *ghost norm*), never materializing per-example grads.

use lazydp_rng::{Prng, RowNoise};
use lazydp_tensor::ops::add_bias;
use lazydp_tensor::{Activation, InitKind, Matrix, ScratchArena};

/// One linear layer `y = act(x·W + b)` with `W: in × out`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearLayer {
    /// Weight matrix, `in_dim × out_dim`.
    pub weight: Matrix,
    /// Bias, length `out_dim`.
    pub bias: Vec<f32>,
    /// Activation applied to the affine output.
    pub activation: Activation,
}

impl LinearLayer {
    /// Creates a Xavier-initialized layer.
    #[must_use]
    pub fn new<R: Prng>(
        in_dim: usize,
        out_dim: usize,
        activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self {
            weight: InitKind::XavierUniform.matrix(rng, in_dim, out_dim),
            bias: vec![0.0; out_dim],
            activation,
        }
    }

    /// Input width.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output width.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// Parameter count (weights + bias).
    #[must_use]
    pub fn params(&self) -> usize {
        self.weight.len() + self.bias.len()
    }
}

/// Gradient of one layer.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerGrad {
    /// `∂L/∂W`, same shape as the weight.
    pub dw: Matrix,
    /// `∂L/∂b`, same length as the bias.
    pub db: Vec<f32>,
}

impl LayerGrad {
    /// Squared L2 norm of the layer gradient.
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        self.dw.frob_norm_sq() + lazydp_tensor::vecops::norm_sq(&self.db)
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        self.dw.axpy(alpha, &other.dw);
        for (a, &b) in self.db.iter_mut().zip(other.db.iter()) {
            *a += alpha * b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, alpha: f32) {
        self.dw.scale(alpha);
        for b in &mut self.db {
            *b *= alpha;
        }
    }
}

/// Gradients of a whole MLP (one [`LayerGrad`] per layer).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlpGrads {
    /// Per-layer gradients, front to back.
    pub layers: Vec<LayerGrad>,
}

impl MlpGrads {
    /// Zero gradients shaped like `mlp`.
    #[must_use]
    pub fn zeros_like(mlp: &Mlp) -> Self {
        Self {
            layers: mlp
                .layers
                .iter()
                .map(|l| LayerGrad {
                    dw: Matrix::zeros(l.in_dim(), l.out_dim()),
                    db: vec![0.0; l.out_dim()],
                })
                .collect(),
        }
    }

    /// Total squared L2 norm.
    #[must_use]
    pub fn norm_sq(&self) -> f64 {
        self.layers.iter().map(LayerGrad::norm_sq).sum()
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Self) {
        assert_eq!(
            self.layers.len(),
            other.layers.len(),
            "layer count mismatch"
        );
        for (a, b) in self.layers.iter_mut().zip(other.layers.iter()) {
            a.axpy(alpha, b);
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, alpha: f32) {
        for l in &mut self.layers {
            l.scale(alpha);
        }
    }

    /// Overwrites every gradient value with exact `+0.0` (the
    /// empty-batch reset of a reused gradient buffer; `scale(0.0)`
    /// would keep `-0.0`/NaN bits).
    pub fn set_zero(&mut self) {
        for l in &mut self.layers {
            l.dw.as_mut_slice().fill(0.0);
            l.db.fill(0.0);
        }
    }
}

/// Forward cache: the input and every layer's post-activation output.
///
/// Reusable: [`Mlp::forward_into`] reshapes the cached matrices in
/// place, so a cache driven by a trainer allocates only until every
/// activation has reached its steady-state size.
#[derive(Debug, Clone, Default)]
pub struct MlpCache {
    /// `activations[0]` is the input; `activations[l+1]` is layer `l`'s
    /// output.
    pub activations: Vec<Matrix>,
}

impl MlpCache {
    /// The MLP output (last activation).
    #[must_use]
    pub fn output(&self) -> &Matrix {
        self.activations.last().expect("cache is non-empty")
    }
}

/// A stack of [`LinearLayer`]s.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<LinearLayer>,
}

impl Mlp {
    /// Builds an MLP `in_dim → widths[0] → … → widths.last()` with ReLU
    /// on hidden layers and a linear output layer.
    ///
    /// # Panics
    ///
    /// Panics if `widths` is empty.
    #[must_use]
    pub fn new<R: Prng>(in_dim: usize, widths: &[usize], rng: &mut R) -> Self {
        assert!(!widths.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(widths.len());
        let mut prev = in_dim;
        for (i, &w) in widths.iter().enumerate() {
            let act = if i + 1 == widths.len() {
                Activation::Linear
            } else {
                Activation::Relu
            };
            layers.push(LinearLayer::new(prev, w, act, rng));
            prev = w;
        }
        Self { layers }
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[LinearLayer] {
        &self.layers
    }

    /// Mutable layer access (used by optimizers).
    pub fn layers_mut(&mut self) -> &mut [LinearLayer] {
        &mut self.layers
    }

    /// Total parameter count.
    #[must_use]
    pub fn params(&self) -> usize {
        self.layers.iter().map(LinearLayer::params).sum()
    }

    /// Forward pass, caching all activations.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the first layer's input width.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> MlpCache {
        let mut cache = MlpCache::default();
        self.forward_into(x, &mut cache);
        cache
    }

    /// [`forward`](Self::forward) into a reusable cache: every
    /// activation matrix is reshaped and overwritten in place, so
    /// steady-state forward passes allocate nothing.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols()` differs from the first layer's input width.
    pub fn forward_into(&self, x: &Matrix, cache: &mut MlpCache) {
        if cache.activations.is_empty() {
            cache.activations.push(Matrix::zeros(0, 0));
        }
        cache.activations[0].copy_from(x);
        self.forward_in_place(cache);
    }

    /// Runs the forward pass over a cache whose `activations[0]` the
    /// caller has already filled with the layer input (the DLRM path
    /// writes the interaction output straight into that slot, skipping a
    /// copy). The remaining activation slots are reshaped in place.
    ///
    /// # Panics
    ///
    /// Panics if the cache has no input activation.
    pub fn forward_in_place(&self, cache: &mut MlpCache) {
        assert!(
            !cache.activations.is_empty(),
            "cache needs its input activation filled"
        );
        cache
            .activations
            .resize_with(self.layers.len() + 1, || Matrix::zeros(0, 0));
        for (l, layer) in self.layers.iter().enumerate() {
            let (done, rest) = cache.activations.split_at_mut(l + 1);
            let z = &mut rest[0];
            done[l].matmul_into(&layer.weight, z);
            add_bias(z, &layer.bias);
            layer.activation.forward_inplace(z);
        }
    }

    /// Standard per-batch backward pass.
    ///
    /// Returns the weight gradients and the gradient with respect to the
    /// MLP input. `grad_out` is `∂L/∂output` (post-activation).
    #[must_use]
    pub fn backward(&self, cache: &MlpCache, grad_out: &Matrix) -> (MlpGrads, Matrix) {
        let mut grads = MlpGrads::default();
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_into(
            cache,
            grad_out,
            &mut grads,
            &mut grad_in,
            &mut ScratchArena::new(),
        );
        (grads, grad_in)
    }

    /// [`backward`](Self::backward) into caller-owned gradients and
    /// input-gradient matrix, with working matrices checked out of
    /// `arena` — the zero-allocation backward of the training hot loop.
    /// `grads` is (re)shaped to match the MLP on first use.
    ///
    /// The activation backward runs in place on a ping-pong pair of
    /// scratch matrices; per-layer arithmetic (and therefore every
    /// output bit) is identical to the allocating path.
    pub fn backward_into(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        grads: &mut MlpGrads,
        grad_in: &mut Matrix,
        arena: &mut ScratchArena,
    ) {
        if grads.layers.len() != self.layers.len() {
            *grads = MlpGrads::zeros_like(self);
        }
        let mut grad = arena.take_matrix(0, 0);
        grad.copy_from(grad_out);
        let mut next = arena.take_matrix(0, 0);
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            layer.activation.backward_inplace(a_out, &mut grad); // grad is now dz
            a_in.t_matmul_into(&grad, &mut grads.layers[l].dw);
            grad.col_sums_into(&mut grads.layers[l].db);
            grad.matmul_t_into(&layer.weight, &mut next);
            std::mem::swap(&mut grad, &mut next);
        }
        std::mem::swap(grad_in, &mut grad);
        arena.put_matrix(grad);
        arena.put_matrix(next);
    }

    /// Ghost-norm backward pass (DP-SGD(F), §2.5): per-example squared
    /// gradient norms without materializing per-example weight grads.
    ///
    /// Returns `(per_example_norm_sq, grad_input)`; the input gradient is
    /// per-example (rows), so callers can keep propagating (e.g. into
    /// embedding ghost norms).
    #[must_use]
    pub fn backward_ghost_norms(&self, cache: &MlpCache, grad_out: &Matrix) -> (Vec<f64>, Matrix) {
        let mut norms = Vec::new();
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_ghost_norms_into(
            cache,
            grad_out,
            &mut norms,
            &mut grad_in,
            &mut ScratchArena::new(),
        );
        (norms, grad_in)
    }

    /// [`backward_ghost_norms`](Self::backward_ghost_norms) into
    /// caller-owned buffers (same arithmetic, no allocation at steady
    /// state).
    pub fn backward_ghost_norms_into(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        norms: &mut Vec<f64>,
        grad_in: &mut Matrix,
        arena: &mut ScratchArena,
    ) {
        let batch = grad_out.rows();
        norms.clear();
        norms.resize(batch, 0.0);
        let mut grad = arena.take_matrix(0, 0);
        grad.copy_from(grad_out);
        let mut next = arena.take_matrix(0, 0);
        let mut a_norms = arena.take_f64(0);
        let mut d_norms = arena.take_f64(0);
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            layer.activation.backward_inplace(a_out, &mut grad); // grad is now dz
            a_in.row_norms_sq_into(&mut a_norms);
            grad.row_norms_sq_into(&mut d_norms);
            for i in 0..batch {
                // ‖a_i δ_iᵀ‖² = ‖a_i‖²·‖δ_i‖²; bias grad adds ‖δ_i‖².
                norms[i] += a_norms[i] * d_norms[i] + d_norms[i];
            }
            grad.matmul_t_into(&layer.weight, &mut next);
            std::mem::swap(&mut grad, &mut next);
        }
        std::mem::swap(grad_in, &mut grad);
        arena.put_f64(d_norms);
        arena.put_f64(a_norms);
        arena.put_matrix(grad);
        arena.put_matrix(next);
    }

    /// Reweighted backward pass (the second pass of DP-SGD(R)/(F)):
    /// computes `Σ_i w_i · grad_i` by propagating the **unscaled**
    /// gradient chain (identical bits to the ghost-norm chain) and
    /// applying `w_i` only at the parameter-gradient reductions — the
    /// weight-grad GEMM (`aᵀ · diag(w) · δ`, fused into the packed-B
    /// epilogue) and the weighted bias column-sums. Valid because the
    /// backward graph is linear in the output gradient, and the only
    /// arrangement under which the fused clipped pass can be
    /// bitwise-identical to this two-pass path.
    ///
    /// The returned input gradient is **unscaled** (per-example rows,
    /// no `w_i` applied) — callers propagating it must apply weights at
    /// their own parameter-gradient sites.
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != grad_out.rows()`.
    #[must_use]
    pub fn backward_weighted(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        weights: &[f32],
    ) -> (MlpGrads, Matrix) {
        let mut grads = MlpGrads::default();
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_weighted_into(
            cache,
            grad_out,
            weights,
            &mut grads,
            &mut grad_in,
            &mut ScratchArena::new(),
        );
        (grads, grad_in)
    }

    /// [`backward_weighted`](Self::backward_weighted) into caller-owned
    /// buffers (see [`backward_into`](Self::backward_into)).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len() != grad_out.rows()`.
    pub fn backward_weighted_into(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        weights: &[f32],
        grads: &mut MlpGrads,
        grad_in: &mut Matrix,
        arena: &mut ScratchArena,
    ) {
        assert_eq!(weights.len(), grad_out.rows(), "one weight per example");
        if grads.layers.len() != self.layers.len() {
            *grads = MlpGrads::zeros_like(self);
        }
        let mut grad = arena.take_matrix(0, 0);
        grad.copy_from(grad_out);
        let mut next = arena.take_matrix(0, 0);
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            layer.activation.backward_inplace(a_out, &mut grad); // grad is now dz
            a_in.t_matmul_scaled_into(&grad, weights, &mut grads.layers[l].dw);
            grad.weighted_col_sums_into(weights, &mut grads.layers[l].db);
            grad.matmul_t_into(&layer.weight, &mut next);
            std::mem::swap(&mut grad, &mut next);
        }
        std::mem::swap(grad_in, &mut grad);
        arena.put_matrix(grad);
        arena.put_matrix(next);
    }

    /// Ghost-norm backward that additionally stashes each layer's
    /// post-activation gradient `δ` (dz) into `dz_cache` — the first
    /// phase of the fused clipped backward. The chain, the norm
    /// accumulation, and the returned input gradient are bit-identical
    /// to [`backward_ghost_norms_into`](Self::backward_ghost_norms_into);
    /// the stash costs two buffer swaps per layer, no copies.
    pub fn backward_ghost_norms_cached_into(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        norms: &mut Vec<f64>,
        grad_in: &mut Matrix,
        dz_cache: &mut Vec<Matrix>,
        arena: &mut ScratchArena,
    ) {
        let batch = grad_out.rows();
        norms.clear();
        norms.resize(batch, 0.0);
        dz_cache.resize_with(self.layers.len(), || Matrix::zeros(0, 0));
        let mut grad = arena.take_matrix(0, 0);
        grad.copy_from(grad_out);
        let mut next = arena.take_matrix(0, 0);
        let mut a_norms = arena.take_f64(0);
        let mut d_norms = arena.take_f64(0);
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &cache.activations[l + 1];
            let a_in = &cache.activations[l];
            layer.activation.backward_inplace(a_out, &mut grad); // grad is now dz
            a_in.row_norms_sq_into(&mut a_norms);
            grad.row_norms_sq_into(&mut d_norms);
            for i in 0..batch {
                // ‖a_i δ_iᵀ‖² = ‖a_i‖²·‖δ_i‖²; bias grad adds ‖δ_i‖².
                norms[i] += a_norms[i] * d_norms[i] + d_norms[i];
            }
            grad.matmul_t_into(&layer.weight, &mut next);
            // Stash dz without copying: park it in the cache slot, then
            // continue the chain with the freshly propagated gradient.
            // Whatever the slots previously held is fully overwritten by
            // the next iteration's kernels.
            std::mem::swap(&mut grad, &mut dz_cache[l]);
            std::mem::swap(&mut grad, &mut next);
        }
        std::mem::swap(grad_in, &mut grad);
        arena.put_f64(d_norms);
        arena.put_f64(a_norms);
        arena.put_matrix(grad);
        arena.put_matrix(next);
    }

    /// Second phase of the fused clipped backward: parameter gradients
    /// from the dz matrices stashed by
    /// [`backward_ghost_norms_cached_into`](Self::backward_ghost_norms_cached_into),
    /// with clip factors applied inside the weight-grad GEMM epilogue.
    /// The per-layer GEMM inputs and kernels are exactly those of
    /// [`backward_weighted_into`](Self::backward_weighted_into), so the
    /// grads match that two-pass path bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if `dz_cache` doesn't hold one matrix per layer.
    pub fn weighted_grads_from_cached(
        &self,
        cache: &MlpCache,
        dz_cache: &[Matrix],
        weights: &[f32],
        grads: &mut MlpGrads,
    ) {
        assert_eq!(dz_cache.len(), self.layers.len(), "one dz per layer");
        if grads.layers.len() != self.layers.len() {
            *grads = MlpGrads::zeros_like(self);
        }
        for (l, _) in self.layers.iter().enumerate().rev() {
            let a_in = &cache.activations[l];
            a_in.t_matmul_scaled_into(&dz_cache[l], weights, &mut grads.layers[l].dw);
            dz_cache[l].weighted_col_sums_into(weights, &mut grads.layers[l].db);
        }
    }

    /// Fused ghost-clipping backward (ROADMAP item 1, after FlashDP):
    /// one pass computes per-example ghost norms *and* the clipped
    /// aggregate gradient, never materializing per-example weight
    /// gradients and never re-running the gradient chain. `clip` maps
    /// the per-example squared norms to per-example weights (e.g.
    /// `min(1, C/‖g_i‖)`).
    ///
    /// Versus ghost-norms-then-weighted-backward this saves one full
    /// activation-gradient chain — per layer, the 3-GEMM two-pass
    /// backward (ghost `δ·Wᵀ` + weighted `aᵀ·diag(w)δ` + weighted
    /// `δ·Wᵀ`) becomes 2 GEMMs — while producing **bit-identical**
    /// gradients, norms, and input gradient (pinned by proptests).
    #[must_use]
    pub fn backward_clipped(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        clip: impl FnOnce(&[f64], &mut Vec<f32>),
    ) -> (MlpGrads, Matrix) {
        let mut grads = MlpGrads::default();
        let mut grad_in = Matrix::zeros(0, 0);
        self.backward_clipped_into(
            cache,
            grad_out,
            clip,
            &mut grads,
            &mut grad_in,
            &mut Vec::new(),
            &mut ScratchArena::new(),
        );
        (grads, grad_in)
    }

    /// [`backward_clipped`](Self::backward_clipped) into caller-owned
    /// buffers: `dz_cache` holds the per-layer activation gradients
    /// between the two phases (resized on first use, reused after), the
    /// arena supplies the norm and weight vectors — zero steady-state
    /// allocation.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_clipped_into(
        &self,
        cache: &MlpCache,
        grad_out: &Matrix,
        clip: impl FnOnce(&[f64], &mut Vec<f32>),
        grads: &mut MlpGrads,
        grad_in: &mut Matrix,
        dz_cache: &mut Vec<Matrix>,
        arena: &mut ScratchArena,
    ) {
        let mut norms = arena.take_f64(0);
        self.backward_ghost_norms_cached_into(
            cache, grad_out, &mut norms, grad_in, dz_cache, arena,
        );
        let mut weights = arena.take_f32(0);
        clip(&norms, &mut weights);
        self.weighted_grads_from_cached(cache, dz_cache, &weights, grads);
        arena.put_f32(weights);
        arena.put_f64(norms);
    }

    /// Materialized per-example gradients (DP-SGD(B), §2.4): one
    /// [`MlpGrads`] per example. Memory scales with `B × params` — the
    /// very overhead DP-SGD(R) exists to avoid (§2.5).
    #[must_use]
    pub fn per_example_grads(&self, cache: &MlpCache, grad_out: &Matrix) -> Vec<MlpGrads> {
        let batch = grad_out.rows();
        // Run the standard backward chain once to get per-layer dz
        // (rows are per-example), then outer-product per example.
        let mut dzs: Vec<Matrix> = Vec::with_capacity(self.layers.len());
        let mut grad = grad_out.clone();
        for (l, layer) in self.layers.iter().enumerate().rev() {
            let a_out = &cache.activations[l + 1];
            let dz = layer.activation.backward(a_out, &grad);
            grad = dz.matmul_t(&layer.weight);
            dzs.push(dz);
        }
        dzs.reverse();
        (0..batch)
            .map(|i| {
                let layers = self
                    .layers
                    .iter()
                    .enumerate()
                    .map(|(l, _)| {
                        let a_i = cache.activations[l].row_matrix(i);
                        let dz_i = dzs[l].row_matrix(i);
                        LayerGrad {
                            dw: a_i.t_matmul(&dz_i),
                            db: dz_i.row(0).to_vec(),
                        }
                    })
                    .collect();
                MlpGrads { layers }
            })
            .collect()
    }

    /// Applies a gradient: `θ -= lr · g`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply(&mut self, grads: &MlpGrads, lr: f32) {
        assert_eq!(
            grads.layers.len(),
            self.layers.len(),
            "layer count mismatch"
        );
        for (layer, g) in self.layers.iter_mut().zip(grads.layers.iter()) {
            layer.weight.axpy(-lr, &g.dw);
            for (b, &db) in layer.bias.iter_mut().zip(g.db.iter()) {
                *b -= lr * db;
            }
        }
    }

    /// Adds `−lr · scale · n` Gaussian noise (`n ~ N(0,1)` element-wise)
    /// to every parameter — the dense DP noise step both DP-SGD and
    /// LazyDP apply identically to MLP layers (Algorithm 1 note: "both
    /// DP-SGD(F) and LazyDP apply the identical DP protection for MLP
    /// layers").
    ///
    /// `param_base` namespaces this MLP's layers inside the noise
    /// source's dense-parameter address space.
    pub fn apply_dense_noise<N: RowNoise>(
        &mut self,
        noise: &mut N,
        iter: u64,
        param_base: u32,
        scale: f32,
        lr: f32,
    ) {
        self.apply_dense_noise_with(noise, iter, param_base, scale, lr, &mut Vec::new());
    }

    /// [`apply_dense_noise`](Self::apply_dense_noise) drawing into a
    /// caller-owned noise buffer (resized per layer, allocation-free at
    /// steady state).
    pub fn apply_dense_noise_with<N: RowNoise>(
        &mut self,
        noise: &mut N,
        iter: u64,
        param_base: u32,
        scale: f32,
        lr: f32,
        buf: &mut Vec<f32>,
    ) {
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let param = param_base + l as u32;
            let w = layer.weight.as_mut_slice();
            buf.clear();
            buf.resize(w.len() + layer.bias.len(), 0.0);
            noise.fill_unit_dense(param, iter, 0, buf);
            for (x, &n) in w.iter_mut().zip(buf.iter()) {
                *x -= lr * scale * n;
            }
            for (b, &n) in layer.bias.iter_mut().zip(buf[w.len()..].iter()) {
                *b -= lr * scale * n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn mlp_and_input(widths: &[usize]) -> (Mlp, Matrix) {
        let mut rng = Xoshiro256PlusPlus::seed_from(42);
        let mlp = Mlp::new(5, widths, &mut rng);
        let x = Matrix::from_fn(4, 5, |i, j| ((i * 7 + j * 3) as f32 % 5.0 - 2.0) / 3.0);
        (mlp, x)
    }

    /// Scalar loss for gradient checking: sum of outputs.
    fn loss_of(mlp: &Mlp, x: &Matrix) -> f32 {
        mlp.forward(x).output().as_slice().iter().sum()
    }

    #[test]
    fn forward_shapes() {
        let (mlp, x) = mlp_and_input(&[8, 3]);
        let cache = mlp.forward(&x);
        assert_eq!(cache.activations.len(), 3);
        assert_eq!(cache.output().shape(), (4, 3));
        assert_eq!(mlp.params(), 5 * 8 + 8 + 8 * 3 + 3);
    }

    #[test]
    fn backward_matches_finite_difference() {
        let (mut mlp, x) = mlp_and_input(&[6, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::filled(4, 2, 1.0); // d(sum)/d(out) = 1
        let (grads, grad_in) = mlp.backward(&cache, &grad_out);
        let eps = 1e-3f32;
        // Check a scattering of weight coordinates in both layers.
        for l in 0..2 {
            for &(r, c) in &[(0usize, 0usize), (1, 1), (2, 0)] {
                if r >= mlp.layers[l].weight.rows() || c >= mlp.layers[l].weight.cols() {
                    continue;
                }
                let orig = mlp.layers[l].weight[(r, c)];
                mlp.layers[l].weight[(r, c)] = orig + eps;
                let up = loss_of(&mlp, &x);
                mlp.layers[l].weight[(r, c)] = orig - eps;
                let down = loss_of(&mlp, &x);
                mlp.layers[l].weight[(r, c)] = orig;
                let fd = (up - down) / (2.0 * eps);
                let got = grads.layers[l].dw[(r, c)];
                assert!(
                    (got - fd).abs() < 2e-2,
                    "layer {l} w[{r},{c}]: {got} vs {fd}"
                );
            }
            // Bias check.
            let orig = mlp.layers[l].bias[0];
            mlp.layers[l].bias[0] = orig + eps;
            let up = loss_of(&mlp, &x);
            mlp.layers[l].bias[0] = orig - eps;
            let down = loss_of(&mlp, &x);
            mlp.layers[l].bias[0] = orig;
            let fd = (up - down) / (2.0 * eps);
            assert!((grads.layers[l].db[0] - fd).abs() < 2e-2, "layer {l} bias");
        }
        // Input gradient check.
        let mut x2 = x.clone();
        let orig = x2[(1, 2)];
        x2[(1, 2)] = orig + eps;
        let up = loss_of(&mlp, &x2);
        x2[(1, 2)] = orig - eps;
        let down = loss_of(&mlp, &x2);
        let fd = (up - down) / (2.0 * eps);
        assert!((grad_in[(1, 2)] - fd).abs() < 2e-2, "input grad");
    }

    #[test]
    fn per_example_grads_sum_to_batch_grad() {
        let (mlp, x) = mlp_and_input(&[7, 4, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_fn(4, 2, |i, j| (i as f32 - 1.5) * (j as f32 + 0.5));
        let (batch_grads, _) = mlp.backward(&cache, &grad_out);
        let per_ex = mlp.per_example_grads(&cache, &grad_out);
        assert_eq!(per_ex.len(), 4);
        let mut sum = MlpGrads::zeros_like(&mlp);
        for g in &per_ex {
            sum.axpy(1.0, g);
        }
        for (s, b) in sum.layers.iter().zip(batch_grads.layers.iter()) {
            assert!(s.dw.max_abs_diff(&b.dw) < 1e-4, "weight grads sum");
            for (x, y) in s.db.iter().zip(b.db.iter()) {
                assert!((x - y).abs() < 1e-4, "bias grads sum");
            }
        }
    }

    #[test]
    fn ghost_norms_match_materialized_per_example_norms() {
        let (mlp, x) = mlp_and_input(&[6, 3, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_fn(4, 2, |i, j| ((i + 2 * j) as f32).sin());
        let (ghost, _) = mlp.backward_ghost_norms(&cache, &grad_out);
        let per_ex = mlp.per_example_grads(&cache, &grad_out);
        for (i, g) in per_ex.iter().enumerate() {
            let explicit = g.norm_sq();
            assert!(
                (ghost[i] - explicit).abs() < 1e-6 * explicit.max(1.0),
                "example {i}: ghost {} explicit {explicit}",
                ghost[i]
            );
        }
    }

    #[test]
    fn ghost_norm_input_grad_matches_plain_backward() {
        let (mlp, x) = mlp_and_input(&[6, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::filled(4, 2, 0.7);
        let (_, gi_plain) = mlp.backward(&cache, &grad_out);
        let (_, gi_ghost) = mlp.backward_ghost_norms(&cache, &grad_out);
        assert!(gi_plain.max_abs_diff(&gi_ghost) < 1e-7);
    }

    #[test]
    fn weighted_backward_equals_weighted_sum_of_per_example() {
        let (mlp, x) = mlp_and_input(&[5, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_fn(4, 2, |i, j| (i as f32 + 1.0) * 0.3 - j as f32 * 0.2);
        let weights = [0.5f32, 1.0, 0.0, 2.0];
        let (wg, _) = mlp.backward_weighted(&cache, &grad_out, &weights);
        let per_ex = mlp.per_example_grads(&cache, &grad_out);
        let mut expect = MlpGrads::zeros_like(&mlp);
        for (g, &w) in per_ex.iter().zip(weights.iter()) {
            expect.axpy(w, g);
        }
        for (a, b) in wg.layers.iter().zip(expect.layers.iter()) {
            assert!(a.dw.max_abs_diff(&b.dw) < 1e-5);
        }
    }

    fn clip_min_one(norms: &[f64], c: f64, w: &mut Vec<f32>) {
        w.clear();
        w.extend(norms.iter().map(|&n| {
            let norm = n.sqrt();
            if norm <= c {
                1.0
            } else {
                (c / norm) as f32
            }
        }));
    }

    #[test]
    fn fused_clipped_backward_matches_two_pass_bitwise() {
        let (mlp, x) = mlp_and_input(&[7, 4, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_fn(4, 2, |i, j| ((i * 3 + 2 * j) as f32).sin());
        // Middle C clips some examples; tiny C clips all; huge C none.
        for c in [1e-3f64, 0.5, 1e6] {
            let (norms, gi_two) = mlp.backward_ghost_norms(&cache, &grad_out);
            let mut w = Vec::new();
            clip_min_one(&norms, c, &mut w);
            let (grads_two, _) = mlp.backward_weighted(&cache, &grad_out, &w);
            let (grads_fused, gi_fused) =
                mlp.backward_clipped(&cache, &grad_out, |n, w| clip_min_one(n, c, w));
            assert_eq!(grads_two, grads_fused, "C={c}");
            assert_eq!(gi_two, gi_fused, "C={c} input grad");
        }
    }

    #[test]
    fn weighted_backward_input_grad_is_unscaled() {
        // Contract: backward_weighted_into propagates the unscaled
        // chain, so its input gradient equals the plain backward's.
        let (mlp, x) = mlp_and_input(&[5, 2]);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::from_fn(4, 2, |i, j| (i as f32 - 0.4) * (j as f32 + 0.9));
        let weights = [0.25f32, 1.0, 0.0, 1.75];
        let (_, gi_weighted) = mlp.backward_weighted(&cache, &grad_out, &weights);
        let (_, gi_plain) = mlp.backward(&cache, &grad_out);
        assert_eq!(gi_weighted, gi_plain);
    }

    #[test]
    fn apply_moves_against_gradient() {
        let (mut mlp, x) = mlp_and_input(&[4, 1]);
        let before = loss_of(&mlp, &x);
        let cache = mlp.forward(&x);
        let grad_out = Matrix::filled(4, 1, 1.0);
        let (grads, _) = mlp.backward(&cache, &grad_out);
        mlp.apply(&grads, 0.01);
        let after = loss_of(&mlp, &x);
        assert!(
            after < before,
            "gradient step must reduce sum-loss: {before} -> {after}"
        );
    }

    #[test]
    fn dense_noise_perturbs_all_layers_deterministically() {
        let (mut a, _) = mlp_and_input(&[4, 2]);
        let mut b = a.clone();
        let mut n1 = lazydp_rng::counter::CounterNoise::new(9);
        let mut n2 = lazydp_rng::counter::CounterNoise::new(9);
        a.apply_dense_noise(&mut n1, 3, 0, 0.5, 0.1);
        b.apply_dense_noise(&mut n2, 3, 0, 0.5, 0.1);
        assert_eq!(a, b, "same seed, same noise");
        let mut c = a.clone();
        let mut n3 = lazydp_rng::counter::CounterNoise::new(10);
        c.apply_dense_noise(&mut n3, 3, 0, 0.5, 0.1);
        assert_ne!(a, c, "different seed, different noise");
    }
}
