//! Deterministic scoped worker-pool executor — the parallel substrate of
//! the whole training path.
//!
//! The paper's baselines are *tuned multi-threaded* TBB/OpenMP
//! implementations (§6: "thread-level parallelism (multi-threading),
//! achieving 13.4× higher performance than the built-in PyTorch
//! implementations"), and every hot kernel in this reproduction — GEMM,
//! the dense noisy update, Gaussian fills, LazyDP's pending-noise flush —
//! runs on the [`Executor`] defined here.
//!
//! # Determinism contract
//!
//! Work is split by **stable chunk index**, never by thread scheduling:
//! a parallel region over `n` items with chunk length `c` always
//! produces the chunks `[0, c)`, `[c, 2c)`, … regardless of the thread
//! count, and each chunk's result must be a pure function of its chunk
//! index and inputs. Threads only decide *which worker* runs a chunk,
//! never *what* the chunk computes, so results are bitwise identical for
//! any thread count (DESIGN.md invariant #4). Chunks write to disjoint
//! sub-slices, which safe Rust enforces at compile time.
//!
//! # Thread-count configuration
//!
//! The process-wide default (used by `lazydp_tensor`'s GEMMs and as the
//! default for `DpConfig::threads`) is resolved once from the
//! `LAZYDP_THREADS` environment variable, falling back to
//! [`std::thread::available_parallelism`]. Benchmarks and tests may
//! override it with [`set_global_threads`].
//!
//! # Example
//!
//! ```
//! use lazydp_exec::Executor;
//!
//! // Chunk-addressed work: each element's value depends only on its
//! // chunk index, so any executor width produces identical bytes.
//! let run = |threads: usize| {
//!     let mut data = vec![0u64; 1000];
//!     Executor::new(threads).par_for(&mut data, 64, |chunk_idx, chunk| {
//!         for v in chunk.iter_mut() {
//!             *v = chunk_idx as u64;
//!         }
//!     });
//!     data
//! };
//! assert_eq!(run(1), run(8));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Threads from `LAZYDP_THREADS` (if set to a positive integer) or the
/// machine's available parallelism.
#[must_use]
pub fn detect_threads() -> usize {
    std::env::var("LAZYDP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(available_threads)
}

/// The machine's available parallelism (1 if it cannot be queried).
#[must_use]
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// 0 = not yet resolved; resolved lazily by [`global_threads`].
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

/// The process-wide default thread count. First call resolves it via
/// [`detect_threads`]; later calls return the cached (or
/// [`set_global_threads`]-overridden) value.
#[must_use]
pub fn global_threads() -> usize {
    let t = GLOBAL_THREADS.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    let detected = detect_threads();
    // compare_exchange so a concurrent set_global_threads (or another
    // initializer) is never clobbered by this lazy init.
    match GLOBAL_THREADS.compare_exchange(0, detected, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => detected,
        Err(current) => current,
    }
}

/// Overrides the process-wide default thread count (thread-scaling
/// benchmarks sweep this). Safe to change at any time: chunk-addressed
/// work is bitwise identical for any thread count.
///
/// # Panics
///
/// Panics if `threads == 0`.
pub fn set_global_threads(threads: usize) {
    assert!(threads > 0, "need at least one thread");
    GLOBAL_THREADS.store(threads, Ordering::Relaxed);
}

/// An executor using the process-wide default thread count.
#[must_use]
pub fn global() -> Executor {
    Executor::new(global_threads())
}

/// A scoped worker pool of a fixed width.
///
/// Creating one is free (no threads are kept alive between parallel
/// regions); each [`par_for`](Self::par_for) /
/// [`par_map_chunks`](Self::par_map_chunks) call spawns its workers
/// under [`std::thread::scope`] and joins them before returning, so
/// borrowed data needs no `'static` bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor running work on `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        Self { threads }
    }

    /// A single-threaded executor (runs everything inline).
    #[must_use]
    pub fn sequential() -> Self {
        Self { threads: 1 }
    }

    /// The configured worker count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether this executor would ever spawn workers (`threads > 1`).
    /// Kernels with an allocation-free inline path (e.g. the noise-plan
    /// sampler) use this to stay on caller-owned scratch when no
    /// parallelism is available anyway.
    #[must_use]
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Splits `data` into consecutive chunks of `chunk_len` elements
    /// (the last may be shorter) and calls `f(chunk_index, chunk)` for
    /// each, distributing chunks over the workers dynamically.
    ///
    /// Chunk boundaries depend only on `(data.len(), chunk_len)` — not
    /// on the thread count — so as long as `f` is a pure function of
    /// `(chunk_index, chunk contents)`, the result is bitwise identical
    /// for any executor width.
    ///
    /// Runs inline (no threads spawned) when the executor is sequential
    /// or there is only one chunk.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, or propagates a panic from `f`.
    pub fn par_for<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        if data.is_empty() {
            return;
        }
        let n_chunks = data.len().div_ceil(chunk_len);
        // Occupancy metrics: one region, `n_chunks` chunks. Recorded
        // before the inline/parallel fork so single-threaded runs show
        // the same region shape (write-only; see lazydp_obs rule O1).
        lazydp_obs::metrics().exec.par_regions.incr();
        lazydp_obs::metrics().exec.par_chunks.add(n_chunks as u64);
        lazydp_obs::metrics()
            .exec
            .chunks_per_region
            .record(n_chunks as u64);
        if self.threads == 1 || n_chunks == 1 {
            for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
                f(i, chunk);
            }
            return;
        }
        let queue = Mutex::new(data.chunks_mut(chunk_len).enumerate());
        let queue = &queue;
        let f = &f;
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n_chunks) {
                scope.spawn(move || loop {
                    // Hold the lock only for the pop, not the work.
                    let next = queue.lock().expect("executor queue poisoned").next();
                    match next {
                        Some((i, chunk)) => f(i, chunk),
                        None => break,
                    }
                });
            }
        });
    }

    /// Maps `f` over consecutive chunks of `items` (chunk length
    /// `chunk_len`), returning one result per chunk in chunk order.
    ///
    /// Same determinism contract as [`par_for`](Self::par_for).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0`, or propagates a panic from `f`.
    pub fn par_map_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        assert!(chunk_len > 0, "chunk length must be positive");
        let n_chunks = items.len().div_ceil(chunk_len);
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(n_chunks, || None);
        self.par_for(&mut results, 1, |i, slot| {
            let lo = i * chunk_len;
            let hi = (lo + chunk_len).min(items.len());
            slot[0] = Some(f(i, &items[lo..hi]));
        });
        results
            .into_iter()
            .map(|r| r.expect("every chunk produced a result"))
            .collect()
    }
}

/// Runs `a` on a freshly spawned scoped thread while `b` runs on the
/// calling thread, then joins and returns both results.
///
/// This is the **only** sanctioned way to overlap two pieces of work that
/// are not chunk-addressed (e.g. LazyDP's pending-noise flush for step
/// `t+1` overlapped with step `t`'s clipped aggregation). Keeping the
/// raw `std::thread::scope` here, inside the executor crate, means the
/// lint pass (rule D3) can verify that no other crate spawns threads —
/// every parallel region in the training path is either chunk-addressed
/// ([`Executor::par_for`] / [`Executor::par_map_chunks`]) or an explicit
/// two-sided overlap whose sides touch disjoint state.
///
/// Determinism: `overlap(a, b)` computes exactly `(a(), b())` — each
/// side runs once, to completion, and the results are returned in a
/// fixed order. Scheduling affects only wall-clock interleaving, never
/// values, provided the two sides share no mutable state (which safe
/// Rust enforces at the closure captures).
///
/// # Panics
///
/// Propagates a panic from either closure.
pub fn overlap<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    std::thread::scope(|s| {
        let worker = s.spawn(a);
        let rb = b();
        // Re-raise the worker's own payload instead of replacing it with
        // a generic message: callers (the crash-recovery harness in
        // particular) downcast the payload to identify injected kills.
        let ra = match worker.join() {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_returns_both_results_in_order() {
        let xs = [1u64, 2, 3];
        let (a, b) = overlap(|| xs.iter().copied().max().unwrap_or(0), || xs.len());
        assert_eq!((a, b), (3, 3));
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn overlap_propagates_worker_panic_payload() {
        let _ = overlap(|| panic!("boom"), || 1u32);
    }

    #[test]
    fn par_for_visits_every_chunk_once_with_stable_indices() {
        let mut data = vec![0u64; 1000];
        Executor::new(4).par_for(&mut data, 64, |i, chunk| {
            for v in chunk.iter_mut() {
                *v += 1 + i as u64;
            }
        });
        for (k, &v) in data.iter().enumerate() {
            assert_eq!(v, 1 + (k / 64) as u64, "element {k}");
        }
    }

    #[test]
    fn par_for_is_bitwise_identical_across_thread_counts() {
        let run = |threads: usize| -> Vec<f32> {
            let mut data = vec![0.0f32; 4097];
            Executor::new(threads).par_for(&mut data, 100, |i, chunk| {
                for (k, v) in chunk.iter_mut().enumerate() {
                    // A value that depends on the chunk index and the
                    // element's position — the chunk-addressed pattern.
                    *v = (i as f32).sin() + (k as f32) * 1e-3;
                }
            });
            data
        };
        let base = run(1);
        for threads in [2usize, 3, 7, 16] {
            assert_eq!(base, run(threads), "thread count {threads}");
        }
    }

    #[test]
    fn par_for_handles_short_last_chunk_and_tiny_inputs() {
        let mut data = vec![0usize; 10];
        Executor::new(8).par_for(&mut data, 3, |i, chunk| {
            for v in chunk.iter_mut() {
                *v = i;
            }
        });
        assert_eq!(data, vec![0, 0, 0, 1, 1, 1, 2, 2, 2, 3]);
        let mut empty: Vec<usize> = Vec::new();
        Executor::new(8).par_for(&mut empty, 3, |_, _| unreachable!());
    }

    #[test]
    fn par_map_chunks_returns_results_in_chunk_order() {
        let items: Vec<u32> = (0..100).collect();
        let sums =
            Executor::new(3).par_map_chunks(&items, 7, |i, chunk| (i, chunk.iter().sum::<u32>()));
        assert_eq!(sums.len(), 15);
        for (k, &(i, s)) in sums.iter().enumerate() {
            assert_eq!(i, k);
            let expect: u32 = items[k * 7..(k * 7 + 7).min(100)].iter().sum();
            assert_eq!(s, expect);
        }
        let none: Vec<u32> = Vec::new();
        let empty: Vec<u32> = Executor::new(3).par_map_chunks(&none, 7, |_, c| c.len() as u32);
        assert!(empty.is_empty());
    }

    #[test]
    fn more_threads_than_chunks_is_fine() {
        let mut data = vec![0u8; 5];
        Executor::new(32).par_for(&mut data, 2, |_, chunk| {
            for v in chunk.iter_mut() {
                *v = 9;
            }
        });
        assert_eq!(data, vec![9; 5]);
    }

    #[test]
    fn global_threads_resolves_and_can_be_overridden() {
        let initial = global_threads();
        assert!(initial > 0);
        set_global_threads(3);
        assert_eq!(global_threads(), 3);
        assert_eq!(global().threads(), 3);
        set_global_threads(initial);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = Executor::new(0);
    }

    #[test]
    #[should_panic(expected = "chunk length")]
    fn zero_chunk_len_rejected() {
        let mut data = vec![0u8; 4];
        Executor::new(2).par_for(&mut data, 0, |_, _| {});
    }
}
