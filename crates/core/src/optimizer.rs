//! The LazyDP optimizer — Algorithm 1 of the paper.
//!
//! The per-row pending-noise flush is structured as a two-phase
//! [`NoisePlan`]: [`HistoryTable`](crate::history::HistoryTable)
//! bookkeeping, then noise sampling on the `lazydp_exec` executor (see
//! [`crate::plan`]). With an addressable noise source two further
//! levers apply, both bitwise-invisible in the trained model:
//!
//! * **Sharding** — the sparse state is hash-partitioned into
//!   `DpConfig::shards` independent [`ShardedHistory`] shards, and both
//!   flush phases run shard-parallel ([`flush_next_rows_sharded`]).
//! * **Overlap** — the lookahead flush only needs the *next* batch's
//!   indices and the history, never the gradients, so
//!   [`step`](Optimizer::step) samples it on a scoped worker
//!   concurrently with the current step's dense forward/backward
//!   compute and merges the result into the sparse update afterwards.
//!
//! Non-addressable (stateful-stream) noise sources fall back to the
//! sequential 1-shard path, preserving their draw order exactly.

use crate::history::ShardedHistory;
use crate::plan::{flush_next_rows_sharded, NoisePlan, NoisePlanEntry, ShardedFlush};
use lazydp_data::MiniBatch;
use lazydp_dpsgd::clip::{clip_weights_into, clipped_fraction};
use lazydp_dpsgd::{DpConfig, KernelCounters, Optimizer, StepStats};
use lazydp_embedding::sparse::dedup_indices_into;
use lazydp_embedding::{CoalesceScratch, EmbeddingStorage};
use lazydp_exec::Executor;
use lazydp_model::{Dlrm, DlrmCache, DlrmGrads, DlrmScratch};
use lazydp_rng::RowNoise;
use lazydp_store::StorageConfig;

/// Planned rows flushed per staging segment in
/// [`LazyDpOptimizer::finalize_model`] — bounds the noise buffer even
/// when every row of a huge table is pending.
const FINALIZE_SEGMENT_ENTRIES: usize = 16_384;

/// LazyDP hyper-parameters: the DP-SGD parameters plus the ANS switch
/// (the paper evaluates both `LazyDP` and `LazyDP(w/o ANS)`, Fig. 10)
/// and, optionally, the out-of-core storage knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct LazyDpConfig {
    /// The shared DP-SGD hyper-parameters (σ, C, η, B).
    pub dp: DpConfig,
    /// Whether aggregated noise sampling (§5.2.2) is enabled.
    pub ans: bool,
    /// Out-of-core embedding storage (page size, cache capacity, spill
    /// dir) used by [`PrivateTrainer::make_private_stored`] and
    /// [`Checkpoint::restore_stored`]; `None` keeps tables in memory.
    ///
    /// Lives here rather than on [`DpConfig`] because only LazyDP's
    /// `O(batch)` sparse access pattern makes paging viable — eager
    /// DP-SGD's dense full-table noisy update would thrash any bounded
    /// cache, which is exactly the traffic the paper removes.
    ///
    /// [`PrivateTrainer::make_private_stored`]: crate::PrivateTrainer::make_private_stored
    /// [`Checkpoint::restore_stored`]: crate::Checkpoint::restore_stored
    pub storage: Option<StorageConfig>,
}

impl LazyDpConfig {
    /// Paper-default hyper-parameters (Fig. 9(a)) with ANS enabled.
    #[must_use]
    pub fn paper_default(nominal_batch: usize) -> Self {
        Self {
            dp: DpConfig::paper_default(nominal_batch),
            ans: true,
            storage: None,
        }
    }

    /// Convenience constructor over explicit DP parameters and the ANS
    /// switch (in-memory storage).
    #[must_use]
    pub fn new(dp: DpConfig, ans: bool) -> Self {
        Self {
            dp,
            ans,
            storage: None,
        }
    }

    /// Enables disk-backed embedding tables with the given storage
    /// engine configuration (see `lazydp_store::StorageConfig`). Takes
    /// effect in [`PrivateTrainer::make_private_stored`] /
    /// [`Checkpoint::restore_stored`]; the trained model is bitwise
    /// identical to the in-memory backend for any page size and cache
    /// capacity.
    ///
    /// [`PrivateTrainer::make_private_stored`]: crate::PrivateTrainer::make_private_stored
    /// [`Checkpoint::restore_stored`]: crate::Checkpoint::restore_stored
    #[must_use]
    pub fn with_storage(mut self, storage: StorageConfig) -> Self {
        self.storage = Some(storage);
        self
    }

    /// Disables ANS (the `LazyDP(w/o ANS)` ablation).
    #[must_use]
    pub fn without_ans(mut self) -> Self {
        self.ans = false;
        self
    }

    /// Sets the executor width for the parallel phases (delegates to
    /// [`DpConfig::with_threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.dp = self.dp.with_threads(threads);
        self
    }

    /// Sets the sparse-state shard count (delegates to
    /// [`DpConfig::with_shards`]). Takes effect only with an
    /// addressable noise source; the trained model is bitwise identical
    /// for any value.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.dp = self.dp.with_shards(shards);
        self
    }
}

/// Step-scoped scratch state of the LazyDP optimizer: the forward
/// cache, gradient buffers, lookahead target lists, noise-plan entries,
/// and every working vector the step needs. Lazily sized on the first
/// step; after warm-up a steady-state [`LazyDpOptimizer::step`] on the
/// sequential path performs **zero heap allocations** (pinned by the
/// `alloc_steady_state` integration test).
#[derive(Debug, Clone, Default)]
struct StepScratch {
    cache: DlrmCache,
    model_scratch: DlrmScratch,
    grads: DlrmGrads,
    logit_g: Vec<f32>,
    norms: Vec<f64>,
    /// Deduped next-batch rows, one list per table.
    targets: Vec<Vec<u64>>,
    /// Phase-1 noise-plan entries (sequential flush path).
    entries: Vec<NoisePlanEntry>,
    /// Phase-2 sampled noise block and draw scratch.
    noise_acc: Vec<f32>,
    noise_buf: Vec<f32>,
    /// Dense MLP noise buffer.
    dense_buf: Vec<f32>,
    coalesce: CoalesceScratch,
}

/// The LazyDP optimizer (Algorithm 1): DP-SGD(F)-style gradient
/// derivation, lazy noise updates driven by one-batch lookahead, and
/// (optionally) aggregated noise sampling. The sparse bookkeeping is
/// hash-partitioned into `cfg.dp.shards` shards per table (see the
/// module docs).
#[derive(Debug, Clone)]
pub struct LazyDpOptimizer<N> {
    cfg: LazyDpConfig,
    noise: N,
    history: Vec<ShardedHistory>,
    iter: u64,
    counters: KernelCounters,
    scratch: StepScratch,
}

impl<N: RowNoise + Clone + Send + Sync> LazyDpOptimizer<N> {
    /// Creates a LazyDP optimizer for `model` (the [`ShardedHistory`]s
    /// are sized from its embedding tables and partitioned into
    /// `cfg.dp.shards` shards — or 1 if `noise` is not addressable,
    /// since only addressable sources may be sampled shard-parallel).
    /// Generic over the model's embedding backend: only row counts are
    /// read here, so in-memory and disk-backed models build identical
    /// optimizer state.
    #[must_use]
    pub fn new<T: EmbeddingStorage>(cfg: LazyDpConfig, model: &Dlrm<T>, noise: N) -> Self {
        let shards = if noise.addressable() {
            cfg.dp.shards
        } else {
            1
        };
        Self {
            cfg,
            noise,
            history: model
                .tables
                .iter()
                .map(|t| ShardedHistory::new(t.rows(), shards))
                .collect(),
            iter: 0,
            counters: KernelCounters::new(),
            scratch: StepScratch::default(),
        }
    }

    /// Rebuilds an optimizer from checkpointed state (see
    /// [`crate::checkpoint`]). `history` must have one entry per table
    /// and `iter` must be the iteration the history was captured at.
    /// The histories' shard count need not match `cfg.dp.shards` — a
    /// checkpoint taken at any shard count resumes at any other. A
    /// non-addressable noise source forces the sequential flush path, so
    /// sharded histories are repartitioned to 1 shard for it.
    #[must_use]
    pub fn from_state(
        cfg: LazyDpConfig,
        noise: N,
        mut history: Vec<ShardedHistory>,
        iter: u64,
    ) -> Self {
        if !noise.addressable() {
            for h in &mut history {
                if h.num_shards() > 1 {
                    *h = ShardedHistory::from_raw_global(&h.to_raw_global(), 1);
                }
            }
        }
        Self {
            cfg,
            noise,
            history,
            iter,
            counters: KernelCounters::new(),
            scratch: StepScratch::default(),
        }
    }

    /// The per-table history tables (checkpoint capture).
    #[must_use]
    pub fn history_tables(&self) -> &[ShardedHistory] {
        &self.history
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &LazyDpConfig {
        &self.cfg
    }

    /// Current training iteration (1-based after the first step).
    #[must_use]
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// Total HistoryTable memory (the §7.2 overhead: 4 bytes/row —
    /// sharding adds nothing per row).
    #[must_use]
    pub fn history_bytes(&self) -> u64 {
        self.history.iter().map(ShardedHistory::bytes).sum()
    }

    /// Cumulative logical-work counters (inherent so callers don't need
    /// to pin the `Optimizer<T>` backend parameter just to read them).
    #[must_use]
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Algorithm name as the paper spells it (inherent twin of
    /// [`Optimizer::name`], same backend-parameter reasoning as
    /// [`counters`](Self::counters)).
    #[must_use]
    pub fn name(&self) -> &'static str {
        if self.cfg.ans {
            "LazyDP"
        } else {
            "LazyDP(w/o ANS)"
        }
    }

    /// DP-SGD(F)-style clipped aggregate (ghost norms + reweighted
    /// backward), identical to the strongest eager baseline. An
    /// associated function (not a method) so [`Optimizer::step`] can run
    /// it concurrently with the lookahead flush, which borrows the
    /// history. The gradients land in `scratch.grads`; every working
    /// buffer comes from `scratch`, so the steady-state aggregate
    /// allocates nothing.
    fn clipped_aggregate<T: EmbeddingStorage>(
        dp: &DpConfig,
        model: &Dlrm<T>,
        batch: &MiniBatch,
        counters: &mut KernelCounters,
        scratch: &mut StepScratch,
    ) -> f64 {
        if batch.is_empty() {
            scratch.grads.reset_for(model);
            return 0.0;
        }
        {
            lazydp_obs::span!("step.forward");
            model.forward_with(batch, &mut scratch.cache, &mut scratch.model_scratch);
        }
        counters.rows_gathered += batch.total_lookups() as u64;
        Dlrm::logit_grads_into(&scratch.cache, &batch.labels, false, &mut scratch.logit_g);
        let c = dp.max_grad_norm;
        let StepScratch {
            cache,
            model_scratch,
            grads,
            logit_g,
            norms,
            ..
        } = scratch;
        // Fused ghost-clipping backward: ghost norms, clip factors, and
        // the clipped aggregate in one gradient chain — bitwise
        // identical to the old norms-then-reweighted-backward pair. The
        // norms are copied out of the closure so the clipped fraction
        // can be reported without re-deriving them.
        {
            lazydp_obs::span!("step.backward_clip");
            model.backward_clipped_with(
                cache,
                batch,
                logit_g,
                |n, w| {
                    norms.clear();
                    norms.extend_from_slice(n);
                    clip_weights_into(n, c, w);
                },
                grads,
                model_scratch,
            );
        }
        clipped_fraction(&scratch.norms, c)
    }

    /// Flushes every pending noise update, bringing the model to the
    /// state eager DP-SGD would have released (threat model §3: the
    /// adversary sees the final model, so deferred noise must land
    /// before release). Idempotent.
    ///
    /// Runs on the same two-phase [`NoisePlan`] machinery as the
    /// per-step flush, one history shard at a time: the shard scan is
    /// serial, the noise sampling inside each bounded segment is
    /// data-parallel on the executor. Rows are visited in shard-major
    /// instead of global order, but each row's noise is addressed by its
    /// global id, so the released model is bitwise identical for any
    /// shard count — and for any embedding backend: on a disk-backed
    /// table each bounded segment touches its rows through the page
    /// cache, so release never needs the whole table resident.
    pub fn finalize_model<T: EmbeddingStorage>(&mut self, model: &mut Dlrm<T>) {
        lazydp_obs::span!("finalize.flush_all");
        let lr = self.cfg.dp.lr;
        let per_step_std = self.cfg.dp.noise_std_per_coord();
        let exec = Executor::new(self.cfg.dp.threads);
        for (t, table) in model.tables.iter_mut().enumerate() {
            let dim = table.dim();
            let spec = self.history[t].spec();
            for s in 0..spec.shards() {
                let plan = NoisePlan::for_all_rows_of_shard(
                    t as u32,
                    self.iter,
                    spec,
                    s,
                    &mut self.history[t].shards_mut()[s],
                    &mut self.counters,
                );
                lazydp_obs::metrics()
                    .trainer
                    .finalize_rows
                    .add(plan.entries().len() as u64);
                for seg in plan.entries().chunks(FINALIZE_SEGMENT_ENTRIES) {
                    let noise_buf = NoisePlan::sample_entries(
                        t as u32,
                        self.iter,
                        seg,
                        dim,
                        per_step_std,
                        self.cfg.ans,
                        &mut self.noise,
                        &exec,
                        &mut self.counters,
                    );
                    for (e, nv) in seg.iter().zip(noise_buf.chunks_exact(dim)) {
                        table.with_row_mut(e.row, |row| {
                            for (w, &n) in row.iter_mut().zip(nv.iter()) {
                                *w -= lr * n;
                            }
                        });
                        self.counters.table_rows_read += 1;
                        self.counters.table_rows_written += 1;
                    }
                }
            }
        }
    }
}

impl<T, N> Optimizer<T> for LazyDpOptimizer<N>
where
    T: EmbeddingStorage,
    N: RowNoise + Clone + Send + Sync,
{
    fn name(&self) -> &'static str {
        LazyDpOptimizer::name(self)
    }

    fn step(
        &mut self,
        model: &mut Dlrm<T>,
        batch: &MiniBatch,
        next: Option<&MiniBatch>,
    ) -> StepStats {
        self.iter += 1;
        let iter = self.iter;
        let dp = self.cfg.dp;
        let ans = self.cfg.ans;
        let std = dp.noise_std_per_coord();
        let lr = dp.lr;
        let exec = Executor::new(dp.threads);

        // Lookahead pre-pass (Algorithm 1 line 12): dedup the rows each
        // table gathers *next* iteration into the per-table scratch
        // lists. An empty next batch (Poisson sampling) may carry no
        // per-table index lists at all; treat that as "no rows gathered
        // next iteration".
        let has_next = next.is_some();
        if let Some(next_batch) = next {
            self.scratch
                .targets
                .resize_with(model.tables.len(), Vec::new);
            for (t, targets) in self.scratch.targets.iter_mut().enumerate() {
                let idx: &[u64] = next_batch.sparse.get(t).map_or(&[], |s| s.flat_indices());
                self.counters.duplicates_removed += dedup_indices_into(idx, targets) as u64;
            }
        }

        // Gradient derivation and lookahead flush. The flush needs only
        // the next-batch targets, the history shards, and the (pure)
        // noise source — never the gradients — so with an addressable
        // source and a multi-width executor it runs shard-parallel on a
        // scoped worker *while* the main thread does the dense
        // forward/backward. Stateful sources keep the sequential 1-shard
        // path below to preserve their draw order; a single-width
        // executor takes the same sequential path (the overlap worker
        // would only interleave with itself), which also keeps the
        // steady-state step allocation-free. Values are identical either
        // way: addressable noise is a pure function of the address. The
        // flushing side also asks the storage backend to fault in the
        // pages of exactly the rows step t+1 gathers (the set LazyDP's
        // delayed noising touches), so on a disk-backed table the next
        // gather is served from the page cache — prefetch is a no-op for
        // in-memory backends and never changes row values.
        let single_shard = self.history.iter().all(|h| h.num_shards() == 1);
        let overlap = has_next && self.noise.addressable() && (dp.threads > 1 || !single_shard);
        let mut flushes: Vec<ShardedFlush> = Vec::new();
        let clipped = if overlap {
            lazydp_obs::span!("step.flush_overlap");
            lazydp_obs::metrics().trainer.flush_overlaps.incr();
            let targets = std::mem::take(&mut self.scratch.targets);
            let dims: Vec<usize> = model.tables.iter().map(|t| t.dim()).collect();
            let noise = &self.noise;
            let history = &mut self.history;
            let scratch = &mut self.scratch;
            let counters = &mut self.counters;
            let model_ref: &Dlrm<T> = model;
            let targets_ref = &targets;
            let ((fs, fc), cl) = lazydp_exec::overlap(
                move || {
                    let mut c = KernelCounters::new();
                    let fs: Vec<ShardedFlush> = targets_ref
                        .iter()
                        .enumerate()
                        .map(|(t, tg)| {
                            model_ref.tables[t].prefetch_rows(tg);
                            flush_next_rows_sharded(
                                t as u32,
                                iter,
                                tg,
                                &mut history[t],
                                dims[t],
                                std,
                                ans,
                                noise,
                                &exec,
                                &mut c,
                            )
                        })
                        .collect();
                    (fs, c)
                },
                || Self::clipped_aggregate(&dp, model_ref, batch, counters, scratch),
            );
            self.counters.merge(&fc);
            self.scratch.targets = targets;
            flushes = fs;
            cl
        } else {
            Self::clipped_aggregate(&dp, model, batch, &mut self.counters, &mut self.scratch)
        };
        self.scratch.grads.scale(1.0 / dp.nominal_batch as f32);
        {
            let StepScratch {
                grads, coalesce, ..
            } = &mut self.scratch;
            self.counters.duplicates_removed += grads.coalesce_with(coalesce) as u64;
        }

        // MLP layers: identical treatment to eager DP-SGD (gradient +
        // dense noise every iteration) — Algorithm 1 omits them because
        // "both DP-SGD(F) and LazyDP apply the identical DP protection
        // for MLP layers".
        {
            lazydp_obs::span!("step.dense_update");
            model.bottom.apply(&self.scratch.grads.bottom, lr);
            model.top.apply(&self.scratch.grads.top, lr);
            model.bottom.apply_dense_noise_with(
                &mut self.noise,
                iter,
                0,
                std,
                lr,
                &mut self.scratch.dense_buf,
            );
            model.top.apply_dense_noise_with(
                &mut self.noise,
                iter,
                64,
                std,
                lr,
                &mut self.scratch.dense_buf,
            );
        }
        self.counters.gaussian_samples += (model.bottom.params() + model.top.params()) as u64;

        // Kill point `step`: the dense half of the step has landed, the
        // sparse updates have not — the most state-torn instant of a
        // step. The recovery harness proves a crash here resumes
        // bitwise from the last checkpoint.
        lazydp_fault::point(lazydp_fault::Site::MidStep, iter);

        // Embedding tables: merge the (sparse) gradient with the lazy
        // noise of the rows the *next* iteration will gather, then apply
        // one sparse update (Algorithm 1 lines 11–25).
        for (t, table) in model.tables.iter_mut().enumerate() {
            let dim = table.dim();
            let StepScratch {
                grads,
                targets,
                entries,
                noise_acc,
                noise_buf,
                ..
            } = &mut self.scratch;
            let update = &mut grads.tables[t];
            if overlap {
                // The flush was sampled concurrently above; land it.
                flushes[t].merge_into(update);
            } else if has_next {
                // Sequential two-phase flush (a stateful source drawing
                // through the live stream, or a single-width executor
                // over an unsharded history): phase 1 bookkeeping,
                // phase 2 sampling, both through step-scoped scratch.
                lazydp_obs::span!("step.flush_seq");
                let tg: &[u64] = &targets[t];
                table.prefetch_rows(tg);
                NoisePlan::plan_next_rows(
                    tg,
                    iter,
                    &mut self.history[t].shards_mut()[0],
                    update,
                    &mut self.counters,
                    entries,
                );
                if !entries.is_empty() {
                    NoisePlan::sample_entries_into(
                        t as u32,
                        iter,
                        entries,
                        dim,
                        std,
                        ans,
                        &mut self.noise,
                        &exec,
                        &mut self.counters,
                        noise_acc,
                        noise_buf,
                    );
                    for (e, nv) in entries.iter().zip(noise_acc.chunks_exact(dim)) {
                        for (w, &n) in update.entry_mut(e.slot).iter_mut().zip(nv.iter()) {
                            *w += n;
                        }
                    }
                }
            }
            {
                lazydp_obs::span!("step.sparse_update");
                table.sparse_update(update, lr);
            }
            self.counters.table_rows_read += update.len() as u64;
            self.counters.table_rows_written += update.len() as u64;
        }
        self.counters.steps += 1;
        lazydp_obs::metrics().trainer.steps.incr();
        StepStats {
            realized_batch: batch.batch_size(),
            clipped_fraction: clipped,
        }
    }

    fn finalize(&mut self, model: &mut Dlrm<T>) {
        self.finalize_model(model);
    }

    fn counters(&self) -> KernelCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
    use lazydp_dpsgd::{ClipStyle, EagerDpSgd};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn setup(tables: usize, rows: u64, samples: usize) -> (Dlrm, SyntheticDataset) {
        let mut rng = Xoshiro256PlusPlus::seed_from(31);
        let model = Dlrm::new(DlrmConfig::tiny(tables, rows, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(tables, rows, samples));
        (model, ds)
    }

    fn max_table_diff(a: &Dlrm, b: &Dlrm) -> f32 {
        a.tables
            .iter()
            .zip(b.tables.iter())
            .map(|(x, y)| x.max_abs_diff(y))
            .fold(0.0, f32::max)
    }

    /// THE equivalence theorem of the paper (Fig. 7), tested exactly:
    /// with counter-based noise, LazyDP **without ANS** observes the
    /// same model state at every forward pass as eager DP-SGD(F), and
    /// after `finalize` the final models coincide.
    #[test]
    fn lazydp_without_ans_exactly_matches_eager_dpsgd() {
        let (model0, ds) = setup(3, 48, 128);
        let cfg = DpConfig::new(0.8, 0.9, 0.05, 16);
        let steps = 6usize;
        let batches: Vec<MiniBatch> = (0..=steps)
            .map(|i| ds.batch_of(&(i * 16..(i + 1) * 16).collect::<Vec<_>>()))
            .collect();

        // Eager DP-SGD(F).
        let mut eager_model = model0.clone();
        let mut eager = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(99));
        let mut eager_logits: Vec<Vec<f32>> = Vec::new();
        for batch in batches.iter().take(steps) {
            eager_logits.push(eager_model.forward(batch).logits());
            eager.step(&mut eager_model, batch, None);
        }

        // LazyDP without ANS, same noise seed, one-batch lookahead.
        let mut lazy_model = model0.clone();
        let lazy_cfg = LazyDpConfig::new(cfg, false);
        let mut lazy = LazyDpOptimizer::new(lazy_cfg, &lazy_model, CounterNoise::new(99));
        let mut lazy_logits: Vec<Vec<f32>> = Vec::new();
        for i in 0..steps {
            lazy_logits.push(lazy_model.forward(&batches[i]).logits());
            lazy.step(&mut lazy_model, &batches[i], Some(&batches[i + 1]));
        }
        lazy.finalize_model(&mut lazy_model);

        // Access-time equivalence: what training *observed* is the same.
        for (i, (a, b)) in eager_logits.iter().zip(lazy_logits.iter()).enumerate() {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(
                    (x - y).abs() < 1e-3,
                    "iteration {i}: logits diverged ({x} vs {y})"
                );
            }
        }
        // Final-model equivalence (threat model §3).
        let d = max_table_diff(&eager_model, &lazy_model);
        assert!(d < 1e-3, "final models diverged by {d}");
        for l in 0..eager_model.top.layers().len() {
            let d = eager_model.top.layers()[l]
                .weight
                .max_abs_diff(&lazy_model.top.layers()[l].weight);
            assert!(d < 1e-3, "top MLP layer {l} diverged by {d}");
        }
    }

    /// ANS equivalence is distributional (Theorem 5.1): on a pure-noise
    /// run (empty batches — no gradients), the per-coordinate
    /// displacement of every row after finalize must follow
    /// `N(0, T·(lr·σC/B)²)` exactly like eager DP-SGD's.
    #[test]
    fn lazydp_with_ans_matches_eager_distributionally() {
        let rows = 400u64;
        let (model0, _) = setup(1, rows, 8);
        let steps = 9u64;
        let cfg = DpConfig::new(1.0, 1.0, 0.1, 8);
        let empty = MiniBatch::default();

        let mut eager_model = model0.clone();
        let mut eager = EagerDpSgd::new(cfg, ClipStyle::Fast, CounterNoise::new(7));
        for _ in 0..steps {
            eager.step(&mut eager_model, &empty, None);
        }
        let mut lazy_model = model0.clone();
        let lazy_cfg = LazyDpConfig::new(cfg, true);
        let mut lazy = LazyDpOptimizer::new(lazy_cfg, &lazy_model, CounterNoise::new(8));
        for _ in 0..steps {
            lazy.step(&mut lazy_model, &empty, Some(&empty));
        }
        lazy.finalize_model(&mut lazy_model);

        let collect = |m: &Dlrm| -> Vec<f64> {
            m.tables[0]
                .as_slice()
                .iter()
                .zip(model0.tables[0].as_slice())
                .map(|(a, b)| f64::from(a - b))
                .collect()
        };
        let mut d_eager = collect(&eager_model);
        let mut d_lazy = collect(&lazy_model);
        let expect_std =
            f64::from(cfg.lr) * f64::from(cfg.noise_std_per_coord()) * (steps as f64).sqrt();
        let crit = lazydp_rng::stats::ks_critical(d_eager.len(), 0.001);
        let ks_e = lazydp_rng::stats::ks_statistic_normal(&mut d_eager, 0.0, expect_std);
        let ks_l = lazydp_rng::stats::ks_statistic_normal(&mut d_lazy, 0.0, expect_std);
        assert!(ks_e < crit, "eager KS {ks_e} vs {crit}");
        assert!(ks_l < crit, "lazy/ANS KS {ks_l} vs {crit}");
    }

    #[test]
    fn ans_saves_gaussian_samples_by_the_delay_factor() {
        // A row untouched for k iterations needs k draws without ANS
        // but 1 with ANS; on a sparse trace the totals differ hugely.
        let (model0, ds) = setup(2, 64, 200);
        let cfg = DpConfig::paper_default(4);
        let steps = 10usize;
        let batches: Vec<MiniBatch> = (0..=steps)
            .map(|i| ds.batch_of(&(i * 4..(i + 1) * 4).collect::<Vec<_>>()))
            .collect();
        let run = |ans: bool| -> u64 {
            let mut model = model0.clone();
            let lazy_cfg = LazyDpConfig::new(cfg, ans);
            let mut opt = LazyDpOptimizer::new(lazy_cfg, &model, CounterNoise::new(3));
            for i in 0..steps {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            opt.finalize_model(&mut model);
            opt.counters().gaussian_samples
        };
        let with_ans = run(true);
        let without = run(false);
        assert!(
            without > with_ans * 2,
            "ANS must cut sampling: {with_ans} vs {without}"
        );
    }

    #[test]
    fn lazy_work_scales_with_batch_not_table_size() {
        // The headline claim (§5.1): per-iteration noise work is set by
        // the pooling/batch, not the table size.
        let (mut small, ds_small) = setup(1, 64, 64);
        let (mut large, ds_large) = setup(1, 4096, 64);
        let cfg = LazyDpConfig::paper_default(8);
        let run = |model: &mut Dlrm, ds: &SyntheticDataset| -> u64 {
            let mut opt = LazyDpOptimizer::new(cfg.clone(), model, CounterNoise::new(1));
            let b0 = ds.batch_of(&(0..8).collect::<Vec<_>>());
            let b1 = ds.batch_of(&(8..16).collect::<Vec<_>>());
            let mlp = (model.bottom.params() + model.top.params()) as u64;
            opt.step(model, &b0, Some(&b1));
            opt.counters().gaussian_samples - mlp
        };
        let s = run(&mut small, &ds_small);
        let l = run(&mut large, &ds_large);
        // Same batch size ⇒ same order of noise work despite 64× rows.
        assert!(
            l <= s * 2,
            "lazy noise work grew with table size: {s} vs {l}"
        );
    }

    #[test]
    fn trained_model_is_independent_of_the_shards_knob() {
        // The tentpole invariant: step + finalize are bitwise identical
        // for any shard count (and any thread count on top).
        let (model0, ds) = setup(3, 48, 160);
        let batches: Vec<MiniBatch> = (0..=6)
            .map(|i| ds.batch_of(&(i * 16..(i + 1) * 16).collect::<Vec<_>>()))
            .collect();
        let run = |shards: usize, threads: usize, ans: bool| -> Dlrm {
            let cfg = LazyDpConfig::new(
                DpConfig::new(0.9, 1.0, 0.05, 16)
                    .with_threads(threads)
                    .with_shards(shards),
                ans,
            );
            let mut model = model0.clone();
            let mut opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(21));
            for i in 0..6 {
                opt.step(&mut model, &batches[i], Some(&batches[i + 1]));
            }
            opt.finalize_model(&mut model);
            model
        };
        for ans in [true, false] {
            let base = run(1, 1, ans);
            for shards in [2usize, 4, 8] {
                for threads in [1usize, 4] {
                    let m = run(shards, threads, ans);
                    assert_eq!(
                        max_table_diff(&base, &m),
                        0.0,
                        "shards={shards} threads={threads} ans={ans} changed the model"
                    );
                }
            }
        }
    }

    #[test]
    fn stateful_noise_falls_back_to_one_shard() {
        use lazydp_rng::SequentialNoise;
        let (model, _) = setup(2, 32, 16);
        let cfg = LazyDpConfig::new(DpConfig::new(1.0, 1.0, 0.1, 8).with_shards(4), true);
        let noise = SequentialNoise::new(Xoshiro256PlusPlus::seed_from(3));
        let opt = LazyDpOptimizer::new(cfg.clone(), &model, noise);
        assert_eq!(
            opt.history_tables()[0].num_shards(),
            1,
            "non-addressable sources must train unsharded"
        );
    }

    #[test]
    fn finalize_is_idempotent() {
        let (mut model, ds) = setup(2, 32, 32);
        let cfg = LazyDpConfig::paper_default(8);
        let mut opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(5));
        let b0 = ds.batch_of(&(0..8).collect::<Vec<_>>());
        let b1 = ds.batch_of(&(8..16).collect::<Vec<_>>());
        opt.step(&mut model, &b0, Some(&b1));
        opt.finalize_model(&mut model);
        let snapshot = model.tables[0].clone();
        opt.finalize_model(&mut model);
        assert_eq!(model.tables[0], snapshot, "second finalize must be a no-op");
    }

    #[test]
    fn missing_lookahead_defers_to_finalize() {
        let (model0, ds) = setup(1, 32, 16);
        let cfg = DpConfig::new(1.0, 1.0, 0.1, 8);
        let batch = ds.batch_of(&(0..8).collect::<Vec<_>>());
        // Without lookahead, no embedding noise lands during the step …
        let mut m1 = model0.clone();
        let lazy_cfg = LazyDpConfig::new(cfg, true);
        let mut o1 = LazyDpOptimizer::new(lazy_cfg, &m1, CounterNoise::new(9));
        o1.step(&mut m1, &batch, None);
        let mlp = (m1.bottom.params() + m1.top.params()) as u64;
        assert_eq!(
            o1.counters().gaussian_samples,
            mlp,
            "no embedding noise yet"
        );
        // … but finalize delivers it all.
        o1.finalize_model(&mut m1);
        assert!(o1.counters().gaussian_samples > mlp);
    }

    #[test]
    fn overhead_counters_track_history_and_dedup() {
        let (mut model, ds) = setup(1, 64, 64);
        let cfg = LazyDpConfig::paper_default(16);
        let mut opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(2));
        let b0 = ds.batch_of(&(0..16).collect::<Vec<_>>());
        let b1 = ds.batch_of(&(0..16).collect::<Vec<_>>()); // same rows → dups across samples possible
        opt.step(&mut model, &b0, Some(&b1));
        let c = opt.counters();
        assert!(c.history_reads > 0);
        assert!(c.history_writes > 0);
        assert!(
            c.history_reads <= 16,
            "at most one read per unique next row"
        );
    }

    #[test]
    fn lazydp_trains_through_lookahead_loader() {
        let (mut model, ds) = setup(2, 64, 256);
        let eval = ds.batch_of(&(0..128).collect::<Vec<_>>());
        let before = model.loss(&eval);
        let cfg = LazyDpConfig::new(DpConfig::new(0.3, 5.0, 0.1, 32), true);
        let mut opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(77));
        let mut loader = lazydp_data::LookaheadLoader::new(FixedBatchLoader::new(ds, 32));
        for _ in 0..40 {
            let (cur, next) = loader.advance();
            let (cur, next) = (cur.clone(), next.clone());
            opt.step(&mut model, &cur, Some(&next));
            let _ = loader.finish_iteration();
        }
        opt.finalize_model(&mut model);
        let after = model.loss(&eval);
        assert!(
            after < before,
            "LazyDP should learn: {before:.4} -> {after:.4}"
        );
    }
}
