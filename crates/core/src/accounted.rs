//! [`AccountedOptimizer`]: the bridge between a training algorithm and
//! the privacy accountant.
//!
//! Until DP-AdaFEST the trainer could hard-code "one subsampled Gaussian
//! query at `σ` per step" — every algorithm released the same mechanism
//! shape. AdaFEST releases a *composed* mechanism (a noisy partition
//! selection plus noise on the selected partitions), so the trainer now
//! asks the optimizer what it releases per step and charges
//! `RdpAccountant::compose_mechanism` accordingly.

use crate::optimizer::LazyDpOptimizer;
use lazydp_dpsgd::{AdaFestOptimizer, EagerDpSgd, EanaOptimizer, Optimizer};
use lazydp_embedding::{EmbeddingStorage, EmbeddingTable};
use lazydp_privacy::Mechanism;
use lazydp_rng::RowNoise;

/// An [`Optimizer`] that knows the per-step privacy mechanism it
/// releases, so [`PrivateTrainer`](crate::PrivateTrainer) can charge
/// the accountant correctly for any algorithm.
pub trait AccountedOptimizer<T: EmbeddingStorage = EmbeddingTable>: Optimizer<T> {
    /// The mechanism one call to [`Optimizer::step`] releases.
    fn mechanism(&self) -> Mechanism;
}

impl<N: RowNoise + Clone + Send + Sync, T: EmbeddingStorage> AccountedOptimizer<T>
    for LazyDpOptimizer<N>
{
    fn mechanism(&self) -> Mechanism {
        // Lazy timing defers *when* noise lands, never *what* is
        // released: plain subsampled Gaussian accounting (paper §5).
        Mechanism::Gaussian {
            sigma: self.config().dp.noise_multiplier,
        }
    }
}

impl<N: RowNoise + Clone + Send + Sync> AccountedOptimizer for EagerDpSgd<N> {
    fn mechanism(&self) -> Mechanism {
        Mechanism::Gaussian {
            sigma: self.config().noise_multiplier,
        }
    }
}

impl<N: RowNoise> AccountedOptimizer for EanaOptimizer<N> {
    fn mechanism(&self) -> Mechanism {
        // EANA's *nominal* accounting (Ning et al.): the σ it targets.
        // Its actual guarantee is weaker and data-dependent — untouched
        // rows never receive noise (§7.4) — which no (σ, q, T) triple
        // captures; the accountant reports the nominal figure.
        Mechanism::Gaussian {
            sigma: self.config().noise_multiplier,
        }
    }
}

impl<N: RowNoise, T: EmbeddingStorage> AccountedOptimizer<T> for AdaFestOptimizer<N> {
    fn mechanism(&self) -> Mechanism {
        // `SelectThenNoise` treats `sigma_select` as the multiplier
        // relative to the count query's ℓ₂ sensitivity. The optimizer
        // upholds that normalization itself: the noise it actually adds
        // to each partition count is `sigma_select · Δ` with
        // `Δ = max_lookups · √(num_tables)`
        // (`AdaFestConfig::selection_noise_std`), and it panics on any
        // batch whose per-example lookups exceed `max_lookups` — so
        // forwarding the raw multiplier here is exact, never an
        // undercharge.
        let cfg = self.config();
        Mechanism::SelectThenNoise {
            sigma: cfg.dp.noise_multiplier,
            sigma_select: cfg.sigma_select,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::LazyDpConfig;
    use lazydp_dpsgd::{AdaFestConfig, ClipStyle, DpConfig};
    use lazydp_model::{Dlrm, DlrmConfig};
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    #[test]
    fn every_algorithm_reports_its_mechanism() {
        let mut rng = Xoshiro256PlusPlus::seed_from(2);
        let model = Dlrm::new(DlrmConfig::tiny(2, 32, 8), &mut rng);
        let dp = DpConfig::new(1.3, 1.0, 0.05, 16);

        let lazy = LazyDpOptimizer::new(LazyDpConfig::new(dp, true), &model, CounterNoise::new(1));
        assert_eq!(
            AccountedOptimizer::<EmbeddingTable>::mechanism(&lazy),
            Mechanism::Gaussian { sigma: 1.3 }
        );

        let eager = EagerDpSgd::new(dp, ClipStyle::Fast, CounterNoise::new(1));
        assert_eq!(eager.mechanism(), Mechanism::Gaussian { sigma: 1.3 });

        let eana = EanaOptimizer::new(dp, CounterNoise::new(1));
        assert_eq!(eana.mechanism(), Mechanism::Gaussian { sigma: 1.3 });

        let ada = AdaFestOptimizer::new(AdaFestConfig::new(dp, 2.0, 1.0, 16), CounterNoise::new(1));
        assert_eq!(
            AccountedOptimizer::<EmbeddingTable>::mechanism(&ada),
            Mechanism::SelectThenNoise {
                sigma: 1.3,
                sigma_select: 2.0
            }
        );
        // The lookup bound scales the *realized* count noise, not the
        // accounted multiplier: σ_select is already relative to the
        // sensitivity, so the mechanism must not change with it.
        let pooled = AdaFestOptimizer::new(
            AdaFestConfig::new(dp, 2.0, 1.0, 16).with_max_lookups(5),
            CounterNoise::new(1),
        );
        assert_eq!(
            AccountedOptimizer::<EmbeddingTable>::mechanism(&pooled),
            Mechanism::SelectThenNoise {
                sigma: 1.3,
                sigma_select: 2.0
            }
        );
    }
}
