//! Checkpointing for LazyDP training.
//!
//! LazyDP adds a subtlety that eager DP-SGD does not have: at any point
//! mid-training, the embedding tables are missing their **pending**
//! noise — the model on the heap is *not* the DP-protected model. A
//! correct checkpoint must therefore persist the
//! [`HistoryTable`](crate::history::HistoryTable)s and
//! the iteration counter along with the weights, so that a resumed run
//! continues to owe exactly the same noise. Dropping the history and
//! resuming with a fresh one would double-charge noise (a fresh history
//! says "nothing applied since iteration 0") — corrupting the model and,
//! worse, silently breaking the eager-equivalence guarantee. The tests
//! below demonstrate both the correct round-trip and that failure mode.
//!
//! The format is a simple little-endian binary stream (no external
//! serialization dependency), versioned and magic-tagged. Version 2
//! appends an FNV-1a-64 checksum over the whole payload: any flipped or
//! truncated byte surfaces as a typed `InvalidData` error at load —
//! never a panic, never a silent load of torn state. Crash-consistent
//! *placement* of these bytes (temp file + `sync_all` + atomic rename +
//! versioned manifest) lives in [`crate::recovery`].

use crate::history::ShardedHistory;
use crate::optimizer::{LazyDpConfig, LazyDpOptimizer};
use lazydp_embedding::EmbeddingStorage;
use lazydp_fault::checksum::fnv1a64;
use lazydp_model::{Dlrm, DlrmConfig, InteractionKind};
use lazydp_rng::RowNoise;
use lazydp_store::{StorageConfig, StoredTable};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"LAZYDP\x01\x00";
const VERSION: u32 = 2;
/// Bytes before the checksummed payload: magic + version word.
const HEADER_LEN: usize = 12;
/// The FNV-1a-64 payload checksum trailing the stream.
const TRAILER_LEN: usize = 8;

// ---------- primitive IO helpers ----------------------------------------

fn w_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}
fn w_f32s<W: Write>(w: &mut W, vs: &[f32]) -> io::Result<()> {
    w_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}
fn w_u32s<W: Write>(w: &mut W, vs: &[u32]) -> io::Result<()> {
    w_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}
fn w_u64s<W: Write>(w: &mut W, vs: &[u64]) -> io::Result<()> {
    w_u64(w, vs.len() as u64)?;
    for &v in vs {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn r_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}
fn r_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}
fn r_len<R: Read>(r: &mut R) -> io::Result<usize> {
    let n = r_u64(r)?;
    usize::try_from(n).map_err(|_| bad("length overflows usize"))
}
fn r_f32s<R: Read>(r: &mut R) -> io::Result<Vec<f32>> {
    let n = r_len(r)?;
    let mut out = Vec::with_capacity(n);
    let mut b = [0u8; 4];
    for _ in 0..n {
        r.read_exact(&mut b)?;
        out.push(f32::from_le_bytes(b));
    }
    Ok(out)
}
fn r_u32s<R: Read>(r: &mut R) -> io::Result<Vec<u32>> {
    let n = r_len(r)?;
    (0..n).map(|_| r_u32(r)).collect()
}
fn r_u64s<R: Read>(r: &mut R) -> io::Result<Vec<u64>> {
    let n = r_len(r)?;
    (0..n).map(|_| r_u64(r)).collect()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

// ---------- checkpoint payload -------------------------------------------

/// Everything a resumed LazyDP run needs (weights + pending-noise
/// bookkeeping). The noise source and hyper-parameters are provided by
/// the caller at restore time (key material does not belong in model
/// checkpoints).
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The model configuration (shape metadata).
    pub config: DlrmConfig,
    /// Flat weights: bottom layers, top layers, embedding tables.
    weights: Vec<Vec<f32>>,
    /// Per-table last-noise-applied iterations, always in **global** row
    /// order — a checkpoint carries no shard layout, so it restores into
    /// any shard count (the on-disk format is shard-independent).
    history: Vec<Vec<u32>>,
    /// Training iteration at capture time.
    pub iteration: u64,
}

impl Checkpoint {
    /// Captures a checkpoint from a model and its LazyDP optimizer.
    ///
    /// Generic over the embedding backend: each table is streamed **in
    /// global row order** through the [`EmbeddingStorage`] row accessor,
    /// which on a disk-backed table walks its pages sequentially (each
    /// page faulted once). The resulting bytes are identical whichever
    /// backend the run used, so storage-backed and in-memory checkpoints
    /// are interchangeable.
    #[must_use]
    pub fn capture<T: EmbeddingStorage, N: RowNoise + Clone + Send + Sync>(
        model: &Dlrm<T>,
        opt: &LazyDpOptimizer<N>,
    ) -> Self {
        let mut weights = Vec::new();
        for layer in model.bottom.layers().iter().chain(model.top.layers()) {
            weights.push(layer.weight.as_slice().to_vec());
            weights.push(layer.bias.clone());
        }
        for t in &model.tables {
            let mut flat = Vec::with_capacity(t.elements());
            for r in 0..t.rows() as u64 {
                t.with_row(r, |row| flat.extend_from_slice(row));
            }
            weights.push(flat);
        }
        Self {
            config: model.config().clone(),
            weights,
            history: opt
                .history_tables()
                .iter()
                .map(ShardedHistory::to_raw_global)
                .collect(),
            iteration: opt.iteration(),
        }
    }

    /// Restores the model and optimizer. `noise` must be the same
    /// source (same seed) as the interrupted run for exact continuation.
    ///
    /// The stored history is repartitioned into `cfg.dp.shards` shards —
    /// the shard count may differ from the run that saved the
    /// checkpoint, and (with an addressable noise source) the resumed
    /// training is bitwise identical either way.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shapes are internally inconsistent.
    #[must_use]
    pub fn restore<N: RowNoise + Clone + Send + Sync>(
        &self,
        cfg: LazyDpConfig,
        noise: N,
    ) -> (Dlrm, LazyDpOptimizer<N>) {
        // Rebuild the model skeleton, then overwrite every weight.
        let mut seed_rng = lazydp_rng::Xoshiro256PlusPlus::seed_from(0);
        let mut model = Dlrm::new(self.config.clone(), &mut seed_rng);
        self.fill_model(&mut model);
        let opt = self.rebuild_optimizer(cfg, noise);
        (model, opt)
    }

    /// [`restore`](Self::restore) onto **disk-backed** embedding tables:
    /// the checkpointed rows are streamed page-sequentially into the
    /// storage engine configured by `storage` (falling back to
    /// `cfg.storage`, then the engine defaults) — no intermediate dense
    /// copy of the tables is ever materialized, so peak memory stays at
    /// the checkpoint payload plus one page cache per table. Because the
    /// on-disk checkpoint format stores rows in global order with no
    /// backend metadata, a run saved on either backend resumes on
    /// either — the round trip is bitwise (see the tests below).
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's shapes are internally inconsistent.
    pub fn restore_stored<N: RowNoise + Clone + Send + Sync>(
        &self,
        cfg: LazyDpConfig,
        noise: N,
        storage: Option<&StorageConfig>,
    ) -> io::Result<(Dlrm<StoredTable>, LazyDpOptimizer<N>)> {
        let engine_cfg = storage
            .cloned()
            .or_else(|| cfg.storage.clone())
            .unwrap_or_default();
        // Zero-initialized stored tables (sparse spill files — no RNG
        // draws, no dense staging); every weight is overwritten below.
        let mut seed_rng = lazydp_rng::Xoshiro256PlusPlus::seed_from(0);
        let mut model = Dlrm::<StoredTable>::try_new_with(
            self.config.clone(),
            &mut seed_rng,
            |rows, dim, _| StoredTable::zeros(rows, dim, &engine_cfg),
        )?;
        self.fill_model(&mut model);
        let opt = self.rebuild_optimizer(cfg, noise);
        Ok((model, opt))
    }

    /// Overwrites every weight of a freshly-built skeleton with the
    /// checkpoint's tensors. Table rows go through the
    /// [`EmbeddingStorage`] row accessor in global order — on a
    /// disk-backed table that is a sequential page walk, each page
    /// faulted once and written back on eviction.
    fn fill_model<T: EmbeddingStorage>(&self, model: &mut Dlrm<T>) {
        let mut it = self.weights.iter();
        let mut take = || it.next().expect("checkpoint weight tensors");
        for layer in model
            .bottom
            .layers_mut()
            .iter_mut()
            .chain(model.top.layers_mut())
        {
            let w = take();
            assert_eq!(w.len(), layer.weight.len(), "weight shape mismatch");
            layer.weight.as_mut_slice().copy_from_slice(w);
            let b = take();
            assert_eq!(b.len(), layer.bias.len(), "bias shape mismatch");
            layer.bias.copy_from_slice(b);
        }
        for t in &mut model.tables {
            let w = take();
            assert_eq!(w.len(), t.elements(), "table shape mismatch");
            for (r, row) in w.chunks_exact(t.dim()).enumerate() {
                t.with_row_mut(r as u64, |dst| dst.copy_from_slice(row));
            }
        }
    }

    /// Rebuilds the optimizer from the checkpointed history (always
    /// stored in global row order, repartitioned into `cfg.dp.shards`).
    fn rebuild_optimizer<N: RowNoise + Clone + Send + Sync>(
        &self,
        cfg: LazyDpConfig,
        noise: N,
    ) -> LazyDpOptimizer<N> {
        let history: Vec<ShardedHistory> = self
            .history
            .iter()
            .map(|h| ShardedHistory::from_raw_global(h, cfg.dp.shards))
            .collect();
        LazyDpOptimizer::from_state(cfg, noise, history, self.iteration)
    }

    /// Serializes to a writer (the version-2 stream: header, payload,
    /// FNV-1a-64 payload checksum trailer).
    ///
    /// # Errors
    ///
    /// Propagates IO errors from `w`.
    pub fn save<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(&self.to_bytes())
    }

    /// The complete serialized stream as one byte buffer — what
    /// [`crate::recovery::CheckpointStore`] writes atomically.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        // Payload (writes into a Vec cannot fail).
        let w = &mut out;
        let ok = "write to Vec cannot fail";
        // Config.
        w_u64(w, self.config.num_dense as u64).expect(ok);
        w_u64(w, self.config.embedding_dim as u64).expect(ok);
        w_u64(w, self.config.pooling as u64).expect(ok);
        w_u32(
            w,
            match self.config.interaction {
                InteractionKind::Dot => 0,
                InteractionKind::Concat => 1,
            },
        )
        .expect(ok);
        w_u64s(w, &self.config.table_rows).expect(ok);
        w_u64s(
            w,
            &self
                .config
                .bottom_layers
                .iter()
                .map(|&x| x as u64)
                .collect::<Vec<_>>(),
        )
        .expect(ok);
        w_u64s(
            w,
            &self
                .config
                .top_layers
                .iter()
                .map(|&x| x as u64)
                .collect::<Vec<_>>(),
        )
        .expect(ok);
        // Tensors.
        w_u64(w, self.iteration).expect(ok);
        w_u64(w, self.weights.len() as u64).expect(ok);
        for t in &self.weights {
            w_f32s(w, t).expect(ok);
        }
        w_u64(w, self.history.len() as u64).expect(ok);
        for h in &self.history {
            w_u32s(w, h).expect(ok);
        }
        // Trailer: checksum over everything after the header.
        let sum = fnv1a64(&out[HEADER_LEN..]);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Deserializes from a reader (reads to end — the stream is
    /// checksum-verified as a whole before any of it is parsed).
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on magic/version/checksum mismatch or
    /// malformed payload, and propagates IO errors. Any flipped or
    /// truncated byte of a saved checkpoint lands here as a typed
    /// error — never a panic, never a silent load.
    pub fn load<R: Read>(r: &mut R) -> io::Result<Self> {
        let mut bytes = Vec::new();
        r.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }

    /// Parses a complete serialized stream.
    ///
    /// # Errors
    ///
    /// As [`Checkpoint::load`].
    pub fn from_bytes(bytes: &[u8]) -> io::Result<Self> {
        if bytes.len() < HEADER_LEN + TRAILER_LEN {
            return Err(bad("checkpoint truncated"));
        }
        if &bytes[..MAGIC.len()] != MAGIC {
            return Err(bad("not a LazyDP checkpoint"));
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != VERSION {
            return Err(bad("unsupported checkpoint version"));
        }
        // Verify the payload checksum BEFORE parsing: corrupted length
        // fields must never drive allocation or shape decisions.
        let (payload, trailer) =
            bytes[HEADER_LEN..].split_at(bytes.len() - HEADER_LEN - TRAILER_LEN);
        let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
        let computed = fnv1a64(payload);
        if stored != computed {
            return Err(bad("checkpoint payload checksum mismatch"));
        }
        let r = &mut &payload[..];
        let num_dense = r_u64(r)? as usize;
        let embedding_dim = r_u64(r)? as usize;
        let pooling = r_u64(r)? as usize;
        let interaction = match r_u32(r)? {
            0 => InteractionKind::Dot,
            1 => InteractionKind::Concat,
            _ => return Err(bad("unknown interaction kind")),
        };
        let table_rows = r_u64s(r)?;
        let bottom_layers: Vec<usize> = r_u64s(r)?.into_iter().map(|x| x as usize).collect();
        let top_layers: Vec<usize> = r_u64s(r)?.into_iter().map(|x| x as usize).collect();
        let config = DlrmConfig {
            num_dense,
            embedding_dim,
            table_rows,
            pooling,
            bottom_layers,
            top_layers,
            interaction,
        };
        config.validate().map_err(|e| bad(&e))?;
        let iteration = r_u64(r)?;
        let n_tensors = r_len(r)?;
        let weights = (0..n_tensors)
            .map(|_| r_f32s(r))
            .collect::<io::Result<Vec<_>>>()?;
        let n_hist = r_len(r)?;
        let history = (0..n_hist)
            .map(|_| r_u32s(r))
            .collect::<io::Result<Vec<_>>>()?;
        if !r.is_empty() {
            return Err(bad("trailing bytes after checkpoint payload"));
        }
        let ck = Self {
            config,
            weights,
            history,
            iteration,
        };
        ck.validate_shapes()?;
        Ok(ck)
    }

    /// Load-time shape validation: the tensor inventory must be
    /// internally consistent with the config, so a (checksum-valid but
    /// hand-crafted) stream fails here with a typed error instead of
    /// panicking later inside `restore`'s shape asserts.
    fn validate_shapes(&self) -> io::Result<()> {
        let tables = self.config.table_rows.len();
        if self.history.len() != tables {
            return Err(bad("history table count mismatch"));
        }
        for (h, &rows) in self.history.iter().zip(&self.config.table_rows) {
            if h.len() != rows as usize {
                return Err(bad("history row count mismatch"));
            }
        }
        if self.weights.len() < tables {
            return Err(bad("missing embedding table tensors"));
        }
        let table_tensors = &self.weights[self.weights.len() - tables..];
        for (t, &rows) in table_tensors.iter().zip(&self.config.table_rows) {
            if t.len() != rows as usize * self.config.embedding_dim {
                return Err(bad("embedding table tensor shape mismatch"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_dpsgd::{DpConfig, Optimizer};
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn setup() -> (Dlrm, SyntheticDataset, LazyDpConfig) {
        let mut rng = Xoshiro256PlusPlus::seed_from(55);
        let model = Dlrm::new(DlrmConfig::tiny(2, 48, 8), &mut rng);
        let ds = SyntheticDataset::new(SyntheticConfig::small(2, 48, 160));
        let cfg = LazyDpConfig::new(DpConfig::new(0.8, 1.0, 0.05, 16), false);
        (model, ds, cfg)
    }

    fn batches(ds: &SyntheticDataset, n: usize) -> Vec<lazydp_data::MiniBatch> {
        (0..n)
            .map(|i| ds.batch_of(&(i * 16..(i + 1) * 16).collect::<Vec<_>>()))
            .collect()
    }

    #[test]
    fn roundtrip_preserves_everything_bitwise() {
        let (mut model, ds, cfg) = setup();
        let mut opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(8));
        let bs = batches(&ds, 4);
        for i in 0..3 {
            opt.step(&mut model, &bs[i], Some(&bs[i + 1]));
        }
        let ck = Checkpoint::capture(&model, &opt);
        let mut buf = Vec::new();
        ck.save(&mut buf).expect("save");
        let ck2 = Checkpoint::load(&mut buf.as_slice()).expect("load");
        let (model2, opt2) = ck2.restore(cfg.clone(), CounterNoise::new(8));
        assert_eq!(model.tables, model2.tables, "tables bitwise equal");
        for (a, b) in model.top.layers().iter().zip(model2.top.layers()) {
            assert_eq!(a.weight, b.weight);
            assert_eq!(a.bias, b.bias);
        }
        assert_eq!(opt2.iteration(), 3);
        for (h1, h2) in opt.history_tables().iter().zip(opt2.history_tables()) {
            assert_eq!(h1, h2, "history preserved");
        }
    }

    #[test]
    fn resumed_run_equals_uninterrupted_run_exactly() {
        let (model0, ds, cfg) = setup();
        let bs = batches(&ds, 9);
        let steps = 8usize;
        // Uninterrupted.
        let mut m_full = model0.clone();
        let mut o_full = LazyDpOptimizer::new(cfg.clone(), &m_full, CounterNoise::new(4));
        for i in 0..steps {
            o_full.step(&mut m_full, &bs[i], Some(&bs[i + 1]));
        }
        o_full.finalize_model(&mut m_full);
        // Interrupted at step 4, checkpointed through bytes, resumed.
        let mut m = model0;
        let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(4));
        for i in 0..4 {
            o.step(&mut m, &bs[i], Some(&bs[i + 1]));
        }
        let mut buf = Vec::new();
        Checkpoint::capture(&m, &o).save(&mut buf).expect("save");
        let ck = Checkpoint::load(&mut buf.as_slice()).expect("load");
        let (mut m2, mut o2) = ck.restore(cfg.clone(), CounterNoise::new(4));
        for i in 4..steps {
            o2.step(&mut m2, &bs[i], Some(&bs[i + 1]));
        }
        o2.finalize_model(&mut m2);
        for (a, b) in m_full.tables.iter().zip(m2.tables.iter()) {
            assert!(a.max_abs_diff(b) < 1e-6, "resume must be exact");
        }
    }

    #[test]
    fn dropping_history_corrupts_the_resumed_model() {
        // The failure mode the module docs warn about: resuming with a
        // fresh HistoryTable (all zeros) double-charges noise.
        let (model0, ds, cfg) = setup();
        let bs = batches(&ds, 9);
        let mut m_full = model0.clone();
        let mut o_full = LazyDpOptimizer::new(cfg.clone(), &m_full, CounterNoise::new(4));
        for i in 0..8 {
            o_full.step(&mut m_full, &bs[i], Some(&bs[i + 1]));
        }
        o_full.finalize_model(&mut m_full);

        let mut m = model0;
        let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(4));
        for i in 0..4 {
            o.step(&mut m, &bs[i], Some(&bs[i + 1]));
        }
        // "Checkpoint" only the weights; resume with a FRESH optimizer
        // whose history claims nothing has been applied since iter 0 …
        let mut o_bad = LazyDpOptimizer::from_state(
            cfg.clone(),
            CounterNoise::new(4),
            m.tables
                .iter()
                .map(|t| ShardedHistory::new(t.rows(), 1))
                .collect(),
            4,
        );
        let mut m_bad = m;
        for i in 4..8 {
            o_bad.step(&mut m_bad, &bs[i], Some(&bs[i + 1]));
        }
        o_bad.finalize_model(&mut m_bad);
        let diff = m_full
            .tables
            .iter()
            .zip(m_bad.tables.iter())
            .map(|(a, b)| a.max_abs_diff(b))
            .fold(0.0f32, f32::max);
        assert!(
            diff > 1e-4,
            "dropping the history must visibly corrupt the model (diff {diff})"
        );
    }

    #[test]
    fn resume_across_shard_count_change_is_bitwise_exact() {
        // The checkpoint format is shard-independent: a run saved at
        // S=1 must resume at S=4 (and back) with a bitwise-identical
        // finalized model. CounterNoise is addressable, so both the
        // resumed steps and the release-time flush are exercised on the
        // sharded path.
        let (model0, ds, mut cfg) = setup();
        cfg.ans = true;
        let bs = batches(&ds, 9);
        let steps = 8usize;
        // Uninterrupted single-shard reference.
        let mut m_full = model0.clone();
        let mut o_full = LazyDpOptimizer::new(cfg.clone(), &m_full, CounterNoise::new(4));
        for i in 0..steps {
            o_full.step(&mut m_full, &bs[i], Some(&bs[i + 1]));
        }
        o_full.finalize_model(&mut m_full);
        // Interrupted at step 4 on S=1, resumed on S=4 (and S=8).
        for resume_shards in [4usize, 8] {
            let mut m = model0.clone();
            let mut o = LazyDpOptimizer::new(cfg.clone(), &m, CounterNoise::new(4));
            for i in 0..4 {
                o.step(&mut m, &bs[i], Some(&bs[i + 1]));
            }
            let mut buf = Vec::new();
            Checkpoint::capture(&m, &o).save(&mut buf).expect("save");
            let ck = Checkpoint::load(&mut buf.as_slice()).expect("load");
            let resumed_cfg = cfg.clone().with_shards(resume_shards);
            let (mut m2, mut o2) = ck.restore(resumed_cfg, CounterNoise::new(4));
            assert_eq!(o2.history_tables()[0].num_shards(), resume_shards);
            for i in 4..steps {
                o2.step(&mut m2, &bs[i], Some(&bs[i + 1]));
            }
            o2.finalize_model(&mut m2);
            for (a, b) in m_full.tables.iter().zip(m2.tables.iter()) {
                assert_eq!(
                    a.max_abs_diff(b),
                    0.0,
                    "S=1 -> S={resume_shards} resume must be bitwise exact"
                );
            }
        }
    }

    #[test]
    fn checkpoint_crosses_storage_backends_bitwise_exactly() {
        // The storage-interchangeability contract: a run interrupted on
        // the paged StoredTable backend (undersized cache, so pages
        // were genuinely spilled) checkpoints through bytes and resumes
        // on the in-memory backend — and vice versa — landing exactly
        // where the uninterrupted in-memory run lands.
        let (model0, ds, cfg) = setup();
        let scfg = StorageConfig::new().with_page_rows(4).with_cache_pages(2);
        let bs = batches(&ds, 9);
        let steps = 8usize;

        // Uninterrupted in-memory reference.
        let mut m_full = model0.clone();
        let mut o_full = LazyDpOptimizer::new(cfg.clone(), &m_full, CounterNoise::new(4));
        for i in 0..steps {
            o_full.step(&mut m_full, &bs[i], Some(&bs[i + 1]));
        }
        o_full.finalize_model(&mut m_full);

        // Save on stored, resume on memory.
        let mut m_st = model0
            .clone()
            .try_map_tables(|_, t| StoredTable::from_dense(&t, &scfg))
            .expect("spill");
        let mut o_st = LazyDpOptimizer::new(cfg.clone(), &m_st, CounterNoise::new(4));
        for i in 0..4 {
            o_st.step(&mut m_st, &bs[i], Some(&bs[i + 1]));
        }
        let mut buf = Vec::new();
        Checkpoint::capture(&m_st, &o_st)
            .save(&mut buf)
            .expect("save");
        let ck = Checkpoint::load(&mut buf.as_slice()).expect("load");
        let (mut m2, mut o2) = ck.restore(cfg.clone(), CounterNoise::new(4));
        for i in 4..steps {
            o2.step(&mut m2, &bs[i], Some(&bs[i + 1]));
        }
        o2.finalize_model(&mut m2);
        for (a, b) in m_full.tables.iter().zip(m2.tables.iter()) {
            assert_eq!(
                a.max_abs_diff(b),
                0.0,
                "stored-save/memory-resume must be bitwise exact"
            );
        }

        // Save on memory, resume on stored (restore_stored).
        let mut m_mem = model0;
        let mut o_mem = LazyDpOptimizer::new(cfg.clone(), &m_mem, CounterNoise::new(4));
        for i in 0..4 {
            o_mem.step(&mut m_mem, &bs[i], Some(&bs[i + 1]));
        }
        let mut buf = Vec::new();
        Checkpoint::capture(&m_mem, &o_mem)
            .save(&mut buf)
            .expect("save");
        let ck = Checkpoint::load(&mut buf.as_slice()).expect("load");
        let (mut m3, mut o3) = ck
            .restore_stored(cfg, CounterNoise::new(4), Some(&scfg))
            .expect("restore onto the paged backend");
        for i in 4..steps {
            o3.step(&mut m3, &bs[i], Some(&bs[i + 1]));
        }
        o3.finalize_model(&mut m3);
        for (a, b) in m_full.tables.iter().zip(m3.tables.iter()) {
            assert_eq!(
                b.max_abs_diff_dense(a),
                0.0,
                "memory-save/stored-resume must be bitwise exact"
            );
        }
    }

    #[test]
    fn load_rejects_garbage_and_wrong_magic() {
        let mut r: &[u8] = b"definitely not a checkpoint at all";
        assert!(Checkpoint::load(&mut r).is_err());
        let mut short: &[u8] = b"LA";
        assert!(Checkpoint::load(&mut short).is_err());
        // Corrupt version.
        let (model, _, cfg) = setup();
        let opt = LazyDpOptimizer::new(cfg.clone(), &model, CounterNoise::new(1));
        let mut buf = Vec::new();
        Checkpoint::capture(&model, &opt)
            .save(&mut buf)
            .expect("save");
        buf[8] = 0xFF;
        assert!(Checkpoint::load(&mut buf.as_slice()).is_err());
    }
}
