//! The `HistoryTable` of Algorithm 1 (lines 1–2, 13–16), monolithic and
//! sharded.
//!
//! Instead of counting pending noise updates per row (which would need a
//! write per row per iteration — re-densifying the very traffic LazyDP
//! removes), the paper stores the **last iteration whose noise has been
//! applied**: the pending count is then `current_iter − H[row]`, and
//! `H` is only written for the sparsely-accessed rows (§5.2.1).
//!
//! [`ShardedHistory`] hash-partitions one table's history across `S`
//! independent [`HistoryTable`] shards using the same [`ShardSpec`] as
//! `lazydp_embedding::ShardedTable`, so the serial phase-1 bookkeeping
//! of a [`NoisePlan`](crate::plan::NoisePlan) flush can run
//! shard-parallel: each shard's delays are per-row state, so any
//! partition of the rows yields the same delays — sharding changes who
//! walks a row, never what the row owes.

use lazydp_embedding::ShardSpec;

/// Per-row record of the last noise-updated iteration for one embedding
/// table. Entries are `u32` (4 bytes/row — the §7.2 "751 MB for the 96 GB
/// model" figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryTable {
    last_iter: Vec<u32>,
}

impl HistoryTable {
    /// Creates a history for a table with `rows` rows, all at iteration
    /// 0 (i.e. "no noise applied yet": Algorithm 1 initializes to zeros).
    #[must_use]
    pub fn new(rows: usize) -> Self {
        Self {
            last_iter: vec![0; rows],
        }
    }

    /// Rebuilds a history from raw per-row last-flushed iterations
    /// (checkpoint restore).
    #[must_use]
    pub fn from_raw(last_iter: Vec<u32>) -> Self {
        Self { last_iter }
    }

    /// Number of tracked rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.last_iter.len()
    }

    /// Memory footprint in bytes (`rows × 4`).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.last_iter.len() * std::mem::size_of::<u32>()) as u64
    }

    /// The number of pending (delayed) noise updates for `row` at
    /// `current_iter`, *and* marks the row as flushed through
    /// `current_iter` (Algorithm 1 lines 14–15 fused).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range, `current_iter` exceeds `u32`
    /// range, or time runs backwards for this row.
    pub fn take_delays(&mut self, row: u64, current_iter: u64) -> u64 {
        let h = &mut self.last_iter[usize::try_from(row).expect("row fits usize")];
        let cur = u32::try_from(current_iter).expect("iteration fits u32");
        assert!(
            *h <= cur,
            "history ahead of current iteration ({h} > {cur}) for row {row}"
        );
        let delays = u64::from(cur - *h);
        *h = cur;
        delays
    }

    /// Read-only view of a row's last flushed iteration.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn last_flushed(&self, row: u64) -> u32 {
        self.last_iter[usize::try_from(row).expect("row fits usize")]
    }

    /// Rows whose noise is still pending at `current_iter` (test/debug
    /// helper; the optimizer never scans the table during training).
    #[must_use]
    pub fn pending_rows(&self, current_iter: u64) -> Vec<u64> {
        let cur = u32::try_from(current_iter).expect("iteration fits u32");
        self.last_iter
            .iter()
            .enumerate()
            .filter(|(_, &h)| h < cur)
            .map(|(r, _)| r as u64)
            .collect()
    }
}

/// One table's noise history hash-partitioned into `S` independent
/// [`HistoryTable`] shards (row `r` → shard `r mod S`, local row
/// `r div S`).
///
/// The global view (checkpoints, debugging) and the per-shard view (the
/// shard-parallel flush) are both first-class:
/// [`take_delays`](Self::take_delays) and
/// [`last_flushed`](Self::last_flushed) address global rows, while
/// [`shards_mut`](Self::shards_mut) hands the flush one disjoint
/// `&mut HistoryTable` per shard. Checkpoints always serialize the
/// *global* row order ([`to_raw_global`](Self::to_raw_global)), so a
/// checkpoint taken at one shard count restores into any other.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardedHistory {
    spec: ShardSpec,
    rows: usize,
    shards: Vec<HistoryTable>,
}

impl ShardedHistory {
    /// Creates a history for `rows` rows split across `shards` shards,
    /// all at iteration 0.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn new(rows: usize, shards: usize) -> Self {
        let spec = ShardSpec::new(shards);
        Self {
            spec,
            rows,
            shards: (0..shards)
                .map(|s| HistoryTable::new(spec.rows_in_shard(rows, s)))
                .collect(),
        }
    }

    /// Rebuilds from per-row last-flushed iterations in **global** row
    /// order (checkpoint restore — the stored order is shard-count
    /// independent).
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    #[must_use]
    pub fn from_raw_global(last_iter: &[u32], shards: usize) -> Self {
        let spec = ShardSpec::new(shards);
        let rows = last_iter.len();
        let mut raw: Vec<Vec<u32>> = (0..shards)
            .map(|s| Vec::with_capacity(spec.rows_in_shard(rows, s)))
            .collect();
        // Ascending global order lands in ascending local order per shard.
        for (r, &v) in last_iter.iter().enumerate() {
            raw[spec.shard_of(r as u64)].push(v);
        }
        Self {
            spec,
            rows,
            shards: raw.into_iter().map(HistoryTable::from_raw).collect(),
        }
    }

    /// The per-row last-flushed iterations in **global** row order
    /// (checkpoint capture).
    #[must_use]
    pub fn to_raw_global(&self) -> Vec<u32> {
        (0..self.rows as u64)
            .map(|r| self.last_flushed(r))
            .collect()
    }

    /// The partition function shared with the table shards.
    #[must_use]
    pub fn spec(&self) -> ShardSpec {
        self.spec
    }

    /// Total number of tracked (global) rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of shards.
    #[must_use]
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Memory footprint in bytes (`rows × 4` — identical to the
    /// monolithic table's: sharding adds no per-row overhead).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.shards.iter().map(HistoryTable::bytes).sum()
    }

    /// The shards (read-only).
    #[must_use]
    pub fn shards(&self) -> &[HistoryTable] {
        &self.shards
    }

    /// The shards, mutably — the shard-parallel flush borrows each
    /// shard's `HistoryTable` disjointly from here.
    pub fn shards_mut(&mut self) -> &mut [HistoryTable] {
        &mut self.shards
    }

    /// `(shard, local_row)` of a global row — routed through
    /// [`ShardSpec::locate`], the single shared partition function, so
    /// the history's row→shard mapping can never drift from the table
    /// shards' (or the storage engine's).
    fn locate(&self, row: u64) -> (usize, usize) {
        let (s, l) = self.spec.locate(row);
        (s, usize::try_from(l).expect("local row fits usize"))
    }

    /// Global-row [`HistoryTable::take_delays`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the monolithic version.
    pub fn take_delays(&mut self, row: u64, current_iter: u64) -> u64 {
        let (s, l) = self.locate(row);
        self.shards[s].take_delays(l as u64, current_iter)
    }

    /// Global-row [`HistoryTable::last_flushed`].
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn last_flushed(&self, row: u64) -> u32 {
        let (s, l) = self.locate(row);
        self.shards[s].last_flushed(l as u64)
    }

    /// Global rows with pending noise at `current_iter`, ascending
    /// (test/debug helper).
    #[must_use]
    pub fn pending_rows(&self, current_iter: u64) -> Vec<u64> {
        let mut rows: Vec<u64> = (0..self.shards.len())
            .flat_map(|s| {
                self.shards[s]
                    .pending_rows(current_iter)
                    .into_iter()
                    .map(move |l| self.spec.global_row(s, l))
            })
            .collect();
        rows.sort_unstable();
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_count_iterations_since_last_flush() {
        let mut h = HistoryTable::new(4);
        // Never flushed: pending = current iteration (noise 1..=iter).
        assert_eq!(h.take_delays(2, 5), 5);
        // Immediately after, nothing pending.
        assert_eq!(h.take_delays(2, 5), 0);
        // Three more iterations pass.
        assert_eq!(h.take_delays(2, 8), 3);
        assert_eq!(h.last_flushed(2), 8);
    }

    #[test]
    fn rows_are_independent() {
        let mut h = HistoryTable::new(3);
        assert_eq!(h.take_delays(0, 4), 4);
        assert_eq!(h.take_delays(1, 4), 4);
        assert_eq!(h.take_delays(0, 6), 2);
        assert_eq!(h.take_delays(2, 6), 6);
    }

    #[test]
    fn pending_rows_scan() {
        let mut h = HistoryTable::new(4);
        let _ = h.take_delays(1, 3);
        let _ = h.take_delays(3, 3);
        assert_eq!(h.pending_rows(3), vec![0, 2]);
        assert!(h.pending_rows(0).is_empty());
    }

    #[test]
    fn bytes_matches_paper_formula() {
        // §7.2: HistoryTable = total rows × 4 bytes.
        let h = HistoryTable::new(1000);
        assert_eq!(h.bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "history ahead")]
    fn time_cannot_run_backwards() {
        let mut h = HistoryTable::new(2);
        let _ = h.take_delays(0, 5);
        let _ = h.take_delays(0, 4);
    }

    #[test]
    fn sharded_history_matches_monolithic_for_any_shard_count() {
        let rows = 23usize;
        let accesses: [(u64, u64); 6] = [(0, 3), (7, 3), (22, 5), (0, 9), (13, 9), (7, 12)];
        let mut mono = HistoryTable::new(rows);
        let mono_delays: Vec<u64> = accesses
            .iter()
            .map(|&(r, it)| mono.take_delays(r, it))
            .collect();
        for shards in [1usize, 2, 4, 8] {
            let mut sh = ShardedHistory::new(rows, shards);
            assert_eq!(sh.rows(), rows);
            assert_eq!(sh.num_shards(), shards);
            assert_eq!(sh.bytes(), mono.bytes());
            let delays: Vec<u64> = accesses
                .iter()
                .map(|&(r, it)| sh.take_delays(r, it))
                .collect();
            assert_eq!(delays, mono_delays, "{shards} shards");
            for r in 0..rows as u64 {
                assert_eq!(sh.last_flushed(r), mono.last_flushed(r));
            }
            assert_eq!(sh.pending_rows(12), mono.pending_rows(12));
        }
    }

    #[test]
    fn sharded_raw_roundtrip_is_shard_count_independent() {
        let raw: Vec<u32> = (0..17u32).map(|r| r.wrapping_mul(7) % 13).collect();
        for shards in [1usize, 3, 4, 8] {
            let sh = ShardedHistory::from_raw_global(&raw, shards);
            assert_eq!(sh.to_raw_global(), raw, "{shards} shards");
            // Re-partitioning through the global view changes nothing.
            let re = ShardedHistory::from_raw_global(&sh.to_raw_global(), 2);
            assert_eq!(re.to_raw_global(), raw);
        }
    }

    #[test]
    fn sharded_handles_more_shards_than_rows() {
        // Tiny tables may have empty shards; everything still works.
        let mut sh = ShardedHistory::new(3, 8);
        assert_eq!(sh.take_delays(2, 4), 4);
        assert_eq!(sh.pending_rows(4), vec![0, 1]);
    }
}
