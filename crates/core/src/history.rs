//! The `HistoryTable` of Algorithm 1 (lines 1–2, 13–16).
//!
//! Instead of counting pending noise updates per row (which would need a
//! write per row per iteration — re-densifying the very traffic LazyDP
//! removes), the paper stores the **last iteration whose noise has been
//! applied**: the pending count is then `current_iter − H[row]`, and
//! `H` is only written for the sparsely-accessed rows (§5.2.1).

/// Per-row record of the last noise-updated iteration for one embedding
/// table. Entries are `u32` (4 bytes/row — the §7.2 "751 MB for the 96 GB
/// model" figure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistoryTable {
    last_iter: Vec<u32>,
}

impl HistoryTable {
    /// Creates a history for a table with `rows` rows, all at iteration
    /// 0 (i.e. "no noise applied yet": Algorithm 1 initializes to zeros).
    #[must_use]
    pub fn new(rows: usize) -> Self {
        Self {
            last_iter: vec![0; rows],
        }
    }

    /// Rebuilds a history from raw per-row last-flushed iterations
    /// (checkpoint restore).
    #[must_use]
    pub fn from_raw(last_iter: Vec<u32>) -> Self {
        Self { last_iter }
    }

    /// Number of tracked rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.last_iter.len()
    }

    /// Memory footprint in bytes (`rows × 4`).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        (self.last_iter.len() * std::mem::size_of::<u32>()) as u64
    }

    /// The number of pending (delayed) noise updates for `row` at
    /// `current_iter`, *and* marks the row as flushed through
    /// `current_iter` (Algorithm 1 lines 14–15 fused).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range, `current_iter` exceeds `u32`
    /// range, or time runs backwards for this row.
    pub fn take_delays(&mut self, row: u64, current_iter: u64) -> u64 {
        let h = &mut self.last_iter[usize::try_from(row).expect("row fits usize")];
        let cur = u32::try_from(current_iter).expect("iteration fits u32");
        assert!(
            *h <= cur,
            "history ahead of current iteration ({h} > {cur}) for row {row}"
        );
        let delays = u64::from(cur - *h);
        *h = cur;
        delays
    }

    /// Read-only view of a row's last flushed iteration.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    #[must_use]
    pub fn last_flushed(&self, row: u64) -> u32 {
        self.last_iter[usize::try_from(row).expect("row fits usize")]
    }

    /// Rows whose noise is still pending at `current_iter` (test/debug
    /// helper; the optimizer never scans the table during training).
    #[must_use]
    pub fn pending_rows(&self, current_iter: u64) -> Vec<u64> {
        let cur = u32::try_from(current_iter).expect("iteration fits u32");
        self.last_iter
            .iter()
            .enumerate()
            .filter(|(_, &h)| h < cur)
            .map(|(r, _)| r as u64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_count_iterations_since_last_flush() {
        let mut h = HistoryTable::new(4);
        // Never flushed: pending = current iteration (noise 1..=iter).
        assert_eq!(h.take_delays(2, 5), 5);
        // Immediately after, nothing pending.
        assert_eq!(h.take_delays(2, 5), 0);
        // Three more iterations pass.
        assert_eq!(h.take_delays(2, 8), 3);
        assert_eq!(h.last_flushed(2), 8);
    }

    #[test]
    fn rows_are_independent() {
        let mut h = HistoryTable::new(3);
        assert_eq!(h.take_delays(0, 4), 4);
        assert_eq!(h.take_delays(1, 4), 4);
        assert_eq!(h.take_delays(0, 6), 2);
        assert_eq!(h.take_delays(2, 6), 6);
    }

    #[test]
    fn pending_rows_scan() {
        let mut h = HistoryTable::new(4);
        let _ = h.take_delays(1, 3);
        let _ = h.take_delays(3, 3);
        assert_eq!(h.pending_rows(3), vec![0, 2]);
        assert!(h.pending_rows(0).is_empty());
    }

    #[test]
    fn bytes_matches_paper_formula() {
        // §7.2: HistoryTable = total rows × 4 bytes.
        let h = HistoryTable::new(1000);
        assert_eq!(h.bytes(), 4000);
    }

    #[test]
    #[should_panic(expected = "history ahead")]
    fn time_cannot_run_backwards() {
        let mut h = HistoryTable::new(2);
        let _ = h.take_delays(0, 5);
        let _ = h.take_delays(0, 4);
    }
}
