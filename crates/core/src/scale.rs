//! LazyDP at the paper's **true logical scale**, functionally.
//!
//! Eager DP-SGD must materialize and stream the whole embedding table —
//! at the paper's default scale that is 96 GB and 24 billion Gaussian
//! draws *per iteration*, which is why the paper needs a 256 GB server
//! (and why this reproduction prices it with a performance model).
//! LazyDP, however, only ever touches `O(batch)` rows per iteration —
//! so with a lazily-materialized [`VirtualTable`] the *functional*
//! LazyDP embedding-update loop runs at the full 187 M-row scale on a
//! laptop, drawing real Box–Muller noise and producing a row-exact
//! model for every row it ever touches.
//!
//! [`TerabyteLazyEmbedding`] packages that loop: the real
//! [`HistoryTable`] (751 MB at paper scale, exactly §7.2's number), real
//! ANS draws, real sparse updates. Untouched rows remain pure functions
//! of the seed; their pending noise is deterministic bookkeeping that
//! [`flush_row`](TerabyteLazyEmbedding::flush_row) can settle for any
//! row on demand (a full-table flush is exactly the dense sweep LazyDP
//! exists to avoid, so it is intentionally not offered at this scale).

use crate::ans::aggregated_std;
use crate::history::HistoryTable;
use lazydp_dpsgd::{DpConfig, KernelCounters};
use lazydp_embedding::sparse::dedup_indices;
use lazydp_embedding::{SparseGrad, VirtualTable};
use lazydp_rng::RowNoise;

/// One embedding table trained with LazyDP's lazy noise update at
/// arbitrary logical scale.
#[derive(Debug, Clone)]
pub struct TerabyteLazyEmbedding<N> {
    table: VirtualTable,
    history: HistoryTable,
    cfg: DpConfig,
    ans: bool,
    noise: N,
    table_id: u32,
    iter: u64,
    counters: KernelCounters,
}

impl<N: RowNoise> TerabyteLazyEmbedding<N> {
    /// Creates the trainer. Allocates the HistoryTable eagerly
    /// (`4 B × logical_rows` — 751 MB for the paper's 187.7 M rows,
    /// §7.2), which is the *only* O(table) allocation LazyDP needs.
    ///
    /// # Panics
    ///
    /// Panics if `logical_rows` exceeds `usize` (32-bit hosts).
    #[must_use]
    pub fn new(table: VirtualTable, cfg: DpConfig, ans: bool, noise: N, table_id: u32) -> Self {
        let rows = usize::try_from(table.logical_rows()).expect("rows fit usize");
        Self {
            history: HistoryTable::new(rows),
            table,
            cfg,
            ans,
            noise,
            table_id,
            iter: 0,
            counters: KernelCounters::new(),
        }
    }

    /// The underlying virtual table.
    #[must_use]
    pub fn table(&self) -> &VirtualTable {
        &self.table
    }

    /// Work counters.
    #[must_use]
    pub fn counters(&self) -> KernelCounters {
        self.counters
    }

    /// Current iteration.
    #[must_use]
    pub fn iteration(&self) -> u64 {
        self.iter
    }

    /// HistoryTable bytes (the §7.2 overhead, for real this time).
    #[must_use]
    pub fn history_bytes(&self) -> u64 {
        self.history.bytes()
    }

    /// One LazyDP training iteration on this table: applies the
    /// (already clipped & scaled) sparse gradient of the current batch
    /// and the pending noise of the next batch's rows (Algorithm 1
    /// lines 11–25).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch or out-of-range rows.
    pub fn step(&mut self, grad: &SparseGrad, next_indices: &[u64]) {
        self.iter += 1;
        let dim = self.table.dim();
        assert_eq!(grad.dim(), dim, "grad dim mismatch");
        let lr = self.cfg.lr;
        let std = self.cfg.noise_std_per_coord();

        // Gradient rows (current batch).
        self.table.sparse_update(grad, lr);
        self.counters.table_rows_read += grad.len() as u64;
        self.counters.table_rows_written += grad.len() as u64;

        // Lazy noise for next batch's rows.
        let (targets, dups) = dedup_indices(next_indices);
        self.counters.duplicates_removed += dups as u64;
        let mut buf = vec![0.0f32; dim];
        for idx in targets {
            self.counters.history_reads += 1;
            self.counters.history_writes += 1;
            let delays = self.history.take_delays(idx, self.iter);
            if delays == 0 {
                continue;
            }
            let row = self.table.row_mut(idx);
            if self.ans {
                self.noise
                    .fill_unit(self.table_id, idx, self.iter, &mut buf);
                self.counters.gaussian_samples += dim as u64;
                let agg = aggregated_std(std, delays);
                for (w, &n) in row.iter_mut().zip(buf.iter()) {
                    *w -= lr * agg * n;
                }
            } else {
                for k in (self.iter - delays + 1)..=self.iter {
                    self.noise.fill_unit(self.table_id, idx, k, &mut buf);
                    self.counters.gaussian_samples += dim as u64;
                    for (w, &n) in row.iter_mut().zip(buf.iter()) {
                        *w -= lr * std * n;
                    }
                }
            }
            self.counters.table_rows_read += 1;
            self.counters.table_rows_written += 1;
        }
        self.counters.steps += 1;
    }

    /// Settles the pending noise of a single row (e.g. before serving a
    /// prediction from it, or when releasing a row-slice of the model).
    /// Returns the row's post-flush value.
    pub fn flush_row(&mut self, idx: u64) -> Vec<f32> {
        let dim = self.table.dim();
        let lr = self.cfg.lr;
        let std = self.cfg.noise_std_per_coord();
        let delays = self.history.take_delays(idx, self.iter);
        if delays > 0 {
            let mut buf = vec![0.0f32; dim];
            let row = self.table.row_mut(idx);
            if self.ans {
                self.noise
                    .fill_unit(self.table_id, idx, self.iter, &mut buf);
                self.counters.gaussian_samples += dim as u64;
                let agg = aggregated_std(std, delays);
                for (w, &n) in row.iter_mut().zip(buf.iter()) {
                    *w -= lr * agg * n;
                }
            } else {
                for k in (self.iter - delays + 1)..=self.iter {
                    self.noise.fill_unit(self.table_id, idx, k, &mut buf);
                    self.counters.gaussian_samples += dim as u64;
                    for (w, &n) in row.iter_mut().zip(buf.iter()) {
                        *w -= lr * std * n;
                    }
                }
            }
            self.counters.table_rows_written += 1;
        }
        self.table.read_row(idx)
    }

    /// Gaussian draws an *eager* DP-SGD would have performed so far on
    /// this table: `iterations × logical_rows × dim` — for the
    /// terabyte-scale demo's comparison printout.
    #[must_use]
    pub fn eager_equivalent_samples(&self) -> u128 {
        u128::from(self.iter) * u128::from(self.table.logical_rows()) * self.table.dim() as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{LazyDpConfig, LazyDpOptimizer};
    use lazydp_data::{SyntheticConfig, SyntheticDataset};
    use lazydp_dpsgd::Optimizer;
    use lazydp_model::{Dlrm, DlrmConfig};
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::{Prng, Xoshiro256PlusPlus};

    fn grad_for(dim: usize, rows: &[u64], value: f32) -> SparseGrad {
        let mut g = SparseGrad::new(dim);
        for &r in rows {
            let e = g.push_zeros(r);
            e.fill(value);
        }
        let _ = g.coalesce();
        g
    }

    #[test]
    fn physical_memory_tracks_touched_rows_only() {
        let table = VirtualTable::new(50_000_000, 16, 3); // 3.2 GB logical
        let mut t = TerabyteLazyEmbedding::new(
            table,
            DpConfig::paper_default(4),
            true,
            CounterNoise::new(1),
            0,
        );
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        for _ in 0..10 {
            let cur: Vec<u64> = (0..8).map(|_| rng.next_below(50_000_000)).collect();
            let next: Vec<u64> = (0..8).map(|_| rng.next_below(50_000_000)).collect();
            t.step(&grad_for(16, &cur, 0.01), &next);
        }
        assert!(
            t.table().materialized_rows() <= 160,
            "≤ 16 rows/iter touched"
        );
        assert!(t.table().physical_bytes() < 20_000);
        assert_eq!(t.history_bytes(), 200_000_000, "4 B × 50 M rows");
    }

    #[test]
    fn matches_full_lazydp_optimizer_on_small_scale() {
        // The scale loop must be the same algorithm as LazyDpOptimizer's
        // embedding path: run both on one table with identical grads and
        // noise, compare every touched row.
        let rows = 64u64;
        let dim = 8usize;
        let dp = DpConfig::new(1.0, 1.0, 0.1, 4);
        // Full optimizer on a zero-init dense model (zero grads so only
        // noise moves the table — grads require the full model; here we
        // isolate the noise path).
        let mut rng = Xoshiro256PlusPlus::seed_from(1);
        let mut model = Dlrm::new(DlrmConfig::tiny(1, rows, dim), &mut rng);
        // Zero the table so both sides start identically.
        model.tables[0].as_mut_slice().fill(0.0);
        let mut opt =
            LazyDpOptimizer::new(LazyDpConfig::new(dp, true), &model, CounterNoise::new(9));
        // Virtual-scale loop with a zero-init virtual table.
        let vt = {
            let mut v = VirtualTable::new(rows, dim, 2);
            for r in 0..rows {
                v.row_mut(r).fill(0.0);
            }
            v
        };
        let mut scale = TerabyteLazyEmbedding::new(vt, dp, true, CounterNoise::new(9), 0);

        let ds = SyntheticDataset::new(SyntheticConfig::small(1, rows, 64));
        let access: Vec<Vec<u64>> = (0..6)
            .map(|i| {
                vec![
                    (i * 7 % rows as usize) as u64,
                    (i * 13 % rows as usize) as u64,
                ]
            })
            .collect();
        for i in 0..5 {
            let mut batch = ds.batch_of(&[0, 1]);
            batch.sparse[0] = lazydp_embedding::bag::BagIndices::from_samples(&[
                vec![access[i][0]],
                vec![access[i][1]],
            ]);
            let mut next = ds.batch_of(&[0, 1]);
            next.sparse[0] = lazydp_embedding::bag::BagIndices::from_samples(&[
                vec![access[i + 1][0]],
                vec![access[i + 1][1]],
            ]);
            // Empty grads on both sides: the optimizer sees an empty
            // batch (noise only), the scale loop an empty SparseGrad.
            opt.step(&mut model, &lazydp_data::MiniBatch::default(), Some(&next));
            scale.step(&SparseGrad::new(dim), next.table_indices(0));
        }
        for r in 0..rows {
            let a = model.tables[0].row(r as usize);
            let b = scale.table().read_row(r);
            for (x, y) in a.iter().zip(b.iter()) {
                assert!((x - y).abs() < 1e-6, "row {r}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn flush_row_settles_pending_noise_once() {
        let table = VirtualTable::new(1000, 4, 1);
        let mut t = TerabyteLazyEmbedding::new(
            table,
            DpConfig::new(1.0, 1.0, 0.1, 1),
            true,
            CounterNoise::new(2),
            0,
        );
        for _ in 0..5 {
            t.step(&SparseGrad::new(4), &[]);
        }
        let init = t.table().init_row(42);
        let flushed = t.flush_row(42);
        assert_ne!(flushed, init, "5 iterations of pending noise applied");
        let again = t.flush_row(42);
        assert_eq!(again, flushed, "second flush is a no-op");
    }

    #[test]
    fn eager_equivalent_sample_count() {
        let table = VirtualTable::new(1_000_000, 128, 1);
        let mut t = TerabyteLazyEmbedding::new(
            table,
            DpConfig::paper_default(8),
            true,
            CounterNoise::new(2),
            0,
        );
        t.step(&SparseGrad::new(128), &[1, 2, 3]);
        t.step(&SparseGrad::new(128), &[4]);
        assert_eq!(t.eager_equivalent_samples(), 2u128 * 1_000_000 * 128);
        // Our actual draws: 3 rows (first step had all-new rows) + 1.
        assert_eq!(t.counters().gaussian_samples, 4 * 128);
    }
}
