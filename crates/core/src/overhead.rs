//! LazyDP's metadata overheads (paper §7.2).
//!
//! LazyDP adds two data structures on top of DP-SGD: the prefetched
//! mini-batch in the `InputQueue` and the per-row `HistoryTable`. §7.2
//! quantifies both for the default 96 GB model: **213 KB** and **751 MB**
//! (< 1% of the model). These calculators reproduce those numbers from a
//! model configuration and power the `e12` experiment in `lazydp-bench`.

use lazydp_model::DlrmConfig;

/// Extra bytes held by the `InputQueue`'s one prefetched mini-batch:
/// `batch × tables × pooling × 4` (§7.2: "mini-batch size × number of
/// embedding tables × average lookups per embedding table × 4 Bytes").
#[must_use]
pub fn input_queue_bytes(cfg: &DlrmConfig, batch: usize) -> u64 {
    batch as u64 * cfg.num_tables() as u64 * cfg.pooling as u64 * 4
}

/// Bytes of all `HistoryTable`s: `total rows × 4` (§7.2).
#[must_use]
pub fn history_table_bytes(cfg: &DlrmConfig) -> u64 {
    cfg.total_rows() * 4
}

/// Summary of LazyDP's memory overheads relative to the model size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// `InputQueue` prefetch bytes.
    pub input_queue_bytes: u64,
    /// `HistoryTable` bytes.
    pub history_table_bytes: u64,
    /// Model (embedding + MLP) bytes for context.
    pub model_bytes: u64,
}

impl OverheadReport {
    /// Computes the report for a configuration and batch size.
    #[must_use]
    pub fn for_config(cfg: &DlrmConfig, batch: usize) -> Self {
        Self {
            input_queue_bytes: input_queue_bytes(cfg, batch),
            history_table_bytes: history_table_bytes(cfg),
            model_bytes: cfg.model_bytes(),
        }
    }

    /// Total overhead as a fraction of the model size (§7.2: < 1% for
    /// the default model).
    #[must_use]
    pub fn fraction_of_model(&self) -> f64 {
        (self.input_queue_bytes + self.history_table_bytes) as f64 / self.model_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_numbers() {
        let cfg = DlrmConfig::mlperf(1);
        let report = OverheadReport::for_config(&cfg, 2048);
        // §7.2: 213 KB InputQueue.
        assert_eq!(report.input_queue_bytes, 212_992);
        // §7.2: ≈ 751 MB HistoryTable.
        let mb = report.history_table_bytes as f64 / 1e6;
        assert!((mb - 751.0).abs() < 2.0, "history {mb} MB");
        // §7.2: less than 1% of the total model size.
        assert!(report.fraction_of_model() < 0.01);
    }

    #[test]
    fn overhead_scales_with_pooling_and_batch() {
        let cfg = DlrmConfig::mlperf(1000).with_pooling(10);
        assert_eq!(input_queue_bytes(&cfg, 1024), 1024 * 26 * 10 * 4);
        let small = DlrmConfig::mlperf(1000);
        assert!(history_table_bytes(&small) < history_table_bytes(&DlrmConfig::mlperf(1)));
    }

    #[test]
    fn rmc_overheads_stay_small() {
        // §7.3: "less than 3.1% memory capacity overhead across all
        // studied models".
        for cfg in [
            DlrmConfig::rmc1(1),
            DlrmConfig::rmc2(1),
            DlrmConfig::rmc3(1),
        ] {
            let report = OverheadReport::for_config(&cfg, 2048);
            assert!(
                report.fraction_of_model() < 0.031,
                "{:?} overhead fraction {}",
                cfg.table_rows.len(),
                report.fraction_of_model()
            );
        }
    }
}
