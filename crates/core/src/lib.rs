//! LazyDP: lazy noise update + aggregated noise sampling for scalable
//! differentially private training of recommendation models.
//!
//! This crate is the paper's primary contribution (§5). Eager DP-SGD must
//! add Gaussian noise to *every* embedding row every iteration, turning
//! SGD's sparse update into a dense table-wide traversal (§4). LazyDP
//! restores sparsity with two co-designed ideas:
//!
//! 1. **Lazy noise update** (§5.2.1, Algorithm 1): noise for a row is
//!    deferred until the iteration *just before* the row is next
//!    gathered. A [`HistoryTable`] records, per row, the last iteration
//!    whose noise has been applied; the two-entry `InputQueue` from
//!    `lazydp-data` supplies one batch of lookahead to know which rows
//!    need flushing. Because a deferred update lands before the row is
//!    read, every value the training computation *observes* — and the
//!    final model after [`LazyDpOptimizer::finalize_model`] — is identical to
//!    eager DP-SGD (Fig. 7; proven exactly by this crate's tests using
//!    counter-based noise).
//! 2. **Aggregated noise sampling** (ANS, §5.2.2, Theorem 5.1): the `n`
//!    deferred draws `N(0, σ²C²)` are replaced by a single draw
//!    `N(0, n·σ²C²)`, eliminating the compute bottleneck of Box–Muller
//!    sampling. The substitution is distributional, so the privacy
//!    guarantee is untouched (same σ, q, T — see `lazydp-privacy`).
//!
//! Scaling machinery on top of the algorithm (PRs 2–3, see
//! `ARCHITECTURE.md`): the flush is hash-partitioned into
//! `DpConfig::shards` independent [`ShardedHistory`] shards that run
//! shard-parallel and *overlapped* with the step's dense compute, and
//! the input pipeline can be made asynchronous
//! ([`PrivateTrainer::make_private_prefetch`]). Both are bitwise
//! invisible in the trained model.
//!
//! The user-facing entry point mirrors the paper's Fig. 9 wrapper:
//!
//! ```
//! use lazydp_core::{LazyDpConfig, PrivateTrainer};
//! use lazydp_data::{FixedBatchLoader, SyntheticConfig, SyntheticDataset};
//! use lazydp_model::{Dlrm, DlrmConfig};
//! use lazydp_rng::counter::CounterNoise;
//! use lazydp_rng::Xoshiro256PlusPlus;
//!
//! let mut rng = Xoshiro256PlusPlus::seed_from(1);
//! let model = Dlrm::new(DlrmConfig::tiny(2, 64, 8), &mut rng);
//! let ds = SyntheticDataset::new(SyntheticConfig::small(2, 64, 256));
//! let loader = FixedBatchLoader::new(ds, 32);
//! let cfg = LazyDpConfig::paper_default(32).with_shards(2);
//! let mut trainer = PrivateTrainer::make_private(
//!     model, cfg, loader, CounterNoise::new(7), 32.0 / 256.0);
//! trainer.train_steps(4);
//! let (eps, _order) = trainer.epsilon(1e-6);
//! assert!(eps > 0.0);
//! let _final_model = trainer.finish(); // flushes all pending noise
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounted;
pub mod ans;
pub mod checkpoint;
pub mod history;
pub mod optimizer;
pub mod overhead;
pub mod plan;
pub mod recovery;
pub mod scale;
pub mod wrapper;

pub use accounted::AccountedOptimizer;
pub use ans::aggregated_std;
pub use checkpoint::Checkpoint;
pub use history::{HistoryTable, ShardedHistory};
pub use optimizer::{LazyDpConfig, LazyDpOptimizer};
pub use overhead::{history_table_bytes, input_queue_bytes, OverheadReport};
pub use plan::{flush_next_rows_sharded, NoisePlan, NoisePlanEntry, ShardedFlush};
pub use recovery::{open_and_sweep, CheckpointError, CheckpointStore};
pub use scale::TerabyteLazyEmbedding;
pub use wrapper::PrivateTrainer;
