//! Two-phase noise plans: the data-parallel restructuring of LazyDP's
//! pending-noise flush.
//!
//! Algorithm 1's per-row flush interleaves two very different kinds of
//! work: *bookkeeping* (reading and resetting [`HistoryTable`] delays —
//! serial, branchy, cheap) and *noise generation* (Box–Muller sampling
//! and accumulation — the §4.3 compute bottleneck, embarrassingly
//! parallel). A [`NoisePlan`] splits them:
//!
//! 1. **Plan (serial):** the deduped touched-row set is walked once;
//!    each row's pending delay count is taken from the history and the
//!    row is assigned a slot in the sparse update. The history is only
//!    ever touched here, so it needs no synchronization.
//! 2. **Sample (parallel):** the planned rows' noise is accumulated on
//!    the [`lazydp_exec::Executor`] in fixed-size entry chunks. Noise
//!    is addressed by `(table, row, iter)` — never by chunk or thread —
//!    so the result is bitwise identical for any thread count
//!    (DESIGN.md invariant #4).
//!
//! Both the per-step flush ([`NoisePlan::for_next_rows`]) and the
//! release-time flush ([`NoisePlan::for_all_rows`] in
//! `LazyDpOptimizer::finalize_model`) run on this machinery.

use crate::ans::aggregated_std;
use crate::history::{HistoryTable, ShardedHistory};
use lazydp_dpsgd::KernelCounters;
use lazydp_embedding::{ShardSpec, SparseGrad};
use lazydp_exec::Executor;
use lazydp_rng::RowNoise;

/// Plan entries per executor chunk in the sampling phase. Fixed (never
/// derived from the thread count) so chunk addressing is thread-count
/// independent.
const ENTRIES_PER_CHUNK: usize = 32;

/// One row awaiting its pending noise.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NoisePlanEntry {
    /// The embedding row.
    pub row: u64,
    /// How many deferred noise updates it owes (≥ 1).
    pub delays: u64,
    /// The entry index in the sparse update this noise lands in (for
    /// [`NoisePlan::for_all_rows`] plans: the plan position itself).
    pub slot: usize,
}

/// The rows of one embedding table whose pending noise must land now,
/// with their delay counts already taken from the [`HistoryTable`].
#[derive(Debug, Clone)]
pub struct NoisePlan {
    table_id: u32,
    iter: u64,
    entries: Vec<NoisePlanEntry>,
}

impl NoisePlan {
    /// Phase 1 for a training step (Algorithm 1 lines 13–21): takes the
    /// delays of every row in `targets` (the deduped rows the *next*
    /// iteration gathers) and assigns each pending row a slot in
    /// `update`, appending zero entries for rows the gradient did not
    /// touch.
    ///
    /// `update` must be coalesced (sorted, duplicate-free) on entry and
    /// `targets` must be sorted and duplicate-free
    /// ([`dedup_indices`](lazydp_embedding::sparse::dedup_indices)
    /// output).
    #[must_use]
    pub fn for_next_rows(
        table_id: u32,
        iter: u64,
        targets: &[u64],
        history: &mut HistoryTable,
        update: &mut SparseGrad,
        counters: &mut KernelCounters,
    ) -> Self {
        let mut entries = Vec::new();
        Self::plan_next_rows(targets, iter, history, update, counters, &mut entries);
        Self {
            table_id,
            iter,
            entries,
        }
    }

    /// The phase-1 walk of [`for_next_rows`](Self::for_next_rows) into a
    /// caller-owned entry buffer (cleared and refilled), so the per-step
    /// flush plans without allocating. Pair with
    /// [`sample_entries_into`](Self::sample_entries_into).
    pub fn plan_next_rows(
        targets: &[u64],
        iter: u64,
        history: &mut HistoryTable,
        update: &mut SparseGrad,
        counters: &mut KernelCounters,
        entries: &mut Vec<NoisePlanEntry>,
    ) {
        // The coalesced prefix stays binary-searchable; rows appended
        // below are new (targets are deduped), so they never need to be
        // found again within this plan.
        let sorted_len = update.len();
        entries.clear();
        for &row in targets {
            counters.history_reads += 1;
            counters.history_writes += 1;
            let delays = history.take_delays(row, iter);
            if delays == 0 {
                continue;
            }
            let slot = match update.indices()[..sorted_len].binary_search(&row) {
                Ok(i) => i,
                Err(_) => {
                    let i = update.len();
                    let _ = update.push_zeros(row);
                    i
                }
            };
            entries.push(NoisePlanEntry { row, delays, slot });
            lazydp_obs::metrics().trainer.noise_plan_rows.incr();
            lazydp_obs::metrics().trainer.pending_depth.record(delays);
        }
    }

    /// Phase 1 for the release-time flush (threat model §3): scans all
    /// `rows` of the table, planning every row with pending noise. Slots
    /// are the plan positions themselves (the caller applies noise
    /// straight to table rows, not to a sparse update).
    #[must_use]
    pub fn for_all_rows(
        table_id: u32,
        iter: u64,
        rows: usize,
        history: &mut HistoryTable,
        counters: &mut KernelCounters,
    ) -> Self {
        debug_assert_eq!(rows, history.rows(), "history covers the table");
        Self::for_all_rows_of_shard(table_id, iter, ShardSpec::new(1), 0, history, counters)
    }

    /// [`for_all_rows`](Self::for_all_rows) over one shard of a
    /// hash-partitioned history: scans the shard's local rows and plans
    /// entries under their **global** row ids, so the sampled noise is
    /// addressed identically to the 1-shard path. With
    /// `ShardSpec::new(1)` this *is* `for_all_rows`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range for `spec`.
    #[must_use]
    pub fn for_all_rows_of_shard(
        table_id: u32,
        iter: u64,
        spec: ShardSpec,
        shard: usize,
        history: &mut HistoryTable,
        counters: &mut KernelCounters,
    ) -> Self {
        let mut entries = Vec::new();
        for local in 0..history.rows() as u64 {
            counters.history_reads += 1;
            let delays = history.take_delays(local, iter);
            if delays == 0 {
                continue;
            }
            counters.history_writes += 1;
            entries.push(NoisePlanEntry {
                row: spec.global_row(shard, local),
                delays,
                slot: entries.len(),
            });
        }
        Self {
            table_id,
            iter,
            entries,
        }
    }

    /// The planned rows.
    #[must_use]
    pub fn entries(&self) -> &[NoisePlanEntry] {
        &self.entries
    }

    /// Number of planned rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no row owes noise.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Phase 2: samples every planned row's pending noise data-parallel
    /// on `exec`, returning a `len() × dim` row-major buffer in plan
    /// order (gradient units — callers scale by −η when applying).
    ///
    /// Per entry this reproduces Algorithm 1 exactly: with ANS one draw
    /// `~ N(0, delays·σ²C²/B²)` (line 38); without, the `delays`
    /// separate draws addressed by the iteration whose noise they are —
    /// the exact values eager DP-SGD would have drawn (lines 32–35).
    ///
    /// The parallel path clones the source per chunk, which is only
    /// sound for [`addressable`](RowNoise::addressable) sources;
    /// stateful (non-addressable) ones are sampled sequentially through
    /// the live `&mut` reference instead, so their stream advances
    /// exactly as the pre-plan serial flush did.
    pub fn sample_noise<N>(
        &self,
        dim: usize,
        per_step_std: f32,
        ans: bool,
        noise: &mut N,
        exec: &Executor,
        counters: &mut KernelCounters,
    ) -> Vec<f32>
    where
        N: RowNoise + Clone + Send + Sync,
    {
        Self::sample_entries(
            self.table_id,
            self.iter,
            &self.entries,
            dim,
            per_step_std,
            ans,
            noise,
            exec,
            counters,
        )
    }

    /// [`sample_noise`](Self::sample_noise) over an explicit entry
    /// slice — lets `finalize_model` flush a huge table in bounded
    /// segments without materializing table-sized noise buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_entries<N>(
        table_id: u32,
        iter: u64,
        entries: &[NoisePlanEntry],
        dim: usize,
        per_step_std: f32,
        ans: bool,
        noise: &mut N,
        exec: &Executor,
        counters: &mut KernelCounters,
    ) -> Vec<f32>
    where
        N: RowNoise + Clone + Send + Sync,
    {
        let mut acc = Vec::new();
        let mut buf = Vec::new();
        Self::sample_entries_into(
            table_id,
            iter,
            entries,
            dim,
            per_step_std,
            ans,
            noise,
            exec,
            counters,
            &mut acc,
            &mut buf,
        );
        acc
    }

    /// [`sample_entries`](Self::sample_entries) into caller-owned
    /// buffers: `acc` receives the `entries.len() × dim` noise block and
    /// `buf` is the `dim`-wide draw scratch. On a single-width executor
    /// (or a stateful source) the whole phase runs through these
    /// buffers with zero allocation; the multi-worker path still hands
    /// each chunk its own scratch (worker threads are scoped to the
    /// region, so per-chunk buffers cannot be pooled across steps).
    #[allow(clippy::too_many_arguments)]
    pub fn sample_entries_into<N>(
        table_id: u32,
        iter: u64,
        entries: &[NoisePlanEntry],
        dim: usize,
        per_step_std: f32,
        ans: bool,
        noise: &mut N,
        exec: &Executor,
        counters: &mut KernelCounters,
        acc: &mut Vec<f32>,
        buf: &mut Vec<f32>,
    ) where
        N: RowNoise + Clone + Send + Sync,
    {
        acc.clear();
        acc.resize(entries.len() * dim, 0.0);
        if dim > 0 && exec.is_parallel() && noise.addressable() {
            let noise = &*noise;
            exec.par_for(acc.as_mut_slice(), ENTRIES_PER_CHUNK * dim, |c, chunk| {
                // One scratch buffer and one noise handle per chunk —
                // reused across its rows (the per-row allocations the
                // serial flush paid are gone). Cloning is free and sound
                // here: an addressable source is a pure function of the
                // (table, row, iter) address.
                let mut worker_noise = noise.clone();
                let mut buf = vec![0.0f32; dim];
                let first = c * ENTRIES_PER_CHUNK;
                for (k, out) in chunk.chunks_mut(dim).enumerate() {
                    Self::accumulate_entry(
                        table_id,
                        iter,
                        &entries[first + k],
                        per_step_std,
                        ans,
                        &mut worker_noise,
                        &mut buf,
                        out,
                    );
                }
            });
        } else if dim > 0 {
            // Inline path (single worker, or a stateful source that must
            // draw sequentially in plan order through the live
            // reference): same values — an addressable source is a pure
            // function of the address, and chunking never changes the
            // per-row arithmetic.
            buf.clear();
            buf.resize(dim, 0.0);
            for (e, out) in entries.iter().zip(acc.chunks_mut(dim)) {
                Self::accumulate_entry(table_id, iter, e, per_step_std, ans, noise, buf, out);
            }
        }
        let draws: u64 = entries.iter().map(|e| if ans { 1 } else { e.delays }).sum();
        counters.gaussian_samples += draws * dim as u64;
    }

    /// Accumulates one entry's pending noise into `out` (scratch `buf`
    /// must be `dim` long).
    #[allow(clippy::too_many_arguments)]
    fn accumulate_entry<N: RowNoise>(
        table_id: u32,
        iter: u64,
        e: &NoisePlanEntry,
        per_step_std: f32,
        ans: bool,
        noise: &mut N,
        buf: &mut [f32],
        out: &mut [f32],
    ) {
        if ans {
            // One draw ~ N(0, delays·σ²C²/B²) — line 38.
            noise.fill_unit(table_id, e.row, iter, buf);
            let std = aggregated_std(per_step_std, e.delays);
            for (o, &n) in out.iter_mut().zip(buf.iter()) {
                *o += std * n;
            }
        } else {
            for k_iter in (iter - e.delays + 1)..=iter {
                noise.fill_unit(table_id, e.row, k_iter, buf);
                for (o, &n) in out.iter_mut().zip(buf.iter()) {
                    *o += per_step_std * n;
                }
            }
        }
    }
}

/// The result of a shard-parallel lookahead flush: every pending row the
/// next batch will touch (global ids, shard-major order) with its
/// sampled noise, ready to merge into the step's sparse update.
///
/// Shard-major order differs from the 1-shard path's sorted order, but
/// the *values* do not: each row's delays come from its own history
/// entry and its noise is addressed by `(table, global row, iter)`, so
/// per-row arithmetic — and therefore the updated table — is bitwise
/// identical for any shard count.
#[derive(Debug, Clone)]
pub struct ShardedFlush {
    entries: Vec<NoisePlanEntry>,
    noise: Vec<f32>,
    dim: usize,
}

impl ShardedFlush {
    /// The planned rows (global ids, shard-major order).
    #[must_use]
    pub fn entries(&self) -> &[NoisePlanEntry] {
        &self.entries
    }

    /// Number of planned rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no row owes noise.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Accumulates the flushed noise into a **coalesced** sparse update
    /// (Algorithm 1 lines 17–21): rows the gradient already touches get
    /// their noise added in place; rows it does not are appended as
    /// noise-only entries.
    ///
    /// # Panics
    ///
    /// Panics if `update`'s dimension differs from the flush's.
    pub fn merge_into(&self, update: &mut SparseGrad) {
        assert_eq!(update.dim(), self.dim, "flush/update dim mismatch");
        if self.dim == 0 || self.entries.is_empty() {
            return;
        }
        // The coalesced prefix stays binary-searchable; appended rows
        // are unique (targets were deduplicated), so they are never
        // looked up again within this merge.
        let sorted_len = update.len();
        for (e, nv) in self.entries.iter().zip(self.noise.chunks_exact(self.dim)) {
            let slot = match update.indices()[..sorted_len].binary_search(&e.row) {
                Ok(i) => i,
                Err(_) => {
                    let i = update.len();
                    let _ = update.push_zeros(e.row);
                    i
                }
            };
            for (w, &n) in update.entry_mut(slot).iter_mut().zip(nv.iter()) {
                *w += n;
            }
        }
    }
}

/// One shard's slice of a [`flush_next_rows_sharded`] call: the borrowed
/// history shard, its targets, and its outputs. Boxed into a `Vec` so
/// `Executor::par_for` can hand each worker one task mutably.
struct ShardFlushTask<'a> {
    history: &'a mut HistoryTable,
    targets: Vec<u64>,
    entries: Vec<NoisePlanEntry>,
    noise: Vec<f32>,
    counters: KernelCounters,
}

/// Runs both phases of a lookahead flush shard-parallel: each shard
/// walks its own history (phase 1) and samples its own rows' pending
/// noise (phase 2) with no shared mutable state; executor width left
/// over by the shard fan-out goes to the within-shard sampling chunks.
/// `targets` must be the sorted, deduplicated global rows the *next*
/// batch gathers.
///
/// Requires an [`addressable`](RowNoise::addressable) noise source (the
/// per-shard clones of a stateful stream would replay correlated noise);
/// callers must fall back to [`NoisePlan::for_next_rows`] +
/// [`NoisePlan::sample_noise`] otherwise.
///
/// # Panics
///
/// Panics if `noise` is not addressable.
#[allow(clippy::too_many_arguments)]
pub fn flush_next_rows_sharded<N>(
    table_id: u32,
    iter: u64,
    targets: &[u64],
    history: &mut ShardedHistory,
    dim: usize,
    per_step_std: f32,
    ans: bool,
    noise: &N,
    exec: &Executor,
    counters: &mut KernelCounters,
) -> ShardedFlush
where
    N: RowNoise + Clone + Send + Sync,
{
    assert!(
        noise.addressable(),
        "sharded flush requires an addressable noise source"
    );
    // Kill point `flush`: a crash mid-flush leaves the history's
    // last-touched iterations partially advanced. Only table 0 hosts
    // the point so one kill fires per step, not per table.
    if table_id == 0 {
        lazydp_fault::point(lazydp_fault::Site::MidFlush, iter);
    }
    let spec = history.spec();
    let shard_targets = spec.partition_indices(targets);
    // Split the executor budget between the shard fan-out and the
    // within-shard sampling: with fewer shards than threads the leftover
    // width goes to each shard's phase-2 chunks (S=1 keeps the full
    // thread-parallel sampling the monolithic path had). Chunk
    // addressing makes the result identical either way.
    let inner_exec = Executor::new((exec.threads() / spec.shards()).max(1));
    let mut tasks: Vec<ShardFlushTask> = history
        .shards_mut()
        .iter_mut()
        .zip(shard_targets)
        .map(|(h, targets)| ShardFlushTask {
            history: h,
            targets,
            entries: Vec::new(),
            noise: Vec::new(),
            counters: KernelCounters::new(),
        })
        .collect();
    exec.par_for(&mut tasks, 1, |_, chunk| {
        let task = &mut chunk[0];
        // Phase 1: this shard's history walk (serial within the shard;
        // shards are the unit of parallelism).
        for &row in &task.targets {
            task.counters.history_reads += 1;
            task.counters.history_writes += 1;
            let delays = task.history.take_delays(spec.local_row(row), iter);
            if delays == 0 {
                continue;
            }
            task.entries.push(NoisePlanEntry {
                row,
                delays,
                slot: task.entries.len(),
            });
        }
        // Phase 2: sample this shard's rows. Cloning is sound because
        // the source is addressable (asserted above).
        let mut worker_noise = noise.clone();
        task.noise = NoisePlan::sample_entries(
            table_id,
            iter,
            &task.entries,
            dim,
            per_step_std,
            ans,
            &mut worker_noise,
            &inner_exec,
            &mut task.counters,
        );
    });
    let mut entries = Vec::new();
    let mut noise_buf = Vec::new();
    for task in tasks {
        counters.merge(&task.counters);
        entries.extend(task.entries);
        noise_buf.extend(task.noise);
    }
    for (i, e) in entries.iter_mut().enumerate() {
        e.slot = i;
        lazydp_obs::metrics().trainer.pending_depth.record(e.delays);
    }
    lazydp_obs::metrics()
        .trainer
        .noise_plan_rows
        .add(entries.len() as u64);
    ShardedFlush {
        entries,
        noise: noise_buf,
        dim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::counter::CounterNoise;

    fn history_at(rows: usize, flushed: &[(u64, u64)]) -> HistoryTable {
        let mut h = HistoryTable::new(rows);
        for &(row, iter) in flushed {
            let _ = h.take_delays(row, iter);
        }
        h
    }

    #[test]
    fn for_next_rows_plans_only_pending_targets_and_slots_them() {
        let mut h = history_at(8, &[(2, 5)]); // row 2 already flushed at 5
        let mut update = SparseGrad::from_entries(2, vec![(1, vec![1.0, 1.0])]);
        let _ = update.coalesce();
        let mut c = KernelCounters::new();
        let plan = NoisePlan::for_next_rows(0, 5, &[1, 2, 4], &mut h, &mut update, &mut c);
        // Row 2 owes nothing at iter 5; rows 1 and 4 owe 5 each.
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.entries()[0],
            NoisePlanEntry {
                row: 1,
                delays: 5,
                slot: 0
            }
        );
        // Row 4 was absent from the gradient: appended as a zero entry.
        assert_eq!(
            plan.entries()[1],
            NoisePlanEntry {
                row: 4,
                delays: 5,
                slot: 1
            }
        );
        assert_eq!(update.indices(), &[1, 4]);
        assert_eq!(c.history_reads, 3);
        assert_eq!(c.history_writes, 3);
    }

    #[test]
    fn for_all_rows_plans_every_pending_row() {
        let mut h = history_at(4, &[(1, 3), (3, 7)]);
        let mut c = KernelCounters::new();
        let plan = NoisePlan::for_all_rows(0, 7, 4, &mut h, &mut c);
        let rows: Vec<u64> = plan.entries().iter().map(|e| e.row).collect();
        let delays: Vec<u64> = plan.entries().iter().map(|e| e.delays).collect();
        assert_eq!(rows, vec![0, 1, 2]); // row 3 is current
        assert_eq!(delays, vec![7, 4, 7]);
        assert_eq!(c.history_reads, 4);
        assert_eq!(c.history_writes, 3);
        // Idempotent: a second scan owes nothing.
        let again = NoisePlan::for_all_rows(0, 7, 4, &mut h, &mut c);
        assert!(again.is_empty());
    }

    #[test]
    fn sample_noise_is_thread_count_independent() {
        let entries: Vec<NoisePlanEntry> = (0..100)
            .map(|k| NoisePlanEntry {
                row: k as u64 * 3,
                delays: 1 + (k as u64 % 7),
                slot: k,
            })
            .collect();
        let mut noise = CounterNoise::new(11);
        for ans in [true, false] {
            let mut c = KernelCounters::new();
            let base = NoisePlan::sample_entries(
                2,
                9,
                &entries,
                8,
                0.25,
                ans,
                &mut noise,
                &Executor::new(1),
                &mut c,
            );
            for threads in [2usize, 3, 8] {
                let mut c2 = KernelCounters::new();
                let got = NoisePlan::sample_entries(
                    2,
                    9,
                    &entries,
                    8,
                    0.25,
                    ans,
                    &mut noise,
                    &Executor::new(threads),
                    &mut c2,
                );
                assert_eq!(base, got, "ans={ans}, threads={threads}");
                assert_eq!(c.gaussian_samples, c2.gaussian_samples);
            }
        }
    }

    #[test]
    fn stateful_sources_sample_sequentially_with_advancing_state() {
        // A non-addressable source must not be cloned per chunk (that
        // would repeat the same stream): entries get distinct draws and
        // the caller's stream state advances across calls.
        use lazydp_rng::{SequentialNoise, Xoshiro256PlusPlus};
        let entries: Vec<NoisePlanEntry> = (0..80)
            .map(|k| NoisePlanEntry {
                row: k as u64,
                delays: 1,
                slot: k,
            })
            .collect();
        let mut noise = SequentialNoise::new(Xoshiro256PlusPlus::seed_from(2));
        let mut c = KernelCounters::new();
        let exec = Executor::new(4);
        let first =
            NoisePlan::sample_entries(0, 1, &entries, 4, 1.0, true, &mut noise, &exec, &mut c);
        for pair in first.chunks(4).take(8).collect::<Vec<_>>().windows(2) {
            assert_ne!(pair[0], pair[1], "rows must not share draws");
        }
        let second =
            NoisePlan::sample_entries(0, 2, &entries, 4, 1.0, true, &mut noise, &exec, &mut c);
        assert_ne!(first, second, "stream state must advance across calls");
    }

    #[test]
    fn sample_counts_draws_per_algorithm_variant() {
        let entries = [
            NoisePlanEntry {
                row: 0,
                delays: 4,
                slot: 0,
            },
            NoisePlanEntry {
                row: 7,
                delays: 2,
                slot: 1,
            },
        ];
        let mut noise = CounterNoise::new(1);
        let exec = Executor::sequential();
        let mut c = KernelCounters::new();
        let _ = NoisePlan::sample_entries(0, 5, &entries, 3, 0.1, true, &mut noise, &exec, &mut c);
        assert_eq!(c.gaussian_samples, 2 * 3, "ANS: one draw per row");
        let mut c = KernelCounters::new();
        let _ = NoisePlan::sample_entries(0, 5, &entries, 3, 0.1, false, &mut noise, &exec, &mut c);
        assert_eq!(c.gaussian_samples, (4 + 2) * 3, "w/o ANS: delays draws");
    }

    #[test]
    fn sharded_flush_matches_the_monolithic_path_bitwise() {
        // The 1-shard reference: for_next_rows + sample_noise, applied
        // through plan slots (exactly what the pre-sharding optimizer
        // did), must agree per-row with merge_into for every shard
        // count — same entries, same noise, same counters.
        let rows = 40usize;
        let dim = 6usize;
        let iter = 9u64;
        let targets: Vec<u64> = vec![0, 3, 7, 8, 13, 21, 26, 34, 39];
        let flushed: &[(u64, u64)] = &[(3, 9), (8, 4), (21, 7)];
        let grad_rows: &[u64] = &[3, 7, 13, 30];
        let mk_update = || {
            let mut g = SparseGrad::new(dim);
            for &r in grad_rows {
                let e = g.push_zeros(r);
                e.fill(0.5 + r as f32);
            }
            let _ = g.coalesce();
            g
        };
        let mut noise = CounterNoise::new(17);

        // Reference path.
        let mut ref_hist = HistoryTable::new(rows);
        for &(r, it) in flushed {
            let _ = ref_hist.take_delays(r, it);
        }
        let mut ref_update = mk_update();
        let mut ref_c = KernelCounters::new();
        let plan = NoisePlan::for_next_rows(
            2,
            iter,
            &targets,
            &mut ref_hist,
            &mut ref_update,
            &mut ref_c,
        );
        let buf = plan.sample_noise(dim, 0.3, true, &mut noise, &Executor::new(3), &mut ref_c);
        for (e, nv) in plan.entries().iter().zip(buf.chunks_exact(dim)) {
            for (w, &n) in ref_update.entry_mut(e.slot).iter_mut().zip(nv.iter()) {
                *w += n;
            }
        }
        let want = ref_update.to_dense_map();

        for shards in [1usize, 2, 4, 8] {
            let raw: Vec<u32> = (0..rows as u64)
                .map(|r| ref_flushed_at(flushed, r))
                .collect();
            let mut hist = ShardedHistory::from_raw_global(&raw, shards);
            let mut update = mk_update();
            let mut c = KernelCounters::new();
            let flush = flush_next_rows_sharded(
                2,
                iter,
                &targets,
                &mut hist,
                dim,
                0.3,
                true,
                &noise,
                &Executor::new(3),
                &mut c,
            );
            flush.merge_into(&mut update);
            let got = update.to_dense_map();
            assert_eq!(got.len(), want.len(), "{shards} shards");
            for (row, vals) in &want {
                assert_eq!(&got[row], vals, "row {row}, {shards} shards");
            }
            assert_eq!(c, ref_c, "counters, {shards} shards");
            // And the history state afterwards is identical too.
            for r in 0..rows as u64 {
                assert_eq!(hist.last_flushed(r), ref_hist.last_flushed(r));
            }
        }
    }

    fn ref_flushed_at(flushed: &[(u64, u64)], row: u64) -> u32 {
        flushed
            .iter()
            .find(|&&(r, _)| r == row)
            .map_or(0, |&(_, it)| u32::try_from(it).expect("fits"))
    }

    #[test]
    fn for_all_rows_of_shard_partitions_the_full_scan() {
        // Scanning every shard of a partitioned history must plan the
        // same (row, delays) set as one monolithic scan.
        let rows = 17usize;
        let flushed: &[(u64, u64)] = &[(1, 3), (8, 7), (16, 2)];
        let mut mono = HistoryTable::new(rows);
        for &(r, it) in flushed {
            let _ = mono.take_delays(r, it);
        }
        let mut c_mono = KernelCounters::new();
        let want = NoisePlan::for_all_rows(0, 7, rows, &mut mono, &mut c_mono);
        let mut want_pairs: Vec<(u64, u64)> =
            want.entries().iter().map(|e| (e.row, e.delays)).collect();
        want_pairs.sort_unstable();

        let raw: Vec<u32> = (0..rows as u64)
            .map(|r| ref_flushed_at(flushed, r))
            .collect();
        let mut sharded = ShardedHistory::from_raw_global(&raw, 4);
        let spec = sharded.spec();
        let mut c_sh = KernelCounters::new();
        let mut got_pairs: Vec<(u64, u64)> = Vec::new();
        for (s, shard) in sharded.shards_mut().iter_mut().enumerate() {
            let plan = NoisePlan::for_all_rows_of_shard(0, 7, spec, s, shard, &mut c_sh);
            got_pairs.extend(plan.entries().iter().map(|e| (e.row, e.delays)));
        }
        got_pairs.sort_unstable();
        assert_eq!(got_pairs, want_pairs);
        assert_eq!(c_sh, c_mono);
    }

    #[test]
    fn without_ans_draws_the_eager_iteration_noise() {
        // A row with 2 pending delays at iter 5 must receive exactly the
        // noise of iterations 4 and 5 — what eager DP-SGD would have
        // drawn.
        let entries = [NoisePlanEntry {
            row: 3,
            delays: 2,
            slot: 0,
        }];
        let mut noise = CounterNoise::new(5);
        let exec = Executor::sequential();
        let mut c = KernelCounters::new();
        let got =
            NoisePlan::sample_entries(1, 5, &entries, 4, 1.0, false, &mut noise, &exec, &mut c);
        let mut expect = vec![0.0f32; 4];
        let mut buf = vec![0.0f32; 4];
        for it in [4u64, 5] {
            noise.fill_unit(1, 3, it, &mut buf);
            for (e, &n) in expect.iter_mut().zip(buf.iter()) {
                *e += n;
            }
        }
        assert_eq!(got, expect);
    }
}
