//! The `make_private` user interface (paper Fig. 9).
//!
//! The paper packages LazyDP as a wrapper that transforms a (model,
//! optimizer, data_loader) triple into LazyDP-enabled instances.
//! [`PrivateTrainer`] is the Rust equivalent: it owns the model, a
//! [`LazyDpOptimizer`], a [`LookaheadSource`] (the Fig. 9(b) "LazyDP
//! data loader" with its input queue — synchronous [`LookaheadLoader`]
//! or async [`PrefetchLoader`]), and an [`RdpAccountant`] that tracks
//! the (ε, δ) budget as training proceeds.

use crate::accounted::AccountedOptimizer;
use crate::optimizer::{LazyDpConfig, LazyDpOptimizer};
use lazydp_data::{BatchSource, LookaheadLoader, LookaheadSource, PrefetchLoader};
use lazydp_dpsgd::{AdaFestConfig, AdaFestOptimizer, KernelCounters, StepStats};
use lazydp_embedding::{EmbeddingStorage, EmbeddingTable};
use lazydp_model::Dlrm;
use lazydp_privacy::RdpAccountant;
use lazydp_rng::RowNoise;
use lazydp_store::StoredTable;
use std::io;

/// A private training session created by
/// [`make_private`](Self::make_private) (synchronous input pipeline),
/// [`make_private_prefetch`](Self::make_private_prefetch) (async
/// pipeline), [`make_private_with`](Self::make_private_with) (any
/// [`LookaheadSource`]), or
/// [`make_private_stored`](Self::make_private_stored) /
/// [`make_private_stored_prefetch`](Self::make_private_stored_prefetch)
/// (disk-backed embedding tables). All of them train the bitwise-same
/// model given the same batch stream and noise seed — the backend
/// parameter `T` changes where embedding rows live, never their values.
///
/// `O` is the training algorithm: the constructors above build a
/// [`LazyDpOptimizer`]; any other [`AccountedOptimizer`] (DP-AdaFEST
/// via [`make_private_adafest`](Self::make_private_adafest), or eager
/// DP-SGD / EANA via
/// [`make_private_optimizer`](Self::make_private_optimizer)) gets the
/// same loop and per-step accounting of the mechanism it reports.
#[derive(Debug)]
pub struct PrivateTrainer<L, O, T: EmbeddingStorage = EmbeddingTable> {
    model: Dlrm<T>,
    optimizer: O,
    loader: L,
    accountant: RdpAccountant,
    sampling_rate: f64,
    finalized: bool,
}

impl<S, N, T> PrivateTrainer<LookaheadLoader<S>, LazyDpOptimizer<N>, T>
where
    S: BatchSource,
    N: RowNoise + Clone + Send + Sync,
    T: EmbeddingStorage,
{
    /// Wraps a model, batch source, and noise source into a LazyDP
    /// training session (the Fig. 9(a) `LazyDP.make_private` call) with
    /// the synchronous one-batch-lookahead loader.
    ///
    /// `sampling_rate` is the Poisson inclusion probability `q` used for
    /// privacy accounting (`batch / dataset_len`; see
    /// `PoissonLoader::sampling_rate`).
    ///
    /// The executor width for the DP noise kernels rides in on
    /// `cfg.dp.threads` (default: the machine's available parallelism,
    /// or the `LAZYDP_THREADS` override) — set it explicitly with
    /// [`LazyDpConfig::with_threads`]. The GEMMs underneath
    /// forward/backward follow the *process-global* width
    /// (`lazydp_exec::set_global_threads` / `LAZYDP_THREADS`) instead.
    /// The sparse-state shard count rides in on `cfg.dp.shards`
    /// ([`LazyDpConfig::with_shards`]). Any combination trains the
    /// bitwise-same model.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    #[must_use]
    pub fn make_private(
        model: Dlrm<T>,
        cfg: LazyDpConfig,
        source: S,
        noise: N,
        sampling_rate: f64,
    ) -> Self {
        Self::make_private_with(
            model,
            cfg,
            LookaheadLoader::new(source),
            noise,
            sampling_rate,
        )
    }
}

impl<S, N> PrivateTrainer<LookaheadLoader<S>, LazyDpOptimizer<N>, StoredTable>
where
    S: BatchSource,
    N: RowNoise + Clone + Send + Sync,
{
    /// [`make_private`](PrivateTrainer::make_private) with **disk-backed
    /// embedding tables**: the in-memory model's tables are spilled to
    /// the paged storage engine configured by `cfg.storage` (or the
    /// `lazydp_store::StorageConfig` defaults when unset), and training
    /// proceeds with only the page cache resident per table. The
    /// released model is bitwise identical to the in-memory run — the
    /// out-of-core tentpole invariant, proven by the workspace proptests
    /// and `examples/out_of_core.rs`.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    pub fn make_private_stored(
        model: Dlrm,
        cfg: LazyDpConfig,
        source: S,
        noise: N,
        sampling_rate: f64,
    ) -> io::Result<Self> {
        let model = store_model(model, &cfg)?;
        Ok(Self::make_private_with(
            model,
            cfg,
            LookaheadLoader::new(source),
            noise,
            sampling_rate,
        ))
    }
}

impl<N: RowNoise + Clone + Send + Sync, T: EmbeddingStorage>
    PrivateTrainer<PrefetchLoader, LazyDpOptimizer<N>, T>
{
    /// [`make_private`](PrivateTrainer::make_private) with the
    /// asynchronous double-buffered input pipeline: batches are
    /// generated on a background thread and the next batch's indices
    /// are in view before each step runs. Delivers the identical batch
    /// stream — and therefore the bitwise-identical model — as the
    /// synchronous loader over the same `source`.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    #[must_use]
    pub fn make_private_prefetch<S: BatchSource + Send + 'static>(
        model: Dlrm<T>,
        cfg: LazyDpConfig,
        source: S,
        noise: N,
        sampling_rate: f64,
    ) -> Self {
        Self::make_private_with(
            model,
            cfg,
            PrefetchLoader::new(source),
            noise,
            sampling_rate,
        )
    }
}

impl<N: RowNoise + Clone + Send + Sync>
    PrivateTrainer<PrefetchLoader, LazyDpOptimizer<N>, StoredTable>
{
    /// The full out-of-core pipeline: disk-backed embedding tables
    /// (see [`make_private_stored`](PrivateTrainer::make_private_stored))
    /// **and** the async input pipeline, whose
    /// [`peek_next_indices`](PrefetchLoader::peek_next_indices) lookahead
    /// window is what lets the optimizer fault step *t+1*'s pages in
    /// while step *t*'s dense compute runs.
    ///
    /// # Errors
    ///
    /// Propagates spill-file I/O errors.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    pub fn make_private_stored_prefetch<S: BatchSource + Send + 'static>(
        model: Dlrm,
        cfg: LazyDpConfig,
        source: S,
        noise: N,
        sampling_rate: f64,
    ) -> io::Result<Self> {
        let model = store_model(model, &cfg)?;
        Ok(Self::make_private_with(
            model,
            cfg,
            PrefetchLoader::new(source),
            noise,
            sampling_rate,
        ))
    }
}

/// Spills an in-memory model's tables to the storage engine configured
/// by `cfg.storage` (engine defaults when unset).
fn store_model(model: Dlrm, cfg: &LazyDpConfig) -> io::Result<Dlrm<StoredTable>> {
    let storage = cfg.storage.clone().unwrap_or_default();
    Ok(model.try_map_tables(|_, t| StoredTable::from_dense(&t, &storage))?)
}

impl<L: LookaheadSource, N: RowNoise + Clone + Send + Sync, T: EmbeddingStorage>
    PrivateTrainer<L, LazyDpOptimizer<N>, T>
{
    /// [`make_private`](PrivateTrainer::make_private) over an
    /// already-constructed lookahead pipeline (any [`LookaheadSource`]).
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    #[must_use]
    pub fn make_private_with(
        model: Dlrm<T>,
        cfg: LazyDpConfig,
        loader: L,
        noise: N,
        sampling_rate: f64,
    ) -> Self {
        let optimizer = LazyDpOptimizer::new(cfg, &model, noise);
        Self::make_private_optimizer(model, optimizer, loader, sampling_rate)
    }
}

impl<S, N, T> PrivateTrainer<LookaheadLoader<S>, AdaFestOptimizer<N>, T>
where
    S: BatchSource,
    N: RowNoise,
    T: EmbeddingStorage,
{
    /// [`make_private`](PrivateTrainer::make_private) for **DP-AdaFEST**
    /// (sparsity-preserving DP training): the per-step mechanism is the
    /// composed selection+noise pair, and the accountant charges
    /// `Mechanism::SelectThenNoise` accordingly — the reported ε is
    /// strictly larger than a plain Gaussian run at the same `σ`.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    #[must_use]
    pub fn make_private_adafest(
        model: Dlrm<T>,
        cfg: AdaFestConfig,
        source: S,
        noise: N,
        sampling_rate: f64,
    ) -> Self {
        Self::make_private_optimizer(
            model,
            AdaFestOptimizer::new(cfg, noise),
            LookaheadLoader::new(source),
            sampling_rate,
        )
    }
}

impl<L: LookaheadSource, O: AccountedOptimizer<T>, T: EmbeddingStorage> PrivateTrainer<L, O, T> {
    /// Wraps an arbitrary [`AccountedOptimizer`] — eager DP-SGD, EANA,
    /// AdaFEST, LazyDP — into a training session with per-step privacy
    /// accounting of whatever mechanism the optimizer reports.
    ///
    /// # Panics
    ///
    /// Panics if `sampling_rate ∉ (0, 1]`.
    #[must_use]
    pub fn make_private_optimizer(
        model: Dlrm<T>,
        optimizer: O,
        loader: L,
        sampling_rate: f64,
    ) -> Self {
        assert!(
            sampling_rate > 0.0 && sampling_rate <= 1.0,
            "sampling rate must be in (0,1], got {sampling_rate}"
        );
        Self {
            model,
            optimizer,
            loader,
            accountant: RdpAccountant::new(),
            sampling_rate,
            finalized: false,
        }
    }

    /// Runs `n` training iterations, returning per-step diagnostics.
    ///
    /// # Panics
    ///
    /// Panics if called after [`finish`](Self::finish)-style
    /// finalization via [`finalize`](Self::finalize).
    pub fn train_steps(&mut self, n: usize) -> Vec<StepStats> {
        assert!(!self.finalized, "trainer already finalized");
        let mechanism = self.optimizer.mechanism();
        let mut stats = Vec::with_capacity(n);
        for _ in 0..n {
            let (cur, next) = self.loader.advance();
            let (cur, next) = (cur.clone(), next.clone());
            stats.push(self.optimizer.step(&mut self.model, &cur, Some(&next)));
            let _ = self.loader.finish_iteration();
            self.accountant
                .compose_mechanism(&mechanism, self.sampling_rate, 1);
            lazydp_obs::metrics().privacy.compositions.incr();
        }
        stats
    }

    /// The (ε, best-order) privacy guarantee spent so far at `delta`.
    /// The ε is mirrored into the `privacy.spent_epsilon` gauge — it is
    /// a public quantity (the privacy statement itself), so surfacing it
    /// leaks nothing per-example.
    #[must_use]
    pub fn epsilon(&self, delta: f64) -> (f64, u32) {
        let (eps, order) = self.accountant.epsilon(delta);
        lazydp_obs::metrics().privacy.spent_epsilon.set_f64(eps);
        (eps, order)
    }

    /// The model as currently trained (pending noise **not** yet
    /// flushed — for evaluation *inside* the training loop only; never
    /// release this state).
    #[must_use]
    pub fn model(&self) -> &Dlrm<T> {
        &self.model
    }

    /// The optimizer's work counters.
    #[must_use]
    pub fn counters(&self) -> KernelCounters {
        self.optimizer.counters()
    }

    /// Flushes all pending noise in place (threat model §3). Training
    /// may not continue afterwards.
    pub fn finalize(&mut self) {
        if !self.finalized {
            self.optimizer.finalize(&mut self.model);
            self.finalized = true;
        }
    }

    /// Finalizes and returns the releasable model.
    #[must_use]
    pub fn finish(mut self) -> Dlrm<T> {
        self.finalize();
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_data::{FixedBatchLoader, PoissonLoader, SyntheticConfig, SyntheticDataset};
    use lazydp_model::DlrmConfig;
    use lazydp_rng::counter::CounterNoise;
    use lazydp_rng::Xoshiro256PlusPlus;

    fn dataset(samples: usize) -> SyntheticDataset {
        SyntheticDataset::new(SyntheticConfig::small(2, 64, samples))
    }

    fn model() -> Dlrm {
        let mut rng = Xoshiro256PlusPlus::seed_from(17);
        Dlrm::new(DlrmConfig::tiny(2, 64, 8), &mut rng)
    }

    #[test]
    fn make_private_trains_and_accounts() {
        let ds = dataset(256);
        let loader = PoissonLoader::new(ds, 32, 5);
        let q = loader.sampling_rate();
        let cfg = LazyDpConfig::new(lazydp_dpsgd::DpConfig::new(0.5, 2.0, 0.05, 32), true);
        let mut trainer =
            PrivateTrainer::make_private(model(), cfg, loader, CounterNoise::new(3), q);
        let stats = trainer.train_steps(10);
        assert_eq!(stats.len(), 10);
        let (eps, order) = trainer.epsilon(1e-6);
        assert!(eps > 0.0 && eps.is_finite(), "ε = {eps} (order {order})");
        // More steps strictly increase the spent budget.
        let _ = trainer.train_steps(10);
        let (eps2, _) = trainer.epsilon(1e-6);
        assert!(eps2 > eps);
        let final_model = trainer.finish();
        assert!(final_model.tables[0].frob_norm().is_finite());
    }

    #[test]
    fn trained_model_is_independent_of_the_threads_knob() {
        let run = |threads: usize| -> Dlrm {
            let ds = dataset(128);
            let loader = FixedBatchLoader::new(ds, 16);
            let cfg = LazyDpConfig::paper_default(16).with_threads(threads);
            let mut t = PrivateTrainer::make_private(
                model(),
                cfg,
                loader,
                CounterNoise::new(4),
                16.0 / 128.0,
            );
            let _ = t.train_steps(5);
            t.finish()
        };
        let base = run(1);
        for threads in [2usize, 8] {
            let m = run(threads);
            for (a, b) in base.tables.iter().zip(m.tables.iter()) {
                assert_eq!(
                    a.max_abs_diff(b),
                    0.0,
                    "threads {threads} changed the model"
                );
            }
        }
    }

    #[test]
    fn prefetch_pipeline_trains_the_bitwise_same_model() {
        // The async double-buffered loader must be training-invisible:
        // same source, same seed ⇒ same batches ⇒ same model, across
        // shard counts too.
        let train = |prefetch: bool, shards: usize| -> Dlrm {
            let ds = dataset(256);
            let loader = FixedBatchLoader::new(ds, 32);
            let cfg = LazyDpConfig::paper_default(32)
                .with_threads(2)
                .with_shards(shards);
            let q = 32.0 / 256.0;
            if prefetch {
                let mut t = PrivateTrainer::make_private_prefetch(
                    model(),
                    cfg,
                    loader,
                    CounterNoise::new(9),
                    q,
                );
                let _ = t.train_steps(8);
                t.finish()
            } else {
                let mut t =
                    PrivateTrainer::make_private(model(), cfg, loader, CounterNoise::new(9), q);
                let _ = t.train_steps(8);
                t.finish()
            }
        };
        let base = train(false, 1);
        for shards in [1usize, 4] {
            let m = train(true, shards);
            for (a, b) in base.tables.iter().zip(m.tables.iter()) {
                assert_eq!(
                    a.max_abs_diff(b),
                    0.0,
                    "prefetch (shards {shards}) changed the model"
                );
            }
        }
    }

    #[test]
    fn accounting_is_independent_of_ans() {
        // The privacy budget depends on (σ, q, T) only — LazyDP's lazy
        // timing and ANS change nothing (paper §5: "mathematically
        // equivalent, differentially private RecSys models").
        let run = |ans: bool| -> f64 {
            let ds = dataset(256);
            let loader = FixedBatchLoader::new(ds, 32);
            let cfg = LazyDpConfig::new(lazydp_dpsgd::DpConfig::paper_default(32), ans);
            let mut t = PrivateTrainer::make_private(
                model(),
                cfg,
                loader,
                CounterNoise::new(3),
                32.0 / 256.0,
            );
            let _ = t.train_steps(20);
            t.epsilon(1e-6).0
        };
        let with_ans = run(true);
        let without = run(false);
        assert_eq!(with_ans, without, "ε must not depend on ANS");
    }

    #[test]
    fn adafest_trainer_charges_the_composed_mechanism() {
        // Same σ, same steps: the AdaFEST session must report a
        // strictly larger ε than LazyDP, because its per-step release
        // includes the noisy partition-count selection.
        let ds = dataset(256);
        let dp = lazydp_dpsgd::DpConfig::new(1.1, 1.0, 0.05, 32);
        let q = 32.0 / 256.0;
        let mut lazy = PrivateTrainer::make_private(
            model(),
            LazyDpConfig::new(dp, true),
            FixedBatchLoader::new(ds.clone(), 32),
            CounterNoise::new(6),
            q,
        );
        let mut ada = PrivateTrainer::make_private_adafest(
            model(),
            lazydp_dpsgd::AdaFestConfig::new(dp, 1.0, 8.0, 8),
            FixedBatchLoader::new(ds, 32),
            CounterNoise::new(6),
            q,
        );
        let _ = lazy.train_steps(10);
        let _ = ada.train_steps(10);
        let (eps_lazy, _) = lazy.epsilon(1e-6);
        let (eps_ada, _) = ada.epsilon(1e-6);
        assert!(
            eps_ada > eps_lazy,
            "selection must cost extra: {eps_ada} vs {eps_lazy}"
        );
        // The AdaFEST run is sparse: far fewer table rows written than
        // the dense-equivalent 10 steps × total rows.
        let total_rows: u64 = ada.model().tables.iter().map(|t| t.rows() as u64).sum();
        assert!(ada.counters().table_rows_written < 10 * total_rows);
        let released = ada.finish();
        assert!(released.tables[0].frob_norm().is_finite());
    }

    #[test]
    fn finalize_is_required_once_and_blocks_training() {
        let ds = dataset(128);
        let loader = FixedBatchLoader::new(ds, 16);
        let cfg = LazyDpConfig::paper_default(16);
        let mut trainer =
            PrivateTrainer::make_private(model(), cfg, loader, CounterNoise::new(1), 16.0 / 128.0);
        let _ = trainer.train_steps(3);
        trainer.finalize();
        trainer.finalize(); // idempotent
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = trainer.train_steps(1);
        }));
        assert!(result.is_err(), "training after finalize must panic");
    }
}
