//! Aggregated noise sampling (ANS) — paper §5.2.2, Theorem 5.1.
//!
//! The sum of `n` i.i.d. draws from `N(0, σ²)` is distributed as
//! `N(0, n·σ²)`; therefore the `n` deferred per-iteration noise draws a
//! row owes can be replaced by **one** draw with standard deviation
//! `√n · σ`, cutting the Box–Muller compute by a factor of `n`. This
//! module holds the scaling rule and its statistical validation.

/// Standard deviation of the single aggregated draw replacing `delays`
/// deferred draws of standard deviation `per_step_std`
/// (Algorithm 1 line 38: `GaussianNoise(delays × σ²C², dim)`).
///
/// # Panics
///
/// Panics if `per_step_std` is negative or not finite.
#[inline]
#[must_use]
pub fn aggregated_std(per_step_std: f32, delays: u64) -> f32 {
    assert!(
        per_step_std.is_finite() && per_step_std >= 0.0,
        "per-step std must be finite and >= 0"
    );
    ((delays as f64).sqrt() * f64::from(per_step_std)) as f32
}

/// Gaussian samples saved by ANS for one row: `delays` draws become 1
/// (per coordinate). Zero delays need zero draws either way.
#[inline]
#[must_use]
pub fn samples_saved(delays: u64) -> u64 {
    delays.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazydp_rng::{stats, GaussianSampler, Prng, Xoshiro256PlusPlus};

    #[test]
    fn scaling_rule() {
        assert_eq!(aggregated_std(0.5, 0), 0.0);
        assert_eq!(aggregated_std(0.5, 1), 0.5);
        assert!((aggregated_std(0.5, 4) - 1.0).abs() < 1e-7);
        assert!((aggregated_std(1.0, 9) - 3.0).abs() < 1e-7);
    }

    #[test]
    fn samples_saved_rule() {
        assert_eq!(samples_saved(0), 0);
        assert_eq!(samples_saved(1), 0);
        assert_eq!(samples_saved(100), 99);
    }

    #[test]
    fn theorem_5_1_sum_equals_aggregated_distribution() {
        // Empirical check of Theorem 5.1 exactly as the optimizer uses
        // it: compare (a) sums of `n` per-step draws against (b) single
        // aggregated draws, via moments and a KS test on equal-size
        // samples.
        let n = 12u64;
        let std = 0.7f32;
        let trials = 30_000;
        let mut rng = Xoshiro256PlusPlus::seed_from(2024);
        let per_step = GaussianSampler::new(0.0, std);
        let agg = GaussianSampler::new(0.0, aggregated_std(std, n));
        let mut summed: Vec<f64> = Vec::with_capacity(trials);
        let mut aggregated: Vec<f64> = Vec::with_capacity(trials);
        for _ in 0..trials {
            let mut acc = 0.0f64;
            for _ in 0..n {
                acc += f64::from(per_step.sample(&mut rng));
            }
            summed.push(acc);
            aggregated.push(f64::from(agg.sample(&mut rng)));
        }
        let (ms, vs) = stats::mean_var(&summed);
        let (ma, va) = stats::mean_var(&aggregated);
        let expect_var = f64::from(std) * f64::from(std) * n as f64;
        assert!(ms.abs() < 0.05 && ma.abs() < 0.05, "means {ms} {ma}");
        assert!(
            (vs - expect_var).abs() / expect_var < 0.05,
            "summed var {vs}"
        );
        assert!((va - expect_var).abs() / expect_var < 0.05, "agg var {va}");
        // Both against the theoretical CDF.
        let crit = stats::ks_critical(trials, 0.001);
        let ks_s = stats::ks_statistic_normal(&mut summed, 0.0, expect_var.sqrt());
        let ks_a = stats::ks_statistic_normal(&mut aggregated, 0.0, expect_var.sqrt());
        assert!(ks_s < crit, "summed KS {ks_s}");
        assert!(ks_a < crit, "aggregated KS {ks_a}");
        // And against each other (z-test of means).
        let z = stats::mean_z_score(&summed, &aggregated);
        assert!(z.abs() < 4.0, "mean z-score {z}");
    }

    #[test]
    fn zero_delay_draw_is_degenerate() {
        let mut rng = Xoshiro256PlusPlus::seed_from(5);
        let s = GaussianSampler::new(0.0, aggregated_std(1.0, 0));
        for _ in 0..10 {
            assert_eq!(s.sample(&mut rng), 0.0);
        }
        let _ = rng.next_u64();
    }
}
